GO ?= go

.PHONY: check fmt vet build test test-race bench bench-json bench-compare alloc-guard race-reset set-model soak-short soak-large loadgen-smoke loadgen-c1k farm-smoke

# Sequence number for committed benchmark reports (BENCH_<n>.json).
BENCH_N ?= 10

# Allowed ns/op growth percentage in bench-compare. Generous on purpose:
# ns/op flakes with machine load, so the gate only catches hot-loop
# regressions of the order-of-magnitude kind.
TIME_TOLERANCE ?= 75

# check is the tier-1 gate: formatting, vet, build, full test suite,
# plus the allocation guards, the set-vs-model property tests under the
# race detector, a short race pass over the reset determinism tests,
# soak campaigns under the race detector at both the thesis scale and
# the kilo-process 1024-proc scale (the properties the run-reuse
# lifecycle, the wide-word set representation and the campaign engine
# must never lose silently), and the live-path smokes: a real TCP
# cluster under client load with an injected partition, and the same
# cluster serving a thousand concurrent pipelined connections, and the
# distributed sweep farm: a coordinator plus three local worker
# processes merging a campaign over localhost TCP.
check: fmt vet build test alloc-guard set-model race-reset soak-short soak-large loadgen-smoke loadgen-c1k farm-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-race re-runs the concurrency-sensitive packages under the race
# detector: the metrics registry, the live group-communication stack,
# the instrumented simulator, and the campaign engine.
test-race:
	$(GO) test -race ./internal/metrics/... ./internal/gcs/... ./internal/sim/... ./internal/trace/... ./internal/experiment/... ./internal/campaign/... ./internal/farm/...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-json runs the full benchmark suite with allocation stats and
# converts the output into a machine-readable BENCH_$(BENCH_N).json,
# the before/after evidence file committed with perf PRs.
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... \
		| $(GO) run ./cmd/benchjson -o BENCH_$(BENCH_N).json
	@echo "wrote BENCH_$(BENCH_N).json"

# bench-compare re-runs the benchmark suite and diffs it against the
# committed BENCH_$(BENCH_N).json: per-benchmark ns/op, B/op and
# allocs/op deltas, non-zero exit when allocs/op regressed beyond the
# tolerance or ns/op beyond TIME_TOLERANCE (see cmd/benchjson). The
# ns/op gate only applies to macro benchmarks (baseline ≥ 50µs/op,
# benchjson's -time-floor): micro-benchmarks at -benchtime 1x measure
# mostly the timer and flake multiples under load.
bench-compare:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... \
		| $(GO) run ./cmd/benchjson -baseline BENCH_$(BENCH_N).json -time-tolerance $(TIME_TOLERANCE)

# alloc-guard pins the allocation-free hot paths: the steady-state
# collect/deliver loop and the Driver.Reset lifecycle in the simulator,
# and the pooled Send/arena-receive wire path in the live transport.
alloc-guard:
	$(GO) test -run 'AllocFree' -count 1 ./internal/sim/
	$(GO) test -run 'SteadyStateAllocs' -count 1 ./internal/gcs/

# set-model re-runs the proc.Set map-reference property tests (and the
# fuzz seed corpus) under the race detector: every mutation and algebra
# op is compared against a reference model at the word-boundary sizes
# 63/64/65 and 255/256/257.
set-model:
	$(GO) test -race -run 'SetModel|FuzzSetModel|BitsModel|BitsReset' -count 1 ./internal/proc/

# race-reset runs the reset-vs-fresh golden tests under the race
# detector: the per-worker driver reuse in the experiment layer must
# stay data-race-free at any worker count.
race-reset:
	$(GO) test -race -run 'ResetVsFresh' -count 1 ./internal/sim/ ./internal/experiment/

# soak-short is a small sharded safety campaign — every algorithm, a few
# thousand changes split over 4 chains — built and run under the race
# detector, exercising the exact binary and scheduling path CI ships.
soak-short:
	$(GO) run -race ./cmd/quorumcheck -changes 2000 -procs 24 -chains 4 -progress 0

# loadgen-smoke boots a 3-node replicated store over real TCP sockets,
# drives it with concurrent clients, injects a partition mid-run and
# heals it — then asserts (via -smoke) that throughput was non-zero,
# latency quantiles are sane, per-peer wire stats were collected, and
# a primary-recovery time was actually measured from the failover
# timeline. This is the live path's end-to-end gate.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -inproc 3 -conns 4 -duration 2s -partition 500ms -heal 1300ms -q -smoke

# loadgen-c1k is the kilo-connection smoke: the same 3-node TCP cluster
# serving 1000 concurrent pipelined client connections — the serving
# path's scalability gate (descriptor limits, per-connection goroutines,
# coalesced response flushing all under pressure at once).
loadgen-c1k:
	$(GO) run ./cmd/loadgen -inproc 3 -conns 1000 -pipeline 4 -duration 2s -q -smoke

# farm-smoke is the distributed sweep farm's end-to-end gate: one
# coordinator binary (built under the race detector) spawning three
# local worker processes, sharding a sharded campaign over localhost
# TCP and merging the chains back — the merge is bit-identical to a
# local run by construction, and any protocol or requeue race trips
# the detector in all four processes.
farm-smoke:
	$(GO) build -race -o /tmp/quorumcheck-farm-smoke ./cmd/quorumcheck
	/tmp/quorumcheck-farm-smoke -changes 1500 -procs 24 -chains 6 -progress 0 \
		-farm-listen 127.0.0.1:0 -farm-workers 3
	rm -f /tmp/quorumcheck-farm-smoke

# soak-large is the safety campaign at the kilo-process scale under
# the race detector: 1024 processes, one algorithm, checker on. The
# change budget is minimal — a single cascading segment at this width
# pushes on the order of a million deliveries through the wide-word
# set, batched delivery and arena paths, and the race detector
# multiplies every one of them, so two changes already cost ~90s.
soak-large:
	$(GO) run -race ./cmd/quorumcheck -changes 2 -segment 2 -chains 1 -procs 1024 -alg ykd -progress 0
