GO ?= go

.PHONY: check fmt vet build test test-race bench bench-json

# Sequence number for committed benchmark reports (BENCH_<n>.json).
BENCH_N ?= 2

# check is the tier-1 gate: formatting, vet, build, full test suite.
check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-race re-runs the concurrency-sensitive packages under the race
# detector: the metrics registry, the live group-communication stack,
# and the instrumented simulator.
test-race:
	$(GO) test -race ./internal/metrics/... ./internal/gcs/... ./internal/sim/... ./internal/trace/... ./internal/experiment/...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-json runs the full benchmark suite with allocation stats and
# converts the output into a machine-readable BENCH_$(BENCH_N).json,
# the before/after evidence file committed with perf PRs.
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... \
		| $(GO) run ./cmd/benchjson -o BENCH_$(BENCH_N).json
	@echo "wrote BENCH_$(BENCH_N).json"
