GO ?= go

.PHONY: check fmt vet build test test-race bench

# check is the tier-1 gate: formatting, vet, build, full test suite.
check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-race re-runs the concurrency-sensitive packages under the race
# detector: the metrics registry, the live group-communication stack,
# and the instrumented simulator.
test-race:
	$(GO) test -race ./internal/metrics/... ./internal/gcs/... ./internal/sim/... ./internal/trace/... ./internal/experiment/...

bench:
	$(GO) test -bench . -benchtime 1x ./...
