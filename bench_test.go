// Package dynvote's repository-level benchmarks: one testing.B target
// per thesis table/figure, each regenerating (a reduced-resolution
// rendition of) the corresponding series. Full-resolution runs come
// from cmd/figures; these benches exist so `go test -bench=.` exercises
// every experiment end-to-end and reports its cost.
//
// The printed series are emitted once per benchmark (on the first
// iteration) so -bench output doubles as a figure preview.
package dynvote_test

import (
	"fmt"
	"sync"
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/experiment"
	"dynvote/internal/metrics"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/ykd"
)

// benchOpts keeps the benchmark workloads small enough to iterate:
// 64 processes as in the thesis, fewer runs and a coarser rate sweep.
func benchOpts() experiment.Options {
	return experiment.Options{
		Procs: 64,
		Runs:  40,
		Rates: []float64{0, 2, 6, 12},
		Seed:  20000505,
	}.Defaults()
}

var printOnce sync.Map

func printFirst(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Log("\n" + text)
	}
}

func benchAvailabilityFigure(b *testing.B, id string, changes int, mode experiment.Mode) {
	b.Helper()
	o := benchOpts()
	spec := experiment.AvailabilityFigure(id, changes, mode, o)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := experiment.RunSweep(spec.Sweeps[0])
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst(b, id, experiment.RenderAvailabilityTable(spec.Caption, spec.Sweeps[0], series))
		}
	}
}

func BenchmarkFig4_1FreshStart2Changes(b *testing.B) {
	benchAvailabilityFigure(b, "4-1", 2, experiment.FreshStart)
}

func BenchmarkFig4_2FreshStart6Changes(b *testing.B) {
	benchAvailabilityFigure(b, "4-2", 6, experiment.FreshStart)
}

func BenchmarkFig4_3FreshStart12Changes(b *testing.B) {
	benchAvailabilityFigure(b, "4-3", 12, experiment.FreshStart)
}

func BenchmarkFig4_4Cascading2Changes(b *testing.B) {
	benchAvailabilityFigure(b, "4-4", 2, experiment.Cascading)
}

func BenchmarkFig4_5Cascading6Changes(b *testing.B) {
	benchAvailabilityFigure(b, "4-5", 6, experiment.Cascading)
}

func BenchmarkFig4_6Cascading12Changes(b *testing.B) {
	benchAvailabilityFigure(b, "4-6", 12, experiment.Cascading)
}

func benchAmbiguityFigure(b *testing.B, stable bool, label string) {
	b.Helper()
	o := benchOpts()
	spec := experiment.AmbiguityFigure("4-7/4-8", "Ambiguous sessions", o)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, sweep := range spec.Sweeps {
			series, err := experiment.RunSweep(sweep)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				printFirst(b, fmt.Sprintf("%s-%d", label, sweep.Changes),
					experiment.RenderAmbiguityTable(label, sweep, series, stable))
			}
		}
	}
}

func BenchmarkFig4_7AmbiguousStable(b *testing.B) {
	benchAmbiguityFigure(b, true, "Figure 4-7: retained when stable")
}

func BenchmarkFig4_8AmbiguousInProgress(b *testing.B) {
	benchAmbiguityFigure(b, false, "Figure 4-8: in progress")
}

// BenchmarkScaling32_48_64 reproduces the §4.1 scaling check: the
// Figure 4-2 workload at three system sizes gives almost identical
// availability.
func BenchmarkScaling32_48_64(b *testing.B) {
	o := benchOpts()
	ykdF := algset.Availability()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var lines string
		for _, n := range []int{32, 48, 64} {
			res, err := experiment.RunCase(experiment.CaseSpec{
				Factory: ykdF, Procs: n, Changes: 6, MeanRounds: 6,
				Runs: o.Runs, Mode: experiment.FreshStart, Seed: o.Seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			lines += fmt.Sprintf("%d procs: %s\n", n, res.Availability)
		}
		if i == 0 {
			printFirst(b, "scaling", "Scaling check (ykd, 6 changes, rate 6):\n"+lines)
		}
	}
}

// BenchmarkYKDvsDFLSPaired reproduces the §4.1 paired measurement: YKD
// forms a primary where DFLS does not in ≈3% of runs.
func BenchmarkYKDvsDFLSPaired(b *testing.B) {
	o := benchOpts()
	ykdF, _ := algset.ByName("ykd")
	dflsF, _ := algset.ByName("dfls")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr, err := experiment.RunPaired(ykdF, dflsF, experiment.CaseSpec{
			Procs: o.Procs, Changes: 6, MeanRounds: 6,
			Runs: o.Runs, Mode: experiment.FreshStart, Seed: o.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst(b, "paired", fmt.Sprintf(
				"Paired ykd vs dfls (6 changes, rate 6): ykd-only %.2f%% of %d runs",
				pr.FirstAdvantagePercent(), pr.Runs))
		}
	}
}

// BenchmarkSoakSafety is the scaled trial-by-fire of §2.2: cascading
// changes with the safety checker on after every round. The full
// 1,310,000-change campaign is cmd/quorumcheck.
func BenchmarkSoakSafety(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
			Procs: 64, Changes: 120, MeanRounds: 1.5, CheckSafety: true,
		}, rng.New(int64(i)))
		if _, err := d.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageSizes reproduces the §3.4 message-size measurement:
// with 64 processes the exchanged information stays in the ~2 KB
// range.
func BenchmarkMessageSizes(b *testing.B) {
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCase(experiment.CaseSpec{
			Factory: algset.Availability()[0], Procs: 64, Changes: 12, MeanRounds: 2,
			Runs: o.Runs, Mode: experiment.FreshStart, Seed: o.Seed, MeasureSizes: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst(b, "sizes", fmt.Sprintf(
				"Message sizes (ykd, 64 procs): max message %d B, max round traffic %d B",
				res.Sizes.MaxMessageBytes, res.Sizes.MaxRoundBytes))
		}
	}
}

// BenchmarkCrashStudy runs the §5.1 extension: one process (the
// lexical tie-breaker) crashes mid-run; 1-pending's unresolvable
// pending sessions make it suffer the most.
func BenchmarkCrashStudy(b *testing.B) {
	o := benchOpts()
	spec := experiment.CrashStudySpec{
		Procs: 32, Changes: 12, MeanRounds: 2,
		Runs: o.Runs, Seed: o.Seed, Victim: 0, AfterChanges: 4,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunCrashStudy(spec)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst(b, "crash", experiment.RenderCrashStudy(spec, rows))
		}
	}
}

// BenchmarkTimingStudy runs the §5.1 extension comparing geometric,
// periodic and clustered change-timing models.
func BenchmarkTimingStudy(b *testing.B) {
	o := benchOpts()
	spec := experiment.TimingStudySpec{
		Procs: 32, Changes: 12, MeanRounds: 2, Runs: o.Runs, Seed: o.Seed,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunTimingStudy(spec)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst(b, "timing", experiment.RenderTimingStudy(spec, rows))
		}
	}
}

// Ablation benches: the YKD design choices the thesis's variants
// isolate, measured head-to-head on identical schedules.
func benchAblation(b *testing.B, a1, a2 string) {
	o := benchOpts()
	f1, _ := algset.ByName(a1)
	f2, _ := algset.ByName(a2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr, err := experiment.RunPaired(f1, f2, experiment.CaseSpec{
			Procs: o.Procs, Changes: 12, MeanRounds: 2,
			Runs: o.Runs, Mode: experiment.FreshStart, Seed: o.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst(b, a1+a2, fmt.Sprintf("ablation %s vs %s: %s-only %.1f%%, %s-only %.1f%% of %d runs",
				a1, a2, a1, pr.FirstAdvantagePercent(),
				a2, 100*float64(pr.OnlySecond)/float64(pr.Runs), pr.Runs))
		}
	}
}

// BenchmarkAblationPipelining isolates YKD's ability to pipeline past
// pending sessions (vs 1-pending, which blocks).
func BenchmarkAblationPipelining(b *testing.B) { benchAblation(b, "ykd", "1-pending") }

// BenchmarkAblationDeletionRound isolates immediate vs deferred
// ambiguous-session deletion (YKD vs DFLS).
func BenchmarkAblationDeletionRound(b *testing.B) { benchAblation(b, "ykd", "dfls") }

// BenchmarkAblationResolutionQuorum isolates all-members vs majority
// resolution of a pending session (1-pending vs MR1p).
func BenchmarkAblationResolutionQuorum(b *testing.B) { benchAblation(b, "1-pending", "mr1p") }

// BenchmarkSingleRun is the microbenchmark of the simulation core: one
// fresh 64-process run, 6 changes at rate 4.
func BenchmarkSingleRun(b *testing.B) {
	benchSingleRun(b, 64)
}

// BenchmarkSingleRun128 and BenchmarkSingleRun256 are the same
// workload at the N-scaling study's system sizes: runtime should grow
// near the O(N²) message floor (every view change broadcasts N
// messages of O(N) recipients), not the allocation-bound curve the
// single-word set representation had past 64 processes.
func BenchmarkSingleRun128(b *testing.B) { benchSingleRun(b, 128) }

func BenchmarkSingleRun256(b *testing.B) { benchSingleRun(b, 256) }

// BenchmarkSingleRun512 and BenchmarkSingleRun1024 extend the scaling
// ladder past the inline set boundary, on the identical workload — no
// reduced change count, no shortened runs — so the reported ratios are
// honest. The O(N²) message floor alone puts 1024 at 16× the 256-proc
// traffic; the kilo-process pass's job is to keep the per-message cost
// flat enough that the measured ratio stays near that floor rather
// than the 100×+ the allocation-bound paths produced.
func BenchmarkSingleRun512(b *testing.B) { benchSingleRun(b, 512) }

func BenchmarkSingleRun1024(b *testing.B) { benchSingleRun(b, 1024) }

func benchSingleRun(b *testing.B, procs int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
			Procs: procs, Changes: 6, MeanRounds: 4,
		}, rng.New(int64(i)))
		if _, err := d.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatencyStudy measures re-formation latency — the rounds an
// algorithm needs to restore a primary after turbulence ends, where
// MR1p's five-round protocol shows a cost that availability hides.
func BenchmarkLatencyStudy(b *testing.B) {
	o := benchOpts()
	spec := experiment.LatencyStudySpec{
		Procs: 32, Changes: 12, MeanRounds: 2, Runs: o.Runs, Seed: o.Seed,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunLatencyStudy(spec)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst(b, "latency", experiment.RenderLatencyStudy(spec, rows))
		}
	}
}

// BenchmarkDriverMetricsOverhead quantifies the cost of the metrics
// layer on the Figure 4-2 unit workload: "off" is the nil-registry
// no-op path (the default for every existing caller), "on" pays the
// atomic increments. The contract is that "off" matches the
// uninstrumented driver and "on" stays within a few percent.
func BenchmarkDriverMetricsOverhead(b *testing.B) {
	run := func(b *testing.B, reg *metrics.Registry) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
				Procs: 64, Changes: 6, MeanRounds: 4, Metrics: reg,
			}, rng.New(int64(i)))
			if _, err := d.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, metrics.NewRegistry()) })
}
