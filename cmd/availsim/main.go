// Command availsim runs a single measurement case of the availability
// study: one algorithm, one number of connectivity changes, one change
// rate, over many randomized runs — the unit cell behind every figure
// in the thesis.
//
// Examples:
//
//	availsim -alg ykd -changes 6 -rate 4 -runs 1000
//	availsim -alg mr1p -changes 12 -rate 1 -mode cascading -check
//	availsim -alg ykd -alg2 dfls -changes 6 -rate 4        # paired
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/experiment"
	"dynvote/internal/metrics"
	"dynvote/internal/profile"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "availsim:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("availsim", flag.ContinueOnError)
	var (
		alg     = fs.String("alg", "ykd", "algorithm: ykd, ykd-unopt, dfls, 1-pending, mr1p, simple-majority")
		alg2    = fs.String("alg2", "", "second algorithm for a paired run-by-run comparison")
		procs   = fs.Int("procs", 64, "number of processes")
		changes = fs.Int("changes", 6, "connectivity changes per run")
		rate    = fs.Float64("rate", 4, "mean message rounds between connectivity changes")
		runs    = fs.Int("runs", 1000, "randomized runs")
		mode    = fs.String("mode", "fresh", "fresh or cascading")
		seed    = fs.Int64("seed", 20000505, "random seed")
		sizes   = fs.Bool("sizes", false, "measure message sizes (slower)")
		scaling = fs.Bool("scaling", false, "run the N-scaling study (32..1024 processes) instead of a single case")
		check   = fs.Bool("check", false, "run safety checker during every run")
		mout    = fs.String("metrics-out", "", "write a machine-readable JSON run report (results + metrics snapshot) to this file")
		workers = fs.Int("workers", 0, "run worker budget (0 = GOMAXPROCS, 1 = sequential)")
		cpuprof = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = fs.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers != 0 {
		experiment.SetParallelism(*workers)
	}
	stopProfile, err := profile.Start(*cpuprof, *memprof)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfile(); perr != nil && err == nil {
			err = perr
		}
	}()

	factory, err := algset.ByName(*alg)
	if err != nil {
		return err
	}
	m := experiment.FreshStart
	switch *mode {
	case "fresh":
	case "cascading":
		m = experiment.Cascading
	default:
		return fmt.Errorf("unknown mode %q (fresh or cascading)", *mode)
	}

	var reg *metrics.Registry
	if *mout != "" {
		reg = metrics.NewRegistry()
	}
	spec := experiment.CaseSpec{
		Factory:      factory,
		Procs:        *procs,
		Changes:      *changes,
		MeanRounds:   *rate,
		Runs:         *runs,
		Mode:         m,
		Seed:         *seed,
		MeasureSizes: *sizes,
		CheckSafety:  *check,
		Metrics:      reg,
	}

	start := time.Now()
	report := experiment.RunReport{
		Tool: "availsim", Seed: *seed, Procs: *procs, Runs: *runs, Mode: m.String(),
	}
	writeReport := func() error {
		if *mout == "" {
			return nil
		}
		report.Finish(start, reg)
		if err := report.WriteFile(*mout); err != nil {
			return err
		}
		fmt.Printf("  report written to %s\n", *mout)
		return nil
	}

	if *scaling {
		// The N-scaling sweep: the §4.1 scaling check extended out to
		// 1024 processes, on the standard ykd workload. -changes, -rate,
		// -runs and -seed carry over (-runs as the per-case budget up to
		// 256 processes, divided by (N/256)² beyond); -alg/-procs do
		// not apply.
		sspec := experiment.ScalingStudySpec{
			Rates: []float64{*rate}, Changes: *changes, Runs: *runs, Seed: *seed,
		}
		rows, err := experiment.RunScalingStudy(sspec)
		if err != nil {
			return err
		}
		fmt.Print(experiment.RenderScalingTable(sspec, rows))
		fmt.Printf("total wall time: %.1fs\n", time.Since(start).Seconds())
		return writeReport()
	}

	if *alg2 != "" {
		second, err := algset.ByName(*alg2)
		if err != nil {
			return err
		}
		pr, err := experiment.RunPaired(factory, second, spec)
		if err != nil {
			return err
		}
		fmt.Printf("paired %s vs %s: %d procs, %d changes, rate %.1f, %s, %d runs (%.1fs)\n",
			factory.Name, second.Name, *procs, *changes, *rate, m, *runs, time.Since(start).Seconds())
		fmt.Printf("  both formed:       %5d\n", pr.Both)
		fmt.Printf("  only %-12s %5d (%.2f%%)\n", factory.Name+":", pr.OnlyFirst, pr.FirstAdvantagePercent())
		fmt.Printf("  only %-12s %5d\n", second.Name+":", pr.OnlySecond)
		fmt.Printf("  neither:           %5d\n", pr.Neither)
		return writeReport()
	}

	res, err := experiment.RunCase(spec)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d procs, %d changes, rate %.1f, %s, %d runs (%.1fs)\n",
		res.Algorithm, *procs, *changes, *rate, m, *runs, time.Since(start).Seconds())
	lo, hi := res.Availability.WilsonInterval()
	fmt.Printf("  availability:          %s   95%% CI [%.1f%%, %.1f%%]\n", res.Availability, lo, hi)
	if res.Reform.Total() > 0 {
		fmt.Printf("  reform latency:        mean %.2f rounds, max %d (never: %d runs)\n",
			res.Reform.Mean(), res.Reform.Max(), res.NeverReformed)
	}
	fmt.Printf("  ambiguous (stable):    ≥1: %.2f%%  max: %d\n",
		res.Stable.PercentAtLeast(1), res.Stable.Max())
	fmt.Printf("  ambiguous (in flight): ≥1: %.2f%%  max: %d  (%d samples)\n",
		res.InProgress.PercentAtLeast(1), res.InProgress.Max(), res.InProgress.Total())
	if *sizes {
		fmt.Printf("  max message: %d bytes; max per-round traffic: %d bytes\n",
			res.Sizes.MaxMessageBytes, res.Sizes.MaxRoundBytes)
	}
	report.AddCase(res, *changes)
	return writeReport()
}
