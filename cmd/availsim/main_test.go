package main

import (
	"strings"
	"testing"
)

func TestRunSingleCase(t *testing.T) {
	err := run([]string{"-alg", "ykd", "-procs", "16", "-changes", "4", "-rate", "2", "-runs", "20"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCascading(t *testing.T) {
	err := run([]string{"-alg", "mr1p", "-procs", "16", "-changes", "4", "-rate", "2",
		"-runs", "10", "-mode", "cascading", "-check"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPairedMode(t *testing.T) {
	err := run([]string{"-alg", "ykd", "-alg2", "dfls", "-procs", "16",
		"-changes", "4", "-rate", "2", "-runs", "10"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSizes(t *testing.T) {
	err := run([]string{"-alg", "ykd", "-procs", "16", "-changes", "2", "-rate", "2",
		"-runs", "10", "-sizes"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-alg", "nonsense"},
		{"-alg", "ykd", "-mode", "sideways"},
		{"-alg", "ykd", "-alg2", "nonsense"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted bad input", args)
		}
	}
}

func TestBadAlgErrorListsChoices(t *testing.T) {
	err := run([]string{"-alg", "nonsense", "-runs", "1"})
	if err == nil || !strings.Contains(err.Error(), "ykd") {
		t.Errorf("error should list valid algorithms: %v", err)
	}
}
