package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynvote/internal/experiment"
)

func TestRunSingleCase(t *testing.T) {
	err := run([]string{"-alg", "ykd", "-procs", "16", "-changes", "4", "-rate", "2", "-runs", "20"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCascading(t *testing.T) {
	err := run([]string{"-alg", "mr1p", "-procs", "16", "-changes", "4", "-rate", "2",
		"-runs", "10", "-mode", "cascading", "-check"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPairedMode(t *testing.T) {
	err := run([]string{"-alg", "ykd", "-alg2", "dfls", "-procs", "16",
		"-changes", "4", "-rate", "2", "-runs", "10"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSizes(t *testing.T) {
	err := run([]string{"-alg", "ykd", "-procs", "16", "-changes", "2", "-rate", "2",
		"-runs", "10", "-sizes"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-alg", "nonsense"},
		{"-alg", "ykd", "-mode", "sideways"},
		{"-alg", "ykd", "-alg2", "nonsense"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted bad input", args)
		}
	}
}

func TestBadAlgErrorListsChoices(t *testing.T) {
	err := run([]string{"-alg", "nonsense", "-runs", "1"})
	if err == nil || !strings.Contains(err.Error(), "ykd") {
		t.Errorf("error should list valid algorithms: %v", err)
	}
}

func TestRunWritesMetricsReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{"-alg", "ykd", "-procs", "16", "-changes", "4", "-rate", "2",
		"-runs", "15", "-metrics-out", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report experiment.RunReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Tool != "availsim" || len(report.Cases) != 1 {
		t.Fatalf("unexpected report shape: tool=%q cases=%d", report.Tool, len(report.Cases))
	}
	c := report.Cases[0]
	if c.Algorithm != "ykd" || c.Runs != 15 || c.Changes != 4 {
		t.Errorf("case mismatch: %+v", c)
	}
	if report.Metrics == nil {
		t.Fatal("report carries no metrics snapshot")
	}
	if got := report.Metrics.Counters["sim_runs_total"]; got != 15 {
		t.Errorf("sim_runs_total = %d, want 15", got)
	}
	if report.WallSeconds <= 0 {
		t.Error("wall time not recorded")
	}
}

func TestRunScalingStudy(t *testing.T) {
	err := run([]string{"-scaling", "-changes", "2", "-rate", "2", "-runs", "3"})
	if err != nil {
		t.Fatal(err)
	}
}
