package main

import (
	"fmt"
	"os"
	"strings"

	"dynvote/internal/campaign"
)

// campaignBenchmarks folds a quorumcheck -json campaign report into
// benchmark rows, so soak throughput — local or farmed — rides the same
// BENCH_<n>.json files and compare gates as the simulator benchmarks.
// Wall time per injected change maps onto ns/op; throughput, worker
// count and farm requeue totals land in Extra. One row summarizes the
// whole campaign, plus one row per algorithm for per-algorithm drift.
func campaignBenchmarks(rep *campaign.Report) []Benchmark {
	changes := 0
	var assertions int64
	for _, a := range rep.Algorithms {
		changes += a.Changes
		assertions += a.Assertions
	}
	mode := "local"
	if strings.HasSuffix(rep.Tool, "-farm") {
		mode = "farm"
	}
	name := fmt.Sprintf("Campaign/%s/procs=%d/chains=%d/workers=%d",
		mode, rep.Procs, rep.Chains, rep.Workers)
	nsPerChange := 0.0
	if changes > 0 {
		nsPerChange = rep.WallSeconds * 1e9 / float64(changes)
	}
	b := Benchmark{
		Name:       name,
		Package:    "cmd/quorumcheck",
		Iterations: int64(changes),
		NsPerOp:    nsPerChange,
		Extra: map[string]float64{
			"changes-per-sec": float64(changes) / rep.WallSeconds,
			"workers":         float64(rep.Workers),
			"chains":          float64(rep.Chains),
			"assertions":      float64(assertions),
		},
	}
	if rep.Requeued > 0 {
		b.Extra["requeued"] = float64(rep.Requeued)
	}
	if rep.Aborted {
		b.Extra["aborted"] = 1
	}
	out := []Benchmark{b}
	for _, a := range rep.Algorithms {
		if a.Changes == 0 {
			continue
		}
		out = append(out, Benchmark{
			Name:       name + "/" + a.Algorithm,
			Package:    "cmd/quorumcheck",
			Iterations: int64(a.Changes),
			NsPerOp:    rep.WallSeconds * 1e9 / float64(a.Changes),
			Extra: map[string]float64{
				"availability-pct": a.AvailabilityPct,
				"assertions":       float64(a.Assertions),
			},
		})
	}
	return out
}

// mergeCampaignReports reads each quorumcheck -json report file and
// appends its benchmark rows to rep.
func mergeCampaignReports(rep *Report, files []string) error {
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		crep, err := campaign.ReadReport(f)
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if !strings.HasPrefix(crep.Tool, "quorumcheck") {
			return fmt.Errorf("%s: tool %q is not a quorumcheck campaign report", path, crep.Tool)
		}
		if crep.WallSeconds <= 0 || len(crep.Algorithms) == 0 {
			return fmt.Errorf("%s: campaign report is empty", path)
		}
		rep.Benchmarks = append(rep.Benchmarks, campaignBenchmarks(crep)...)
	}
	return nil
}
