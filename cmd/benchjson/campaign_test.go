package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"dynvote/internal/campaign"
)

func writeCampaignReport(t *testing.T, rep *campaign.Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleCampaignReport() *campaign.Report {
	return &campaign.Report{
		Tool: "quorumcheck-farm", Seed: 20000505,
		Procs: 64, Changes: 20000, Segment: 12, Rate: 1.5,
		Chains: 8, Workers: 3, WallSeconds: 10, Requeued: 2,
		Algorithms: []campaign.AlgorithmReport{
			{Algorithm: "ykd", Changes: 20016, Runs: 1668, Formed: 1500,
				AvailabilityPct: 89.9, Assertions: 40000},
			{Algorithm: "dfls", Changes: 20016, Runs: 1668, Formed: 1400,
				AvailabilityPct: 83.9, Assertions: 41000},
		},
	}
}

func TestRunWithCampaignReport(t *testing.T) {
	path := writeCampaignReport(t, sampleCampaignReport())
	var out bytes.Buffer
	if err := run([]string{"-campaign", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3 (summary + 2 algorithms):\n%s",
			len(rep.Benchmarks), out.String())
	}
	b := rep.Benchmarks[0]
	if b.Name != "Campaign/farm/procs=64/chains=8/workers=3" || b.Iterations != 40032 {
		t.Errorf("summary row: %+v", b)
	}
	// 10 s over 40032 changes = 249800.3... ns per change.
	if b.NsPerOp < 249000 || b.NsPerOp > 250500 {
		t.Errorf("ns/op = %v, want ~249800 (wall per change)", b.NsPerOp)
	}
	if b.Extra["changes-per-sec"] != 4003.2 || b.Extra["workers"] != 3 || b.Extra["requeued"] != 2 {
		t.Errorf("summary extras: %+v", b.Extra)
	}
	alg := rep.Benchmarks[1]
	if !strings.HasSuffix(alg.Name, "/ykd") || alg.Extra["availability-pct"] != 89.9 {
		t.Errorf("algorithm row: %+v", alg)
	}
}

func TestCampaignReportRejectsWrongTool(t *testing.T) {
	rep := sampleCampaignReport()
	rep.Tool = "something-else"
	path := writeCampaignReport(t, rep)
	if err := run([]string{"-campaign", path}, strings.NewReader(""), new(bytes.Buffer)); err == nil {
		t.Fatal("wrong-tool report must be rejected")
	}
}

func TestCampaignLocalToolNames(t *testing.T) {
	rep := sampleCampaignReport()
	rep.Tool = "quorumcheck"
	rep.Workers = 1
	rows := campaignBenchmarks(rep)
	if rows[0].Name != "Campaign/local/procs=64/chains=8/workers=1" {
		t.Errorf("local campaign row name: %q", rows[0].Name)
	}
}
