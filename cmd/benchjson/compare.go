package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
)

// Compare mode: diff a freshly parsed benchmark report against a
// committed baseline (BENCH_<n>.json) and fail on regressions. The
// regression gate is allocs/op — the one metric that is deterministic
// for this repository's benchmarks, so a threshold on it does not
// flake with machine load the way ns/op would. Time and byte deltas
// are still printed for the human reading the diff.

// loadReport reads a previously written BENCH_<n>.json.
func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// benchKey identifies a benchmark across reports. The name keeps its
// -<procs> suffix: a GOMAXPROCS change is a real comparability break,
// better surfaced as missing/new than silently diffed.
func benchKey(b Benchmark) string { return b.Package + "." + b.Name }

// pctDelta returns the percentage change from old to new; ok is false
// when old is zero (no meaningful percentage).
func pctDelta(old, new float64) (pct float64, ok bool) {
	if old == 0 {
		return 0, false
	}
	return 100 * (new - old) / old, true
}

func fmtDelta(old, new float64) string {
	pct, ok := pctDelta(old, new)
	if !ok {
		if new == 0 {
			return "0"
		}
		return fmt.Sprintf("+%g (new)", new)
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

// compareReports prints per-benchmark deltas of current vs baseline
// and returns an error naming every benchmark whose allocs/op grew by
// more than tolerance percent, or — when timeTolerance > 0 — whose
// ns/op grew by more than timeTolerance percent. The time gate is off
// by default because ns/op flakes with machine load; opting in with a
// generous threshold still catches order-of-magnitude hot-loop
// regressions. It also applies only to benchmarks whose baseline ns/op
// is at least timeFloor: a macro benchmark's single op spans millions
// of instructions and averages the noise out even at -benchtime 1x,
// while a microsecond-scale benchmark at 1x measures mostly the timer,
// and routinely "regresses" 2-3x on a loaded machine. Benchmarks
// present on only one side are reported but never fail the comparison
// (suites grow and shrink).
func compareReports(baseline, current *Report, tolerance, timeTolerance, timeFloor float64, w io.Writer) error {
	base := make(map[string]Benchmark, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[benchKey(b)] = b
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op\tB/op\tallocs/op")
	var regressed []string
	newCount := 0
	seen := make(map[string]bool, len(current.Benchmarks))
	for _, cur := range current.Benchmarks {
		key := benchKey(cur)
		seen[key] = true
		old, ok := base[key]
		if !ok {
			// Absent from the baseline: a benchmark added by this PR.
			// Report its absolute numbers — there is nothing to diff
			// against — and never fail on it; the next bench-json run
			// folds it into the committed baseline.
			newCount++
			fmt.Fprintf(tw, "%s\t%.0f ns (new)\t%.0f B\t%.0f allocs\n",
				cur.Name, cur.NsPerOp, cur.BytesPerOp, cur.AllocsPerOp)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", cur.Name,
			fmtDelta(old.NsPerOp, cur.NsPerOp),
			fmtDelta(old.BytesPerOp, cur.BytesPerOp),
			fmtDelta(old.AllocsPerOp, cur.AllocsPerOp))
		if pct, ok := pctDelta(old.AllocsPerOp, cur.AllocsPerOp); (ok && pct > tolerance) ||
			(!ok && cur.AllocsPerOp > 0) {
			regressed = append(regressed, fmt.Sprintf("%s (%.0f -> %.0f allocs/op)",
				cur.Name, old.AllocsPerOp, cur.AllocsPerOp))
		}
		if timeTolerance > 0 && old.NsPerOp >= timeFloor {
			if pct, ok := pctDelta(old.NsPerOp, cur.NsPerOp); ok && pct > timeTolerance {
				regressed = append(regressed, fmt.Sprintf("%s (%.0f -> %.0f ns/op, %+.1f%%)",
					cur.Name, old.NsPerOp, cur.NsPerOp, pct))
			}
		}
	}
	for _, b := range baseline.Benchmarks {
		if !seen[benchKey(b)] {
			fmt.Fprintf(tw, "%s\t(only in baseline)\t\t\n", b.Name)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if newCount > 0 {
		fmt.Fprintf(w, "%d new benchmark(s) not in baseline (reported only, never failing)\n", newCount)
	}

	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance (allocs/op > %.1f%%, ns/op gate %s): %v",
			len(regressed), tolerance, timeGateDesc(timeTolerance), regressed)
	}
	return nil
}

func timeGateDesc(timeTolerance float64) string {
	if timeTolerance <= 0 {
		return "off"
	}
	return fmt.Sprintf("> %.1f%%", timeTolerance)
}
