package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, rep *Report) string {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_base.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, ns, bytesPerOp, allocs float64) Benchmark {
	return Benchmark{
		Name: name, Package: "dynvote", Iterations: 1,
		NsPerOp: ns, BytesPerOp: bytesPerOp, AllocsPerOp: allocs,
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{bench("BenchmarkX-8", 100, 1000, 100)}}
	cur := &Report{Benchmarks: []Benchmark{bench("BenchmarkX-8", 90, 1010, 101)}}
	var out bytes.Buffer
	if err := compareReports(base, cur, 2, 0, 0, &out); err != nil {
		t.Fatalf("1%% allocs growth under 2%% tolerance should pass: %v", err)
	}
	got := out.String()
	for _, want := range []string{"BenchmarkX-8", "-10.0%", "+1.0%"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		bench("BenchmarkX-8", 100, 1000, 100),
		bench("BenchmarkY-8", 100, 1000, 50),
	}}
	cur := &Report{Benchmarks: []Benchmark{
		bench("BenchmarkX-8", 100, 1000, 150), // +50% allocs: regression
		bench("BenchmarkY-8", 100, 1000, 50),
	}}
	var out bytes.Buffer
	err := compareReports(base, cur, 2, 0, 0, &out)
	if err == nil {
		t.Fatalf("+50%% allocs should fail; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkX-8") {
		t.Errorf("error should name the regressed benchmark: %v", err)
	}
	if strings.Contains(err.Error(), "BenchmarkY-8") {
		t.Errorf("error names an unregressed benchmark: %v", err)
	}
}

// TestCompareTimeTolerance: the ns/op gate is off by default (ns/op
// flakes with load) and catches slowdowns beyond the threshold once
// opted into; improvements never trip it.
func TestCompareTimeTolerance(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{bench("BenchmarkX-8", 100, 1000, 100)}}
	cur := &Report{Benchmarks: []Benchmark{bench("BenchmarkX-8", 300, 1000, 100)}} // 3x slower
	var out bytes.Buffer
	if err := compareReports(base, cur, 2, 0, 0, &out); err != nil {
		t.Fatalf("time gate disabled: 3x slowdown must pass: %v", err)
	}
	err := compareReports(base, cur, 2, 50, 0, &out)
	if err == nil {
		t.Fatal("3x slowdown beyond 50%% time tolerance should fail")
	}
	if !strings.Contains(err.Error(), "ns/op") || !strings.Contains(err.Error(), "BenchmarkX-8") {
		t.Errorf("error should name the time-regressed benchmark: %v", err)
	}

	faster := &Report{Benchmarks: []Benchmark{bench("BenchmarkX-8", 50, 1000, 100)}}
	if err := compareReports(base, faster, 2, 50, 0, &out); err != nil {
		t.Fatalf("a speedup must never trip the time gate: %v", err)
	}
}

func TestRunTimeToleranceFlag(t *testing.T) {
	path := writeBaseline(t, &Report{Benchmarks: []Benchmark{bench("BenchmarkX-8", 100, 1000, 100)}})
	in := strings.NewReader("pkg: dynvote\nBenchmarkX-8   10   300 ns/op   1000 B/op   100 allocs/op\n")
	var out bytes.Buffer
	if err := run([]string{"-baseline", path, "-time-tolerance", "50", "-time-floor", "0"}, in, &out); err == nil {
		t.Fatalf("3x ns/op growth beyond -time-tolerance 50 should fail\n%s", out.String())
	}
	// With the default floor the same 100ns benchmark is below the
	// macro threshold: its ns/op is timer noise, so the gate skips it.
	in = strings.NewReader("pkg: dynvote\nBenchmarkX-8   10   300 ns/op   1000 B/op   100 allocs/op\n")
	out.Reset()
	if err := run([]string{"-baseline", path, "-time-tolerance", "50"}, in, &out); err != nil {
		t.Fatalf("sub-floor benchmark must not trip the time gate: %v\n%s", err, out.String())
	}
}

// TestCompareTimeFloor: the ns/op gate only applies to benchmarks slow
// enough for one op to average out timer and load noise.
func TestCompareTimeFloor(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		bench("BenchmarkMicro-8", 1000, 0, 0),   // 1µs: noise at 1x
		bench("BenchmarkMacro-8", 200000, 0, 0), // 200µs: gated
	}}
	cur := &Report{Benchmarks: []Benchmark{
		bench("BenchmarkMicro-8", 5000, 0, 0), // 5x "slower": ignored
		bench("BenchmarkMacro-8", 210000, 0, 0),
	}}
	var out bytes.Buffer
	if err := compareReports(base, cur, 2, 50, 50000, &out); err != nil {
		t.Fatalf("micro-benchmark noise below the floor must pass: %v", err)
	}
	slower := &Report{Benchmarks: []Benchmark{
		bench("BenchmarkMicro-8", 1000, 0, 0),
		bench("BenchmarkMacro-8", 500000, 0, 0), // 2.5x slower: real
	}}
	err := compareReports(base, slower, 2, 50, 50000, &out)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkMacro-8") {
		t.Fatalf("macro slowdown above the floor should fail naming it, got %v", err)
	}
}

func TestCompareZeroBaselineAllocs(t *testing.T) {
	// A benchmark that was allocation-free and now allocates has no
	// finite percentage delta; it must still be caught.
	base := &Report{Benchmarks: []Benchmark{bench("BenchmarkZ-8", 100, 0, 0)}}
	cur := &Report{Benchmarks: []Benchmark{bench("BenchmarkZ-8", 100, 16, 1)}}
	var out bytes.Buffer
	if err := compareReports(base, cur, 50, 0, 0, &out); err == nil {
		t.Fatalf("0 -> 1 allocs/op should fail regardless of tolerance; output:\n%s", out.String())
	}
}

func TestCompareNewAndMissingBenchmarks(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		bench("BenchmarkOld-8", 100, 1000, 100),
		bench("BenchmarkKept-8", 100, 1000, 100),
	}}
	cur := &Report{Benchmarks: []Benchmark{
		bench("BenchmarkKept-8", 100, 1000, 100),
		bench("BenchmarkNew-8", 100, 1000, 100),
	}}
	var out bytes.Buffer
	if err := compareReports(base, cur, 2, 0, 0, &out); err != nil {
		t.Fatalf("suite membership changes alone must not fail: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "BenchmarkNew-8") || !strings.Contains(got, "(new)") {
		t.Errorf("output should flag the new benchmark:\n%s", got)
	}
	// The new benchmark's absolute numbers are reported — there is no
	// baseline to diff against, but the values still belong in the diff.
	if !strings.Contains(got, "100 ns (new)") || !strings.Contains(got, "100 allocs") {
		t.Errorf("output should report the new benchmark's values:\n%s", got)
	}
	if !strings.Contains(got, "1 new benchmark(s) not in baseline") {
		t.Errorf("output should summarize new benchmarks:\n%s", got)
	}
	if !strings.Contains(got, "BenchmarkOld-8") || !strings.Contains(got, "(only in baseline)") {
		t.Errorf("output should flag the removed benchmark:\n%s", got)
	}
}

// TestRunCompareMode drives the full CLI path: bench text on stdin,
// -baseline pointing at a committed report.
func TestRunCompareMode(t *testing.T) {
	path := writeBaseline(t, &Report{Benchmarks: []Benchmark{bench("BenchmarkX-8", 100, 1000, 100)}})
	in := strings.NewReader("pkg: dynvote\nBenchmarkX-8   10   95 ns/op   980 B/op   90 allocs/op\n")
	var out bytes.Buffer
	if err := run([]string{"-baseline", path}, in, &out); err != nil {
		t.Fatalf("improvement should pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "-10.0%") {
		t.Errorf("expected allocs delta in output:\n%s", out.String())
	}

	in = strings.NewReader("pkg: dynvote\nBenchmarkX-8   10   95 ns/op   980 B/op   200 allocs/op\n")
	out.Reset()
	if err := run([]string{"-baseline", path, "-tolerance", "5"}, in, &out); err == nil {
		t.Fatalf("doubled allocs should fail\n%s", out.String())
	}
}
