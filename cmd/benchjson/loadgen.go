package main

import (
	"fmt"
	"os"

	"dynvote/internal/loadgen"
)

// loadgenBenchmarks folds a cmd/loadgen run report into benchmark
// rows, so live-path throughput/latency/failover numbers ride the same
// BENCH_<n>.json files (and the same compare gates) as the simulator
// benchmarks. Mean request latency maps onto ns/op — the unit the
// -time-tolerance gate already understands — and everything else lands
// in Extra.
func loadgenBenchmarks(rep *loadgen.Report) []Benchmark {
	name := fmt.Sprintf("Loadgen/%s/nodes=%d/conns=%d", rep.Alg, rep.Nodes, rep.Conns)
	r := rep.Result
	b := Benchmark{
		Name:       name,
		Package:    "cmd/loadgen",
		Iterations: r.Requests,
		NsPerOp:    r.Latency.MeanMs * 1e6,
		Extra: map[string]float64{
			"rps":    r.ThroughputRPS,
			"p50-ms": r.Latency.P50Ms,
			"p95-ms": r.Latency.P95Ms,
			"p99-ms": r.Latency.P99Ms,
			"max-ms": r.Latency.MaxMs,
		},
	}
	if r.Errors > 0 {
		b.Extra["errors"] = float64(r.Errors)
	}
	out := []Benchmark{b}
	if f := rep.Failover; f != nil && f.RecoveryMs > 0 {
		out = append(out, Benchmark{
			Name:       name + "/failover",
			Package:    "cmd/loadgen",
			Iterations: 1,
			NsPerOp:    f.RecoveryMs * 1e6,
			Extra: map[string]float64{
				"primary-lost-ms": f.PrimaryLostMs,
				"recovery-ms":     f.RecoveryMs,
				"views-installed": float64(f.ViewsInstalled),
			},
		})
	}
	return out
}

// mergeLoadgenReports reads each loadgen -json report file and appends
// its benchmark rows to rep.
func mergeLoadgenReports(rep *Report, files []string) error {
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		lrep, err := loadgen.ReadReport(f)
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if lrep.Kind != "loadgen" {
			return fmt.Errorf("%s: kind %q is not a loadgen report", path, lrep.Kind)
		}
		rep.Benchmarks = append(rep.Benchmarks, loadgenBenchmarks(lrep)...)
	}
	return nil
}
