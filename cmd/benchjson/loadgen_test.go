package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynvote/internal/loadgen"
)

func writeLoadgenReport(t *testing.T, rep *loadgen.Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func sampleLoadgenReport() *loadgen.Report {
	return &loadgen.Report{
		Kind: "loadgen", Alg: "ykd", Nodes: 3, Conns: 4,
		Result: loadgen.Result{
			Requests: 1000, OK: 990, NotPrimary: 10,
			ThroughputRPS: 2000,
			Latency: loadgen.LatencySummary{
				MinMs: 0.1, MeanMs: 0.5, P50Ms: 0.4, P95Ms: 1.2, P99Ms: 2.5, MaxMs: 9,
			},
		},
		Failover: &loadgen.FailoverReport{
			InjectedAtSec: 1, PrimaryLostMs: 20, RecoveryMs: 55,
			ViewsProposed: 2, ViewsInstalled: 5,
		},
	}
}

func TestRunWithLoadgenReport(t *testing.T) {
	path := writeLoadgenReport(t, sampleLoadgenReport())
	var out bytes.Buffer
	// No bench output on stdin: the loadgen report alone carries the run.
	if err := run([]string{"-loadgen", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2 (run + failover):\n%s", len(rep.Benchmarks), out.String())
	}
	b := rep.Benchmarks[0]
	if b.Name != "Loadgen/ykd/nodes=3/conns=4" || b.Iterations != 1000 {
		t.Errorf("run row: %+v", b)
	}
	if b.NsPerOp != 0.5*1e6 || b.Extra["rps"] != 2000 || b.Extra["p99-ms"] != 2.5 {
		t.Errorf("run row units: %+v", b)
	}
	f := rep.Benchmarks[1]
	if !strings.HasSuffix(f.Name, "/failover") || f.Extra["recovery-ms"] != 55 {
		t.Errorf("failover row: %+v", f)
	}
}

func TestRunWithLoadgenAndBenchOutput(t *testing.T) {
	path := writeLoadgenReport(t, sampleLoadgenReport())
	bench := "goos: linux\nBenchmarkX-8   100   5000 ns/op\n"
	var out bytes.Buffer
	if err := run([]string{"-loadgen", path}, strings.NewReader(bench), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want bench row + 2 loadgen rows", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Name != "BenchmarkX-8" {
		t.Errorf("bench rows must come first: %+v", rep.Benchmarks[0])
	}
}

func TestLoadgenReportRejectsWrongKind(t *testing.T) {
	rep := sampleLoadgenReport()
	rep.Kind = "something-else"
	path := writeLoadgenReport(t, rep)
	if err := run([]string{"-loadgen", path}, strings.NewReader(""), new(bytes.Buffer)); err == nil {
		t.Fatal("wrong-kind report must be rejected")
	}
}

func TestLoadgenSkipsUnmeasuredFailover(t *testing.T) {
	rep := sampleLoadgenReport()
	rep.Failover.RecoveryMs = 0 // injected but never measured
	rows := loadgenBenchmarks(rep)
	if len(rows) != 1 {
		t.Errorf("unmeasured failover must not emit a row: %+v", rows)
	}
}
