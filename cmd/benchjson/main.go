// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so benchmark numbers can be committed
// alongside a perf PR (BENCH_<n>.json) and diffed across revisions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}
