// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report, so benchmark numbers can be committed
// alongside a perf PR (BENCH_<n>.json) and diffed across revisions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_2.json
//
// With -baseline it additionally compares the fresh results against a
// committed report, printing per-benchmark deltas (ns/op, B/op,
// allocs/op) and exiting non-zero when any benchmark's allocs/op grew
// by more than -tolerance percent. An optional -time-tolerance gate
// (off by default: ns/op is load-sensitive) additionally fails the
// comparison when any benchmark's ns/op grew beyond its threshold:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -baseline BENCH_2.json -time-tolerance 75
//
// -loadgen folds cmd/loadgen -json run reports into the same file as
// pseudo-benchmarks (mean request latency as ns/op; throughput,
// latency quantiles and failover recovery time under Extra), so live
// cluster runs can be committed and diffed like any other benchmark:
//
//	loadgen -inproc 3 -duration 5s -partition 2s -json run.json
//	benchjson -loadgen run.json -o BENCH_6.json </dev/null
//
// -campaign does the same for quorumcheck -json campaign reports
// (local or farmed): wall time per injected change as ns/op, with
// throughput, worker count and farm requeues under Extra:
//
//	quorumcheck -changes 20000 -json camp.json
//	quorumcheck -changes 20000 -farm-listen :0 -farm-workers 3 -json farm.json
//	benchjson -campaign camp.json -campaign farm.json -o BENCH_10.json </dev/null
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint([]string(*s)) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout; compare mode prints deltas instead)")
	baseline := fs.String("baseline", "", "committed BENCH_<n>.json to diff against; exits non-zero on regression")
	tolerance := fs.Float64("tolerance", 2, "allowed allocs/op growth percentage in compare mode")
	timeTolerance := fs.Float64("time-tolerance", 0, "allowed ns/op growth percentage in compare mode (0 disables the time gate; ns/op is load-sensitive, so prefer generous thresholds)")
	timeFloor := fs.Float64("time-floor", 50000, "ns/op gate applies only to benchmarks whose baseline ns/op is at least this (micro-benchmarks at -benchtime 1x are timer noise)")
	var loadgenFiles stringList
	fs.Var(&loadgenFiles, "loadgen", "loadgen -json report file to fold in as pseudo-benchmarks (repeatable; with no bench output, pipe </dev/null)")
	var campaignFiles stringList
	fs.Var(&campaignFiles, "campaign", "quorumcheck -json campaign report to fold in as pseudo-benchmarks (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	report, err := parseBench(in)
	if err != nil {
		return err
	}
	if err := mergeLoadgenReports(report, loadgenFiles); err != nil {
		return err
	}
	if err := mergeCampaignReports(report, campaignFiles); err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin (and no -loadgen or -campaign reports)")
	}

	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
	}
	if *baseline != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			return err
		}
		return compareReports(base, report, *tolerance, *timeTolerance, *timeFloor, stdout)
	}
	if *out == "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		_, err = stdout.Write(buf)
		return err
	}
	return nil
}
