package main

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Report is the JSON shape of one benchmark campaign. Context lines
// (goos/goarch/cpu) apply to the whole file; `go test ./...` repeats
// them per package, and the last occurrence wins — they describe the
// same machine either way.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one result line. The standard ns/op, B/op and allocs/op
// units get first-class fields; anything else (custom ReportMetric
// units, MB/s) lands in Extra keyed by unit.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// parseBench reads `go test -bench` output. Result lines look like
//
//	BenchmarkSingleRun-8   714   1680321 ns/op   520958 B/op   2660 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBench(in io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark... SKIP" and similar non-result lines
		}
		b := Benchmark{Name: fields[0], Package: pkg, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = val
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}
