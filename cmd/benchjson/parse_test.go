package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dynvote
cpu: Intel(R) Xeon(R) CPU
BenchmarkSingleRun 	     714	   1680321 ns/op	  520958 B/op	    2660 allocs/op
BenchmarkFig4_2FreshStart6Changes-8 	       2	 612345678 ns/op
BenchmarkWithCustom 	     100	      1234 ns/op	        42.5 views/run
PASS
ok  	dynvote	3.456s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Fatalf("context lines not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}

	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkSingleRun" || b.Package != "dynvote" {
		t.Errorf("bad name/package: %+v", b)
	}
	if b.Iterations != 714 || b.NsPerOp != 1680321 || b.BytesPerOp != 520958 || b.AllocsPerOp != 2660 {
		t.Errorf("bad metrics: %+v", b)
	}

	if got := rep.Benchmarks[1].Name; got != "BenchmarkFig4_2FreshStart6Changes-8" {
		t.Errorf("GOMAXPROCS suffix should be preserved, got %q", got)
	}

	custom := rep.Benchmarks[2]
	if custom.Extra["views/run"] != 42.5 {
		t.Errorf("custom unit not captured: %+v", custom)
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	rep, err := parseBench(strings.NewReader("ok  \tdynvote\t0.1s\n--- SKIP: BenchmarkX\nBenchmarkBroken notanumber\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("expected no benchmarks, got %+v", rep.Benchmarks)
	}
}
