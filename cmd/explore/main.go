// Command explore is an interactive driver for the primary component
// algorithms: type partitions, merges, crashes and recoveries and
// watch who keeps the primary — the thesis's testing framework as a
// REPL, for building intuition or reproducing a scenario by hand.
//
//	$ go run ./cmd/explore -alg ykd -procs 5
//	> split 0,1,2 | 3,4
//	> status
//	> crash 2
//	> merge
//	> quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dynvote/internal/algset"
	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
)

func main() {
	var (
		alg   = flag.String("alg", "ykd", "algorithm to drive")
		procs = flag.Int("procs", 5, "number of processes")
		seed  = flag.Int64("seed", 1, "random seed for delivery ordering")
	)
	flag.Parse()
	if err := run(*alg, *procs, *seed, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

// session holds the REPL state.
type session struct {
	cluster *sim.Cluster
	r       *rng.Source
	n       int
	nextID  int64
	out     io.Writer
}

func run(algName string, procs int, seed int64, in io.Reader, out io.Writer) error {
	factory, err := algset.ByName(algName)
	if err != nil {
		return err
	}
	if procs < 1 || procs > 128 {
		return fmt.Errorf("procs must be 1..128")
	}
	s := &session{
		cluster: sim.NewCluster(factory, procs),
		r:       rng.New(seed),
		n:       procs,
		nextID:  1,
		out:     out,
	}
	fmt.Fprintf(out, "exploring %s with %d processes — commands: split, merge, crash, recover, status, help, quit\n",
		factory.Name, procs)
	s.status()

	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			return nil
		}
		if line != "" {
			if err := s.exec(line); err != nil {
				fmt.Fprintf(out, "error: %v\n", err)
			}
		}
		fmt.Fprint(out, "> ")
	}
	return sc.Err()
}

func (s *session) exec(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		fmt.Fprintln(s.out, `commands:
  split 0,1,2 | 3,4   set the network components (must cover all live processes)
  merge               reconnect all live processes
  crash 2             fail-stop a process (its state goes to stable storage)
  recover 2           restore a crashed process from stable storage
  lose attempts to 2  drop final-round attempts to a process (Figure 3-1)
  lose nothing        clear message loss
  status              show views, primaries and retained ambiguous sessions
  quit`)
		return nil
	case "status":
		s.status()
		return nil
	case "lose":
		// lose attempts to 2   |   lose nothing
		if len(fields) == 2 && fields[1] == "nothing" {
			s.cluster.Drop = nil
			fmt.Fprintln(s.out, "message loss cleared")
			return nil
		}
		if len(fields) != 4 || fields[1] != "attempts" || fields[2] != "to" {
			return fmt.Errorf("usage: lose attempts to <process> | lose nothing")
		}
		v, err := strconv.Atoi(fields[3])
		if err != nil || v < 0 || v >= s.n {
			return fmt.Errorf("process must be 0..%d", s.n-1)
		}
		victim := proc.ID(v)
		s.cluster.Drop = func(_, to proc.ID, m core.Message) bool {
			if to != victim {
				return false
			}
			k := m.Kind()
			return k == "ykd/attempt" || k == "mr1p/attempt"
		}
		fmt.Fprintf(s.out, "dropping final-round attempt messages to %v — the Figure 3-1 interruption\n", victim)
		return nil
	case "merge":
		var live []proc.ID
		proc.Universe(s.n).Diff(s.cluster.Crashed()).ForEach(func(p proc.ID) { live = append(live, p) })
		return s.issue([][]proc.ID{live})
	case "split":
		groups, err := s.parseGroups(strings.TrimPrefix(line, "split"))
		if err != nil {
			return err
		}
		return s.issue(groups)
	case "crash":
		p, err := s.parseProc(fields)
		if err != nil {
			return err
		}
		s.cluster.Collect(s.r)
		s.cluster.Crash(p)
		// Survivors of p's component get a new view without it.
		rest := s.cluster.View(p).Members.Without(p).Diff(s.cluster.Crashed())
		if !rest.Empty() {
			s.cluster.IssueViews(s.r, view.View{ID: s.id(), Members: rest})
		}
		return s.settle()
	case "recover":
		p, err := s.parseProc(fields)
		if err != nil {
			return err
		}
		if err := s.cluster.Recover(p); err != nil {
			return err
		}
		s.cluster.Collect(s.r)
		s.cluster.IssueViews(s.r, view.View{ID: s.id(), Members: proc.NewSet(p)})
		return s.settle()
	default:
		return fmt.Errorf("unknown command %q (try help)", fields[0])
	}
}

func (s *session) parseProc(fields []string) (proc.ID, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("usage: %s <process>", fields[0])
	}
	v, err := strconv.Atoi(fields[1])
	if err != nil || v < 0 || v >= s.n {
		return 0, fmt.Errorf("process must be 0..%d", s.n-1)
	}
	return proc.ID(v), nil
}

func (s *session) parseGroups(spec string) ([][]proc.ID, error) {
	var groups [][]proc.ID
	var union proc.Set
	for _, part := range strings.Split(spec, "|") {
		var ids []proc.ID
		for _, tok := range strings.Split(part, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.Atoi(tok)
			if err != nil || v < 0 || v >= s.n {
				return nil, fmt.Errorf("bad process %q", tok)
			}
			p := proc.ID(v)
			if s.cluster.Crashed().Contains(p) {
				return nil, fmt.Errorf("%v is crashed; recover it first", p)
			}
			if union.Contains(p) {
				return nil, fmt.Errorf("%v appears twice", p)
			}
			union = union.With(p)
			ids = append(ids, p)
		}
		if len(ids) > 0 {
			groups = append(groups, ids)
		}
	}
	live := proc.Universe(s.n).Diff(s.cluster.Crashed())
	if !union.Equal(live) {
		return nil, fmt.Errorf("groups cover %v, need exactly the live set %v", union, live)
	}
	return groups, nil
}

func (s *session) issue(groups [][]proc.ID) error {
	views := make([]view.View, 0, len(groups))
	for _, ids := range groups {
		views = append(views, view.View{ID: s.id(), Members: proc.NewSet(ids...)})
	}
	s.cluster.Collect(s.r)
	s.cluster.IssueViews(s.r, views...)
	return s.settle()
}

func (s *session) settle() error {
	if _, err := s.cluster.RunToQuiescence(s.r, 10000); err != nil {
		return err
	}
	if err := sim.CheckOnePrimary(s.cluster); err != nil {
		fmt.Fprintf(s.out, "!!! %v\n", err)
	}
	s.status()
	return nil
}

func (s *session) id() int64 {
	id := s.nextID
	s.nextID++
	return id
}

func (s *session) status() {
	byView := map[int64][]proc.ID{}
	for p := 0; p < s.n; p++ {
		id := proc.ID(p)
		if s.cluster.Crashed().Contains(id) {
			continue
		}
		v := s.cluster.View(id)
		byView[v.ID] = append(byView[v.ID], id)
	}
	for vid, members := range byView {
		fmt.Fprintf(s.out, "  view %-4d [", vid)
		for i, p := range members {
			if i > 0 {
				fmt.Fprint(s.out, " ")
			}
			mark := ""
			if s.cluster.Algorithm(p).InPrimary() {
				mark = "*"
			}
			amb := ""
			if ar, ok := s.cluster.Algorithm(p).(core.AmbiguousReporter); ok {
				if n := ar.AmbiguousSessionCount(); n > 0 {
					amb = fmt.Sprintf("(%d?)", n)
				}
			}
			fmt.Fprintf(s.out, "%v%s%s", p, mark, amb)
		}
		fmt.Fprintln(s.out, "]  (* = in primary, (n?) = pending sessions)")
	}
	if !s.cluster.Crashed().Empty() {
		fmt.Fprintf(s.out, "  crashed: %v\n", s.cluster.Crashed())
	}
	if sim.HasPrimary(s.cluster) {
		fmt.Fprintln(s.out, "  a primary component exists")
	} else {
		fmt.Fprintln(s.out, "  NO primary component")
	}
}
