package main

import (
	"strings"
	"testing"
)

func runScript(t *testing.T, alg string, procs int, script string) string {
	t.Helper()
	var out strings.Builder
	if err := run(alg, procs, 1, strings.NewReader(script), &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

func TestExploreScenario(t *testing.T) {
	out := runScript(t, "ykd", 5, `
split 0,1,2 | 3,4
status
crash 2
recover 2
merge
quit
`)
	if !strings.Contains(out, "a primary component exists") {
		t.Errorf("missing primary status:\n%s", out)
	}
	if !strings.Contains(out, "crashed: {p2}") {
		t.Errorf("crash not reported:\n%s", out)
	}
	if strings.Contains(out, "!!!") {
		t.Errorf("safety violation reported:\n%s", out)
	}
}

func TestExploreRejectsBadInput(t *testing.T) {
	out := runScript(t, "ykd", 4, `
split 0,1 | 1,2,3
split 0,1
crash 9
recover 0
frobnicate
quit
`)
	for _, want := range []string{"appears twice", "need exactly the live set", "process must be 0..3",
		"is not crashed", "unknown command"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing error %q in:\n%s", want, out)
		}
	}
}

func TestExploreEternalBlockingVisible(t *testing.T) {
	// The pending-session markers show up in status output.
	out := runScript(t, "mr1p", 5, `
split 0,1,2 | 3,4
merge
quit
`)
	if !strings.Contains(out, "exploring mr1p") {
		t.Errorf("header missing:\n%s", out)
	}
}

func TestExploreBadAlgorithm(t *testing.T) {
	var out strings.Builder
	if err := run("nope", 3, 1, strings.NewReader("quit\n"), &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run("ykd", 0, 1, strings.NewReader("quit\n"), &out); err == nil {
		t.Error("bad proc count accepted")
	}
}

// TestExploreFigure31Interactively replays the thesis's Figure 3-1
// through the REPL: lose attempts to c, partition, regroup — at most
// one primary throughout, and the pending-session markers visible.
func TestExploreFigure31Interactively(t *testing.T) {
	out := runScript(t, "ykd", 5, `
lose attempts to 2
split 0,1,2 | 3,4
lose nothing
split 0,1 | 2,3,4
merge
quit
`)
	if !strings.Contains(out, "Figure 3-1 interruption") {
		t.Errorf("loss injection not acknowledged:\n%s", out)
	}
	if !strings.Contains(out, "(1?)") {
		t.Errorf("pending session marker never shown:\n%s", out)
	}
	if strings.Contains(out, "!!!") {
		t.Errorf("safety violation:\n%s", out)
	}
	if !strings.Contains(out, "message loss cleared") {
		t.Errorf("lose nothing not acknowledged:\n%s", out)
	}
}

func TestExploreLoseBadInput(t *testing.T) {
	out := runScript(t, "ykd", 3, `
lose attempts to 9
lose something
quit
`)
	if !strings.Contains(out, "process must be") || !strings.Contains(out, "usage: lose") {
		t.Errorf("bad lose input not rejected:\n%s", out)
	}
}
