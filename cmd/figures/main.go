// Command figures regenerates every table and figure of the thesis's
// evaluation (Chapter 4): the six availability figures (4-1 through
// 4-6), the two ambiguous-session figures (4-7, 4-8), and the in-text
// measurements — the 32/48/64 scaling check, the paired YKD-vs-DFLS
// comparison, and the §3.4 message-size maxima.
//
// Tables are printed to stdout; with -out, CSV series and rendered SVG
// plots are also written to the given directory.
//
// Examples:
//
//	figures                      # the full campaign, thesis parameters
//	figures -runs 200            # quicker, noisier
//	figures -fig 4-3             # a single figure
//	figures -extras              # scaling + paired + message sizes only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/experiment"
	"dynvote/internal/metrics"
	"dynvote/internal/plot"
	"dynvote/internal/profile"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	var (
		runs    = fs.Int("runs", 1000, "runs per case (thesis: 1000)")
		procs   = fs.Int("procs", 64, "number of processes (thesis: 64)")
		fig     = fs.String("fig", "", "single figure to regenerate (4-1 .. 4-8); empty = all")
		out     = fs.String("out", "", "directory for CSV output (optional)")
		seed    = fs.Int64("seed", 20000505, "root random seed")
		rates   = fs.String("rates", "", "comma-separated rate sweep (default 0..12)")
		extras  = fs.Bool("extras", false, "run only the in-text measurements (scaling, paired, sizes)")
		scaling = fs.Bool("scaling", false, "run only the N-scaling study (32..1024 processes)")
		studies = fs.Bool("studies", false, "run only the §5.1 extension studies (crash, change timing)")
		noext   = fs.Bool("figures-only", false, "skip the in-text measurements")
		verbose = fs.Bool("v", false, "per-case progress on stderr")
		mout    = fs.String("metrics-out", "", "write a machine-readable JSON run report (results + metrics snapshot) to this file")
		workers = fs.Int("workers", 0, "sweep/run worker budget (0 = GOMAXPROCS, 1 = sequential)")
		cpuprof = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof = fs.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers != 0 {
		experiment.SetParallelism(*workers)
	}
	stopProfile, err := profile.Start(*cpuprof, *memprof)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfile(); perr != nil && err == nil {
			err = perr
		}
	}()

	opts := experiment.Options{Procs: *procs, Runs: *runs, Seed: *seed}
	if *rates != "" {
		for _, s := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad -rates: %w", err)
			}
			opts.Rates = append(opts.Rates, v)
		}
	}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}
	var (
		reg    *metrics.Registry
		report *experiment.RunReport
	)
	if *mout != "" {
		reg = metrics.NewRegistry()
		opts.Metrics = reg
		report = &experiment.RunReport{Tool: "figures", Seed: *seed, Procs: *procs, Runs: *runs}
	}
	opts = opts.Defaults()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}

	start := time.Now()
	writeReport := func() error {
		if report == nil {
			return nil
		}
		report.Finish(start, reg)
		if err := report.WriteFile(*mout); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *mout)
		return nil
	}
	if *studies {
		if err := emitStudies(opts); err != nil {
			return err
		}
		fmt.Printf("total wall time: %.1fs\n", time.Since(start).Seconds())
		return writeReport()
	}
	if *scaling {
		if err := emitScaling(opts, *out, nil); err != nil {
			return err
		}
		fmt.Printf("total wall time: %.1fs\n", time.Since(start).Seconds())
		return writeReport()
	}
	if !*extras {
		specs := experiment.Figures(opts)
		if *fig != "" {
			f, err := experiment.FigureByID(*fig, opts)
			if err != nil {
				return err
			}
			specs = []experiment.FigureSpec{f}
		}
		for _, spec := range specs {
			if err := emitFigure(spec, *out, report); err != nil {
				return err
			}
		}
	}
	if *extras || (*fig == "" && !*noext) {
		if err := emitExtras(opts, *out); err != nil {
			return err
		}
	}
	fmt.Printf("total wall time: %.1fs\n", time.Since(start).Seconds())
	return writeReport()
}

func emitFigure(spec experiment.FigureSpec, outDir string, report *experiment.RunReport) error {
	fmt.Printf("==== Figure %s: %s ====\n\n", spec.ID, spec.Caption)
	for _, sweep := range spec.Sweeps {
		start := time.Now()
		series, err := experiment.RunSweep(sweep)
		if err != nil {
			return err
		}
		if report != nil {
			report.AddSeries(series, sweep.Changes)
		}
		switch spec.Kind {
		case experiment.KindAvailability:
			fmt.Println(experiment.RenderAvailabilityTable(spec.Caption, sweep, series))
			if outDir != "" {
				name := filepath.Join(outDir, "fig"+spec.ID+".csv")
				if err := os.WriteFile(name, []byte(experiment.RenderAvailabilityCSV(sweep, series)), 0o644); err != nil {
					return err
				}
				svg, err := availabilitySVG(spec, sweep, series)
				if err != nil {
					return err
				}
				if err := os.WriteFile(filepath.Join(outDir, "fig"+spec.ID+".svg"), []byte(svg), 0o644); err != nil {
					return err
				}
			}
		case experiment.KindAmbiguity:
			// Figures 4-7 (stable) and 4-8 (in progress) come from the
			// same runs; render both views.
			fmt.Println(experiment.RenderAmbiguityTable(
				"Figure 4-7: retained when stable", sweep, series, true))
			fmt.Println(experiment.RenderAmbiguityTable(
				"Figure 4-8: sent over the network (in progress)", sweep, series, false))
			if outDir != "" {
				for _, v := range []struct {
					fig    string
					stable bool
				}{{"4-7", true}, {"4-8", false}} {
					name := filepath.Join(outDir,
						fmt.Sprintf("fig%s-changes%d.csv", v.fig, sweep.Changes))
					if err := os.WriteFile(name,
						[]byte(experiment.RenderAmbiguityCSV(sweep, series, v.stable)), 0o644); err != nil {
						return err
					}
					svg, err := ambiguitySVG(sweep, series, v.stable)
					if err != nil {
						return err
					}
					svgName := filepath.Join(outDir,
						fmt.Sprintf("fig%s-changes%d.svg", v.fig, sweep.Changes))
					if err := os.WriteFile(svgName, []byte(svg), 0o644); err != nil {
						return err
					}
				}
			}
		}
		fmt.Printf("[%.1fs]\n\n", time.Since(start).Seconds())
	}
	return nil
}

func emitExtras(opts experiment.Options, outDir string) error {
	// Scaling check (§4.1): Figure 4-2's workload at 32, 48 and 64
	// processes should give almost identical availability. The same
	// study extended out to 256 processes is -scaling / emitScaling.
	fmt.Println("==== Scaling check (§4.1): 6 fresh changes at 32/48/64 processes ====")
	fmt.Println()
	if err := emitScaling(opts, "", []int{32, 48, 64}); err != nil {
		return err
	}

	// Paired YKD vs DFLS (§4.1): YKD forms a primary where DFLS does
	// not in ≈3% of runs at moderate-to-high rates.
	fmt.Println("==== Paired comparison (§4.1): YKD vs DFLS, same random sequences ====")
	fmt.Println()
	ykdF, _ := algset.ByName("ykd")
	dflsF, _ := algset.ByName("dfls")
	for _, changes := range []int{2, 6, 12} {
		pr, err := experiment.RunPaired(ykdF, dflsF, experiment.CaseSpec{
			Procs: opts.Procs, Changes: changes, MeanRounds: 6,
			Runs: opts.Runs, Mode: experiment.FreshStart, Seed: opts.Seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%2d changes, rate 6: ykd-only %.2f%%  dfls-only %.2f%%  both %.1f%%  neither %.1f%%\n",
			changes, pr.FirstAdvantagePercent(),
			100*float64(pr.OnlySecond)/float64(pr.Runs),
			100*float64(pr.Both)/float64(pr.Runs),
			100*float64(pr.Neither)/float64(pr.Runs))
	}
	fmt.Println()

	// Message sizes (§3.4): largest single broadcast and largest
	// per-round traffic with 64 processes must stay around 2 KB.
	fmt.Println("==== Message sizes (§3.4): 64 processes, 12 changes, rate 2 ====")
	fmt.Println()
	for _, name := range []string{"ykd", "ykd-unopt", "dfls", "mr1p"} {
		f, err := algset.ByName(name)
		if err != nil {
			return err
		}
		res, err := experiment.RunCase(experiment.CaseSpec{
			Factory: f, Procs: opts.Procs, Changes: 12, MeanRounds: 2,
			Runs: min(opts.Runs, 300), Mode: experiment.FreshStart, Seed: opts.Seed,
			MeasureSizes: true,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-12s max message: %5d B   max broadcast bytes in one round: %6d B   max sessions held: %d\n",
			name, res.Sizes.MaxMessageBytes, res.Sizes.MaxRoundBytes, res.InProgress.Max())
	}
	_ = outDir
	fmt.Println()
	return nil
}

// emitScaling runs the N-scaling study — the §4.1 scaling check
// extended past the thesis to 1024 processes — printing the table and,
// with an output directory, writing scaling.csv and scaling.svg. A nil
// sizes slice selects the full 32..1024 sweep; run budgets above 256
// processes are divided down inside the study (see ScalingStudySpec).
func emitScaling(opts experiment.Options, outDir string, sizes []int) error {
	spec := experiment.ScalingStudySpec{
		Sizes: sizes, Runs: opts.Runs, Seed: opts.Seed, Progress: opts.Progress,
	}.Defaults()
	rows, err := experiment.RunScalingStudy(spec)
	if err != nil {
		return err
	}
	fmt.Println(experiment.RenderScalingTable(spec, rows))
	if outDir != "" {
		name := filepath.Join(outDir, "scaling.csv")
		if err := os.WriteFile(name, []byte(experiment.RenderScalingCSV(spec, rows)), 0o644); err != nil {
			return err
		}
		svg, err := scalingSVG(spec, rows)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(outDir, "scaling.svg"), []byte(svg), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// scalingSVG renders the N-scaling study as a line chart: availability
// against system size, one series per change rate. The X axis is
// log₂-scaled: the sweep's sizes are octave-spaced (32..1024), and a
// linear axis would pile the five smallest sizes — and their labels —
// into its left tenth.
func scalingSVG(spec experiment.ScalingStudySpec, rows []experiment.ScalingRow) (string, error) {
	if len(rows) == 0 {
		return "", fmt.Errorf("scaling study produced no rows")
	}
	x := make([]float64, len(rows))
	for i, row := range rows {
		x[i] = float64(row.Procs)
	}
	chart := plot.LineChart{
		Title:    "N-scaling study",
		Subtitle: "ykd availability across system sizes (fresh starts)",
		XLabel:   "processes (log scale)",
		YLabel:   "availability %",
		X:        x,
		YMin:     40, YMax: 100,
		XLog2: true,
	}
	for ri := range rows[0].Points {
		vals := make([]float64, len(rows))
		for i, row := range rows {
			vals[i] = row.Points[ri].Availability.Percent()
			if vals[i] < chart.YMin {
				chart.YMin = vals[i] - 5
			}
		}
		chart.Series = append(chart.Series, plot.Series{
			Name: fmt.Sprintf("rate=%g", spec.Rates[ri]), Values: vals,
		})
	}
	return chart.Render()
}

// emitStudies runs the §5.1 future-work studies: one process crashing
// mid-run, and non-uniform change-timing distributions.
func emitStudies(opts experiment.Options) error {
	fmt.Println("==== Extension study (§5.1): crash of the lexically smallest process ====")
	fmt.Println()
	crashSpec := experiment.CrashStudySpec{
		Procs: opts.Procs, Changes: 12, MeanRounds: 2,
		Runs: opts.Runs, Seed: opts.Seed, Victim: 0, AfterChanges: 4,
	}
	rows, err := experiment.RunCrashStudy(crashSpec)
	if err != nil {
		return err
	}
	fmt.Println(experiment.RenderCrashStudy(crashSpec, rows))

	fmt.Println("==== Extension study (§5.1): change-timing distributions ====")
	fmt.Println()
	timingSpec := experiment.TimingStudySpec{
		Procs: opts.Procs, Changes: 12, MeanRounds: 2,
		Runs: opts.Runs, Seed: opts.Seed,
	}
	trows, err := experiment.RunTimingStudy(timingSpec)
	if err != nil {
		return err
	}
	fmt.Println(experiment.RenderTimingStudy(timingSpec, trows))

	fmt.Println("==== Extension study: re-formation latency ====")
	fmt.Println()
	latSpec := experiment.LatencyStudySpec{
		Procs: opts.Procs, Changes: 12, MeanRounds: 2,
		Runs: opts.Runs, Seed: opts.Seed,
	}
	lrows, err := experiment.RunLatencyStudy(latSpec)
	if err != nil {
		return err
	}
	fmt.Println(experiment.RenderLatencyStudy(latSpec, lrows))
	return nil
}

// availabilitySVG renders one availability figure as a line chart.
func availabilitySVG(spec experiment.FigureSpec, sweep experiment.SweepSpec, series []experiment.Series) (string, error) {
	chart := plot.LineChart{
		Title:    "Figure " + spec.ID,
		Subtitle: fmt.Sprintf("%s — %d processes, %d runs/case", spec.Caption, sweep.Procs, sweep.Runs),
		XLabel:   "mean message rounds between connectivity changes",
		YLabel:   "availability %",
		X:        sweep.Rates,
		YMin:     40, YMax: 100,
	}
	for _, s := range series {
		vals := make([]float64, len(s.Points))
		min := 100.0
		for i, p := range s.Points {
			vals[i] = p.Availability.Percent()
			if vals[i] < min {
				min = vals[i]
			}
		}
		if min < chart.YMin {
			chart.YMin = min - 5
		}
		chart.Series = append(chart.Series, plot.Series{Name: s.Algorithm, Values: vals})
	}
	return chart.Render()
}

// ambiguitySVG renders one ambiguity panel as grouped bars of the
// percentage of samples retaining at least one session.
func ambiguitySVG(sweep experiment.SweepSpec, series []experiment.Series, stable bool) (string, error) {
	which := "retained when stable"
	if !stable {
		which = "in progress"
	}
	chart := plot.BarChart{
		Title:    fmt.Sprintf("Ambiguous sessions %s — %d changes", which, sweep.Changes),
		Subtitle: fmt.Sprintf("%d processes, %d runs/case", sweep.Procs, sweep.Runs),
		XLabel:   "mean message rounds between connectivity changes",
		YLabel:   "% of samples with ≥1 session",
	}
	for _, rate := range sweep.Rates {
		chart.Groups = append(chart.Groups, strconv.FormatFloat(rate, 'g', -1, 64))
	}
	for _, s := range series {
		vals := make([]float64, len(s.Points))
		for i := range s.Points {
			h := &s.Points[i].Stable
			if !stable {
				h = &s.Points[i].InProgress
			}
			vals[i] = h.PercentAtLeast(1)
		}
		chart.Series = append(chart.Series, plot.Series{Name: s.Algorithm, Values: vals})
	}
	return chart.Render()
}
