package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dynvote/internal/experiment"
)

func TestRunSingleAvailabilityFigure(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-fig", "4-1", "-procs", "16", "-runs", "10",
		"-rates", "0,4", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig4-1.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}

func TestRunAmbiguityFigureWritesBothCSVs(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-fig", "4-7", "-procs", "16", "-runs", "8",
		"-rates", "2", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig4-7-changes2.csv", "fig4-8-changes2.csv",
		"fig4-7-changes12.csv", "fig4-8-changes12.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s not written: %v", name, err)
		}
	}
}

func TestRunExtrasOnly(t *testing.T) {
	err := run([]string{"-extras", "-procs", "16", "-runs", "8"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-fig", "9-9"},
		{"-rates", "abc"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted bad input", args)
		}
	}
}

func TestRunFigureWritesMetricsReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{"-fig", "4-1", "-procs", "16", "-runs", "8",
		"-rates", "0,4", "-metrics-out", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report experiment.RunReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Tool != "figures" {
		t.Errorf("tool = %q, want figures", report.Tool)
	}
	// Figure 4-1 sweeps every availability algorithm over both rates.
	if len(report.Cases) == 0 || len(report.Cases)%2 != 0 {
		t.Errorf("got %d cases, want a positive multiple of 2 rates", len(report.Cases))
	}
	if report.Metrics == nil || report.Metrics.Counters["sweep_cases_total"] != int64(len(report.Cases)) {
		t.Errorf("sweep_cases_total should match the %d reported cases: %+v",
			len(report.Cases), report.Metrics)
	}
}

func TestRunScalingWritesFigure(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-scaling", "-runs", "3", "-out", dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"scaling.csv", "scaling.svg"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s not written: %v", name, err)
		}
	}
}
