// Command loadgen is the closed-loop load harness for the live path:
// it boots (or connects to) a replicated-store cluster, drives it with
// N concurrent client connections at a target rate, and reports
// throughput, latency quantiles, per-peer wire traffic and — when a
// partition is injected mid-run — the measured time from injection to
// primary recovery.
//
// In-process mode (default) runs the full stack over real TCP
// sockets on localhost: TCPTransport, instrumented per-peer, driving
// register.Store replicas behind loadgen servers:
//
//	loadgen -inproc 3 -conns 8 -duration 5s -partition 2s -json -
//
// Against an external cluster (replicateddb -serve on each host):
//
//	loadgen -connect host1:7001,host2:7001 -rate 500 -duration 30s
//
// With -http the harness exposes the shared metrics registry
// (Prometheus text) while the run is in flight, including the
// per-peer gcs_peer_p<ID>_* series and loadgen_request_seconds.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/campaign"
	"dynvote/internal/gcs"
	"dynvote/internal/loadgen"
	"dynvote/internal/metrics"
	"dynvote/internal/proc"
	"dynvote/internal/register"
)

func main() {
	raiseFDLimit()
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type options struct {
	inproc    int
	connect   string
	alg       string
	conns     int
	pipeline  int
	rate      float64
	duration  time.Duration
	keys      int
	writes    float64
	seed      int64
	partition time.Duration
	heal      time.Duration
	latency   time.Duration
	jitter    time.Duration
	drop      float64
	heartbeat time.Duration
	httpAddr  string
	jsonOut   string
	smoke     bool
	quiet     bool
}

func parseOptions(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.IntVar(&o.inproc, "inproc", 3, "size of the in-process TCP cluster (ignored with -connect)")
	fs.StringVar(&o.connect, "connect", "", "comma-separated addresses of an external cluster (replicateddb -serve)")
	fs.StringVar(&o.alg, "alg", "ykd", "primary component algorithm for the in-process cluster")
	fs.IntVar(&o.conns, "conns", 4, "concurrent client connections (scales into the thousands)")
	fs.IntVar(&o.pipeline, "pipeline", 1, "requests kept in flight per connection (1 = classic closed loop)")
	fs.Float64Var(&o.rate, "rate", 0, "target aggregate request rate in req/s (0 = unpaced)")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "run length")
	fs.IntVar(&o.keys, "keys", 64, "key-space size")
	fs.Float64Var(&o.writes, "writes", 0.5, "fraction of requests that are writes")
	fs.Int64Var(&o.seed, "seed", 1, "op-mix seed")
	fs.DurationVar(&o.partition, "partition", 0, "inject a partition this far into the run (0 = none; in-process only)")
	fs.DurationVar(&o.heal, "heal", 0, "heal the partition this far into the run (default: halfway between injection and the end)")
	fs.DurationVar(&o.latency, "latency", 0, "injected per-frame latency on every in-process transport")
	fs.DurationVar(&o.jitter, "jitter", 0, "injected latency jitter")
	fs.Float64Var(&o.drop, "drop", 0, "injected frame drop probability [0,1]")
	fs.DurationVar(&o.heartbeat, "heartbeat", 20*time.Millisecond, "in-process transport heartbeat period")
	fs.StringVar(&o.httpAddr, "http", "", "serve the metrics registry on this address while running")
	fs.StringVar(&o.jsonOut, "json", "", `write the run report as JSON to this file ("-" = stdout)`)
	fs.BoolVar(&o.smoke, "smoke", false, "assert the run measured real work; exit non-zero otherwise")
	fs.BoolVar(&o.quiet, "q", false, "suppress progress lines")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.pipeline < 1 {
		return o, errors.New("-pipeline must be >= 1")
	}
	if o.connect != "" && o.partition > 0 {
		return o, errors.New("-partition needs the in-process cluster (no transport hooks into an external one)")
	}
	if o.partition > 0 && o.partition >= o.duration {
		return o, errors.New("-partition must fall inside -duration")
	}
	if o.heal > 0 && (o.partition == 0 || o.heal <= o.partition || o.heal >= o.duration) {
		return o, errors.New("-heal must fall between -partition and -duration")
	}
	if o.partition > 0 && o.heal == 0 {
		o.heal = o.partition + (o.duration-o.partition)/2
	}
	return o, nil
}

// cluster is the in-process test subject: TCP transports wrapped with
// instrumentation, store replicas, and a client-facing server each.
type cluster struct {
	n       int
	tcp     []*gcs.TCPTransport
	wrapped []*gcs.InstrumentedTransport
	stores  []*register.Store
	servers []*loadgen.Server
	addrs   []string
}

func startCluster(o options, reg *metrics.Registry, tl *gcs.Timeline) (*cluster, error) {
	factory, err := algset.ByName(o.alg)
	if err != nil {
		return nil, err
	}
	n := o.inproc
	if n < 1 {
		return nil, fmt.Errorf("cluster size %d", n)
	}
	c := &cluster{n: n}
	fp := gcs.FaultProfile{Latency: o.latency, Jitter: o.jitter, DropRate: o.drop, Seed: o.seed}
	addrs := make(map[proc.ID]string, n)
	for i := 0; i < n; i++ {
		tr, err := gcs.NewTCPTransport(gcs.TCPConfig{
			ID:             proc.ID(i),
			OwnAddr:        "127.0.0.1:0",
			HeartbeatEvery: o.heartbeat,
			Metrics:        reg,
		})
		if err != nil {
			c.close()
			return nil, err
		}
		c.tcp = append(c.tcp, tr)
		addrs[proc.ID(i)] = tr.Addr()
	}
	for _, tr := range c.tcp {
		tr.SetPeers(addrs)
	}
	for i := 0; i < n; i++ {
		id := proc.ID(i)
		w := gcs.InstrumentTransport(c.tcp[i], id, reg, fp)
		c.wrapped = append(c.wrapped, w)
		st, err := register.Open(register.Config{
			ID: id, N: n,
			Transport: w,
			Algorithm: factory,
			OnEvent:   tl.Hook(id),
		})
		if err != nil {
			c.close()
			return nil, err
		}
		c.stores = append(c.stores, st)
		srv, err := loadgen.NewServer(st, "127.0.0.1:0")
		if err != nil {
			c.close()
			return nil, err
		}
		c.servers = append(c.servers, srv)
		c.addrs = append(c.addrs, srv.Addr())
	}
	return c, nil
}

func (c *cluster) close() {
	for _, s := range c.servers {
		_ = s.Close()
	}
	for _, st := range c.stores {
		st.Close()
	}
	// Stopping a node does not close its transport; closing a wrapped
	// transport closes the TCP transport underneath it. Bare TCP
	// transports remain only after a partial startup.
	for _, w := range c.wrapped {
		_ = w.Close()
	}
	for i, tr := range c.tcp {
		if i >= len(c.wrapped) {
			_ = tr.Close()
		}
	}
}

func (c *cluster) converge(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for _, st := range c.stores {
			if !st.InPrimary() || st.Node().CurrentView().Size() != c.n {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("cluster never converged to a full primary view of %d", c.n)
}

// split is the injected partition: a majority component and the rest.
func (c *cluster) split() (maj, min []proc.ID) {
	cut := c.n/2 + 1
	for i := 0; i < c.n; i++ {
		if i < cut {
			maj = append(maj, proc.ID(i))
		} else {
			min = append(min, proc.ID(i))
		}
	}
	return maj, min
}

func (c *cluster) partition() {
	maj, min := c.split()
	for _, id := range maj {
		c.tcp[id].Block(min...)
	}
	for _, id := range min {
		c.tcp[id].Block(maj...)
	}
}

func (c *cluster) healAll() {
	for _, tr := range c.tcp {
		tr.Block()
	}
}

func serveMetrics(addr string, reg *metrics.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

func run(args []string, stdout, stderr io.Writer) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	// A report on stdout must stay pure JSON: move prose to stderr.
	prose := stdout
	if o.jsonOut == "-" {
		prose = stderr
	}

	reg := metrics.NewRegistry()
	tl := gcs.NewTimeline()
	var (
		addrs []string
		cl    *cluster
	)
	if o.connect != "" {
		addrs = strings.Split(o.connect, ",")
	} else {
		cl, err = startCluster(o, reg, tl)
		if err != nil {
			return err
		}
		defer cl.close()
		if err := cl.converge(10 * time.Second); err != nil {
			return err
		}
		addrs = cl.addrs
		fmt.Fprintf(prose, "loadgen: %d-node %s cluster converged (%s)\n",
			cl.n, o.alg, strings.Join(addrs, " "))
	}
	if o.httpAddr != "" {
		bound, err := serveMetrics(o.httpAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(prose, "loadgen: metrics on http://%s/metrics\n", bound)
	}

	var progress *campaign.Reporter
	if !o.quiet {
		progress = campaign.NewReporter(prose)
	}

	// The fault schedule runs beside the load; its completion gates the
	// reads of injectedAt/healedAt after the run.
	start := time.Now()
	var (
		faultWG    sync.WaitGroup
		injectedAt time.Time
		healedAt   time.Time
	)
	if o.partition > 0 {
		faultWG.Add(1)
		go func() {
			defer faultWG.Done()
			time.Sleep(time.Until(start.Add(o.partition)))
			cl.partition()
			injectedAt = time.Now()
			progress.Printf("loadgen: t=%4.1fs partition injected (%v into run)",
				time.Since(start).Seconds(), o.partition)
			time.Sleep(time.Until(start.Add(o.heal)))
			cl.healAll()
			healedAt = time.Now()
			progress.Printf("loadgen: t=%4.1fs partition healed",
				time.Since(start).Seconds())
		}()
	}

	res, runErr := loadgen.Run(loadgen.Config{
		Addrs:         addrs,
		Conns:         o.conns,
		Pipeline:      o.pipeline,
		Rate:          o.rate,
		Duration:      o.duration,
		Keys:          o.keys,
		WriteFraction: o.writes,
		Seed:          o.seed,
		Registry:      reg,
		Progress:      progress,
	})
	faultWG.Wait()
	if runErr != nil {
		return runErr
	}

	rep := &loadgen.Report{
		Kind:     "loadgen",
		Alg:      o.alg,
		Conns:    o.conns,
		Pipeline: o.pipeline,
		RateRPS:  o.rate,
		Result:   res,
	}
	if cl != nil {
		rep.Nodes = cl.n
		for node, w := range cl.wrapped {
			for _, ps := range w.Peers() {
				rep.Peers = append(rep.Peers, loadgen.PeerWireReport{
					Node:       node,
					Peer:       int(ps.Peer),
					MsgsOut:    ps.MsgsOut,
					BytesOut:   ps.BytesOut,
					MsgsIn:     ps.MsgsIn,
					BytesIn:    ps.BytesIn,
					Dropped:    ps.Dropped,
					SendMeanMs: float64(ps.Send.Mean()) / float64(time.Millisecond),
					SendMaxMs:  float64(ps.Send.Max) / float64(time.Millisecond),
				})
			}
		}
	}
	if o.partition > 0 {
		f := &loadgen.FailoverReport{
			InjectedAtSec:  injectedAt.Sub(start).Seconds(),
			HealedAtSec:    healedAt.Sub(start).Seconds(),
			ViewsProposed:  tl.CountKind(gcs.EventViewProposed),
			ViewsInstalled: tl.CountKind(gcs.EventView),
		}
		if lost, regained, ok := tl.Recovery(injectedAt); ok {
			f.PrimaryLostMs = float64(lost) / float64(time.Millisecond)
			f.RecoveryMs = float64(regained) / float64(time.Millisecond)
		}
		if s := strings.TrimRight(tl.String(), "\n"); s != "" {
			f.Timeline = strings.Split(s, "\n")
		}
		rep.Failover = f
	}

	printSummary(prose, rep)
	if err := writeJSON(o.jsonOut, rep, stdout); err != nil {
		return err
	}
	if o.smoke {
		return smokeCheck(rep, o)
	}
	return nil
}

func printSummary(w io.Writer, rep *loadgen.Report) {
	r := rep.Result
	fmt.Fprintf(w, "\nloadgen: %d requests in %.1fs → %.0f req/s (ok=%d notFound=%d notPrimary=%d errs=%d redials=%d)\n",
		r.Requests, r.DurationSec, r.ThroughputRPS, r.OK, r.NotFound, r.NotPrimary, r.Errors, r.Redials)
	l := r.Latency
	fmt.Fprintf(w, "loadgen: latency ms min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		l.MinMs, l.P50Ms, l.P95Ms, l.P99Ms, l.MaxMs)
	if f := rep.Failover; f != nil {
		if f.RecoveryMs > 0 {
			fmt.Fprintf(w, "loadgen: failover injected@%.2fs healed@%.2fs → primary lost after %.2fms, recovered after %.2fms (%d views proposed, %d installed)\n",
				f.InjectedAtSec, f.HealedAtSec, f.PrimaryLostMs, f.RecoveryMs, f.ViewsProposed, f.ViewsInstalled)
		} else {
			fmt.Fprintf(w, "loadgen: failover injected@%.2fs but no recovery measured (%d views proposed, %d installed)\n",
				f.InjectedAtSec, f.ViewsProposed, f.ViewsInstalled)
		}
	}
	var msgs, bytes int64
	for _, p := range rep.Peers {
		msgs += p.MsgsOut
		bytes += p.BytesOut
	}
	if len(rep.Peers) > 0 {
		fmt.Fprintf(w, "loadgen: wire total %d msgs / %d bytes across %d peer links\n",
			msgs, bytes, len(rep.Peers))
	}
}

func writeJSON(dest string, rep *loadgen.Report, stdout io.Writer) error {
	switch dest {
	case "":
		return nil
	case "-":
		return rep.WriteJSON(stdout)
	default:
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
}

// smokeCheck is the CI gate: the run must have done real work, and an
// injected partition must have produced a measured recovery.
func smokeCheck(rep *loadgen.Report, o options) error {
	r := rep.Result
	if r.Requests == 0 || r.OK == 0 {
		return fmt.Errorf("smoke: no successful requests (requests=%d ok=%d errs=%d)", r.Requests, r.OK, r.Errors)
	}
	if r.ThroughputRPS <= 0 {
		return fmt.Errorf("smoke: throughput %.2f req/s", r.ThroughputRPS)
	}
	if r.Latency.P50Ms <= 0 || r.Latency.P99Ms < r.Latency.P50Ms {
		return fmt.Errorf("smoke: latency quantiles implausible: %+v", r.Latency)
	}
	if o.partition > 0 {
		f := rep.Failover
		if f == nil || f.RecoveryMs <= 0 {
			return errors.New("smoke: partition injected but no primary recovery measured")
		}
		if f.ViewsInstalled == 0 {
			return errors.New("smoke: partition injected but no view changes recorded")
		}
	}
	if len(rep.Peers) == 0 && o.connect == "" {
		return errors.New("smoke: no per-peer wire stats collected")
	}
	return nil
}
