package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"dynvote/internal/loadgen"
)

// TestSmokeRunWithPartition is the full acceptance path in miniature:
// an in-process 3-node TCP cluster, a mid-run partition and heal, the
// -smoke assertions, and a machine-readable report on stdout.
func TestSmokeRunWithPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("full live-cluster run")
	}
	var out, errs bytes.Buffer
	err := run([]string{
		"-inproc", "3",
		"-conns", "4",
		"-duration", "2500ms",
		"-partition", "700ms",
		"-heal", "1700ms",
		"-json", "-",
		"-smoke",
	}, &out, &errs)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errs.String())
	}

	rep, err := loadgen.ReadReport(&out)
	if err != nil {
		t.Fatalf("stdout is not a report: %v\n%s", err, out.String())
	}
	if rep.Kind != "loadgen" || rep.Nodes != 3 {
		t.Errorf("report header: %+v", rep)
	}
	if rep.Result.Requests == 0 || rep.Result.OK == 0 {
		t.Errorf("no work measured: %+v", rep.Result)
	}
	if rep.Failover == nil || rep.Failover.RecoveryMs <= 0 {
		t.Fatalf("no failover measured: %+v", rep.Failover)
	}
	if rep.Failover.PrimaryLostMs > rep.Failover.RecoveryMs {
		t.Errorf("lost after recovery? %+v", rep.Failover)
	}
	if len(rep.Peers) == 0 {
		t.Error("no per-peer wire stats in report")
	}
	if !strings.Contains(errs.String(), "partition injected") {
		t.Errorf("prose missing fault schedule:\n%s", errs.String())
	}
}

// TestJSONStdoutIsPure: with -json -, stdout must decode as exactly
// one JSON document with nothing around it.
func TestJSONStdoutIsPure(t *testing.T) {
	if testing.Short() {
		t.Skip("full live-cluster run")
	}
	var out bytes.Buffer
	err := run([]string{
		"-inproc", "2", "-conns", "2", "-duration", "600ms", "-json", "-", "-q",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	var rep loadgen.Report
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("stdout not pure JSON: %v\n%s", err, out.String())
	}
	if dec.More() {
		t.Errorf("trailing data after the JSON report:\n%s", out.String())
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-partition", "5s", "-duration", "2s"}, // partition past the end
		{"-connect", "x:1", "-partition", "1s"}, // partition needs inproc
		{"-partition", "1s", "-heal", "500ms"},  // heal before injection
		{"-partition", "1s", "-heal", "10s"},    // heal past the end
		{"-inproc", "3", "-alg", "definitely-not-an-alg"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}
