//go:build unix

package main

import "syscall"

// raiseFDLimit lifts the soft open-file limit to the hard limit, best
// effort: a kilo-connection run costs two descriptors per connection
// (client socket here, accepted socket in the in-proc servers), and
// default soft limits of 1024 would otherwise cap -conns far below
// what the harness is built to drive.
func raiseFDLimit() {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return
	}
	if lim.Cur >= lim.Max {
		return
	}
	lim.Cur = lim.Max
	_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
}
