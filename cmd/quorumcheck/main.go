// Command quorumcheck is the repository's trial-by-fire (thesis §2.2):
// it subjects every algorithm to a long cascading stream of randomized
// connectivity changes with the safety checker enabled after every
// message round — at most one primary component may ever be declared,
// and stable views must agree internally. The thesis ran over
// 1,310,000 connectivity changes without an inconsistency; this
// command reproduces that campaign at any scale.
//
// The change budget is sharded into independent cascading chains per
// algorithm (see internal/campaign), so the campaign saturates the
// machine: -chains controls the shard count, -workers the concurrency.
// Results are bit-identical for a given (seed, chains) regardless of
// worker count, and `-chains 1 -workers 1` replays the historical
// serial soak exactly.
//
// The campaign also farms out across processes — and machines — via
// internal/farm: `-farm-listen` turns this process into the
// coordinator (add `-farm-workers N` to spawn N local worker
// processes), `-farm-join` turns it into a worker for a coordinator
// elsewhere. The merged result and report are bit-identical to a local
// run. SIGINT drains gracefully in every mode: in-flight chains
// finish, the partial report is written with `"aborted": true`.
//
// Examples:
//
//	quorumcheck -changes 10000                # quick soak, all algorithms
//	quorumcheck -changes 1310000 -alg ykd     # the full thesis count
//	quorumcheck -chains 1 -workers 1          # the historical serial soak
//	quorumcheck -json campaign.json           # machine-readable report for CI
//	quorumcheck -farm-listen :9131 -farm-workers 3   # coordinator + 3 local worker processes
//	quorumcheck -farm-join host:9131                 # remote worker joining that farm
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/campaign"
	"dynvote/internal/core"
	"dynvote/internal/experiment"
	"dynvote/internal/farm"
	"dynvote/internal/naive"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "quorumcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("quorumcheck", flag.ContinueOnError)
	var (
		changes = fs.Int("changes", 100000, "total connectivity changes per algorithm")
		procs   = fs.Int("procs", 64, "number of processes")
		segment = fs.Int("segment", 12, "changes per run segment (runs cascade, healing between)")
		rate    = fs.Float64("rate", 1.5, "mean message rounds between changes")
		seed    = fs.Int64("seed", 20000505, "random seed")
		algName = fs.String("alg", "", `single algorithm (default: all; "naive" runs the known-broken strawman to validate the checker)`)
		every   = fs.Duration("progress", 10*time.Second, "progress report interval per chain (0 disables)")
		retain  = fs.Int("trace", 4096, "per-chain trace ring-buffer capacity dumped on a violation (0 disables)")
		chains  = fs.Int("chains", 8, "independent cascading chains per algorithm (1 replays the historical serial soak)")
		workers = fs.Int("workers", 0, "concurrent workers scheduling chains (0 = GOMAXPROCS, 1 = sequential)")
		jsonOut = fs.String("json", "", "write a machine-readable campaign report to this file")

		farmListen    = fs.String("farm-listen", "", "run as farm coordinator: listen for workers on this TCP address (port 0 picks one)")
		farmWorkers   = fs.Int("farm-workers", 0, "with -farm-listen: spawn this many local worker processes")
		farmJoin      = fs.String("farm-join", "", "run as farm worker: join the coordinator at this TCP address")
		farmStraggler = fs.Duration("farm-straggler", 30*time.Second, "re-issue a chain held longer than this once no fresh work remains (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *farmJoin != "" {
		return farmWorkerMain(*farmJoin, *workers)
	}

	factories := algset.All()
	if *algName != "" {
		// The naive strawman is deliberately outside the campaign set:
		// it exists to prove the checker catches real violations.
		if *algName == "naive" {
			factories = []core.Factory{naive.Factory()}
		} else {
			f, err := algset.ByName(*algName)
			if err != nil {
				return err
			}
			factories = []core.Factory{f}
		}
	}

	experiment.SetParallelism(*workers)

	rep := campaign.NewReporter(os.Stdout)
	cfg := campaign.Config{
		Factories:     factories,
		Procs:         *procs,
		Changes:       *changes,
		Segment:       *segment,
		Rate:          *rate,
		Seed:          *seed,
		Chains:        *chains,
		TraceRetain:   *retain,
		ProgressEvery: *every,
		Progress:      func(u campaign.ProgressUpdate) { progressLine(rep, u) },
		AlgorithmDone: func(a campaign.AlgorithmResult) { passedLine(rep, a, *chains) },
	}

	if *farmListen != "" {
		return farmCoordinatorMain(rep, cfg, farmOptions{
			listen:    *farmListen,
			spawn:     *farmWorkers,
			capacity:  *workers,
			straggler: *farmStraggler,
			every:     *every,
			jsonOut:   *jsonOut,
		})
	}

	// SIGINT drains the local campaign gracefully: in-flight chains
	// finish their current run, the merged partial report is marked
	// aborted.
	cfg.Abort = new(atomic.Bool)
	stopSignals := onInterrupt(func() {
		rep.Printf("interrupt: draining — finishing in-flight chains")
		cfg.Abort.Store(true)
	})
	defer stopSignals()

	res, err := campaign.Run(cfg)

	if *jsonOut != "" {
		report := campaign.NewReport("quorumcheck", cfg, res, experiment.Parallelism(), err)
		if werr := report.WriteFile(*jsonOut); werr != nil {
			if err == nil {
				return werr
			}
			fmt.Fprintln(os.Stderr, "quorumcheck:", werr)
		}
	}
	if err != nil {
		return err
	}
	if res.Aborted {
		fmt.Println("\nABORTED: campaign drained early; the report covers the completed prefix only.")
		return nil
	}
	fmt.Println("\nALL CLEAR: no inconsistency, ever — at most one primary component at all times.")
	return nil
}

// onInterrupt runs f once on the first SIGINT/SIGTERM; the returned
// stop function detaches the handler (later signals kill the process
// normally, so a second ^C always works).
func onInterrupt(f func()) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		if _, ok := <-ch; ok {
			signal.Stop(ch)
			f()
		}
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}

// farmWorkerMain is the `-farm-join` mode: execute chains for a remote
// coordinator until the campaign ends or SIGINT drains this worker.
func farmWorkerMain(addr string, capacity int) error {
	w, err := farm.Join(farm.WorkerConfig{Addr: addr, Capacity: capacity})
	if err != nil {
		return err
	}
	stopSignals := onInterrupt(func() {
		fmt.Fprintln(os.Stderr, "quorumcheck: interrupt: draining worker — finishing assigned chains")
		w.Drain()
	})
	defer stopSignals()
	return w.Serve()
}

type farmOptions struct {
	listen    string
	spawn     int
	capacity  int
	straggler time.Duration
	every     time.Duration
	jsonOut   string
}

// farmCoordinatorMain is the `-farm-listen` mode: own the work queue
// and the merge, optionally spawning local worker processes, and
// produce the same report a local run would.
func farmCoordinatorMain(rep *campaign.Reporter, cfg campaign.Config, opt farmOptions) error {
	// Per-chain progress happens on the workers (whose output is not
	// ours); the coordinator reports farm-level progress instead.
	cfg.Progress = nil
	cfg.ProgressEvery = 0

	c, err := farm.NewCoordinator(farm.CoordinatorConfig{
		Campaign:       cfg,
		Listen:         opt.listen,
		StragglerAfter: opt.straggler,
		ProgressEvery:  opt.every,
		Progress: func(u farm.Update) {
			rep.Printf("%-16s %4d/%d chains merged, %d requeued, %d workers (%.0fs)",
				"farm", u.Done, u.Total, u.Requeued, u.Workers, u.Elapsed.Seconds())
		},
	})
	if err != nil {
		return err
	}
	rep.Printf("farm coordinator listening on %s", c.Addr())

	procs, err := spawnLocalWorkers(opt.spawn, c.Addr(), opt.capacity)
	if err != nil {
		c.Close()
		return err
	}

	stopSignals := onInterrupt(func() {
		rep.Printf("interrupt: draining farm — workers finish in-flight chains")
		c.Drain()
	})
	defer stopSignals()

	res, ferr := c.Run()
	_, peak := c.Workers()
	for _, p := range procs {
		// Workers exit cleanly when the coordinator closes their
		// connection; a worker that died early already had its chains
		// requeued, so its exit status is informational.
		if werr := p.Wait(); werr != nil {
			fmt.Fprintln(os.Stderr, "quorumcheck: worker process:", werr)
		}
	}

	if opt.jsonOut != "" {
		report := campaign.NewReport("quorumcheck-farm", cfg, res, peak, ferr)
		if werr := report.WriteFile(opt.jsonOut); werr != nil {
			if ferr == nil {
				return werr
			}
			fmt.Fprintln(os.Stderr, "quorumcheck:", werr)
		}
	}
	if ferr != nil {
		return ferr
	}
	if res.Aborted {
		fmt.Println("\nABORTED: farm drained early; the report covers the completed prefix only.")
		return nil
	}
	// Per-algorithm PASSED lines already printed via cfg.AlgorithmDone,
	// which the coordinator fires exactly like a local campaign.
	fmt.Println("\nALL CLEAR: no inconsistency, ever — at most one primary component at all times.")
	return nil
}

// spawnLocalWorkers launches n copies of this binary in -farm-join
// mode, pointed at addr. Their output goes to stderr so the
// coordinator's report stream stays clean.
func spawnLocalWorkers(n int, addr string, capacity int) ([]*exec.Cmd, error) {
	if n <= 0 {
		return nil, nil
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("cannot locate own binary to spawn workers: %w", err)
	}
	procs := make([]*exec.Cmd, 0, n)
	for i := 0; i < n; i++ {
		args := []string{"-farm-join", addr}
		if capacity > 0 {
			args = append(args, "-workers", strconv.Itoa(capacity))
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, p := range procs {
				_ = p.Process.Kill()
				_ = p.Wait()
			}
			return nil, fmt.Errorf("spawn worker: %w", err)
		}
		procs = append(procs, cmd)
	}
	return procs, nil
}

// progressLine renders one chain's progress. The single-chain format is
// byte-identical to the historical serial soak; sharded campaigns add
// the chain coordinates after the algorithm name.
func progressLine(rep *campaign.Reporter, u campaign.ProgressUpdate) {
	elapsed := u.Elapsed.Seconds()
	throughput := float64(u.Injected) / elapsed
	eta := time.Duration(float64(u.Budget-u.Injected) / throughput * float64(time.Second))
	availability := 0.0
	if u.Runs > 0 {
		availability = 100 * float64(u.Formed) / float64(u.Runs)
	}
	if u.Chains == 1 {
		rep.Printf("%-16s %9d/%d changes, %6d runs, %8.0f changes/s, %d assertions, availability %5.1f%% (eta %s)",
			u.Algorithm, u.Injected, u.Budget, u.Runs, throughput, u.Assertions,
			availability, eta.Round(time.Second))
		return
	}
	rep.Printf("%-16s [%d/%d] %9d/%d changes, %6d runs, %8.0f changes/s, %d assertions, availability %5.1f%% (eta %s)",
		u.Algorithm, u.Chain+1, u.Chains, u.Injected, u.Budget, u.Runs, throughput,
		u.Assertions, availability, eta.Round(time.Second))
}

// passedLine renders an algorithm's merged verdict once its last chain
// completes cleanly. Single-chain campaigns reproduce the historical
// line exactly.
func passedLine(rep *campaign.Reporter, a campaign.AlgorithmResult, chains int) {
	if chains == 1 {
		rep.Printf("%-16s PASSED: %d changes across %d cascading runs, %d checker assertions, zero violations (%.1fs)",
			a.Algorithm, a.Changes, a.Runs, a.Assertions, a.Elapsed.Seconds())
		return
	}
	rep.Printf("%-16s PASSED: %d changes across %d chains, %d cascading runs, %d checker assertions, zero violations (%.1fs)",
		a.Algorithm, a.Changes, chains, a.Runs, a.Assertions, a.Elapsed.Seconds())
}

// violationTrace digs the first chain failure out of a campaign result;
// used by tests to assert the trace dump survives the campaign wrapping.
func violationTrace(err error) (*campaign.ChainError, bool) {
	var ce *campaign.ChainError
	ok := errors.As(err, &ce)
	return ce, ok
}
