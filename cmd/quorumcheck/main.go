// Command quorumcheck is the repository's trial-by-fire (thesis §2.2):
// it subjects every algorithm to a long cascading stream of randomized
// connectivity changes with the safety checker enabled after every
// message round — at most one primary component may ever be declared,
// and stable views must agree internally. The thesis ran over
// 1,310,000 connectivity changes without an inconsistency; this
// command reproduces that campaign at any scale.
//
// Examples:
//
//	quorumcheck -changes 10000                # quick soak, all algorithms
//	quorumcheck -changes 1310000 -alg ykd     # the full thesis count
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/core"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "quorumcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("quorumcheck", flag.ContinueOnError)
	var (
		changes = fs.Int("changes", 100000, "total connectivity changes per algorithm")
		procs   = fs.Int("procs", 64, "number of processes")
		segment = fs.Int("segment", 12, "changes per run segment (runs cascade, healing between)")
		rate    = fs.Float64("rate", 1.5, "mean message rounds between changes")
		seed    = fs.Int64("seed", 20000505, "random seed")
		algName = fs.String("alg", "", "single algorithm (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	factories := algset.All()
	if *algName != "" {
		f, err := algset.ByName(*algName)
		if err != nil {
			return err
		}
		factories = []core.Factory{f}
	}

	for _, f := range factories {
		if err := soak(f, *procs, *changes, *segment, *rate, *seed); err != nil {
			return err
		}
	}
	fmt.Println("\nALL CLEAR: no inconsistency, ever — at most one primary component at all times.")
	return nil
}

func soak(f core.Factory, procs, changes, segment int, rate float64, seed int64) error {
	start := time.Now()
	d := sim.NewDriver(f, sim.Config{
		Procs:       procs,
		Changes:     segment,
		MeanRounds:  rate,
		CheckSafety: true,
	}, rng.New(seed))

	injected := 0
	runs := 0
	formed := 0
	nextReport := changes / 10
	if nextReport == 0 {
		nextReport = changes
	}
	for injected < changes {
		d.Heal()
		res, err := d.Run()
		if err != nil {
			return fmt.Errorf("%s: INCONSISTENCY or failure after %d changes: %w", f.Name, injected, err)
		}
		injected += res.ChangesInjected
		runs++
		if res.PrimaryFormed {
			formed++
		}
		if injected >= nextReport {
			fmt.Printf("%-16s %9d/%d changes, %6d runs, availability so far %5.1f%% [%.0fs]\n",
				f.Name, injected, changes, runs,
				100*float64(formed)/float64(runs), time.Since(start).Seconds())
			nextReport += changes / 10
		}
	}
	fmt.Printf("%-16s PASSED: %d changes across %d cascading runs, zero violations (%.1fs)\n",
		f.Name, injected, runs, time.Since(start).Seconds())
	return nil
}
