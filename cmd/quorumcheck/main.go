// Command quorumcheck is the repository's trial-by-fire (thesis §2.2):
// it subjects every algorithm to a long cascading stream of randomized
// connectivity changes with the safety checker enabled after every
// message round — at most one primary component may ever be declared,
// and stable views must agree internally. The thesis ran over
// 1,310,000 connectivity changes without an inconsistency; this
// command reproduces that campaign at any scale.
//
// Examples:
//
//	quorumcheck -changes 10000                # quick soak, all algorithms
//	quorumcheck -changes 1310000 -alg ykd     # the full thesis count
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/core"
	"dynvote/internal/metrics"
	"dynvote/internal/naive"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "quorumcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("quorumcheck", flag.ContinueOnError)
	var (
		changes = fs.Int("changes", 100000, "total connectivity changes per algorithm")
		procs   = fs.Int("procs", 64, "number of processes")
		segment = fs.Int("segment", 12, "changes per run segment (runs cascade, healing between)")
		rate    = fs.Float64("rate", 1.5, "mean message rounds between changes")
		seed    = fs.Int64("seed", 20000505, "random seed")
		algName = fs.String("alg", "", `single algorithm (default: all; "naive" runs the known-broken strawman to validate the checker)`)
		every   = fs.Duration("progress", 10*time.Second, "progress report interval (0 disables)")
		retain  = fs.Int("trace", 4096, "trace ring-buffer capacity dumped on a violation (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	factories := algset.All()
	if *algName != "" {
		// The naive strawman is deliberately outside the campaign set:
		// it exists to prove the checker catches real violations.
		if *algName == "naive" {
			factories = []core.Factory{naive.Factory()}
		} else {
			f, err := algset.ByName(*algName)
			if err != nil {
				return err
			}
			factories = []core.Factory{f}
		}
	}

	for _, f := range factories {
		if err := soak(os.Stdout, f, *procs, *changes, *segment, *rate, *seed, *every, *retain); err != nil {
			return err
		}
	}
	fmt.Println("\nALL CLEAR: no inconsistency, ever — at most one primary component at all times.")
	return nil
}

func soak(w io.Writer, f core.Factory, procs, changes, segment int, rate float64, seed int64, every time.Duration, retain int) error {
	start := time.Now()
	reg := metrics.NewRegistry()
	cfg := sim.Config{
		Procs:       procs,
		Changes:     segment,
		MeanRounds:  rate,
		CheckSafety: true,
		Metrics:     reg,
	}
	if retain > 0 {
		cfg.Trace = trace.NewRecorder(retain)
		// Keep structural events (views, connectivity changes) intact
		// but thin the delivery firehose so the retained window spans
		// more history per byte.
		cfg.TraceSampleEvery = 8
	}
	d := sim.NewDriver(f, cfg, rng.New(seed))

	injected := 0
	runs := 0
	formed := 0
	assertions := reg.Counter("sim_checker_assertions_total", "")
	lastReport := start
	for injected < changes {
		d.Heal()
		res, err := d.Run()
		if err != nil {
			// A traced driver returns a sim.ViolationError whose message
			// already carries the retained event history — the %w keeps
			// the full dump in the output.
			return fmt.Errorf("%s: INCONSISTENCY or failure after %d changes: %w", f.Name, injected, err)
		}
		injected += res.ChangesInjected
		runs++
		if res.PrimaryFormed {
			formed++
		}
		if every > 0 && time.Since(lastReport) >= every {
			lastReport = time.Now()
			elapsed := time.Since(start).Seconds()
			throughput := float64(injected) / elapsed
			eta := time.Duration(float64(changes-injected) / throughput * float64(time.Second))
			fmt.Fprintf(w, "%-16s %9d/%d changes, %6d runs, %8.0f changes/s, %d assertions, availability %5.1f%% (eta %s)\n",
				f.Name, injected, changes, runs, throughput, assertions.Value(),
				100*float64(formed)/float64(runs), eta.Round(time.Second))
		}
	}
	fmt.Fprintf(w, "%-16s PASSED: %d changes across %d cascading runs, %d checker assertions, zero violations (%.1fs)\n",
		f.Name, injected, runs, assertions.Value(), time.Since(start).Seconds())
	return nil
}
