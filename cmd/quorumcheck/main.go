// Command quorumcheck is the repository's trial-by-fire (thesis §2.2):
// it subjects every algorithm to a long cascading stream of randomized
// connectivity changes with the safety checker enabled after every
// message round — at most one primary component may ever be declared,
// and stable views must agree internally. The thesis ran over
// 1,310,000 connectivity changes without an inconsistency; this
// command reproduces that campaign at any scale.
//
// The change budget is sharded into independent cascading chains per
// algorithm (see internal/campaign), so the campaign saturates the
// machine: -chains controls the shard count, -workers the concurrency.
// Results are bit-identical for a given (seed, chains) regardless of
// worker count, and `-chains 1 -workers 1` replays the historical
// serial soak exactly.
//
// Examples:
//
//	quorumcheck -changes 10000                # quick soak, all algorithms
//	quorumcheck -changes 1310000 -alg ykd     # the full thesis count
//	quorumcheck -chains 1 -workers 1          # the historical serial soak
//	quorumcheck -json campaign.json           # machine-readable report for CI
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/campaign"
	"dynvote/internal/core"
	"dynvote/internal/experiment"
	"dynvote/internal/naive"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "quorumcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("quorumcheck", flag.ContinueOnError)
	var (
		changes = fs.Int("changes", 100000, "total connectivity changes per algorithm")
		procs   = fs.Int("procs", 64, "number of processes")
		segment = fs.Int("segment", 12, "changes per run segment (runs cascade, healing between)")
		rate    = fs.Float64("rate", 1.5, "mean message rounds between changes")
		seed    = fs.Int64("seed", 20000505, "random seed")
		algName = fs.String("alg", "", `single algorithm (default: all; "naive" runs the known-broken strawman to validate the checker)`)
		every   = fs.Duration("progress", 10*time.Second, "progress report interval per chain (0 disables)")
		retain  = fs.Int("trace", 4096, "per-chain trace ring-buffer capacity dumped on a violation (0 disables)")
		chains  = fs.Int("chains", 8, "independent cascading chains per algorithm (1 replays the historical serial soak)")
		workers = fs.Int("workers", 0, "concurrent workers scheduling chains (0 = GOMAXPROCS, 1 = sequential)")
		jsonOut = fs.String("json", "", "write a machine-readable campaign report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	factories := algset.All()
	if *algName != "" {
		// The naive strawman is deliberately outside the campaign set:
		// it exists to prove the checker catches real violations.
		if *algName == "naive" {
			factories = []core.Factory{naive.Factory()}
		} else {
			f, err := algset.ByName(*algName)
			if err != nil {
				return err
			}
			factories = []core.Factory{f}
		}
	}

	experiment.SetParallelism(*workers)

	rep := campaign.NewReporter(os.Stdout)
	cfg := campaign.Config{
		Factories:     factories,
		Procs:         *procs,
		Changes:       *changes,
		Segment:       *segment,
		Rate:          *rate,
		Seed:          *seed,
		Chains:        *chains,
		TraceRetain:   *retain,
		ProgressEvery: *every,
		Progress:      func(u campaign.ProgressUpdate) { progressLine(rep, u) },
		AlgorithmDone: func(a campaign.AlgorithmResult) { passedLine(rep, a, *chains) },
	}

	res, err := campaign.Run(cfg)

	if *jsonOut != "" {
		report := campaign.NewReport("quorumcheck", cfg, res, experiment.Parallelism(), err)
		if werr := report.WriteFile(*jsonOut); werr != nil {
			if err == nil {
				return werr
			}
			fmt.Fprintln(os.Stderr, "quorumcheck:", werr)
		}
	}
	if err != nil {
		return err
	}
	fmt.Println("\nALL CLEAR: no inconsistency, ever — at most one primary component at all times.")
	return nil
}

// progressLine renders one chain's progress. The single-chain format is
// byte-identical to the historical serial soak; sharded campaigns add
// the chain coordinates after the algorithm name.
func progressLine(rep *campaign.Reporter, u campaign.ProgressUpdate) {
	elapsed := u.Elapsed.Seconds()
	throughput := float64(u.Injected) / elapsed
	eta := time.Duration(float64(u.Budget-u.Injected) / throughput * float64(time.Second))
	availability := 0.0
	if u.Runs > 0 {
		availability = 100 * float64(u.Formed) / float64(u.Runs)
	}
	if u.Chains == 1 {
		rep.Printf("%-16s %9d/%d changes, %6d runs, %8.0f changes/s, %d assertions, availability %5.1f%% (eta %s)",
			u.Algorithm, u.Injected, u.Budget, u.Runs, throughput, u.Assertions,
			availability, eta.Round(time.Second))
		return
	}
	rep.Printf("%-16s [%d/%d] %9d/%d changes, %6d runs, %8.0f changes/s, %d assertions, availability %5.1f%% (eta %s)",
		u.Algorithm, u.Chain+1, u.Chains, u.Injected, u.Budget, u.Runs, throughput,
		u.Assertions, availability, eta.Round(time.Second))
}

// passedLine renders an algorithm's merged verdict once its last chain
// completes cleanly. Single-chain campaigns reproduce the historical
// line exactly.
func passedLine(rep *campaign.Reporter, a campaign.AlgorithmResult, chains int) {
	if chains == 1 {
		rep.Printf("%-16s PASSED: %d changes across %d cascading runs, %d checker assertions, zero violations (%.1fs)",
			a.Algorithm, a.Changes, a.Runs, a.Assertions, a.Elapsed.Seconds())
		return
	}
	rep.Printf("%-16s PASSED: %d changes across %d chains, %d cascading runs, %d checker assertions, zero violations (%.1fs)",
		a.Algorithm, a.Changes, chains, a.Runs, a.Assertions, a.Elapsed.Seconds())
}

// violationTrace digs the first chain failure out of a campaign result;
// used by tests to assert the trace dump survives the campaign wrapping.
func violationTrace(err error) (*campaign.ChainError, bool) {
	var ce *campaign.ChainError
	ok := errors.As(err, &ce)
	return ce, ok
}
