package main

import "testing"

func TestRunQuickSoak(t *testing.T) {
	err := run([]string{"-changes", "200", "-procs", "8", "-alg", "ykd"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAllAlgorithmsTinySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-algorithm soak")
	}
	err := run([]string{"-changes", "100", "-procs", "8"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{{"-alg", "nope"}, {"-bogus"}} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted bad input", args)
		}
	}
}
