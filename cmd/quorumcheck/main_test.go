package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dynvote/internal/algset"
)

func TestRunQuickSoak(t *testing.T) {
	err := run([]string{"-changes", "200", "-procs", "8", "-alg", "ykd"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAllAlgorithmsTinySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-algorithm soak")
	}
	err := run([]string{"-changes", "100", "-procs", "8"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{{"-alg", "nope"}, {"-bogus"}} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted bad input", args)
		}
	}
}

// TestSoakPrintsProgress forces a report on every interval check and
// asserts the line carries the throughput, ETA and assertion fields.
func TestSoakPrintsProgress(t *testing.T) {
	var buf bytes.Buffer
	f, err := algset.ByName("ykd")
	if err != nil {
		t.Fatal(err)
	}
	if err := soak(&buf, f, 8, 150, 12, 1.5, 1, time.Nanosecond, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"changes/s", "assertions", "eta", "PASSED"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

// TestNaiveViolationDumpsTrace: the known-broken strawman must trip
// the checker, and the error must carry the trace ring buffer's dump.
// Seed 29 at these parameters violates within a few cascading runs.
func TestNaiveViolationDumpsTrace(t *testing.T) {
	err := run([]string{"-alg", "naive", "-procs", "8", "-changes", "500",
		"-segment", "10", "-rate", "1", "-seed", "29"})
	if err == nil {
		t.Fatal("the naive strawman passed the soak — the checker is broken")
	}
	msg := err.Error()
	if !strings.Contains(msg, "INCONSISTENCY") {
		t.Errorf("error does not flag the inconsistency: %.200s", msg)
	}
	if !strings.Contains(msg, "--- trace") || !strings.Contains(msg, "change") {
		t.Errorf("error does not dump the trace history: %.200s", msg)
	}
}
