package main

import (
	"bytes"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/campaign"
	"dynvote/internal/core"
	"dynvote/internal/farm"
)

func TestRunQuickSoak(t *testing.T) {
	err := run([]string{"-changes", "200", "-procs", "8", "-alg", "ykd"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunAllAlgorithmsTinySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-algorithm soak")
	}
	err := run([]string{"-changes", "100", "-procs", "8"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{{"-alg", "nope"}, {"-bogus"}} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted bad input", args)
		}
	}
}

// TestSoakPrintsProgress forces a report on every interval check and
// asserts the line carries the throughput, ETA and assertion fields —
// through the same progressLine/passedLine hooks run() installs.
func TestSoakPrintsProgress(t *testing.T) {
	var buf bytes.Buffer
	f, err := algset.ByName("ykd")
	if err != nil {
		t.Fatal(err)
	}
	rep := campaign.NewReporter(&buf)
	_, err = campaign.Run(campaign.Config{
		Factories:     []core.Factory{f},
		Procs:         8,
		Changes:       150,
		Segment:       12,
		Rate:          1.5,
		Seed:          1,
		Chains:        1,
		ProgressEvery: time.Nanosecond,
		Progress:      func(u campaign.ProgressUpdate) { progressLine(rep, u) },
		AlgorithmDone: func(a campaign.AlgorithmResult) { passedLine(rep, a, 1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"changes/s", "assertions", "eta", "PASSED"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

// TestProgressLineFormats pins the exact rendering: the single-chain
// format must stay byte-identical to the historical serial soak, and
// the sharded format must carry the chain coordinates.
func TestProgressLineFormats(t *testing.T) {
	u := campaign.ProgressUpdate{
		Algorithm: "ykd", Chain: 0, Chains: 1,
		Injected: 1200, Budget: 10000, Runs: 100, Formed: 95,
		Assertions: 4321, Elapsed: 2 * time.Second,
	}
	var buf bytes.Buffer
	rep := campaign.NewReporter(&buf)
	progressLine(rep, u)
	want := "ykd                   1200/10000 changes,    100 runs,      600 changes/s, 4321 assertions, availability  95.0% (eta 15s)\n"
	if got := buf.String(); got != want {
		t.Errorf("single-chain progress line:\n got %q\nwant %q", got, want)
	}

	buf.Reset()
	u.Chain, u.Chains = 2, 8
	progressLine(rep, u)
	if got := buf.String(); !strings.Contains(got, "ykd              [3/8]") {
		t.Errorf("sharded progress line missing chain coordinates: %q", got)
	}

	buf.Reset()
	a := campaign.AlgorithmResult{
		Algorithm: "ykd", Changes: 10000, Runs: 834, Formed: 800,
		Assertions: 54321, Elapsed: 2500 * time.Millisecond,
	}
	passedLine(rep, a, 1)
	want = "ykd              PASSED: 10000 changes across 834 cascading runs, 54321 checker assertions, zero violations (2.5s)\n"
	if got := buf.String(); got != want {
		t.Errorf("single-chain PASSED line:\n got %q\nwant %q", got, want)
	}

	buf.Reset()
	passedLine(rep, a, 8)
	if got := buf.String(); !strings.Contains(got, "across 10000 changes") && !strings.Contains(got, "8 chains") {
		t.Errorf("sharded PASSED line missing chain count: %q", got)
	}
}

// TestNaiveViolationDumpsTrace: the known-broken strawman must trip
// the checker, and the error must carry the trace ring buffer's dump.
// Seed 29 at these parameters violates within a few cascading runs of
// the single-chain (historical) campaign.
func TestNaiveViolationDumpsTrace(t *testing.T) {
	err := run([]string{"-alg", "naive", "-procs", "8", "-changes", "500",
		"-segment", "10", "-rate", "1", "-seed", "29", "-chains", "1", "-workers", "1"})
	if err == nil {
		t.Fatal("the naive strawman passed the soak — the checker is broken")
	}
	msg := err.Error()
	if !strings.Contains(msg, "INCONSISTENCY") {
		t.Errorf("error does not flag the inconsistency: %.200s", msg)
	}
	if !strings.Contains(msg, "--- trace") || !strings.Contains(msg, "change") {
		t.Errorf("error does not dump the trace history: %.200s", msg)
	}
	if ce, ok := violationTrace(err); !ok {
		t.Errorf("violation is not a campaign.ChainError: %T", err)
	} else if ce.Algorithm != "naive-no-agreement" {
		t.Errorf("ChainError.Algorithm = %q, want naive-no-agreement", ce.Algorithm)
	}
}

// TestJSONReport: a campaign run with -json writes a report CI can
// parse, even (especially) when the campaign ends in a violation.
func TestJSONReport(t *testing.T) {
	path := t.TempDir() + "/campaign.json"
	err := run([]string{"-alg", "naive", "-procs", "8", "-changes", "500",
		"-segment", "10", "-rate", "1", "-seed", "29", "-chains", "1", "-workers", "1",
		"-json", path})
	if err == nil {
		t.Fatal("the naive strawman passed the soak")
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, want := range []string{`"tool": "quorumcheck"`, `"violation"`, `naive-no-agreement`,
		`"wall_seconds"`, `"requeued"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON report missing %s:\n%.400s", want, data)
		}
	}
}

// TestRunFarmCoordinator drives the -farm-listen CLI path end to end
// with an in-process worker (the -farm-workers subprocess spawn needs
// a real binary, which `go test` is not): the report must come out in
// the same shape as a local run, tagged with the farm tool name.
func TestRunFarmCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("farm soak in -short mode")
	}
	// Reserve a port, free it, and hand it to the CLI — run() prints
	// the bound address to stdout, which this test cannot read.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	path := t.TempDir() + "/farm.json"
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-changes", "200", "-procs", "8", "-alg", "ykd",
			"-chains", "4", "-progress", "0", "-farm-listen", addr, "-json", path})
	}()

	// Join as a worker once the coordinator is up.
	var w *farm.Worker
	deadline := time.Now().Add(10 * time.Second)
	for {
		w, err = farm.Join(farm.WorkerConfig{Addr: addr, Capacity: 2})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never reached the coordinator: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if serr := w.Serve(); serr != nil {
		t.Errorf("worker serve: %v", serr)
	}
	if rerr := <-done; rerr != nil {
		t.Fatalf("farm coordinator run: %v", rerr)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tool": "quorumcheck-farm"`, `"workers": 1`,
		`"wall_seconds"`, `"requeued"`, `"algorithm": "ykd"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("farm JSON report missing %s:\n%.400s", want, data)
		}
	}
}
