// Package dynvote is a from-scratch Go reproduction of "Availability
// Study of Dynamic Voting Algorithms" (Kyle W. Ingols, MIT MEng
// thesis, June 2000; ICDCS 2001 with Idit Keidar).
//
// The module implements the thesis's framework for primary component
// algorithms, five dynamic voting algorithms plus the simple-majority
// baseline, the driver-loop simulation system with its safety checker,
// a live group-communication substrate, and the complete measurement
// campaign behind every figure of the evaluation.
//
// Start with README.md for an overview, DESIGN.md for the system
// inventory and modelling decisions, and EXPERIMENTS.md for the
// measured reproduction of every thesis figure. The root package holds
// only documentation and the repository-level benchmarks
// (bench_test.go) and integration tests; the implementation lives
// under internal/ and the runnable entry points under cmd/ and
// examples/.
package dynvote
