// Livecluster runs the YKD dynamic voting algorithm over real TCP
// connections on localhost: five nodes, heartbeat failure detection, a
// partition injected at the transport layer, and recovery — the same
// algorithm code that runs in the simulator, now on actual sockets.
//
// With -http the demo also exposes live introspection while it runs:
//
//	/metrics      cluster-wide counters, Prometheus text format
//	/debug/vars   the same registry as expvar JSON
//	/debug/pprof  the standard Go profiler endpoints
//
// Try: livecluster -http 127.0.0.1:8080 -linger 60s, then
// curl http://127.0.0.1:8080/metrics.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"dynvote/internal/gcs"
	"dynvote/internal/metrics"
	"dynvote/internal/proc"
	"dynvote/internal/ykd"
)

func main() {
	httpAddr := flag.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:8080)")
	linger := flag.Duration("linger", 0, "keep the cluster (and the HTTP endpoint) alive this long after the demo")
	flag.Parse()
	if err := run(*httpAddr, *linger); err != nil {
		fmt.Fprintln(os.Stderr, "livecluster:", err)
		os.Exit(1)
	}
}

var expvarOnce sync.Once

// serveDebug starts the introspection endpoint and returns its bound
// address. The registry backs both /metrics (Prometheus text) and
// /debug/vars (expvar JSON); pprof is registered explicitly because
// the demo uses its own mux, not http.DefaultServeMux.
func serveDebug(addr string, reg *metrics.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	// expvar.Publish panics on re-registration, so the snapshot var is
	// registered once per process even if serveDebug runs again.
	expvarOnce.Do(func() {
		expvar.Publish("dynvote", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

func run(httpAddr string, linger time.Duration) error {
	const n = 5
	reg := metrics.NewRegistry()
	if httpAddr != "" {
		bound, err := serveDebug(httpAddr, reg)
		if err != nil {
			return err
		}
		fmt.Printf("introspection on http://%s/metrics (also /debug/vars, /debug/pprof)\n", bound)
	}

	transports := make([]*gcs.TCPTransport, n)
	addrs := make(map[proc.ID]string, n)
	for i := 0; i < n; i++ {
		tr, err := gcs.NewTCPTransport(gcs.TCPConfig{
			ID:             proc.ID(i),
			OwnAddr:        "127.0.0.1:0",
			HeartbeatEvery: 25 * time.Millisecond,
			Metrics:        reg,
		})
		if err != nil {
			return err
		}
		transports[i] = tr
		addrs[proc.ID(i)] = tr.Addr()
	}
	for _, tr := range transports {
		tr.SetPeers(addrs)
	}

	// Each transport is wrapped with the instrumented layer (per-peer
	// message/byte counters and send-latency histograms on /metrics),
	// and every node feeds the shared failover timeline, so the
	// partition below gets a measured time-to-primary-recovery.
	tl := gcs.NewTimeline()
	wrapped := make([]*gcs.InstrumentedTransport, n)
	nodes := make([]*gcs.Node, n)
	for i := 0; i < n; i++ {
		wrapped[i] = gcs.InstrumentTransport(transports[i], proc.ID(i), reg, gcs.FaultProfile{})
		node, err := gcs.NewNode(gcs.Config{
			ID: proc.ID(i), N: n,
			Transport: wrapped[i],
			Algorithm: ykd.Factory(ykd.VariantYKD),
			Metrics:   reg,
			OnEvent:   tl.Hook(proc.ID(i)),
		})
		if err != nil {
			return err
		}
		node.Run()
		nodes[i] = node
		defer node.Stop()
	}

	report := func(stage string) {
		fmt.Printf("%-42s", stage)
		for i, nd := range nodes {
			mark := "."
			if nd.InPrimary() {
				mark = "P"
			}
			fmt.Printf(" n%d=%s", i, mark)
		}
		fmt.Println()
	}
	waitFor := func(what string, cond func() bool) error {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
		return fmt.Errorf("timed out waiting for %s", what)
	}

	for i := 0; i < n; i++ {
		fmt.Printf("n%d listening on %s\n", i, transports[i].Addr())
	}
	fmt.Println()

	if err := waitFor("cluster convergence", func() bool {
		for _, nd := range nodes {
			if !nd.InPrimary() || nd.CurrentView().Size() != n {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	report("all five connected over TCP:")

	fmt.Println("\ninjecting partition {n0,n1,n2} | {n3,n4} at the transport layer")
	injectedAt := time.Now()
	for i := 0; i < 3; i++ {
		transports[i].Block(3, 4)
	}
	transports[3].Block(0, 1, 2)
	transports[4].Block(0, 1, 2)

	if err := waitFor("partition detection + re-formation", func() bool {
		return nodes[0].InPrimary() && nodes[1].InPrimary() && nodes[2].InPrimary() &&
			!nodes[3].InPrimary() && !nodes[4].InPrimary()
	}); err != nil {
		return err
	}
	report("heartbeats timed out; YKD re-formed:")
	if lost, regained, ok := tl.Recovery(injectedAt); ok {
		fmt.Printf("  primary lost %.1fms after injection, recovered after %.1fms\n",
			float64(lost)/float64(time.Millisecond), float64(regained)/float64(time.Millisecond))
	}

	fmt.Println("\nhealing the partition")
	for i := 0; i < n; i++ {
		transports[i].Block()
	}
	if err := waitFor("merge", func() bool {
		for _, nd := range nodes {
			if !nd.InPrimary() {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	report("merged back; everyone primary again:")

	var msgs, bytes int64
	for _, w := range wrapped {
		for _, ps := range w.Peers() {
			msgs += ps.MsgsOut
			bytes += ps.BytesOut
		}
	}
	fmt.Printf("\nwire traffic: %d msgs / %d bytes across %d links (%d timeline events; per-peer series on /metrics)\n",
		msgs, bytes, n*(n-1), tl.Len())

	if linger > 0 {
		fmt.Printf("\nlingering %s — scrape /metrics or grab a profile now\n", linger)
		time.Sleep(linger)
	}
	return nil
}
