package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"dynvote/internal/metrics"
)

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return string(body), resp
}

// TestServeDebugEndpoints: the -http endpoint serves Prometheus text
// on /metrics, expvar JSON on /debug/vars, and the pprof index.
func TestServeDebugEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("gcs_broadcasts_sent_total", "frames broadcast").Add(7)

	addr, err := serveDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	body, resp := get(t, base+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "gcs_broadcasts_sent_total 7") {
		t.Errorf("/metrics missing the counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE gcs_broadcasts_sent_total counter") {
		t.Errorf("/metrics missing the TYPE line:\n%s", body)
	}

	body, _ = get(t, base+"/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(vars["dynvote"], &snap); err != nil {
		t.Fatalf("dynvote expvar is not a metrics snapshot: %v", err)
	}
	if snap.Counters["gcs_broadcasts_sent_total"] != 7 {
		t.Errorf("expvar snapshot counter = %d, want 7", snap.Counters["gcs_broadcasts_sent_total"])
	}

	body, _ = get(t, base+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index looks wrong:\n%.300s", body)
	}
}
