// Partitiondemo replays the inconsistency scenario of thesis Figure
// 3-1, side by side for every algorithm in the study: processes a and
// b form {a,b,c} but c detaches before learning the outcome, then
// joins d and e. A naive approach would now declare two concurrent
// primaries — {a,b} and {c,d,e}. The dynamic voting algorithms must
// not, and this demo shows how each one resolves the ambiguity when c
// finally reconnects.
package main

import (
	"fmt"
	"os"

	"dynvote/internal/algset"
	"dynvote/internal/core"
	"dynvote/internal/naive"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "partitiondemo:", err)
		os.Exit(1)
	}
}

func run() error {
	// First, the broken approach: dynamic voting without agreement
	// really does split-brain in this scenario.
	if err := replayNaive(); err != nil {
		return err
	}
	fmt.Println()

	for _, f := range algset.All() {
		if err := replay(f); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		fmt.Println()
	}
	return nil
}

// replayNaive runs the same scenario with the agreement-free rule and
// shows the checker catching the resulting double primary.
func replayNaive() error {
	fmt.Println("=== naive (dynamic voting without agreement) ===")
	const a, b, c, d, e = 0, 1, 2, 3, 4
	cluster := sim.NewCluster(naive.Factory(), 5)
	r := rng.New(3)

	settle := func(views ...view.View) error {
		cluster.Collect(r)
		cluster.IssueViews(r, views...)
		_, err := cluster.RunToQuiescence(r, 1000)
		return err
	}

	cluster.Drop = func(from, to proc.ID, _ core.Message) bool {
		return to == c && from == a // c misses one state message
	}
	if err := settle(
		view.View{ID: 1, Members: proc.NewSet(a, b, c)},
		view.View{ID: 2, Members: proc.NewSet(d, e)},
	); err != nil {
		return err
	}
	cluster.Drop = nil
	fmt.Println("  a,b declared {a,b,c}; c missed a message and did not")

	if err := settle(
		view.View{ID: 3, Members: proc.NewSet(a, b)},
		view.View{ID: 4, Members: proc.NewSet(c, d, e)},
	); err != nil {
		return err
	}
	if err := sim.CheckOnePrimary(cluster); err != nil {
		fmt.Printf("  SPLIT BRAIN, as the thesis predicts: %v\n", err)
		return nil
	}
	return fmt.Errorf("naive approach unexpectedly stayed safe")
}

func replay(factory core.Factory) error {
	fmt.Printf("=== %s ===\n", factory.Name)
	const a, b, c, d, e = 0, 1, 2, 3, 4
	cluster := sim.NewCluster(factory, 5)
	r := rng.New(7)

	names := []string{"a", "b", "c", "d", "e"}
	report := func(stage string) {
		fmt.Printf("  %-44s", stage)
		for p := 0; p < 5; p++ {
			mark := "."
			if cluster.Algorithm(proc.ID(p)).InPrimary() {
				mark = "P"
			}
			fmt.Printf(" %s=%s", names[p], mark)
		}
		fmt.Println()
	}

	settle := func(views ...view.View) error {
		cluster.Collect(r)
		cluster.IssueViews(r, views...)
		if _, err := cluster.RunToQuiescence(r, 1000); err != nil {
			return err
		}
		return sim.CheckOnePrimary(cluster)
	}

	// Step 1: partition into {a,b,c} and {d,e}, but c detaches before
	// receiving the final attempt messages: for the YKD family this is
	// an attempt-message drop; the same effect is modelled for every
	// algorithm by dropping its final-round traffic to c.
	cluster.Drop = func(_, to proc.ID, m core.Message) bool {
		if to != c {
			return false
		}
		switch m.(type) {
		case *ykd.AttemptMessage:
			return true
		default:
			return m.Kind() == "mr1p/attempt"
		}
	}
	if err := settle(
		view.View{ID: 1, Members: proc.NewSet(a, b, c)},
		view.View{ID: 2, Members: proc.NewSet(d, e)},
	); err != nil {
		return err
	}
	cluster.Drop = nil
	report("a,b form {a,b,c}; c missed the outcome:")

	// Step 2: c leaves a,b and joins d,e — the dangerous moment.
	if err := settle(
		view.View{ID: 3, Members: proc.NewSet(a, b)},
		view.View{ID: 4, Members: proc.NewSet(c, d, e)},
	); err != nil {
		return err
	}
	report("c joins {d,e}; naive would split-brain:")

	// Step 3: everyone reconnects; the ambiguity resolves.
	if err := settle(view.View{ID: 5, Members: proc.Universe(5)}); err != nil {
		return err
	}
	report("full reconnect; ambiguity resolved:")
	fmt.Println("  at most one primary existed at every stage (checked)")
	return nil
}
