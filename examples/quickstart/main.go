// Quickstart: five processes run the YKD dynamic voting algorithm in
// the in-process simulator. The network partitions twice; watch which
// component keeps the primary. Dynamic voting keeps a primary alive
// with only 2 of the original 5 processes — a simple majority rule
// could not.
package main

import (
	"fmt"
	"os"

	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 5
	cluster := sim.NewCluster(ykd.Factory(ykd.VariantYKD), n)
	r := rng.New(1)

	report := func(stage string) {
		fmt.Printf("%-34s", stage)
		for p := 0; p < n; p++ {
			mark := "."
			if cluster.Algorithm(proc.ID(p)).InPrimary() {
				mark = "P"
			}
			fmt.Printf(" p%d=%s", p, mark)
		}
		fmt.Println()
	}

	settle := func(views ...view.View) error {
		cluster.Collect(r)
		cluster.IssueViews(r, views...)
		if _, err := cluster.RunToQuiescence(r, 1000); err != nil {
			return err
		}
		return sim.CheckOnePrimary(cluster)
	}

	report("initial view {p0..p4}:")

	// Partition: {p0,p1,p2} | {p3,p4}. The left side holds a majority
	// of the previous primary.
	if err := settle(
		view.View{ID: 1, Members: proc.NewSet(0, 1, 2)},
		view.View{ID: 2, Members: proc.NewSet(3, 4)},
	); err != nil {
		return err
	}
	report("after partition {0,1,2}|{3,4}:")

	// Partition again: {p0,p1} | {p2}. {p0,p1} is 2 of the previous
	// 3-member primary — a majority of it, though a minority of the
	// whole system. Dynamic voting keeps it primary.
	if err := settle(
		view.View{ID: 3, Members: proc.NewSet(0, 1)},
		view.View{ID: 4, Members: proc.NewSet(2)},
	); err != nil {
		return err
	}
	report("after partition {0,1}|{2}:")

	// Merge everyone back: the primary grows again.
	if err := settle(view.View{ID: 5, Members: proc.Universe(n)}); err != nil {
		return err
	}
	report("after full merge:")

	fmt.Println("\nAt every stage, at most one component was primary (checked).")
	return nil
}
