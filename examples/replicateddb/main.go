// Replicateddb demonstrates the primary component paradigm protecting
// a replicated key-value store (the thesis's motivating application).
//
// With no flags it runs the self-contained demo: five replicas over
// the in-memory group communication substrate, a partition, writes
// accepted only by the primary side, and anti-entropy catch-up when
// the network heals.
//
// With -serve it becomes one long-running replica of a real cluster:
// group communication over TCP, clients served on -addr with the
// loadgen protocol, per-peer wire metrics on -http. Start one process
// per replica and point cmd/loadgen at their -addr list:
//
//	replicateddb -serve -id 0 -peers 0=:7100,1=:7101,2=:7102 -addr :7000
//	replicateddb -serve -id 1 -peers 0=:7100,1=:7101,2=:7102 -addr :7001
//	replicateddb -serve -id 2 -peers 0=:7100,1=:7101,2=:7102 -addr :7002
//	loadgen -connect :7000,:7001,:7002 -duration 30s
//
// A replica that cannot bind its client or group address exits
// non-zero immediately; SIGINT/SIGTERM shuts it down gracefully
// (clients drained, transport closed).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/gcs"
	"dynvote/internal/loadgen"
	"dynvote/internal/metrics"
	"dynvote/internal/proc"
	"dynvote/internal/register"
	"dynvote/internal/ykd"
)

func main() {
	serve := flag.Bool("serve", false, "run as one long-lived replica instead of the demo")
	id := flag.Int("id", 0, "this replica's ID (serve mode)")
	peers := flag.String("peers", "", "comma-separated id=host:port group addresses for every replica (serve mode)")
	addr := flag.String("addr", "", "client-facing listen address (serve mode)")
	alg := flag.String("alg", "ykd", "primary component algorithm (serve mode)")
	httpAddr := flag.String("http", "", "serve the metrics registry on this address")
	flag.Parse()

	var err error
	if *serve {
		stop := make(chan struct{})
		go func() {
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			<-sig
			close(stop)
		}()
		err = runServe(serveOptions{
			id:       proc.ID(*id),
			peers:    *peers,
			addr:     *addr,
			alg:      *alg,
			httpAddr: *httpAddr,
		}, stop, os.Stdout)
	} else {
		err = runDemo()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "replicateddb:", err)
		os.Exit(1)
	}
}

type serveOptions struct {
	id       proc.ID
	peers    string
	addr     string
	alg      string
	httpAddr string
}

// parsePeers reads "0=host:port,1=host:port,..." into an address map.
func parsePeers(s string) (map[proc.ID]string, error) {
	out := make(map[proc.ID]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want id=host:port", part)
		}
		n, err := strconv.Atoi(id)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("peer %q: bad id", part)
		}
		if _, dup := out[proc.ID(n)]; dup {
			return nil, fmt.Errorf("peer %q: duplicate id", part)
		}
		out[proc.ID(n)] = addr
	}
	if len(out) == 0 {
		return nil, errors.New("-peers is required in serve mode")
	}
	return out, nil
}

// runServe runs one replica until stop closes. Every bind failure is
// returned (→ non-zero exit), never swallowed.
func runServe(o serveOptions, stop <-chan struct{}, out io.Writer) error {
	peers, err := parsePeers(o.peers)
	if err != nil {
		return err
	}
	if _, ok := peers[o.id]; !ok {
		return fmt.Errorf("-id %d has no entry in -peers", o.id)
	}
	if o.addr == "" {
		return errors.New("-addr is required in serve mode")
	}
	factory, err := algset.ByName(o.alg)
	if err != nil {
		return err
	}

	reg := metrics.NewRegistry()
	tcp, err := gcs.NewTCPTransport(gcs.TCPConfig{
		ID:      o.id,
		Addrs:   peers,
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	// Instrumented so /metrics carries per-peer message/byte counters
	// and send-latency histograms for this replica's links.
	tr := gcs.InstrumentTransport(tcp, o.id, reg, gcs.FaultProfile{})
	store, err := register.Open(register.Config{
		ID: o.id, N: len(peers),
		Transport: tr,
		Algorithm: factory,
	})
	if err != nil {
		_ = tr.Close()
		return err
	}
	srv, err := loadgen.NewServer(store, o.addr)
	if err != nil {
		store.Close()
		_ = tr.Close()
		return err
	}
	if o.httpAddr != "" {
		bound, err := serveMetrics(o.httpAddr, reg)
		if err != nil {
			_ = srv.Close()
			store.Close()
			_ = tr.Close()
			return err
		}
		fmt.Fprintf(out, "replica %d: metrics on http://%s/metrics\n", o.id, bound)
	}
	fmt.Fprintf(out, "replica %d/%d (%s): clients on %s, group on %s\n",
		o.id, len(peers), o.alg, srv.Addr(), tcp.Addr())

	<-stop
	fmt.Fprintf(out, "replica %d: shutting down\n", o.id)
	err = srv.Close()
	store.Close()
	if cerr := tr.Close(); err == nil {
		err = cerr
	}
	return err
}

func serveMetrics(addr string, reg *metrics.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

func runDemo() error {
	const n = 5
	net := gcs.NewMemNetwork(n)
	stores := make([]*register.Store, n)
	for i := 0; i < n; i++ {
		s, err := register.Open(register.Config{
			ID: proc.ID(i), N: n,
			Transport: net.Transport(proc.ID(i)),
			Algorithm: ykd.Factory(ykd.VariantYKD),
		})
		if err != nil {
			return err
		}
		stores[i] = s
		defer s.Close()
	}

	waitFor := func(what string, cond func() bool) error {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(2 * time.Millisecond)
		}
		return fmt.Errorf("timed out waiting for %s", what)
	}

	fmt.Println("five replicas, all connected")
	if err := stores[0].Set("motd", "hello, world"); err != nil {
		return err
	}
	if err := waitFor("initial replication", func() bool {
		v, ok, _ := stores[4].Get("motd")
		return ok && v == "hello, world"
	}); err != nil {
		return err
	}
	fmt.Println(`  write motd="hello, world" at r0 → replicated to all`)

	fmt.Println("\npartition {r0,r1,r2} | {r3,r4}")
	if err := net.SetComponents(proc.NewSet(0, 1, 2), proc.NewSet(3, 4)); err != nil {
		return err
	}
	if err := waitFor("partition to settle", func() bool {
		return stores[0].InPrimary() && !stores[3].InPrimary()
	}); err != nil {
		return err
	}

	if err := stores[0].Set("motd", "written by the primary"); err != nil {
		return err
	}
	fmt.Println("  r0 (primary side) write accepted")

	err := stores[3].Set("motd", "split-brain attempt")
	if errors.Is(err, register.ErrNotPrimary) {
		fmt.Println("  r3 (minority side) write REFUSED: not in primary component")
	} else {
		return fmt.Errorf("minority write unexpectedly allowed: %v", err)
	}

	v, _, auth := stores[4].Get("motd")
	fmt.Printf("  r4 reads %q (authoritative=%v — stale but honest)\n", v, auth)

	fmt.Println("\nnetwork heals")
	if err := net.SetComponents(proc.Universe(n)); err != nil {
		return err
	}
	if err := waitFor("anti-entropy catch-up", func() bool {
		for _, s := range stores {
			v, ok, auth := s.Get("motd")
			if !ok || v != "written by the primary" || !auth {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	fmt.Println(`  all five replicas converge on "written by the primary", authoritative again`)
	fmt.Println("\nno split-brain occurred: the primary component did its job")
	return nil
}
