// Replicateddb demonstrates the primary component paradigm protecting
// a replicated key-value store (the thesis's motivating application):
// five replicas over the in-memory group communication substrate, a
// partition, writes accepted only by the primary side, and
// anti-entropy catch-up when the network heals.
package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"dynvote/internal/gcs"
	"dynvote/internal/proc"
	"dynvote/internal/register"
	"dynvote/internal/ykd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replicateddb:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 5
	net := gcs.NewMemNetwork(n)
	stores := make([]*register.Store, n)
	for i := 0; i < n; i++ {
		s, err := register.Open(register.Config{
			ID: proc.ID(i), N: n,
			Transport: net.Transport(proc.ID(i)),
			Algorithm: ykd.Factory(ykd.VariantYKD),
		})
		if err != nil {
			return err
		}
		stores[i] = s
		defer s.Close()
	}

	waitFor := func(what string, cond func() bool) error {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(2 * time.Millisecond)
		}
		return fmt.Errorf("timed out waiting for %s", what)
	}

	fmt.Println("five replicas, all connected")
	if err := stores[0].Set("motd", "hello, world"); err != nil {
		return err
	}
	if err := waitFor("initial replication", func() bool {
		v, ok, _ := stores[4].Get("motd")
		return ok && v == "hello, world"
	}); err != nil {
		return err
	}
	fmt.Println(`  write motd="hello, world" at r0 → replicated to all`)

	fmt.Println("\npartition {r0,r1,r2} | {r3,r4}")
	if err := net.SetComponents(proc.NewSet(0, 1, 2), proc.NewSet(3, 4)); err != nil {
		return err
	}
	if err := waitFor("partition to settle", func() bool {
		return stores[0].InPrimary() && !stores[3].InPrimary()
	}); err != nil {
		return err
	}

	if err := stores[0].Set("motd", "written by the primary"); err != nil {
		return err
	}
	fmt.Println("  r0 (primary side) write accepted")

	err := stores[3].Set("motd", "split-brain attempt")
	if errors.Is(err, register.ErrNotPrimary) {
		fmt.Println("  r3 (minority side) write REFUSED: not in primary component")
	} else {
		return fmt.Errorf("minority write unexpectedly allowed: %v", err)
	}

	v, _, auth := stores[4].Get("motd")
	fmt.Printf("  r4 reads %q (authoritative=%v — stale but honest)\n", v, auth)

	fmt.Println("\nnetwork heals")
	if err := net.SetComponents(proc.Universe(n)); err != nil {
		return err
	}
	if err := waitFor("anti-entropy catch-up", func() bool {
		for _, s := range stores {
			v, ok, auth := s.Get("motd")
			if !ok || v != "written by the primary" || !auth {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	fmt.Println(`  all five replicas converge on "written by the primary", authoritative again`)
	fmt.Println("\nno split-brain occurred: the primary component did its job")
	return nil
}
