package main

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"dynvote/internal/loadgen"
	"dynvote/internal/proc"
)

// freePorts grabs n distinct ephemeral ports and releases them. Go
// listeners set SO_REUSEADDR, so rebinding them right away works.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return addrs
}

// TestServeClusterEndToEnd boots three serve-mode replicas (the same
// code path as three separate processes, each with its own TCP group
// transport and client listener), drives them with loadgen, and shuts
// them down gracefully.
func TestServeClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full TCP cluster")
	}
	const n = 3
	group := freePorts(t, n)
	client := freePorts(t, n)
	peers := make([]string, n)
	for i, a := range group {
		peers[i] = fmt.Sprintf("%d=%s", i, a)
	}
	peerSpec := strings.Join(peers, ",")

	stop := make(chan struct{})
	errc := make(chan error, n)
	var outs [n]bytes.Buffer
	for i := 0; i < n; i++ {
		i := i
		go func() {
			errc <- runServe(serveOptions{
				id:    proc.ID(i),
				peers: peerSpec,
				addr:  client[i],
				alg:   "ykd",
			}, stop, &outs[i])
		}()
	}

	// The cluster converges and serves writes.
	var cl *loadgen.Client
	deadline := time.Now().Add(10 * time.Second)
	for cl == nil && time.Now().Before(deadline) {
		c, err := loadgen.DialClient(client[0])
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		cl = c
	}
	if cl == nil {
		t.Fatal("replica 0 never started serving")
	}
	okWrite := false
	for !okWrite && time.Now().Before(deadline) {
		notPrimary, err := cl.Set("boot", "ready")
		if err != nil {
			_ = cl.Close()
			cl = nil
			time.Sleep(20 * time.Millisecond)
			c, derr := loadgen.DialClient(client[0])
			if derr == nil {
				cl = c
			}
			continue
		}
		if !notPrimary {
			okWrite = true
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}
	_ = cl.Close()
	if !okWrite {
		t.Fatal("cluster never accepted a write")
	}

	res, err := loadgen.Run(loadgen.Config{
		Addrs:    client[:],
		Conns:    3,
		Duration: 500 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 {
		t.Fatalf("no successful requests against the serve cluster: %+v", res)
	}

	close(stop)
	for i := 0; i < n; i++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("replica exited with %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("replica did not shut down after stop")
		}
	}
	for i := range outs {
		if !strings.Contains(outs[i].String(), "shutting down") {
			t.Errorf("replica %d missing graceful-shutdown log:\n%s", i, outs[i].String())
		}
	}
}

// TestServeBindFailure: an occupied client port must fail the replica
// outright (the process would exit non-zero), not hang half-started.
func TestServeBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	close(stop)
	err = runServe(serveOptions{
		id:    0,
		peers: "0=127.0.0.1:0",
		addr:  ln.Addr().String(),
		alg:   "ykd",
	}, stop, new(bytes.Buffer))
	if err == nil {
		t.Fatal("bind on an occupied client port must error")
	}
}

func TestServeFlagValidation(t *testing.T) {
	cases := []serveOptions{
		{id: 0, peers: "", addr: "127.0.0.1:0"},                 // no peers
		{id: 5, peers: "0=127.0.0.1:0", addr: "127.0.0.1:0"},    // id not in peers
		{id: 0, peers: "0=127.0.0.1:0", addr: ""},               // no client addr
		{id: 0, peers: "zero=127.0.0.1:0", addr: "127.0.0.1:0"}, // bad id
		{id: 0, peers: "0=a,0=b", addr: "127.0.0.1:0"},          // duplicate id
		{id: 0, peers: "0=127.0.0.1:0", addr: "127.0.0.1:0", alg: "nope"},
	}
	stop := make(chan struct{})
	close(stop)
	for _, o := range cases {
		if o.alg == "" {
			o.alg = "ykd"
		}
		if err := runServe(o, stop, new(bytes.Buffer)); err == nil {
			t.Errorf("runServe(%+v) accepted invalid options", o)
		}
	}
}
