// Sweepviz renders a quick ASCII view of one availability figure in
// the terminal: each algorithm's availability curve as horizontal
// bars over the swept change rate — the thesis's plots without
// Matlab. Flags choose the workload; defaults keep it under a minute.
package main

import (
	"flag"
	"fmt"
	"os"

	"dynvote/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweepviz:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		procs   = flag.Int("procs", 32, "number of processes")
		changes = flag.Int("changes", 6, "connectivity changes per run")
		runs    = flag.Int("runs", 120, "runs per case")
		casc    = flag.Bool("cascading", false, "cascading instead of fresh-start runs")
	)
	flag.Parse()

	mode := experiment.FreshStart
	if *casc {
		mode = experiment.Cascading
	}
	opts := experiment.Options{
		Procs: *procs,
		Runs:  *runs,
		Rates: []float64{0, 1, 2, 4, 6, 8, 10, 12},
	}
	spec := experiment.AvailabilityFigure("viz", *changes, mode, opts)
	sweep := spec.Sweeps[0]

	fmt.Printf("%s\n%d processes, %d runs/case\n\n", spec.Caption, sweep.Procs, sweep.Runs)
	series, err := experiment.RunSweep(sweep)
	if err != nil {
		return err
	}
	for _, s := range series {
		fmt.Println(experiment.RenderAvailabilityBars(sweep, s))
	}
	return nil
}
