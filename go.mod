module dynvote

go 1.22
