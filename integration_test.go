// Repository-level integration tests: run reduced versions of the
// thesis's experiments end-to-end and assert the qualitative shape of
// the results — who wins, what degrades, where curves converge. The
// full-resolution numbers live in EXPERIMENTS.md and cmd/figures.
package dynvote_test

import (
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/experiment"
)

const shapeRuns = 150

func shapeCase(t *testing.T, alg string, changes int, rate float64, mode experiment.Mode) experiment.CaseResult {
	t.Helper()
	f, err := algset.ByName(alg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiment.RunCase(experiment.CaseSpec{
		Factory: f, Procs: 32, Changes: changes, MeanRounds: rate,
		Runs: shapeRuns, Mode: mode, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestShapeAvailabilityRisesWithStability(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate shape test")
	}
	calm := shapeCase(t, "ykd", 12, 12, experiment.FreshStart).Availability.Percent()
	frantic := shapeCase(t, "ykd", 12, 0, experiment.FreshStart).Availability.Percent()
	if calm <= frantic {
		t.Errorf("availability should rise with stability: rate12=%.1f%% vs rate0=%.1f%%", calm, frantic)
	}
}

func TestShapeAllConvergeAtExtremeFrequency(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate shape test")
	}
	// At near-zero intervals the algorithms cannot exchange anything
	// and sit within a few points of the stateless baseline.
	base := shapeCase(t, "simple-majority", 12, 0, experiment.FreshStart).Availability.Percent()
	for _, alg := range []string{"ykd", "dfls", "1-pending"} {
		got := shapeCase(t, alg, 12, 0, experiment.FreshStart).Availability.Percent()
		if got < base-8 || got > base+12 {
			t.Errorf("%s at rate 0 = %.1f%%, baseline %.1f%%: should converge", alg, got, base)
		}
	}
}

func TestShapeYKDBeatsDFLSWhichBeatsOnePending(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate shape test")
	}
	ykdP := shapeCase(t, "ykd", 12, 4, experiment.FreshStart).Availability.Percent()
	dflsP := shapeCase(t, "dfls", 12, 4, experiment.FreshStart).Availability.Percent()
	opP := shapeCase(t, "1-pending", 12, 4, experiment.FreshStart).Availability.Percent()
	smP := shapeCase(t, "simple-majority", 12, 4, experiment.FreshStart).Availability.Percent()
	if ykdP < dflsP {
		t.Errorf("ykd %.1f%% < dfls %.1f%%", ykdP, dflsP)
	}
	if dflsP <= opP {
		t.Errorf("dfls %.1f%% ≤ 1-pending %.1f%%", dflsP, opP)
	}
	if ykdP <= smP {
		t.Errorf("ykd %.1f%% ≤ simple-majority %.1f%%", ykdP, smP)
	}
}

func TestShapeUnoptimizedMatchesYKDAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate shape test")
	}
	// §3.2.1/§4.1: identical availability — same runs, same outcomes.
	a := shapeCase(t, "ykd", 6, 3, experiment.FreshStart).Availability
	b := shapeCase(t, "ykd-unopt", 6, 3, experiment.FreshStart).Availability
	if a != b {
		t.Errorf("ykd %v vs ykd-unopt %v: availability should be identical", a, b)
	}
}

func TestShapeCascadingStableForYKDDrasticForOnePending(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate shape test")
	}
	ykdFresh := shapeCase(t, "ykd", 12, 1, experiment.FreshStart).Availability.Percent()
	ykdCasc := shapeCase(t, "ykd", 12, 1, experiment.Cascading).Availability.Percent()
	if diff := ykdFresh - ykdCasc; diff > 10 || diff < -10 {
		t.Errorf("ykd cascading should track fresh: fresh=%.1f%% cascading=%.1f%%", ykdFresh, ykdCasc)
	}

	opFresh := shapeCase(t, "1-pending", 12, 1, experiment.FreshStart).Availability.Percent()
	opCasc := shapeCase(t, "1-pending", 12, 1, experiment.Cascading).Availability.Percent()
	if opCasc >= opFresh {
		t.Errorf("1-pending must degrade under cascading: fresh=%.1f%% cascading=%.1f%%", opFresh, opCasc)
	}
	smCasc := shapeCase(t, "simple-majority", 12, 1, experiment.Cascading).Availability.Percent()
	if opCasc >= smCasc {
		t.Errorf("1-pending cascading (%.1f%%) should fall below simple majority (%.1f%%)", opCasc, smCasc)
	}
}

func TestShapeAmbiguousSessionsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate shape test")
	}
	// §3.4/§4.2: retained sessions dominantly zero, maxima tiny.
	for _, alg := range []string{"ykd", "ykd-unopt", "dfls"} {
		res := shapeCase(t, alg, 12, 2, experiment.FreshStart)
		if res.InProgress.Percent(0) < 50 {
			t.Errorf("%s: %0.1f%% zero-session samples, want dominantly zero",
				alg, res.InProgress.Percent(0))
		}
		max := res.InProgress.Max()
		limit := 6
		if alg != "ykd" {
			limit = 11
		}
		if max > limit {
			t.Errorf("%s: max ambiguous sessions %d exceeds plausible bound %d", alg, max, limit)
		}
	}
}

func TestShapeMessageSizesWithinThesisBallpark(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate shape test")
	}
	f, _ := algset.ByName("ykd")
	res, err := experiment.RunCase(experiment.CaseSpec{
		Factory: f, Procs: 64, Changes: 12, MeanRounds: 2,
		Runs: 60, Mode: experiment.FreshStart, Seed: 99, MeasureSizes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// §3.4: the information a process must transmit stays within two
	// kilobytes — its state message is the dominant cost.
	if res.Sizes.MaxMessageBytes > 2048 {
		t.Errorf("max single message %d B, thesis ballpark is ≤ 2 KB", res.Sizes.MaxMessageBytes)
	}
	// Whole-system round traffic is bounded by every process sending
	// one such message.
	if res.Sizes.MaxRoundBytes > 64*2048 {
		t.Errorf("max round traffic %d B exceeds 64 × 2 KB", res.Sizes.MaxRoundBytes)
	}
}
