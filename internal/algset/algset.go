// Package algset enumerates the six primary component algorithms of
// the study — the five dynamic voting algorithms plus the
// simple-majority baseline — so that the simulator, experiments, CLIs
// and tests all draw from one list.
package algset

import (
	"fmt"
	"strings"

	"dynvote/internal/core"
	"dynvote/internal/majority"
	"dynvote/internal/mr1p"
	"dynvote/internal/ykd"
)

// All returns the factories for every algorithm in the study, in the
// order the thesis's figures list them: YKD, DFLS, 1-pending, MR1p,
// simple majority — with unoptimized YKD last since the thesis plots
// it only in the ambiguous-session figures.
func All() []core.Factory {
	return []core.Factory{
		ykd.Factory(ykd.VariantYKD),
		ykd.Factory(ykd.VariantDFLS),
		ykd.Factory(ykd.VariantOnePending),
		mr1p.Factory(),
		majority.Factory(),
		ykd.Factory(ykd.VariantUnoptimized),
	}
}

// Availability returns the five algorithms plotted in the availability
// figures (4-1 through 4-6). Unoptimized YKD is excluded because its
// availability is identical to YKD's (§4.1).
func Availability() []core.Factory {
	return []core.Factory{
		ykd.Factory(ykd.VariantYKD),
		ykd.Factory(ykd.VariantDFLS),
		ykd.Factory(ykd.VariantOnePending),
		mr1p.Factory(),
		majority.Factory(),
	}
}

// AmbiguousSessions returns the three algorithms measured in the
// ambiguous-session figures (4-7, 4-8): YKD, unoptimized YKD, DFLS.
func AmbiguousSessions() []core.Factory {
	return []core.Factory{
		ykd.Factory(ykd.VariantYKD),
		ykd.Factory(ykd.VariantUnoptimized),
		ykd.Factory(ykd.VariantDFLS),
	}
}

// ByName resolves an algorithm by its experiment-output name.
func ByName(name string) (core.Factory, error) {
	for _, f := range All() {
		if f.Name == name {
			return f, nil
		}
	}
	names := make([]string, 0, len(All()))
	for _, f := range All() {
		names = append(names, f.Name)
	}
	return core.Factory{}, fmt.Errorf("algset: unknown algorithm %q (have: %s)",
		name, strings.Join(names, ", "))
}
