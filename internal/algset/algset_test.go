package algset

import (
	"testing"

	"dynvote/internal/proc"
	"dynvote/internal/view"
)

func TestAllDistinctAndComplete(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("All() = %d algorithms, want 6", len(all))
	}
	seen := map[string]bool{}
	for _, f := range all {
		if seen[f.Name] {
			t.Errorf("duplicate algorithm %q", f.Name)
		}
		seen[f.Name] = true
	}
	for _, want := range []string{"ykd", "ykd-unopt", "dfls", "1-pending", "mr1p", "simple-majority"} {
		if !seen[want] {
			t.Errorf("missing algorithm %q", want)
		}
	}
}

func TestAvailabilityExcludesUnoptimized(t *testing.T) {
	for _, f := range Availability() {
		if f.Name == "ykd-unopt" {
			t.Error("availability set must exclude ykd-unopt (§4.1)")
		}
	}
	if len(Availability()) != 5 {
		t.Errorf("availability set = %d, want 5", len(Availability()))
	}
}

func TestAmbiguousSessionsSet(t *testing.T) {
	names := []string{}
	for _, f := range AmbiguousSessions() {
		names = append(names, f.Name)
	}
	want := []string{"ykd", "ykd-unopt", "dfls"}
	if len(names) != len(want) {
		t.Fatalf("ambiguity set = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ambiguity set = %v, want %v", names, want)
		}
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("mr1p")
	if err != nil || f.Name != "mr1p" {
		t.Fatalf("ByName(mr1p) = %v, %v", f.Name, err)
	}
	if _, err := ByName("raft"); err == nil {
		t.Error("ByName accepted an unknown algorithm")
	}
}

func TestFactoriesProduceWorkingInstances(t *testing.T) {
	initial := view.View{ID: 0, Members: proc.Universe(4)}
	for _, f := range All() {
		alg := f.New(1, initial)
		if alg.Name() != f.Name {
			t.Errorf("instance name %q != factory name %q", alg.Name(), f.Name)
		}
		if !alg.InPrimary() {
			t.Errorf("%s: fresh instance not in initial primary", f.Name)
		}
		// A factory with messages must carry a codec for them.
		alg.ViewChange(view.View{ID: 1, Members: proc.NewSet(0, 1, 2)})
		msgs := alg.Poll()
		if len(msgs) > 0 && f.Codec == nil {
			t.Errorf("%s: sends messages but has no codec", f.Name)
		}
		for _, m := range msgs {
			b, err := f.Codec.Encode(m)
			if err != nil {
				t.Errorf("%s: encode: %v", f.Name, err)
				continue
			}
			if _, err := f.Codec.Decode(b); err != nil {
				t.Errorf("%s: decode: %v", f.Name, err)
			}
		}
	}
}
