// Package campaign is the engine behind the repository's trial-by-fire
// (thesis §2.2) at machine scale: it shards a long cascading soak's
// connectivity-change budget into independent chains per algorithm and
// schedules algorithms × chains across the experiment layer's shared
// worker pool, merging per-chain statistics back in chain order.
//
// The thesis's safety campaign replays 1,310,000 connectivity changes
// through one cascading chain per algorithm. A single chain is
// inherently sequential — every run continues from the previous run's
// state — but the campaign's purpose is statistical coverage, not one
// unbroken history: K shorter cascading chains seeded independently
// cover the same number of changes, preserve the cascading property
// inside every chain (algorithms carry ambiguous sessions and shrunken
// primaries across each chain's runs), and multiply the turbulent
// healing transitions the serial campaign only sees between segments.
// Each chain draws its randomness from a source derived purely from
// (rootSeed, algorithm, chain index), so per-chain results are
// bit-identical regardless of how many workers execute the campaign or
// in which order chains are scheduled.
package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynvote/internal/core"
	"dynvote/internal/experiment"
	"dynvote/internal/metrics"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/trace"
)

// Config parameterizes one campaign.
type Config struct {
	// Factories lists the algorithms to subject to the campaign, each
	// of which receives the full Changes budget.
	Factories []core.Factory
	// Procs is the number of simulated processes.
	Procs int
	// Changes is the total connectivity-change budget per algorithm,
	// split across Chains cascading chains.
	Changes int
	// Segment is the number of changes injected per cascading run
	// (runs cascade within a chain, healing between them).
	Segment int
	// Rate is the mean number of message rounds between changes.
	Rate float64
	// Seed is the campaign's root seed; see chainSource for how chain
	// streams derive from it.
	Seed int64
	// Chains is the number of independent cascading chains per
	// algorithm. 0 or 1 runs the historical single-chain soak.
	Chains int
	// TraceRetain is the per-chain trace ring-buffer capacity dumped
	// when that chain trips the checker; 0 disables tracing.
	TraceRetain int
	// ProgressEvery throttles Progress callbacks to at most one per
	// chain per interval; 0 disables progress entirely.
	ProgressEvery time.Duration
	// Progress, when non-nil, receives per-chain progress updates. The
	// engine serializes all hook invocations, so a Progress/
	// AlgorithmDone pair never runs concurrently with another.
	Progress func(ProgressUpdate)
	// AlgorithmDone, when non-nil, fires as soon as the last chain of
	// an algorithm completes, with the algorithm's merged result. With
	// one worker and one chain this reproduces the serial soak's
	// "progress…, PASSED" per-algorithm output ordering.
	AlgorithmDone func(AlgorithmResult)
	// Abort, when non-nil and set, drains the campaign cooperatively:
	// every chain stops at its next run boundary without error, and the
	// merged Result carries the partial statistics with Aborted set.
	// This is the SIGINT path — distinct from the internal
	// violation-triggered abort, which surfaces as an error.
	Abort *atomic.Bool
}

func (c Config) withDefaults() Config {
	if c.Chains <= 0 {
		c.Chains = 1
	}
	if c.Segment <= 0 {
		c.Segment = 12
	}
	return c
}

// ProgressUpdate is one chain's progress snapshot.
type ProgressUpdate struct {
	Algorithm      string
	Chain, Chains  int // Chain is 0-based
	Injected       int // changes injected by this chain so far
	Budget         int // this chain's change budget
	Runs, Formed   int
	Assertions     int64
	Elapsed        time.Duration // since this chain started
	AlgorithmStart time.Time     // when the algorithm's first chain started
}

// ChainStats is one chain's contribution to the campaign. Changes,
// Runs, Formed and Assertions are deterministic — bit-identical for a
// given (seed, chains) at any worker count, local or farmed — and are
// what golden fingerprints pin. Wall and Requeued are execution
// accounting: wall-clock time varies run to run, and Requeued counts
// how many times a farm coordinator re-issued the chain after worker
// loss or a straggler deadline (always zero in local runs).
type ChainStats struct {
	Algorithm  string
	Chain      int
	Changes    int
	Runs       int
	Formed     int // runs that ended with a primary component
	Assertions int64
	Wall       time.Duration
	Requeued   int
}

// AlgorithmResult merges one algorithm's chains in chain order.
type AlgorithmResult struct {
	Algorithm  string
	Chains     []ChainStats
	Changes    int
	Runs       int
	Formed     int
	Assertions int64
	// Elapsed is the wall time from the algorithm's first chain
	// starting to its last chain finishing (not deterministic).
	Elapsed time.Duration
}

// AvailabilityPercent returns the percentage of the algorithm's runs
// that ended with a primary component.
func (a AlgorithmResult) AvailabilityPercent() float64 {
	if a.Runs == 0 {
		return 0
	}
	return 100 * float64(a.Formed) / float64(a.Runs)
}

// Result is the campaign's chain-ordered merge.
type Result struct {
	Algorithms []AlgorithmResult
	// Violations lists every chain that tripped the checker, in
	// (algorithm, chain) order. The campaign aborts at the first
	// violation, so later chains may have stopped early.
	Violations []*ChainError
	// Aborted marks a campaign cut short by an external drain (SIGINT,
	// farm coordinator shutdown) rather than by a violation: the merged
	// statistics are a clean partial prefix, not a full budget.
	Aborted bool
	Elapsed time.Duration
}

// ChainError wraps a safety violation (or driver failure) with the
// chain that produced it. Unwrap exposes the underlying error, so a
// sim.ViolationError's retained trace dump survives the wrapping.
type ChainError struct {
	Algorithm string
	Chain     int
	Chains    int
	Changes   int // injected by the chain before the failure
	Err       error
}

// Error renders the chain coordinates and the underlying failure. A
// single-chain campaign omits the chain coordinates, matching the
// historical serial soak's error text exactly.
func (e *ChainError) Error() string {
	if e.Chains <= 1 {
		return fmt.Sprintf("%s: INCONSISTENCY or failure after %d changes: %v",
			e.Algorithm, e.Changes, e.Err)
	}
	return fmt.Sprintf("%s chain %d/%d: INCONSISTENCY or failure after %d changes: %v",
		e.Algorithm, e.Chain+1, e.Chains, e.Changes, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ChainError) Unwrap() error { return e.Err }

// chainSource derives a chain's deterministic random source. A
// single-chain campaign replays the historical serial seeding —
// rng.New(seed) — exactly, which keeps `-chains 1` campaigns
// bit-identical to the pre-campaign serial soak. Sharded campaigns
// label each chain's stream with (seed, algorithm, chain index) alone:
// no chain's draws depend on scheduling, worker count, or any other
// (algorithm, chain) pair.
func chainSource(seed int64, alg string, chain, chains int) *rng.Source {
	if chains == 1 {
		return rng.New(seed)
	}
	return rng.New(seed).ChildLabel("campaign/"+alg, seed, int64(chain))
}

// chainBudget splits the per-algorithm change budget: every chain gets
// total/chains changes, the first total%chains chains one extra.
func chainBudget(total, chains, chain int) int {
	budget := total / chains
	if chain < total%chains {
		budget++
	}
	return budget
}

// ErrAborted marks chains cut short cooperatively — by another chain's
// violation or an external drain; it never surfaces as a campaign
// error. The farm worker reports it to distinguish an aborted chain
// from a completed one.
var ErrAborted = fmt.Errorf("campaign: chain aborted")

// errAborted is the historical internal name.
var errAborted = ErrAborted

// Run executes the campaign: len(Factories) × Chains independent
// cascading chains, scheduled across the experiment worker pool
// (experiment.SetParallelism bounds concurrency; 1 forces fully
// sequential execution in (algorithm, chain) order). The returned
// Result carries per-chain and merged statistics that are identical
// for any worker count; the error is the first violation in chain
// order, nil when every chain passed. A violation in any chain aborts
// the whole campaign: running chains stop at their next run boundary.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	algs := len(cfg.Factories)
	jobs := algs * cfg.Chains

	stats := make([]ChainStats, jobs)
	errs := make([]error, jobs)
	var abort atomic.Bool
	var hookMu sync.Mutex

	// Per-algorithm completion bookkeeping: the worker finishing an
	// algorithm's last chain emits its merged result.
	chainsLeft := make([]atomic.Int32, algs)
	algStart := make([]atomic.Int64, algs) // first chain start, UnixNano; 0 = not started
	for i := range chainsLeft {
		chainsLeft[i].Store(int32(cfg.Chains))
	}

	start := time.Now()
	experiment.ParallelWorkers(jobs, func(_, job int) {
		alg, chain := job/cfg.Chains, job%cfg.Chains
		f := cfg.Factories[alg]

		now := time.Now().UnixNano()
		algStart[alg].CompareAndSwap(0, now)

		errs[job] = runChain(&cfg, f, chain, &stats[job], &abort, &hookMu,
			time.Unix(0, algStart[alg].Load()))
		if errs[job] != nil && errs[job] != errAborted {
			abort.Store(true)
		}

		if chainsLeft[alg].Add(-1) == 0 && cfg.AlgorithmDone != nil {
			res := mergeAlgorithm(f.Name, stats[alg*cfg.Chains:(alg+1)*cfg.Chains])
			res.Elapsed = time.Since(time.Unix(0, algStart[alg].Load()))
			clean := true
			for _, err := range errs[alg*cfg.Chains : (alg+1)*cfg.Chains] {
				if err != nil {
					clean = false
					break
				}
			}
			if clean {
				hookMu.Lock()
				cfg.AlgorithmDone(res)
				hookMu.Unlock()
			}
		}
	})

	return AssembleResult(cfg, stats, errs, time.Since(start))
}

// AssembleResult merges per-job chain statistics and errors into a
// campaign Result exactly as Run does: job index = alg*Chains+chain,
// algorithms merged in chain order, violations collected in
// (algorithm, chain) order, the first violation returned as the error.
// The farm coordinator feeds remotely executed chains through this
// same merge, which is what makes a farmed campaign's merged report
// bit-identical to a local run's at any worker count.
func AssembleResult(cfg Config, stats []ChainStats, errs []error, elapsed time.Duration) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Elapsed: elapsed}
	if cfg.Abort != nil && cfg.Abort.Load() {
		res.Aborted = true
	}
	for alg := 0; alg < len(cfg.Factories); alg++ {
		a := mergeAlgorithm(cfg.Factories[alg].Name, stats[alg*cfg.Chains:(alg+1)*cfg.Chains])
		if a.Runs > 0 {
			a.Elapsed = elapsed // upper bound; refined by AlgorithmDone consumers
		}
		res.Algorithms = append(res.Algorithms, a)
	}
	var first error
	for _, err := range errs {
		if err == nil || err == errAborted {
			continue
		}
		ce, ok := err.(*ChainError)
		if !ok {
			ce = &ChainError{Err: err, Chains: cfg.Chains}
		}
		res.Violations = append(res.Violations, ce)
		if first == nil {
			first = err
		}
	}
	return res, first
}

// RunChain executes a single (algorithm, chain) cell of the campaign
// in isolation, deterministically: the chain draws the same random
// stream it would inside Run, so the returned ChainStats are
// bit-identical to that chain's slot in a local campaign. abort, when
// non-nil, stops the chain cooperatively at its next run boundary
// (returning ErrAborted); the farm worker wires it to the
// coordinator's abort frame. Partial statistics accumulated before an
// abort or violation are returned alongside the error.
func RunChain(cfg Config, alg, chain int, abort *atomic.Bool) (ChainStats, error) {
	cfg = cfg.withDefaults()
	if abort == nil {
		abort = new(atomic.Bool)
	}
	var (
		stat   ChainStats
		hookMu sync.Mutex
	)
	err := runChain(&cfg, cfg.Factories[alg], chain, &stat, abort, &hookMu, time.Now())
	return stat, err
}

// AssembleAlgorithm folds one algorithm's chain stats in chain order —
// the merge Run applies per algorithm, exported so the farm
// coordinator's AlgorithmDone hook carries the identical shape.
func AssembleAlgorithm(name string, chains []ChainStats) AlgorithmResult {
	return mergeAlgorithm(name, chains)
}

// mergeAlgorithm folds one algorithm's chain stats, in chain order.
func mergeAlgorithm(name string, chains []ChainStats) AlgorithmResult {
	res := AlgorithmResult{Algorithm: name, Chains: append([]ChainStats(nil), chains...)}
	for _, c := range chains {
		res.Changes += c.Changes
		res.Runs += c.Runs
		res.Formed += c.Formed
		res.Assertions += c.Assertions
	}
	return res
}

// runChain executes one cascading chain to its budget: heal, run a
// segment of changes, repeat — the §2.2 loop — with the safety checker
// enabled after every message round.
func runChain(cfg *Config, f core.Factory, chain int, stat *ChainStats,
	abort *atomic.Bool, hookMu *sync.Mutex, algStart time.Time) error {
	budget := chainBudget(cfg.Changes, cfg.Chains, chain)
	stat.Algorithm = f.Name
	stat.Chain = chain

	reg := metrics.NewRegistry()
	simCfg := sim.Config{
		Procs:       cfg.Procs,
		Changes:     cfg.Segment,
		MeanRounds:  cfg.Rate,
		CheckSafety: true,
		Metrics:     reg,
	}
	if cfg.TraceRetain > 0 {
		simCfg.Trace = trace.NewRecorder(cfg.TraceRetain)
		// Keep structural events (views, connectivity changes) intact
		// but thin the delivery firehose so the retained window spans
		// more history per byte.
		simCfg.TraceSampleEvery = 8
	}
	d := sim.NewDriver(f, simCfg, chainSource(cfg.Seed, f.Name, chain, cfg.Chains))
	assertions := reg.Counter("sim_checker_assertions_total", "")

	start := time.Now()
	lastReport := start
	defer func() { stat.Wall = time.Since(start) }()
	for stat.Changes < budget {
		if abort.Load() || (cfg.Abort != nil && cfg.Abort.Load()) {
			return errAborted
		}
		d.Heal()
		res, err := d.Run()
		stat.Assertions = assertions.Value()
		if err != nil {
			return &ChainError{
				Algorithm: f.Name, Chain: chain, Chains: cfg.Chains,
				Changes: stat.Changes, Err: err,
			}
		}
		stat.Changes += res.ChangesInjected
		stat.Runs++
		if res.PrimaryFormed {
			stat.Formed++
		}
		if cfg.Progress != nil && cfg.ProgressEvery > 0 && time.Since(lastReport) >= cfg.ProgressEvery {
			lastReport = time.Now()
			u := ProgressUpdate{
				Algorithm: f.Name, Chain: chain, Chains: cfg.Chains,
				Injected: stat.Changes, Budget: budget,
				Runs: stat.Runs, Formed: stat.Formed,
				Assertions: stat.Assertions,
				Elapsed:    time.Since(start), AlgorithmStart: algStart,
			}
			hookMu.Lock()
			cfg.Progress(u)
			hookMu.Unlock()
		}
	}
	return nil
}
