// Package campaign is the engine behind the repository's trial-by-fire
// (thesis §2.2) at machine scale: it shards a long cascading soak's
// connectivity-change budget into independent chains per algorithm and
// schedules algorithms × chains across the experiment layer's shared
// worker pool, merging per-chain statistics back in chain order.
//
// The thesis's safety campaign replays 1,310,000 connectivity changes
// through one cascading chain per algorithm. A single chain is
// inherently sequential — every run continues from the previous run's
// state — but the campaign's purpose is statistical coverage, not one
// unbroken history: K shorter cascading chains seeded independently
// cover the same number of changes, preserve the cascading property
// inside every chain (algorithms carry ambiguous sessions and shrunken
// primaries across each chain's runs), and multiply the turbulent
// healing transitions the serial campaign only sees between segments.
// Each chain draws its randomness from a source derived purely from
// (rootSeed, algorithm, chain index), so per-chain results are
// bit-identical regardless of how many workers execute the campaign or
// in which order chains are scheduled.
package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynvote/internal/core"
	"dynvote/internal/experiment"
	"dynvote/internal/metrics"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/trace"
)

// Config parameterizes one campaign.
type Config struct {
	// Factories lists the algorithms to subject to the campaign, each
	// of which receives the full Changes budget.
	Factories []core.Factory
	// Procs is the number of simulated processes.
	Procs int
	// Changes is the total connectivity-change budget per algorithm,
	// split across Chains cascading chains.
	Changes int
	// Segment is the number of changes injected per cascading run
	// (runs cascade within a chain, healing between them).
	Segment int
	// Rate is the mean number of message rounds between changes.
	Rate float64
	// Seed is the campaign's root seed; see chainSource for how chain
	// streams derive from it.
	Seed int64
	// Chains is the number of independent cascading chains per
	// algorithm. 0 or 1 runs the historical single-chain soak.
	Chains int
	// TraceRetain is the per-chain trace ring-buffer capacity dumped
	// when that chain trips the checker; 0 disables tracing.
	TraceRetain int
	// ProgressEvery throttles Progress callbacks to at most one per
	// chain per interval; 0 disables progress entirely.
	ProgressEvery time.Duration
	// Progress, when non-nil, receives per-chain progress updates. The
	// engine serializes all hook invocations, so a Progress/
	// AlgorithmDone pair never runs concurrently with another.
	Progress func(ProgressUpdate)
	// AlgorithmDone, when non-nil, fires as soon as the last chain of
	// an algorithm completes, with the algorithm's merged result. With
	// one worker and one chain this reproduces the serial soak's
	// "progress…, PASSED" per-algorithm output ordering.
	AlgorithmDone func(AlgorithmResult)
}

func (c Config) withDefaults() Config {
	if c.Chains <= 0 {
		c.Chains = 1
	}
	if c.Segment <= 0 {
		c.Segment = 12
	}
	return c
}

// ProgressUpdate is one chain's progress snapshot.
type ProgressUpdate struct {
	Algorithm      string
	Chain, Chains  int // Chain is 0-based
	Injected       int // changes injected by this chain so far
	Budget         int // this chain's change budget
	Runs, Formed   int
	Assertions     int64
	Elapsed        time.Duration // since this chain started
	AlgorithmStart time.Time     // when the algorithm's first chain started
}

// ChainStats is one chain's contribution to the campaign: everything
// deterministic a chain produces. Timing lives at the algorithm level.
type ChainStats struct {
	Algorithm  string
	Chain      int
	Changes    int
	Runs       int
	Formed     int // runs that ended with a primary component
	Assertions int64
}

// AlgorithmResult merges one algorithm's chains in chain order.
type AlgorithmResult struct {
	Algorithm  string
	Chains     []ChainStats
	Changes    int
	Runs       int
	Formed     int
	Assertions int64
	// Elapsed is the wall time from the algorithm's first chain
	// starting to its last chain finishing (not deterministic).
	Elapsed time.Duration
}

// AvailabilityPercent returns the percentage of the algorithm's runs
// that ended with a primary component.
func (a AlgorithmResult) AvailabilityPercent() float64 {
	if a.Runs == 0 {
		return 0
	}
	return 100 * float64(a.Formed) / float64(a.Runs)
}

// Result is the campaign's chain-ordered merge.
type Result struct {
	Algorithms []AlgorithmResult
	// Violations lists every chain that tripped the checker, in
	// (algorithm, chain) order. The campaign aborts at the first
	// violation, so later chains may have stopped early.
	Violations []*ChainError
	Elapsed    time.Duration
}

// ChainError wraps a safety violation (or driver failure) with the
// chain that produced it. Unwrap exposes the underlying error, so a
// sim.ViolationError's retained trace dump survives the wrapping.
type ChainError struct {
	Algorithm string
	Chain     int
	Chains    int
	Changes   int // injected by the chain before the failure
	Err       error
}

// Error renders the chain coordinates and the underlying failure. A
// single-chain campaign omits the chain coordinates, matching the
// historical serial soak's error text exactly.
func (e *ChainError) Error() string {
	if e.Chains <= 1 {
		return fmt.Sprintf("%s: INCONSISTENCY or failure after %d changes: %v",
			e.Algorithm, e.Changes, e.Err)
	}
	return fmt.Sprintf("%s chain %d/%d: INCONSISTENCY or failure after %d changes: %v",
		e.Algorithm, e.Chain+1, e.Chains, e.Changes, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ChainError) Unwrap() error { return e.Err }

// chainSource derives a chain's deterministic random source. A
// single-chain campaign replays the historical serial seeding —
// rng.New(seed) — exactly, which keeps `-chains 1` campaigns
// bit-identical to the pre-campaign serial soak. Sharded campaigns
// label each chain's stream with (seed, algorithm, chain index) alone:
// no chain's draws depend on scheduling, worker count, or any other
// (algorithm, chain) pair.
func chainSource(seed int64, alg string, chain, chains int) *rng.Source {
	if chains == 1 {
		return rng.New(seed)
	}
	return rng.New(seed).ChildLabel("campaign/"+alg, seed, int64(chain))
}

// chainBudget splits the per-algorithm change budget: every chain gets
// total/chains changes, the first total%chains chains one extra.
func chainBudget(total, chains, chain int) int {
	budget := total / chains
	if chain < total%chains {
		budget++
	}
	return budget
}

// errAborted marks chains cut short by another chain's violation; it
// never surfaces as a campaign error.
var errAborted = fmt.Errorf("campaign: aborted by a violation in another chain")

// Run executes the campaign: len(Factories) × Chains independent
// cascading chains, scheduled across the experiment worker pool
// (experiment.SetParallelism bounds concurrency; 1 forces fully
// sequential execution in (algorithm, chain) order). The returned
// Result carries per-chain and merged statistics that are identical
// for any worker count; the error is the first violation in chain
// order, nil when every chain passed. A violation in any chain aborts
// the whole campaign: running chains stop at their next run boundary.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	algs := len(cfg.Factories)
	jobs := algs * cfg.Chains

	stats := make([]ChainStats, jobs)
	errs := make([]error, jobs)
	var abort atomic.Bool
	var hookMu sync.Mutex

	// Per-algorithm completion bookkeeping: the worker finishing an
	// algorithm's last chain emits its merged result.
	chainsLeft := make([]atomic.Int32, algs)
	algStart := make([]atomic.Int64, algs) // first chain start, UnixNano; 0 = not started
	for i := range chainsLeft {
		chainsLeft[i].Store(int32(cfg.Chains))
	}

	start := time.Now()
	experiment.ParallelWorkers(jobs, func(_, job int) {
		alg, chain := job/cfg.Chains, job%cfg.Chains
		f := cfg.Factories[alg]

		now := time.Now().UnixNano()
		algStart[alg].CompareAndSwap(0, now)

		errs[job] = runChain(&cfg, f, chain, &stats[job], &abort, &hookMu,
			time.Unix(0, algStart[alg].Load()))
		if errs[job] != nil && errs[job] != errAborted {
			abort.Store(true)
		}

		if chainsLeft[alg].Add(-1) == 0 && cfg.AlgorithmDone != nil {
			res := mergeAlgorithm(f.Name, stats[alg*cfg.Chains:(alg+1)*cfg.Chains])
			res.Elapsed = time.Since(time.Unix(0, algStart[alg].Load()))
			clean := true
			for _, err := range errs[alg*cfg.Chains : (alg+1)*cfg.Chains] {
				if err != nil {
					clean = false
					break
				}
			}
			if clean {
				hookMu.Lock()
				cfg.AlgorithmDone(res)
				hookMu.Unlock()
			}
		}
	})

	res := &Result{Elapsed: time.Since(start)}
	for alg := 0; alg < algs; alg++ {
		a := mergeAlgorithm(cfg.Factories[alg].Name, stats[alg*cfg.Chains:(alg+1)*cfg.Chains])
		if ns := algStart[alg].Load(); ns != 0 {
			a.Elapsed = res.Elapsed // upper bound; refined by AlgorithmDone consumers
		}
		res.Algorithms = append(res.Algorithms, a)
	}
	var first error
	for _, err := range errs {
		if err == nil || err == errAborted {
			continue
		}
		ce, ok := err.(*ChainError)
		if !ok {
			ce = &ChainError{Err: err, Chains: cfg.Chains}
		}
		res.Violations = append(res.Violations, ce)
		if first == nil {
			first = err
		}
	}
	return res, first
}

// mergeAlgorithm folds one algorithm's chain stats, in chain order.
func mergeAlgorithm(name string, chains []ChainStats) AlgorithmResult {
	res := AlgorithmResult{Algorithm: name, Chains: append([]ChainStats(nil), chains...)}
	for _, c := range chains {
		res.Changes += c.Changes
		res.Runs += c.Runs
		res.Formed += c.Formed
		res.Assertions += c.Assertions
	}
	return res
}

// runChain executes one cascading chain to its budget: heal, run a
// segment of changes, repeat — the §2.2 loop — with the safety checker
// enabled after every message round.
func runChain(cfg *Config, f core.Factory, chain int, stat *ChainStats,
	abort *atomic.Bool, hookMu *sync.Mutex, algStart time.Time) error {
	budget := chainBudget(cfg.Changes, cfg.Chains, chain)
	stat.Algorithm = f.Name
	stat.Chain = chain

	reg := metrics.NewRegistry()
	simCfg := sim.Config{
		Procs:       cfg.Procs,
		Changes:     cfg.Segment,
		MeanRounds:  cfg.Rate,
		CheckSafety: true,
		Metrics:     reg,
	}
	if cfg.TraceRetain > 0 {
		simCfg.Trace = trace.NewRecorder(cfg.TraceRetain)
		// Keep structural events (views, connectivity changes) intact
		// but thin the delivery firehose so the retained window spans
		// more history per byte.
		simCfg.TraceSampleEvery = 8
	}
	d := sim.NewDriver(f, simCfg, chainSource(cfg.Seed, f.Name, chain, cfg.Chains))
	assertions := reg.Counter("sim_checker_assertions_total", "")

	start := time.Now()
	lastReport := start
	for stat.Changes < budget {
		if abort.Load() {
			return errAborted
		}
		d.Heal()
		res, err := d.Run()
		stat.Assertions = assertions.Value()
		if err != nil {
			return &ChainError{
				Algorithm: f.Name, Chain: chain, Chains: cfg.Chains,
				Changes: stat.Changes, Err: err,
			}
		}
		stat.Changes += res.ChangesInjected
		stat.Runs++
		if res.PrimaryFormed {
			stat.Formed++
		}
		if cfg.Progress != nil && cfg.ProgressEvery > 0 && time.Since(lastReport) >= cfg.ProgressEvery {
			lastReport = time.Now()
			u := ProgressUpdate{
				Algorithm: f.Name, Chain: chain, Chains: cfg.Chains,
				Injected: stat.Changes, Budget: budget,
				Runs: stat.Runs, Formed: stat.Formed,
				Assertions: stat.Assertions,
				Elapsed:    time.Since(start), AlgorithmStart: algStart,
			}
			hookMu.Lock()
			cfg.Progress(u)
			hookMu.Unlock()
		}
	}
	return nil
}
