package campaign

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/core"
	"dynvote/internal/experiment"
	"dynvote/internal/naive"
)

// stripTiming zeroes the wall-clock fields so deterministic state can
// be compared across runs with reflect.DeepEqual.
func stripTiming(res *Result) *Result {
	res.Elapsed = 0
	for i := range res.Algorithms {
		res.Algorithms[i].Elapsed = 0
		for j := range res.Algorithms[i].Chains {
			res.Algorithms[i].Chains[j].Wall = 0
		}
	}
	return res
}

// TestCampaignDeterministicAcrossWorkers is the engine's core contract:
// per-chain statistics and merged totals are bit-identical at 1, 3 and
// 8 workers, for every algorithm in the set, because each chain's
// randomness derives purely from (seed, algorithm, chain index).
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	defer experiment.SetParallelism(0)
	cfg := Config{
		Factories: algset.All(),
		Procs:     16,
		Changes:   240,
		Segment:   12,
		Rate:      1.5,
		Seed:      42,
		Chains:    4,
	}

	var ref *Result
	for _, workers := range []int{1, 3, 8} {
		experiment.SetParallelism(workers)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		stripTiming(res)
		if len(res.Algorithms) != len(cfg.Factories) {
			t.Fatalf("workers=%d: %d algorithm results, want %d",
				workers, len(res.Algorithms), len(cfg.Factories))
		}
		for _, a := range res.Algorithms {
			if len(a.Chains) != cfg.Chains {
				t.Fatalf("workers=%d: %s has %d chains, want %d",
					workers, a.Algorithm, len(a.Chains), cfg.Chains)
			}
			if a.Changes < cfg.Changes {
				t.Errorf("workers=%d: %s injected %d changes, want >= %d",
					workers, a.Algorithm, a.Changes, cfg.Changes)
			}
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("workers=%d: campaign result differs from workers=1:\n got %+v\nwant %+v",
				workers, res, ref)
		}
	}
}

// TestSingleChainMatchesSerialSeeding: a -chains 1 campaign must replay
// the historical serial soak's stream (rng.New(seed), no child label),
// so its stats differ from the same budget sharded into 2 chains —
// proof the seeding scheme actually switches over.
func TestSingleChainMatchesSerialSeeding(t *testing.T) {
	defer experiment.SetParallelism(0)
	experiment.SetParallelism(1)
	f, err := algset.ByName("ykd")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Factories: []core.Factory{f},
		Procs:     16, Changes: 240, Segment: 12, Rate: 1.5, Seed: 7, Chains: 1,
	}
	one, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Chains = 2
	two, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(one.Algorithms[0].Chains, two.Algorithms[0].Chains) {
		t.Error("1-chain and 2-chain campaigns produced identical chain stats; seeding scheme is not sharding")
	}
	if got := two.Algorithms[0].Changes; got < base.Changes {
		t.Errorf("2-chain campaign injected %d changes, want >= %d", got, base.Changes)
	}
}

// TestChainBudgetSplit: budgets cover the total exactly, remainder
// spread over the first chains.
func TestChainBudgetSplit(t *testing.T) {
	for _, tc := range []struct{ total, chains int }{
		{100000, 8}, {7, 3}, {5, 5}, {3, 8}, {240, 1},
	} {
		sum := 0
		for c := 0; c < tc.chains; c++ {
			b := chainBudget(tc.total, tc.chains, c)
			if c > 0 && b > chainBudget(tc.total, tc.chains, c-1) {
				t.Errorf("chainBudget(%d,%d): budget grows at chain %d", tc.total, tc.chains, c)
			}
			sum += b
		}
		if sum != tc.total {
			t.Errorf("chainBudget(%d,%d): budgets sum to %d", tc.total, tc.chains, sum)
		}
	}
}

// TestNaiveViolationAbortsCampaign: a violation in any chain must
// surface as a ChainError carrying the trace dump, and abort the other
// chains rather than letting the campaign run to its full budget.
func TestNaiveViolationAbortsCampaign(t *testing.T) {
	defer experiment.SetParallelism(0)
	for _, workers := range []int{1, 4} {
		experiment.SetParallelism(workers)
		cfg := Config{
			Factories:   []core.Factory{naive.Factory()},
			Procs:       8,
			Changes:     40000, // far more than needed: the abort must cut it short
			Segment:     10,
			Rate:        1,
			Seed:        29,
			Chains:      4,
			TraceRetain: 512,
		}
		res, err := Run(cfg)
		if err == nil {
			t.Fatalf("workers=%d: the naive strawman survived the campaign", workers)
		}
		var ce *ChainError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: error is %T, want *ChainError", workers, err)
		}
		if msg := ce.Error(); !strings.Contains(msg, "INCONSISTENCY") || !strings.Contains(msg, "--- trace") {
			t.Errorf("workers=%d: ChainError missing violation/trace dump: %.200s", workers, msg)
		}
		if !strings.Contains(ce.Error(), "chain") {
			t.Errorf("workers=%d: sharded ChainError missing chain coordinates: %.120s", workers, ce.Error())
		}
		if len(res.Violations) == 0 {
			t.Errorf("workers=%d: result records no violations", workers)
		}
		// The abort must have stopped well short of the full budget.
		if got := res.Algorithms[0].Changes; got >= cfg.Changes {
			t.Errorf("workers=%d: campaign ran to full budget (%d changes) despite violation", workers, got)
		}
	}
}

// TestChainErrorFormats: single-chain errors keep the historical text;
// sharded errors add chain coordinates. Unwrap exposes the cause.
func TestChainErrorFormats(t *testing.T) {
	cause := errors.New("boom")
	single := &ChainError{Algorithm: "ykd", Chain: 0, Chains: 1, Changes: 42, Err: cause}
	if got, want := single.Error(), "ykd: INCONSISTENCY or failure after 42 changes: boom"; got != want {
		t.Errorf("single-chain error = %q, want %q", got, want)
	}
	sharded := &ChainError{Algorithm: "ykd", Chain: 2, Chains: 8, Changes: 42, Err: cause}
	if got, want := sharded.Error(), "ykd chain 3/8: INCONSISTENCY or failure after 42 changes: boom"; got != want {
		t.Errorf("sharded error = %q, want %q", got, want)
	}
	if !errors.Is(sharded, cause) {
		t.Error("ChainError does not unwrap to its cause")
	}
}
