package campaign_test

import (
	"fmt"
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/campaign"
	"dynvote/internal/core"
	"dynvote/internal/experiment"
)

// TestCampaignStreamStability64 pins a small sharded 64-process
// campaign's merged statistics to values captured BEFORE the multi-word
// proc.Set representation change: the campaign's cascading chains must
// keep consuming the exact same random draws at the thesis's system
// size. See internal/experiment/stream_stability_test.go for the
// contract; these constants are pre-PR goldens, not to be regenerated.
func TestCampaignStreamStability64(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign soak in -short mode")
	}
	defer experiment.SetParallelism(0)
	experiment.SetParallelism(2)

	ykdF, err := algset.ByName("ykd")
	if err != nil {
		t.Fatal(err)
	}
	dflsF, err := algset.ByName("dfls")
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(campaign.Config{
		Factories: []core.Factory{ykdF, dflsF},
		Procs:     64,
		Changes:   120,
		Segment:   12,
		Rate:      1.5,
		Seed:      20000505,
		Chains:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{
		"ykd changes=144 runs=12 formed=10 assertions=300",
		"dfls changes=144 runs=12 formed=8 assertions=301",
	} {
		a := res.Algorithms[i]
		got := fmt.Sprintf("%s changes=%d runs=%d formed=%d assertions=%d",
			a.Algorithm, a.Changes, a.Runs, a.Formed, a.Assertions)
		if got != want {
			t.Errorf("campaign stream moved:\n got  %q\n want %q", got, want)
		}
	}
}
