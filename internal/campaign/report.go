package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Report is the machine-readable record of one campaign, written by
// `quorumcheck -json` so CI can assert on the soak's outcome — the
// change count actually injected, per-algorithm availability, checker
// assertion totals, and the violation (if any) — without scraping the
// human-readable progress stream.
type Report struct {
	Tool        string    `json:"tool"`
	GeneratedAt time.Time `json:"generated_at"`
	Seed        int64     `json:"seed"`
	Procs       int       `json:"procs"`
	Changes     int       `json:"changes"`
	Segment     int       `json:"segment"`
	Rate        float64   `json:"rate"`
	Chains      int       `json:"chains"`
	Workers     int       `json:"workers"`
	WallSeconds float64   `json:"wall_seconds"`
	// Requeued totals the chain re-issues across the whole campaign —
	// farm retries after worker loss or straggler deadlines. Always 0
	// for local runs.
	Requeued int `json:"requeued"`
	// Aborted marks a campaign drained early (SIGINT, coordinator
	// shutdown): the statistics are a clean partial prefix.
	Aborted bool `json:"aborted,omitempty"`
	// Violation carries the first chain failure, trace dump included;
	// empty on a clean campaign.
	Violation  string            `json:"violation,omitempty"`
	Algorithms []AlgorithmReport `json:"algorithms"`
}

// AlgorithmReport flattens one algorithm's merged chains.
type AlgorithmReport struct {
	Algorithm       string        `json:"algorithm"`
	Changes         int           `json:"changes"`
	Runs            int           `json:"runs"`
	Formed          int           `json:"formed"`
	AvailabilityPct float64       `json:"availability_pct"`
	Assertions      int64         `json:"assertions"`
	Chains          []ChainReport `json:"chains"`
}

// ChainReport is one chain's contribution: the deterministic counters
// plus execution accounting (wall time, farm requeues) so CI artifacts
// show where a campaign's time went and which chains were retried.
type ChainReport struct {
	Chain       int     `json:"chain"`
	Changes     int     `json:"changes"`
	Runs        int     `json:"runs"`
	Formed      int     `json:"formed"`
	Assertions  int64   `json:"assertions"`
	WallSeconds float64 `json:"wall_seconds"`
	Requeued    int     `json:"requeued"`
}

// NewReport flattens a campaign result. violation may be nil.
func NewReport(tool string, cfg Config, res *Result, workers int, violation error) *Report {
	cfg = cfg.withDefaults()
	r := &Report{
		Tool:        tool,
		GeneratedAt: time.Now().UTC(),
		Seed:        cfg.Seed,
		Procs:       cfg.Procs,
		Changes:     cfg.Changes,
		Segment:     cfg.Segment,
		Rate:        cfg.Rate,
		Chains:      cfg.Chains,
		Workers:     workers,
		WallSeconds: res.Elapsed.Seconds(),
	}
	if violation != nil {
		r.Violation = violation.Error()
	}
	r.Aborted = res.Aborted
	for _, a := range res.Algorithms {
		ar := AlgorithmReport{
			Algorithm:       a.Algorithm,
			Changes:         a.Changes,
			Runs:            a.Runs,
			Formed:          a.Formed,
			AvailabilityPct: a.AvailabilityPercent(),
			Assertions:      a.Assertions,
		}
		for _, c := range a.Chains {
			ar.Chains = append(ar.Chains, ChainReport{
				Chain: c.Chain, Changes: c.Changes, Runs: c.Runs,
				Formed: c.Formed, Assertions: c.Assertions,
				WallSeconds: c.Wall.Seconds(), Requeued: c.Requeued,
			})
			r.Requeued += c.Requeued
		}
		r.Algorithms = append(r.Algorithms, ar)
	}
	return r
}

// ReadReport decodes a report previously written by WriteFile, for
// consumers like benchjson that fold campaign outcomes into committed
// benchmark files.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("campaign: decode report: %w", err)
	}
	return &rep, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encode report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("campaign: write report: %w", err)
	}
	return nil
}
