package campaign

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

// TestReportRoundTrip pins the report format — the new execution
// accounting (per-chain wall time, requeue counts, the aborted marker)
// must appear under stable JSON keys alongside the historical fields —
// and proves ReadReport inverts WriteFile.
func TestReportRoundTrip(t *testing.T) {
	res := &Result{
		Algorithms: []AlgorithmResult{{
			Algorithm: "ykd", Changes: 240, Runs: 20, Formed: 18,
			Assertions: 999, Elapsed: 2 * time.Second,
			Chains: []ChainStats{
				{Algorithm: "ykd", Chain: 0, Changes: 120, Runs: 10, Formed: 9,
					Assertions: 500, Wall: 900 * time.Millisecond},
				{Algorithm: "ykd", Chain: 1, Changes: 120, Runs: 10, Formed: 9,
					Assertions: 499, Wall: 1100 * time.Millisecond, Requeued: 2},
			},
		}},
		Aborted: true,
		Elapsed: 2 * time.Second,
	}
	cfg := Config{Seed: 7, Procs: 8, Changes: 240, Segment: 12, Rate: 1.5, Chains: 2}
	rep := NewReport("quorumcheck-test", cfg, res, 3, errors.New("boom"))

	if rep.Requeued != 2 {
		t.Errorf("Report.Requeued = %d, want the per-chain sum 2", rep.Requeued)
	}
	if !rep.Aborted {
		t.Error("Report.Aborted not carried over from the result")
	}

	path := t.TempDir() + "/report.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Format pin: CI and benchjson key on these literal names.
	for _, key := range []string{
		`"tool"`, `"seed"`, `"workers"`, `"wall_seconds"`, `"requeued"`,
		`"aborted"`, `"violation"`, `"availability_pct"`, `"chain"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report JSON missing key %s:\n%.400s", key, data)
		}
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "quorumcheck-test" || back.Workers != 3 ||
		back.Requeued != 2 || !back.Aborted || back.Violation != "boom" {
		t.Errorf("round-tripped header fields mangled: %+v", back)
	}
	if len(back.Algorithms) != 1 || len(back.Algorithms[0].Chains) != 2 {
		t.Fatalf("round-tripped algorithms mangled: %+v", back.Algorithms)
	}
	c1 := back.Algorithms[0].Chains[1]
	if c1.WallSeconds != 1.1 || c1.Requeued != 2 || c1.Assertions != 499 {
		t.Errorf("round-tripped chain accounting mangled: %+v", c1)
	}
}
