package campaign

import (
	"fmt"
	"io"
	"sync"
)

// Reporter serializes progress lines from concurrent chains onto one
// writer. Concurrent fmt.Fprintf calls on a shared writer interleave
// at arbitrary byte boundaries — a multi-worker campaign would tear
// its own progress lines — so every line is formatted into a private
// buffer under the reporter's mutex and emitted with a single Write.
// A nil Reporter is a no-op, so call sites never branch on whether
// progress output was requested.
type Reporter struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// NewReporter wraps w; a nil writer yields a nil (no-op) Reporter.
func NewReporter(w io.Writer) *Reporter {
	if w == nil {
		return nil
	}
	return &Reporter{w: w}
}

// Printf emits one line, appending a trailing newline when the format
// does not end in one. Lines from concurrent callers never interleave.
func (r *Reporter) Printf(format string, args ...any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = fmt.Appendf(r.buf[:0], format, args...)
	if n := len(r.buf); n == 0 || r.buf[n-1] != '\n' {
		r.buf = append(r.buf, '\n')
	}
	r.w.Write(r.buf)
}
