package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestReporterSerializesLines: many goroutines printing concurrently
// must never tear each other's lines — every emitted line is exactly
// one of the lines some goroutine printed.
func TestReporterSerializesLines(t *testing.T) {
	var buf bytes.Buffer
	rep := NewReporter(&buf)

	const goroutines, lines = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < lines; i++ {
				rep.Printf("worker-%02d line %04d padding padding padding padding", g, i)
			}
		}(g)
	}
	wg.Wait()

	got := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(got) != goroutines*lines {
		t.Fatalf("%d lines emitted, want %d", len(got), goroutines*lines)
	}
	for _, line := range got {
		var g, i int
		if _, err := fmt.Sscanf(line, "worker-%d line %d", &g, &i); err != nil {
			t.Fatalf("torn line: %q", line)
		}
		if !strings.HasSuffix(line, "padding padding padding padding") {
			t.Fatalf("truncated line: %q", line)
		}
	}
}

// TestReporterNilSafety: a nil reporter (no output requested) is a
// no-op, and Printf appends a newline only when the format lacks one.
func TestReporterNilSafety(t *testing.T) {
	var rep *Reporter
	rep.Printf("into the void")
	if NewReporter(nil) != nil {
		t.Error("NewReporter(nil) should yield a nil reporter")
	}

	var buf bytes.Buffer
	r := NewReporter(&buf)
	r.Printf("no newline")
	r.Printf("has newline\n")
	if got, want := buf.String(), "no newline\nhas newline\n"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}
