package core_test

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

// steady is an algorithm stub with permanent outbound traffic: every
// Poll returns the same (immutable) messages, modeling a node whose
// algorithm speaks on each application send — the worst case for the
// piggyback path. Reusing one slice is legal under the Poll contract
// (valid until the next Poll).
type steady struct {
	out []core.Message
}

func (s *steady) Name() string                  { return "steady" }
func (s *steady) ViewChange(view.View)          {}
func (s *steady) Deliver(proc.ID, core.Message) {}
func (s *steady) Poll() []core.Message          { return s.out }
func (s *steady) InPrimary() bool               { return true }

// BenchmarkPiggybackOutgoing measures the per-message send path a live
// GCS node drives on every application broadcast (gcs.Node bundles via
// Piggyback.Outgoing): two pending algorithm messages plus an
// application payload. The bundle buffer is owned by the Piggyback and
// reused across calls, so steady-state cost is the encoding alone.
func BenchmarkPiggybackOutgoing(b *testing.B) {
	alg := &steady{out: []core.Message{attemptMsg(7), attemptMsg(8)}}
	pb := core.NewPiggyback(alg, ykd.Codec{})
	app := []byte("application payload bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, send, err := pb.Outgoing(app); err != nil || !send {
			b.Fatalf("Outgoing = %v, %v", send, err)
		}
	}
}

// BenchmarkPiggybackRoundTrip adds the receive side: the bundle is
// unpacked, algorithm messages delivered, payload returned.
func BenchmarkPiggybackRoundTrip(b *testing.B) {
	sender := core.NewPiggyback(&steady{out: []core.Message{attemptMsg(7)}}, ykd.Codec{})
	receiver := core.NewPiggyback(&steady{}, ykd.Codec{})
	app := []byte("application payload bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, _, err := sender.Outgoing(app)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := receiver.Incoming(1, data); err != nil {
			b.Fatal(err)
		}
	}
}
