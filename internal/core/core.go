// Package core defines the algorithm-to-application interface of
// thesis Chapter 2: the contract between a primary component algorithm
// and whatever carries its messages.
//
// The thesis's central implementation idea is that the algorithm is an
// independent entity with no inherent communication abilities: it only
// needs to broadcast messages, receive messages and view-change
// reports, and maintain state. Anything that provides those services —
// the in-process simulation driver, or a live group communication
// substrate — can host any of the algorithms unchanged.
//
// Algorithms are event-driven and deterministic: state changes only in
// ViewChange and Deliver, so the host never needs to poll except right
// after feeding the algorithm new information (thesis §2.1).
package core

import (
	"fmt"

	"dynvote/internal/proc"
	"dynvote/internal/view"
	"dynvote/internal/wire"
)

// Message is one algorithm-level protocol message. Concrete message
// types are defined by each algorithm package and must be treated as
// immutable once returned from Poll, because the simulation driver
// fans a single broadcast message out to many recipients without
// copying.
type Message interface {
	// Kind names the message type for tracing and diagnostics,
	// e.g. "ykd/state".
	Kind() string
}

// Codec translates a message to and from its wire form. Codecs are
// stateless and shared across all instances of an algorithm.
type Codec interface {
	Encode(m Message) ([]byte, error)
	Decode(b []byte) (Message, error)
}

// Algorithm is a primary component algorithm instance bound to a
// single process. It mirrors the C++ class of thesis Figure 2-1:
// viewChanged, incomingMessage, outgoingMessagePoll and inPrimary.
//
// The host must call Poll after every ViewChange or Deliver and
// broadcast each returned message to the algorithm's current view;
// between events the algorithm never has anything new to send.
type Algorithm interface {
	// Name identifies the algorithm variant, e.g. "ykd".
	Name() string
	// ViewChange reports a new connectivity view containing this
	// process. Any attempt in progress is interrupted.
	ViewChange(v view.View)
	// Deliver hands the algorithm one protocol message broadcast by
	// process from within the current view. Hosts guarantee
	// view-synchronous delivery: messages sent in an earlier view are
	// dropped, never delivered late.
	Deliver(from proc.ID, m Message)
	// Poll returns the broadcasts the algorithm wants sent to its
	// current view, in order. It drains the send queue: a second call
	// without intervening events returns nil. The returned slice may
	// be recycled by the algorithm and is only valid until the next
	// Poll; the Messages inside it remain immutable and may be
	// retained indefinitely.
	Poll() []Message
	// InPrimary reports whether this process currently belongs to the
	// live primary component.
	InPrimary() bool
}

// AmbiguousReporter is implemented by algorithms that retain ambiguous
// sessions, enabling the Figure 4-7/4-8 measurements.
type AmbiguousReporter interface {
	// AmbiguousSessionCount returns the number of pending ambiguous
	// sessions currently retained.
	AmbiguousSessionCount() int
}

// PrimaryReporter exposes the member set of the primary component the
// process believes it is in, for the safety checker. Only meaningful
// while InPrimary is true.
type PrimaryReporter interface {
	PrimaryMembers() proc.Set
}

// Resetter is implemented by algorithms that can restore themselves to
// their just-constructed state in place, without reallocating internal
// storage. Reset(self, initial) must leave the instance observably
// identical to Factory.New(self, initial): same durable state, same
// protocol phase, an empty send queue — while retained maps and slices
// (cleared, truncated) keep their capacity. Hosts that execute many
// independent runs (the fresh-start experiment sweeps) use it to
// amortize construction: one simulation stack per worker, reset
// between runs instead of rebuilt.
//
// Reset must be exact: a run executed on a reset instance must be
// bit-identical to the same run on a fresh one (see the reset-vs-fresh
// golden tests). Anything observable — durable state, pending
// sessions, snapshot-restorable state — must be cleared; only
// invisible capacity may be retained.
type Resetter interface {
	Reset(self proc.ID, initial view.View)
}

// Snapshotter is implemented by algorithms whose durable state can be
// saved to and restored from stable storage. Dynamic voting comes from
// replicated databases, where a process that crashes recovers with its
// state intact — the session bookkeeping is exactly what must survive,
// or the recovered process could vote itself into a primary it had
// already conceded.
//
// Restore rebuilds the durable state on a fresh instance; the next
// ViewChange resumes the protocol. A restored process reports
// InPrimary false until it forms or accepts a primary again.
type Snapshotter interface {
	// Snapshot encodes the algorithm's durable state.
	Snapshot() ([]byte, error)
	// Restore replaces this instance's durable state with a snapshot
	// produced by the same algorithm variant.
	Restore(data []byte) error
}

// Factory describes one algorithm variant: how to build instances and
// how to put their messages on the wire.
type Factory struct {
	// Name is the variant's identifier, e.g. "ykd", "mr1p".
	Name string
	// New builds an instance for process self starting in the initial
	// view, which contains all participating processes (thesis §2.1:
	// every later view contains only processes from the first).
	New func(self proc.ID, initial view.View) Algorithm
	// Codec encodes and decodes this variant's messages. Nil for
	// algorithms that send no messages (simple majority).
	Codec Codec
}

// Piggyback implements the exact application-facing contract of thesis
// Figure 2-1 on top of any Algorithm: applications pass every outgoing
// message through Outgoing and every incoming one through Incoming,
// and the algorithm's extra information rides along invisibly.
type Piggyback struct {
	alg   Algorithm
	codec Codec
	// w is the reused encode buffer: one bundle per Outgoing call, in
	// place. Outgoing is the per-message hot path of a live node, so
	// re-allocating the writer (and growing it from empty) per call
	// would dominate the send side.
	w wire.Writer
}

// NewPiggyback wraps alg, whose messages are encoded with codec.
func NewPiggyback(alg Algorithm, codec Codec) *Piggyback {
	return &Piggyback{alg: alg, codec: codec}
}

// ViewChanged forwards a connectivity report to the algorithm. The
// application should call Outgoing(nil) afterwards and broadcast the
// result, giving the algorithm a chance to speak.
func (pb *Piggyback) ViewChanged(v view.View) { pb.alg.ViewChange(v) }

// InPrimary reports whether this process is in the primary component.
func (pb *Piggyback) InPrimary() bool { return pb.alg.InPrimary() }

// Algorithm returns the wrapped algorithm.
func (pb *Piggyback) Algorithm() Algorithm { return pb.alg }

// Outgoing bundles the algorithm's pending broadcasts with an optional
// application payload. It returns (nil, false) when there is nothing
// to send at all — no algorithm traffic and no application payload.
// This is the thesis's outgoingMessagePoll.
//
// The returned bundle aliases a buffer owned by the Piggyback and is
// only valid until the next Outgoing call; callers that need to keep
// it (or send it asynchronously) must copy.
func (pb *Piggyback) Outgoing(app []byte) ([]byte, bool, error) {
	msgs := pb.alg.Poll()
	if len(msgs) == 0 && app == nil {
		return nil, false, nil
	}
	pb.w.Reset()
	pb.w.Uvarint(uint64(len(msgs)))
	for _, m := range msgs {
		b, err := pb.codec.Encode(m)
		if err != nil {
			return nil, false, fmt.Errorf("piggyback encode: %w", err)
		}
		pb.w.RawBytes(b)
	}
	if app != nil {
		pb.w.Bool(true)
		pb.w.RawBytes(app)
	} else {
		pb.w.Bool(false)
	}
	return pb.w.Bytes(), true, nil
}

// Incoming unbundles a payload produced by Outgoing: algorithm
// messages are delivered to the wrapped algorithm, and the application
// payload (nil if there was none) is returned — the application never
// sees the algorithm's extra information. This is the thesis's
// incomingMessage.
func (pb *Piggyback) Incoming(from proc.ID, data []byte) ([]byte, error) {
	r := wire.NewReader(data)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("piggyback header: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		raw := r.RawBytes()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("piggyback message %d: %w", i, err)
		}
		m, err := pb.codec.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("piggyback decode %d: %w", i, err)
		}
		pb.alg.Deliver(from, m)
	}
	hasApp := r.Bool()
	var app []byte
	if hasApp {
		app = r.RawBytes()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("piggyback payload: %w", err)
	}
	return app, nil
}
