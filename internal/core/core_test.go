package core_test

import (
	"bytes"
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

// fake is a minimal algorithm for exercising the Piggyback wrapper
// with a real codec (ykd's).
type fake struct {
	out       []core.Message
	delivered []core.Message
	views     []view.View
	primary   bool
}

func (f *fake) Name() string           { return "fake" }
func (f *fake) ViewChange(v view.View) { f.views = append(f.views, v) }
func (f *fake) Deliver(_ proc.ID, m core.Message) {
	f.delivered = append(f.delivered, m)
}
func (f *fake) Poll() []core.Message {
	out := f.out
	f.out = nil
	return out
}
func (f *fake) InPrimary() bool { return f.primary }

func attemptMsg(n int64) core.Message {
	return &ykd.AttemptMessage{ViewID: n, Session: view.Session{Number: n, Members: proc.NewSet(0, 1)}}
}

func TestPiggybackNothingToSend(t *testing.T) {
	pb := core.NewPiggyback(&fake{}, ykd.Codec{})
	data, send, err := pb.Outgoing(nil)
	if err != nil {
		t.Fatal(err)
	}
	if send || data != nil {
		t.Errorf("Outgoing(nil) with idle algorithm = (%v, %v), want nothing", data, send)
	}
}

func TestPiggybackAppOnly(t *testing.T) {
	sender := core.NewPiggyback(&fake{}, ykd.Codec{})
	data, send, err := sender.Outgoing([]byte("payload"))
	if err != nil || !send {
		t.Fatalf("Outgoing = %v, %v", send, err)
	}

	recvAlg := &fake{}
	receiver := core.NewPiggyback(recvAlg, ykd.Codec{})
	app, err := receiver.Incoming(1, data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(app, []byte("payload")) {
		t.Errorf("app payload = %q", app)
	}
	if len(recvAlg.delivered) != 0 {
		t.Errorf("algorithm got %d messages, want 0", len(recvAlg.delivered))
	}
}

func TestPiggybackBundlesAlgorithmTraffic(t *testing.T) {
	sendAlg := &fake{out: []core.Message{attemptMsg(3), attemptMsg(4)}}
	sender := core.NewPiggyback(sendAlg, ykd.Codec{})
	data, send, err := sender.Outgoing([]byte("app"))
	if err != nil || !send {
		t.Fatalf("Outgoing = %v, %v", send, err)
	}

	recvAlg := &fake{}
	receiver := core.NewPiggyback(recvAlg, ykd.Codec{})
	app, err := receiver.Incoming(2, data)
	if err != nil {
		t.Fatal(err)
	}
	// The application never sees the algorithm's extra information.
	if string(app) != "app" {
		t.Errorf("app payload = %q", app)
	}
	if len(recvAlg.delivered) != 2 {
		t.Fatalf("algorithm got %d messages, want 2", len(recvAlg.delivered))
	}
	am, ok := recvAlg.delivered[0].(*ykd.AttemptMessage)
	if !ok || am.ViewID != 3 {
		t.Errorf("first delivered = %#v", recvAlg.delivered[0])
	}
}

func TestPiggybackAlgOnlyNoApp(t *testing.T) {
	sendAlg := &fake{out: []core.Message{attemptMsg(1)}}
	sender := core.NewPiggyback(sendAlg, ykd.Codec{})
	data, send, err := sender.Outgoing(nil)
	if err != nil || !send {
		t.Fatalf("Outgoing = %v, %v", send, err)
	}
	recvAlg := &fake{}
	receiver := core.NewPiggyback(recvAlg, ykd.Codec{})
	app, err := receiver.Incoming(0, data)
	if err != nil {
		t.Fatal(err)
	}
	if app != nil {
		t.Errorf("app = %q, want nil", app)
	}
	if len(recvAlg.delivered) != 1 {
		t.Errorf("algorithm got %d messages, want 1", len(recvAlg.delivered))
	}
}

func TestPiggybackEmptyAppPayloadDistinctFromNone(t *testing.T) {
	sender := core.NewPiggyback(&fake{}, ykd.Codec{})
	data, send, err := sender.Outgoing([]byte{})
	if err != nil || !send {
		t.Fatalf("Outgoing = %v, %v", send, err)
	}
	receiver := core.NewPiggyback(&fake{}, ykd.Codec{})
	app, err := receiver.Incoming(0, data)
	if err != nil {
		t.Fatal(err)
	}
	if app == nil || len(app) != 0 {
		t.Errorf("empty payload round-trips as %v, want empty non-nil", app)
	}
}

func TestPiggybackCorruptInput(t *testing.T) {
	receiver := core.NewPiggyback(&fake{}, ykd.Codec{})
	for i, data := range [][]byte{nil, {0xFF}, {3, 1, 0}, {1, 1, 99}} {
		if _, err := receiver.Incoming(0, data); err == nil && data != nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestPiggybackViewChangedForwards(t *testing.T) {
	alg := &fake{}
	pb := core.NewPiggyback(alg, ykd.Codec{})
	v := view.View{ID: 4, Members: proc.NewSet(0, 1)}
	pb.ViewChanged(v)
	if len(alg.views) != 1 || alg.views[0].ID != 4 {
		t.Errorf("views = %v", alg.views)
	}
	alg.primary = true
	if !pb.InPrimary() {
		t.Error("InPrimary not forwarded")
	}
	if pb.Algorithm() != core.Algorithm(alg) {
		t.Error("Algorithm accessor wrong")
	}
}
