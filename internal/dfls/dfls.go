// Package dfls exposes the dynamic voting variant of De Prisco,
// Fekete, Lynch and Shvartsman (thesis §3.2.2): unoptimized YKD that
// deletes ambiguous sessions only after an extra message-exchange
// round in the newly formed primary. The three-round protocol is more
// likely to be interrupted, and the retained sessions constrain later
// primary choices — which is why it trails YKD by roughly 3% in the
// availability study.
//
// The state machine lives in package ykd (the variants share it); this
// package pins the DFLS configuration.
package dfls

import (
	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

// Name is the algorithm identifier used in experiment output.
const Name = "dfls"

// New returns a DFLS instance for process self.
func New(self proc.ID, initial view.View) *ykd.Algorithm {
	return ykd.New(ykd.VariantDFLS, self, initial)
}

// Factory returns the host-facing description of DFLS.
func Factory() core.Factory { return ykd.Factory(ykd.VariantDFLS) }
