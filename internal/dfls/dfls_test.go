package dfls_test

import (
	"testing"

	"dynvote/internal/dfls"
	"dynvote/internal/proc"
	"dynvote/internal/simtest"
	"dynvote/internal/view"
)

func TestFactoryPinsDFLS(t *testing.T) {
	f := dfls.Factory()
	if f.Name != dfls.Name {
		t.Fatalf("factory name = %q, want %q", f.Name, dfls.Name)
	}
	if f.Name != "dfls" {
		t.Fatalf("factory name = %q", f.Name)
	}
	alg := f.New(0, view.View{ID: 0, Members: proc.Universe(3)})
	if alg.Name() != "dfls" {
		t.Errorf("instance name = %q", alg.Name())
	}
	if f.Codec == nil {
		t.Error("dfls factory must carry the ykd codec")
	}
}

func TestNewBehavesLikeDFLS(t *testing.T) {
	direct := dfls.New(2, view.View{ID: 0, Members: proc.Universe(4)})
	if direct.Name() != "dfls" || !direct.InPrimary() {
		t.Errorf("New() instance wrong: %q, %v", direct.Name(), direct.InPrimary())
	}
}

// The defining three-round behaviour, driven through the factory: a
// formed primary still holds its ambiguous session until the flush
// round completes.
func TestThreeRoundDeletion(t *testing.T) {
	h := simtest.New(t, dfls.Factory(), 4)
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3})
	h.WantPrimary(0, true)
	// Uninterrupted: flush completed, sessions cleared.
	if got := h.Ambiguous(0); got != 0 {
		t.Errorf("ambiguous after flush = %d, want 0", got)
	}
}
