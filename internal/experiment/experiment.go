// Package experiment defines and runs the measurement campaigns of
// thesis Chapter 4: availability sweeps (fresh-start and cascading),
// ambiguous-session measurements, the 32/48/64 scaling check, the
// paired YKD-vs-DFLS comparison and the message-size accounting. Every
// figure of the thesis maps to one FigureSpec here; cmd/figures and
// the repository benchmarks are thin layers over this package.
package experiment

import (
	"fmt"

	"dynvote/internal/core"
	"dynvote/internal/metrics"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/stats"
)

// Mode distinguishes the two test styles of §4.1.
type Mode int

const (
	// FreshStart: each run begins brand-new in the original state.
	FreshStart Mode = iota + 1
	// Cascading: each run begins where the previous one ended.
	Cascading
)

// String returns "fresh-start" or "cascading".
func (m Mode) String() string {
	switch m {
	case FreshStart:
		return "fresh-start"
	case Cascading:
		return "cascading"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// CaseSpec identifies one measurement cell: an algorithm, a number of
// connectivity changes, and a change rate, simulated over Runs
// randomized runs (the thesis uses 1000 runs per case).
type CaseSpec struct {
	Factory    core.Factory
	Procs      int
	Changes    int
	MeanRounds float64
	Runs       int
	Mode       Mode
	Seed       int64
	// MeasureSizes additionally collects the §3.4 message-size maxima.
	MeasureSizes bool
	// CheckSafety runs the invariant checker during every run.
	CheckSafety bool
	// Metrics, when non-nil, instruments every simulation driver the
	// case spawns. The same registry may be shared across cases; the
	// counters aggregate.
	Metrics *metrics.Registry
}

// CaseResult aggregates a case's runs.
type CaseResult struct {
	Algorithm    string
	MeanRounds   float64
	Availability stats.Availability
	// Stable histograms ambiguous sessions retained at the end of each
	// run (Figure 4-7).
	Stable stats.Histogram
	// InProgress histograms ambiguous sessions held at each
	// connectivity change (Figure 4-8).
	InProgress stats.Histogram
	// Reform histograms the rounds needed to re-establish a primary
	// after the last change of each run (successful runs only).
	Reform stats.Histogram
	// NeverReformed counts runs where no primary was re-established.
	NeverReformed int
	// Sizes carries message-size maxima when MeasureSizes was set.
	Sizes stats.MaxTracker
}

// runSeed derives the per-run random source. It deliberately does NOT
// depend on the algorithm: the thesis tests every algorithm against
// the same random sequence (§4.1).
func runSeed(root *rng.Source, spec CaseSpec, run int) *rng.Source {
	return root.ChildLabel("run",
		int64(spec.Procs), int64(spec.Changes),
		int64(spec.MeanRounds*1e6), int64(spec.Mode), int64(run))
}

func (spec CaseSpec) config() sim.Config {
	return sim.Config{
		Procs:        spec.Procs,
		Changes:      spec.Changes,
		MeanRounds:   spec.MeanRounds,
		MeasureSizes: spec.MeasureSizes,
		CheckSafety:  spec.CheckSafety,
		Metrics:      spec.Metrics,
	}
}

// record folds one run's result into the aggregate. Recording in run
// order is part of the determinism contract: histograms and trackers
// accumulate identically no matter which worker produced the run.
func (res *CaseResult) record(r sim.RunResult) {
	res.Availability.Record(r.PrimaryFormed)
	res.Stable.Add(r.AmbiguousAtEnd)
	for _, n := range r.AmbiguousAtChanges {
		res.InProgress.Add(n)
	}
	if r.ReformRounds >= 0 {
		res.Reform.Add(r.ReformRounds)
	} else {
		res.NeverReformed++
	}
	res.Sizes.Record(r.MaxMessageBytes, r.MaxRoundBytes)
}

// RunCase executes one measurement cell.
func RunCase(spec CaseSpec) (CaseResult, error) {
	res := CaseResult{Algorithm: spec.Factory.Name, MeanRounds: spec.MeanRounds}
	root := rng.New(spec.Seed)

	switch spec.Mode {
	case Cascading:
		// Cascading runs carry the algorithms' state forward; the
		// network itself heals between turbulence bursts (see
		// sim.Driver.Heal), and the healing exchange races the next
		// run's changes.
		d := sim.NewDriver(spec.Factory, spec.config(), runSeed(root, spec, 0))
		for run := 0; run < spec.Runs; run++ {
			d.Heal()
			r, err := d.Run()
			if err != nil {
				return res, fmt.Errorf("%s cascading run %d: %w", spec.Factory.Name, run, err)
			}
			res.record(r)
		}
	default: // FreshStart
		// Fresh-start runs are independent by construction: each gets
		// a per-run source derived from the (spec, run) label alone,
		// so they can execute on any goroutine in any order. Sources
		// are derived up front in run order and results merged back in
		// run order, which keeps every aggregate bit-identical to
		// sequential execution no matter how many workers the shared
		// budget grants.
		//
		// Each worker builds ONE driver and resets it between the runs
		// it picks up: run construction — cluster, topology, 64
		// algorithm instances with their maps — used to dominate the
		// sweep's allocation profile once the delivery loop went
		// allocation-free. Reset is bit-identical to rebuild (see the
		// reset-vs-fresh golden tests), so the reuse is invisible in
		// the results.
		results := make([]sim.RunResult, spec.Runs)
		errs := make([]error, spec.Runs)
		srcs := make([]*rng.Source, spec.Runs)
		for run := range srcs {
			srcs[run] = runSeed(root, spec, run)
		}
		drivers := make([]*sim.Driver, min(spec.Runs, Parallelism()))
		parallelWorkers(spec.Runs, func(worker, run int) {
			d := drivers[worker]
			if d == nil {
				d = sim.NewDriver(spec.Factory, spec.config(), srcs[run])
				drivers[worker] = d
			} else {
				d.Reset(srcs[run])
			}
			results[run], errs[run] = d.Run()
		})
		for run := 0; run < spec.Runs; run++ {
			if errs[run] != nil {
				return res, fmt.Errorf("%s fresh run %d: %w", spec.Factory.Name, run, errs[run])
			}
			res.record(results[run])
		}
	}
	return res, nil
}

// PairedResult reports a run-by-run comparison of two algorithms on
// identical random sequences — the measurement behind the "YKD
// succeeds where DFLS does not in ≈3% of runs" claim (§4.1).
type PairedResult struct {
	Both       int // both formed a primary
	OnlyFirst  int // first formed, second did not
	OnlySecond int
	Neither    int
	Runs       int
}

// FirstAdvantagePercent returns the percentage of runs only the first
// algorithm succeeded in.
func (p PairedResult) FirstAdvantagePercent() float64 {
	if p.Runs == 0 {
		return 0
	}
	return 100 * float64(p.OnlyFirst) / float64(p.Runs)
}

// RunPaired runs two algorithms over the same random sequences and
// tallies run-by-run agreement. The spec's Factory field is ignored.
//
// Runs are sharded across the shared worker budget like fresh-start
// RunCase; both arms of one run stay on the same worker (they are a
// single comparison), and the tally is merged in run order, identical
// to sequential execution.
func RunPaired(first, second core.Factory, spec CaseSpec) (PairedResult, error) {
	var out PairedResult
	root := rng.New(spec.Seed)
	factories := [2]core.Factory{first, second}
	type outcome struct {
		formed [2]bool
		err    error
	}
	outcomes := make([]outcome, spec.Runs)
	srcs := make([][2]*rng.Source, spec.Runs)
	for run := range srcs {
		for i, f := range factories {
			// runSeed deliberately ignores the factory — both arms
			// replay the same draws — but each arm needs its own
			// source instance to iterate.
			s := spec
			s.Factory = f
			srcs[run][i] = runSeed(root, s, run)
		}
	}
	// One driver pair per worker, reset between runs — the same
	// construction-amortizing reuse as fresh-start RunCase, kept
	// per-arm so each algorithm's stack is recycled with itself.
	drivers := make([][2]*sim.Driver, min(spec.Runs, Parallelism()))
	parallelWorkers(spec.Runs, func(worker, run int) {
		o := &outcomes[run]
		for i, f := range factories {
			d := drivers[worker][i]
			if d == nil {
				s := spec
				s.Factory = f
				d = sim.NewDriver(f, s.config(), srcs[run][i])
				drivers[worker][i] = d
			} else {
				d.Reset(srcs[run][i])
			}
			r, err := d.Run()
			if err != nil {
				o.err = fmt.Errorf("%s paired run %d: %w", f.Name, run, err)
				return
			}
			o.formed[i] = r.PrimaryFormed
		}
	})
	for run := 0; run < spec.Runs; run++ {
		o := outcomes[run]
		if o.err != nil {
			return out, o.err
		}
		out.Runs++
		switch {
		case o.formed[0] && o.formed[1]:
			out.Both++
		case o.formed[0]:
			out.OnlyFirst++
		case o.formed[1]:
			out.OnlySecond++
		default:
			out.Neither++
		}
	}
	return out, nil
}
