package experiment_test

import (
	"strings"
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/experiment"
	"dynvote/internal/majority"
	"dynvote/internal/ykd"
)

func TestRunCaseFreshDeterministic(t *testing.T) {
	spec := experiment.CaseSpec{
		Factory: ykd.Factory(ykd.VariantYKD),
		Procs:   16, Changes: 4, MeanRounds: 2, Runs: 30,
		Mode: experiment.FreshStart, Seed: 7,
	}
	a, err := experiment.RunCase(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiment.RunCase(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Availability != b.Availability {
		t.Errorf("determinism broken: %v vs %v", a.Availability, b.Availability)
	}
	if a.Availability.Runs != 30 {
		t.Errorf("Runs = %d", a.Availability.Runs)
	}
	if a.Stable.Total() != 30 {
		t.Errorf("Stable samples = %d, want 30", a.Stable.Total())
	}
	if a.InProgress.Total() != 30*4 {
		t.Errorf("InProgress samples = %d, want 120", a.InProgress.Total())
	}
}

func TestRunCaseCascading(t *testing.T) {
	spec := experiment.CaseSpec{
		Factory: ykd.Factory(ykd.VariantYKD),
		Procs:   16, Changes: 4, MeanRounds: 2, Runs: 25,
		Mode: experiment.Cascading, Seed: 7,
	}
	res, err := experiment.RunCase(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability.Runs != 25 {
		t.Errorf("Runs = %d", res.Availability.Runs)
	}
}

// The thesis runs every algorithm against the same random sequence:
// the per-run seeds must not depend on the algorithm.
func TestSeedsIndependentOfAlgorithm(t *testing.T) {
	base := experiment.CaseSpec{
		Procs: 16, Changes: 0, MeanRounds: 2, Runs: 20,
		Mode: experiment.FreshStart, Seed: 11,
	}
	specA := base
	specA.Factory = majority.Factory()
	specB := base
	specB.Factory = ykd.Factory(ykd.VariantYKD)
	a, err := experiment.RunCase(specA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiment.RunCase(specB)
	if err != nil {
		t.Fatal(err)
	}
	// With zero changes both trivially keep the primary; the real
	// assertion is the shared-seed design, observable as equal
	// availability on identical workloads.
	if a.Availability.Percent() != 100 || b.Availability.Percent() != 100 {
		t.Errorf("zero-change availability: %v / %v", a.Availability, b.Availability)
	}
}

func TestRunPairedCountsAddUp(t *testing.T) {
	ykdF, _ := algset.ByName("ykd")
	dflsF, _ := algset.ByName("dfls")
	pr, err := experiment.RunPaired(ykdF, dflsF, experiment.CaseSpec{
		Procs: 16, Changes: 6, MeanRounds: 2, Runs: 40,
		Mode: experiment.FreshStart, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Both+pr.OnlyFirst+pr.OnlySecond+pr.Neither != pr.Runs || pr.Runs != 40 {
		t.Errorf("paired counts inconsistent: %+v", pr)
	}
	// DFLS should essentially never beat YKD: same machinery, strictly
	// more constraints.
	if pr.OnlySecond > pr.OnlyFirst {
		t.Errorf("dfls-only (%d) > ykd-only (%d)", pr.OnlySecond, pr.OnlyFirst)
	}
}

func TestRunSweepShapes(t *testing.T) {
	sweep := experiment.SweepSpec{
		Factories: algset.Availability()[:2],
		Procs:     16, Changes: 4,
		Rates: []float64{0, 4},
		Runs:  15, Mode: experiment.FreshStart, Seed: 5,
	}
	series, err := experiment.RunSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("points = %d", len(s.Points))
		}
		for _, p := range s.Points {
			if p.Availability.Runs != 15 {
				t.Errorf("%s: runs = %d", s.Algorithm, p.Availability.Runs)
			}
		}
	}

	table := experiment.RenderAvailabilityTable("caption", sweep, series)
	for _, want := range []string{"caption", "ykd", "dfls", "0.0", "4.0"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := experiment.RenderAvailabilityCSV(sweep, series)
	if !strings.HasPrefix(csv, "mean_rounds,ykd,dfls\n") {
		t.Errorf("csv header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if got := strings.Count(csv, "\n"); got != 3 {
		t.Errorf("csv lines = %d, want 3", got)
	}
}

func TestRenderAmbiguity(t *testing.T) {
	sweep := experiment.SweepSpec{
		Factories: algset.AmbiguousSessions(),
		Procs:     16, Changes: 4,
		Rates: []float64{2},
		Runs:  10, Mode: experiment.FreshStart, Seed: 5,
	}
	series, err := experiment.RunSweep(sweep)
	if err != nil {
		t.Fatal(err)
	}
	table := experiment.RenderAmbiguityTable("Figure 4-7", sweep, series, true)
	for _, want := range []string{"ykd", "ykd-unopt", "dfls", "max"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q", want)
		}
	}
	csv := experiment.RenderAmbiguityCSV(sweep, series, false)
	if !strings.HasPrefix(csv, "mean_rounds,algorithm,") {
		t.Errorf("csv header wrong")
	}
}

func TestFiguresDefinitions(t *testing.T) {
	o := experiment.Options{Runs: 5, Rates: []float64{1}}
	figs := experiment.Figures(o)
	if len(figs) != 7 {
		t.Fatalf("figures = %d, want 7 (six availability + combined ambiguity)", len(figs))
	}
	for _, id := range []string{"4-1", "4-2", "4-3", "4-4", "4-5", "4-6", "4-7", "4-8"} {
		if _, err := experiment.FigureByID(id, o); err != nil {
			t.Errorf("FigureByID(%q): %v", id, err)
		}
	}
	if _, err := experiment.FigureByID("9-9", o); err == nil {
		t.Error("unknown figure accepted")
	}
	amb, _ := experiment.FigureByID("4-7", o)
	if len(amb.Sweeps) != 3 {
		t.Errorf("ambiguity sweeps = %d, want 3 (2/6/12 changes)", len(amb.Sweeps))
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := experiment.Options{}.Defaults()
	if o.Procs != 64 || o.Runs != 1000 || len(o.Rates) != 13 || o.Seed == 0 {
		t.Errorf("defaults wrong: %+v", o)
	}
}

func TestModeString(t *testing.T) {
	if experiment.FreshStart.String() != "fresh-start" || experiment.Cascading.String() != "cascading" {
		t.Error("Mode.String wrong")
	}
}
