package experiment

import (
	"fmt"
	"strings"

	"dynvote/internal/algset"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
)

// This file implements the thesis's §5.1 future-work studies:
// availability when a process from the original view crashes, and
// availability under probability functions other than the uniform
// geometric model.

// CrashStudySpec parameterizes the crash experiment: the Figure 4-2
// style workload with one process fail-stopping partway through every
// run.
type CrashStudySpec struct {
	Procs      int
	Changes    int
	MeanRounds float64
	Runs       int
	Seed       int64
	// Victim is the process to crash; proc.None crashes a random live
	// process per run. Crashing the lexically smallest process (ID 0)
	// additionally knocks out the tie-breaker of dynamic linear
	// voting.
	Victim proc.ID
	// AfterChanges positions the crash within the change sequence.
	AfterChanges int
}

// CrashStudyRow is one algorithm's outcome with and without the crash.
type CrashStudyRow struct {
	Algorithm string
	Baseline  float64 // availability % without crashes
	Crashed   float64 // availability % with the crash plan
}

// RunCrashStudy measures every availability algorithm with and without
// the crash, on identical random sequences.
func RunCrashStudy(spec CrashStudySpec) ([]CrashStudyRow, error) {
	rows := make([]CrashStudyRow, 0, len(algset.Availability()))
	for _, f := range algset.Availability() {
		var pair [2]float64
		for i, crash := range []*sim.CrashPlan{nil, {AfterChanges: spec.AfterChanges, Process: spec.Victim}} {
			root := rng.New(spec.Seed)
			cs := CaseSpec{
				Factory: f, Procs: spec.Procs, Changes: spec.Changes,
				MeanRounds: spec.MeanRounds, Runs: spec.Runs,
				Mode: FreshStart, Seed: spec.Seed,
			}
			formed := 0
			for run := 0; run < spec.Runs; run++ {
				cfg := cs.config()
				cfg.Crash = crash
				d := sim.NewDriver(f, cfg, runSeed(root, cs, run))
				r, err := d.Run()
				if err != nil {
					return nil, fmt.Errorf("%s crash study run %d: %w", f.Name, run, err)
				}
				if r.PrimaryFormed {
					formed++
				}
			}
			pair[i] = 100 * float64(formed) / float64(spec.Runs)
		}
		rows = append(rows, CrashStudyRow{Algorithm: f.Name, Baseline: pair[0], Crashed: pair[1]})
	}
	return rows, nil
}

// RenderCrashStudy renders the crash study as a text table.
func RenderCrashStudy(spec CrashStudySpec, rows []CrashStudyRow) string {
	var b strings.Builder
	victim := "random process"
	if spec.Victim != proc.None {
		victim = spec.Victim.String() + " (the lexical tie-breaker)"
	}
	fmt.Fprintf(&b, "Crash study (§5.1): %d procs, %d changes at rate %.1f, crash of %s after change %d\n\n",
		spec.Procs, spec.Changes, spec.MeanRounds, victim, spec.AfterChanges)
	fmt.Fprintf(&b, "%-16s %12s %12s %8s\n", "algorithm", "no crash", "with crash", "Δ")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-16s %11.1f%% %11.1f%% %+7.1f\n",
			row.Algorithm, row.Baseline, row.Crashed, row.Crashed-row.Baseline)
	}
	return b.String()
}

// TimingStudySpec parameterizes the change-timing study: the same
// workload under the three Schedule models, normalized to comparable
// change rates.
type TimingStudySpec struct {
	Procs   int
	Changes int
	Runs    int
	Seed    int64
	// MeanRounds is the target mean rounds between changes for the
	// geometric and clustered models, and the period for the periodic
	// one.
	MeanRounds float64
	// BurstSize is the clustered model's burst (default 3).
	BurstSize int
}

// TimingStudyRow is one (algorithm, schedule) availability cell.
type TimingStudyRow struct {
	Algorithm string
	// Availability % per schedule: geometric, periodic, clustered.
	Geometric, Periodic, Clustered float64
}

// RunTimingStudy measures every availability algorithm under the three
// timing models.
func RunTimingStudy(spec TimingStudySpec) ([]TimingStudyRow, error) {
	if spec.BurstSize == 0 {
		spec.BurstSize = 3
	}
	schedules := []sim.Schedule{
		sim.GeometricSchedule{MeanRounds: spec.MeanRounds},
		sim.PeriodicSchedule{Every: int(spec.MeanRounds + 0.5)},
		sim.ClusteredSchedule{
			// One cluster of BurstSize changes per BurstSize×mean
			// rounds keeps the long-run change rate equal.
			MeanRounds: spec.MeanRounds*float64(spec.BurstSize) + float64(spec.BurstSize-1),
			BurstSize:  spec.BurstSize,
		},
	}
	rows := make([]TimingStudyRow, 0, len(algset.Availability()))
	for _, f := range algset.Availability() {
		row := TimingStudyRow{Algorithm: f.Name}
		for si, schedule := range schedules {
			root := rng.New(spec.Seed)
			cs := CaseSpec{
				Factory: f, Procs: spec.Procs, Changes: spec.Changes,
				MeanRounds: spec.MeanRounds, Runs: spec.Runs,
				Mode: FreshStart, Seed: spec.Seed,
			}
			formed := 0
			for run := 0; run < spec.Runs; run++ {
				cfg := cs.config()
				cfg.Schedule = schedule
				d := sim.NewDriver(f, cfg, runSeed(root, cs, run))
				r, err := d.Run()
				if err != nil {
					return nil, fmt.Errorf("%s timing study run %d: %w", f.Name, run, err)
				}
				if r.PrimaryFormed {
					formed++
				}
			}
			pct := 100 * float64(formed) / float64(spec.Runs)
			switch si {
			case 0:
				row.Geometric = pct
			case 1:
				row.Periodic = pct
			case 2:
				row.Clustered = pct
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTimingStudy renders the timing study as a text table.
func RenderTimingStudy(spec TimingStudySpec, rows []TimingStudyRow) string {
	if spec.BurstSize == 0 {
		spec.BurstSize = 3
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Change-timing study (§5.1): %d procs, %d changes, mean rate %.1f rounds, cluster size %d\n\n",
		spec.Procs, spec.Changes, spec.MeanRounds, spec.BurstSize)
	fmt.Fprintf(&b, "%-16s %12s %12s %12s\n", "algorithm", "geometric", "periodic", "clustered")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-16s %11.1f%% %11.1f%% %11.1f%%\n",
			row.Algorithm, row.Geometric, row.Periodic, row.Clustered)
	}
	return b.String()
}

// LatencyStudySpec parameterizes the re-formation latency study: how
// many message rounds each algorithm needs to re-establish a primary
// once the turbulence ends. Availability percentages hide this — an
// algorithm can reach the same availability as another while taking
// several times longer to get there, which matters to any application
// waiting on the primary.
type LatencyStudySpec struct {
	Procs      int
	Changes    int
	MeanRounds float64
	Runs       int
	Seed       int64
}

// LatencyStudyRow is one algorithm's latency distribution.
type LatencyStudyRow struct {
	Algorithm string
	// MeanRounds is the average re-formation latency over runs that
	// re-formed.
	MeanRounds float64
	// MaxRounds is the worst observed latency.
	MaxRounds int
	// NeverPercent is the share of runs that never re-formed.
	NeverPercent float64
}

// RunLatencyStudy measures re-formation latency for every availability
// algorithm on identical random sequences.
func RunLatencyStudy(spec LatencyStudySpec) ([]LatencyStudyRow, error) {
	rows := make([]LatencyStudyRow, 0, len(algset.Availability()))
	for _, f := range algset.Availability() {
		res, err := RunCase(CaseSpec{
			Factory: f, Procs: spec.Procs, Changes: spec.Changes,
			MeanRounds: spec.MeanRounds, Runs: spec.Runs,
			Mode: FreshStart, Seed: spec.Seed,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, LatencyStudyRow{
			Algorithm:    f.Name,
			MeanRounds:   res.Reform.Mean(),
			MaxRounds:    res.Reform.Max(),
			NeverPercent: 100 * float64(res.NeverReformed) / float64(spec.Runs),
		})
	}
	return rows, nil
}

// RenderLatencyStudy renders the latency study as a text table.
func RenderLatencyStudy(spec LatencyStudySpec, rows []LatencyStudyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Re-formation latency: %d procs, %d changes at rate %.1f — rounds to restore a primary after the last change\n\n",
		spec.Procs, spec.Changes, spec.MeanRounds)
	fmt.Fprintf(&b, "%-16s %12s %10s %12s\n", "algorithm", "mean rounds", "max", "never")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-16s %12.2f %10d %11.1f%%\n",
			row.Algorithm, row.MeanRounds, row.MaxRounds, row.NeverPercent)
	}
	return b.String()
}
