package experiment_test

import (
	"strings"
	"testing"

	"dynvote/internal/experiment"
	"dynvote/internal/proc"
)

func TestCrashStudy(t *testing.T) {
	spec := experiment.CrashStudySpec{
		Procs: 16, Changes: 8, MeanRounds: 1.5, Runs: 60, Seed: 7,
		Victim: 0, AfterChanges: 2,
	}
	rows, err := experiment.RunCrashStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]experiment.CrashStudyRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
		if r.Baseline < 0 || r.Baseline > 100 || r.Crashed < 0 || r.Crashed > 100 {
			t.Errorf("%s: out-of-range percentages %+v", r.Algorithm, r)
		}
	}
	// The thesis's eternal-blocking mechanism: the crash must hurt
	// 1-pending at least as much as YKD.
	ykdDelta := byName["ykd"].Baseline - byName["ykd"].Crashed
	opDelta := byName["1-pending"].Baseline - byName["1-pending"].Crashed
	if opDelta < ykdDelta-8 { // tolerance for 60-run noise
		t.Errorf("crash hurt ykd (Δ%.1f) more than 1-pending (Δ%.1f)", ykdDelta, opDelta)
	}

	out := experiment.RenderCrashStudy(spec, rows)
	for _, want := range []string{"Crash study", "tie-breaker", "ykd", "simple-majority"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestCrashStudyRandomVictimRenders(t *testing.T) {
	spec := experiment.CrashStudySpec{
		Procs: 8, Changes: 4, MeanRounds: 2, Runs: 10, Seed: 3,
		Victim: proc.None, AfterChanges: 1,
	}
	rows, err := experiment.RunCrashStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := experiment.RenderCrashStudy(spec, rows)
	if !strings.Contains(out, "random process") {
		t.Errorf("render missing victim description:\n%s", out)
	}
}

func TestTimingStudy(t *testing.T) {
	spec := experiment.TimingStudySpec{
		Procs: 16, Changes: 8, MeanRounds: 2, Runs: 40, Seed: 9,
	}
	rows, err := experiment.RunTimingStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, pct := range []float64{r.Geometric, r.Periodic, r.Clustered} {
			if pct < 0 || pct > 100 {
				t.Errorf("%s: out-of-range %+v", r.Algorithm, r)
			}
		}
	}
	out := experiment.RenderTimingStudy(spec, rows)
	for _, want := range []string{"geometric", "periodic", "clustered", "ykd"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestLatencyStudy(t *testing.T) {
	spec := experiment.LatencyStudySpec{
		Procs: 16, Changes: 8, MeanRounds: 2, Runs: 60, Seed: 5,
	}
	rows, err := experiment.RunLatencyStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]experiment.LatencyStudyRow{}
	for _, r := range rows {
		byName[r.Algorithm] = r
		if r.MeanRounds < 0 || r.NeverPercent < 0 || r.NeverPercent > 100 {
			t.Errorf("%s: out of range %+v", r.Algorithm, r)
		}
	}
	// Simple majority exchanges no messages: zero latency by
	// construction.
	if byName["simple-majority"].MeanRounds != 0 {
		t.Errorf("simple-majority latency = %v, want 0", byName["simple-majority"].MeanRounds)
	}
	// MR1p's five-round protocol must cost more rounds than YKD's two.
	if byName["mr1p"].MeanRounds <= byName["ykd"].MeanRounds {
		t.Errorf("mr1p latency (%.2f) should exceed ykd's (%.2f)",
			byName["mr1p"].MeanRounds, byName["ykd"].MeanRounds)
	}
	out := experiment.RenderLatencyStudy(spec, rows)
	if !strings.Contains(out, "Re-formation latency") || !strings.Contains(out, "mr1p") {
		t.Errorf("render wrong:\n%s", out)
	}
}
