package experiment

import (
	"fmt"

	"dynvote/internal/algset"
	"dynvote/internal/metrics"
)

// Options scales the standard figure definitions. The zero value plus
// Defaults() reproduces the thesis's parameters: 64 processes, 1000
// runs per case, rates 0..12.
type Options struct {
	// Procs is the system size (thesis: 64; 32 and 48 for scaling).
	Procs int
	// Runs per case (thesis: 1000).
	Runs int
	// Rates is the x-axis sweep of mean message rounds between
	// connectivity changes (thesis: ≈0 through 12).
	Rates []float64
	// Seed roots all randomness.
	Seed int64
	// Progress receives per-case progress lines.
	Progress func(string)
	// Metrics, when non-nil, instruments every sweep the figures run.
	Metrics *metrics.Registry
}

// Defaults fills unset fields with the thesis's parameters.
func (o Options) Defaults() Options {
	if o.Procs == 0 {
		o.Procs = 64
	}
	if o.Runs == 0 {
		o.Runs = 1000
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	}
	if o.Seed == 0 {
		o.Seed = 20000505 // the thesis's submission date
	}
	return o
}

// FigureKind distinguishes what a figure plots.
type FigureKind int

const (
	// KindAvailability plots availability percentages (Figures 4-1..4-6).
	KindAvailability FigureKind = iota + 1
	// KindAmbiguity plots ambiguous-session histograms (Figures 4-7, 4-8).
	KindAmbiguity
)

// FigureSpec is one thesis figure: an identifier, a caption, and the
// sweep that regenerates it. Ambiguity figures carry one sweep per
// changes-count (the thesis stacks 2/6/12-change panels).
type FigureSpec struct {
	ID      string
	Caption string
	Kind    FigureKind
	Sweeps  []SweepSpec
}

// AvailabilityFigure builds the spec for one availability figure.
func AvailabilityFigure(id string, changes int, mode Mode, o Options) FigureSpec {
	o = o.Defaults()
	caption := fmt.Sprintf("System availability — %d %sconnectivity changes (%s)",
		changes, map[Mode]string{Cascading: "cascading "}[mode], mode)
	return FigureSpec{
		ID:      id,
		Caption: caption,
		Kind:    KindAvailability,
		Sweeps: []SweepSpec{{
			Factories: algset.Availability(),
			Procs:     o.Procs,
			Changes:   changes,
			Rates:     o.Rates,
			Runs:      o.Runs,
			Mode:      mode,
			Seed:      o.Seed,
			Progress:  o.Progress,
			Metrics:   o.Metrics,
		}},
	}
}

// AmbiguityFigure builds the spec for the ambiguous-session figures.
// Figures 4-7 (stable) and 4-8 (in progress) come from the same runs —
// both histograms are collected together — so one spec covers both and
// renderers choose which histogram to plot.
func AmbiguityFigure(id, caption string, o Options) FigureSpec {
	o = o.Defaults()
	sweeps := make([]SweepSpec, 0, 3)
	for _, changes := range []int{2, 6, 12} {
		sweeps = append(sweeps, SweepSpec{
			Factories: algset.AmbiguousSessions(),
			Procs:     o.Procs,
			Changes:   changes,
			Rates:     o.Rates,
			Runs:      o.Runs,
			Mode:      FreshStart,
			Seed:      o.Seed,
			Progress:  o.Progress,
			Metrics:   o.Metrics,
		})
	}
	return FigureSpec{ID: id, Caption: caption, Kind: KindAmbiguity, Sweeps: sweeps}
}

// Figures returns the full Chapter 4 set, in thesis order.
func Figures(o Options) []FigureSpec {
	return []FigureSpec{
		AvailabilityFigure("4-1", 2, FreshStart, o),
		AvailabilityFigure("4-2", 6, FreshStart, o),
		AvailabilityFigure("4-3", 12, FreshStart, o),
		AvailabilityFigure("4-4", 2, Cascading, o),
		AvailabilityFigure("4-5", 6, Cascading, o),
		AvailabilityFigure("4-6", 12, Cascading, o),
		AmbiguityFigure("4-7/4-8", "Ambiguous sessions — YKD, unoptimized YKD, DFLS", o),
	}
}

// FigureByID finds a figure spec by its thesis number, e.g. "4-3".
// "4-7" and "4-8" both resolve to the combined ambiguity figure.
func FigureByID(id string, o Options) (FigureSpec, error) {
	if id == "4-7" || id == "4-8" {
		id = "4-7/4-8"
	}
	for _, f := range Figures(o) {
		if f.ID == id {
			return f, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("experiment: unknown figure %q (have 4-1 .. 4-8)", id)
}
