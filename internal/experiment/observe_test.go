package experiment_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"testing"
	"time"

	"dynvote/internal/core"
	"dynvote/internal/experiment"
	"dynvote/internal/majority"
	"dynvote/internal/metrics"
	"dynvote/internal/ykd"
)

// TestSweepProgressOncePerCase: the progress sink receives exactly one
// line per completed case, with ordinals 1..N each appearing once even
// though workers finish in arbitrary order. The sink appends to a
// plain slice with no locking of its own — under -race this also
// proves RunSweep serializes emission as documented.
func TestSweepProgressOncePerCase(t *testing.T) {
	var lines []string
	spec := experiment.SweepSpec{
		Factories: []core.Factory{ykd.Factory(ykd.VariantYKD), majority.Factory()},
		Procs:     8, Changes: 2, Rates: []float64{0, 2, 4}, Runs: 10,
		Mode: experiment.FreshStart, Seed: 11,
		Progress: func(s string) { lines = append(lines, s) },
	}
	if _, err := experiment.RunSweep(spec); err != nil {
		t.Fatal(err)
	}

	total := len(spec.Factories) * len(spec.Rates)
	if len(lines) != total {
		t.Fatalf("got %d progress lines, want %d:\n%v", len(lines), total, lines)
	}
	re := regexp.MustCompile(`^\[(\d+)/` + strconv.Itoa(total) + `\] `)
	seen := make(map[int]bool)
	for _, l := range lines {
		m := re.FindStringSubmatch(l)
		if m == nil {
			t.Fatalf("malformed progress line %q", l)
		}
		k, _ := strconv.Atoi(m[1])
		if seen[k] {
			t.Errorf("ordinal %d emitted twice", k)
		}
		seen[k] = true
	}
	for k := 1; k <= total; k++ {
		if !seen[k] {
			t.Errorf("ordinal %d never emitted", k)
		}
	}
}

// TestSweepMetrics: an instrumented sweep records per-case wall time,
// the worker gauge, and the drivers' run counters in one registry.
func TestSweepMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	spec := experiment.SweepSpec{
		Factories: []core.Factory{ykd.Factory(ykd.VariantYKD)},
		Procs:     8, Changes: 2, Rates: []float64{0, 3}, Runs: 5,
		Mode: experiment.FreshStart, Seed: 3, Metrics: reg,
	}
	if _, err := experiment.RunSweep(spec); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	cases := int64(len(spec.Factories) * len(spec.Rates))
	if got := s.Counters["sweep_cases_total"]; got != cases {
		t.Errorf("sweep_cases_total = %d, want %d", got, cases)
	}
	if h := s.Histograms["sweep_case_seconds"]; h.Count != cases {
		t.Errorf("sweep_case_seconds count = %d, want %d", h.Count, cases)
	}
	if g := s.Gauges["sweep_workers"]; g < 1 || g > cases {
		t.Errorf("sweep_workers = %d, want 1..%d", g, cases)
	}
	if got := s.Counters["sim_runs_total"]; got != cases*int64(spec.Runs) {
		t.Errorf("sim_runs_total = %d, want %d", got, cases*int64(spec.Runs))
	}
}

// TestRunReportRoundTrip: a report built from real results survives a
// JSON encode/decode cycle intact — the acceptance contract for
// -metrics-out consumers.
func TestRunReportRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	spec := experiment.CaseSpec{
		Factory: ykd.Factory(ykd.VariantYKD),
		Procs:   8, Changes: 2, MeanRounds: 3, Runs: 20,
		Mode: experiment.FreshStart, Seed: 17, Metrics: reg,
	}
	res, err := experiment.RunCase(spec)
	if err != nil {
		t.Fatal(err)
	}

	report := experiment.RunReport{
		Tool: "test", Seed: spec.Seed, Procs: spec.Procs,
		Runs: spec.Runs, Mode: spec.Mode.String(),
	}
	report.AddCase(res, spec.Changes)
	report.Finish(time.Now().Add(-time.Second), reg)

	if report.WallSeconds <= 0 {
		t.Error("Finish did not record wall time")
	}
	if report.Metrics == nil {
		t.Fatal("Finish did not attach the metrics snapshot")
	}

	data, err := json.Marshal(&report)
	if err != nil {
		t.Fatal(err)
	}
	var back experiment.RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report, back) {
		t.Errorf("report did not round-trip:\n got %+v\nwant %+v", back, report)
	}

	c := report.Cases[0]
	if c.Algorithm != res.Algorithm || c.Runs != spec.Runs || c.Changes != spec.Changes {
		t.Errorf("case report mismatch: %+v", c)
	}
	if c.AvailabilityPct < c.WilsonLowPct || c.AvailabilityPct > c.WilsonHighPct {
		t.Errorf("availability %.2f outside its own interval [%.2f, %.2f]",
			c.AvailabilityPct, c.WilsonLowPct, c.WilsonHighPct)
	}
}

// TestRunReportWriteFile exercises the file-writing path end to end.
func TestRunReportWriteFile(t *testing.T) {
	report := experiment.RunReport{Tool: "availsim", Seed: 1, Mode: "fresh"}
	report.Finish(time.Now(), nil)
	path := filepath.Join(t.TempDir(), "report.json")
	if err := report.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back experiment.RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if back.Tool != "availsim" {
		t.Errorf("tool = %q, want availsim", back.Tool)
	}
	if back.Metrics != nil {
		t.Error("uninstrumented report should omit metrics")
	}
}
