package experiment_test

import (
	"reflect"
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/experiment"
)

// The run-level parallelism contract: however many workers the shared
// budget grants, RunCase and RunPaired produce results bit-identical
// to sequential execution. Per-run sources are derived in run order
// and aggregates merged in run order, so scheduling must be invisible.

func runAllCases(t *testing.T, mode experiment.Mode) map[string]experiment.CaseResult {
	t.Helper()
	out := make(map[string]experiment.CaseResult)
	for _, f := range algset.All() {
		res, err := experiment.RunCase(experiment.CaseSpec{
			Factory:    f,
			Procs:      24,
			Changes:    4,
			MeanRounds: 2,
			Runs:       20,
			Mode:       mode,
			Seed:       42,
		})
		if err != nil {
			t.Fatalf("%s %s: %v", f.Name, mode, err)
		}
		out[f.Name] = res
	}
	return out
}

// TestRunCaseParallelDeterminism asserts the golden contract for every
// registered algorithm, both modes, across several worker counts.
func TestRunCaseParallelDeterminism(t *testing.T) {
	defer experiment.SetParallelism(0)

	for _, mode := range []experiment.Mode{experiment.FreshStart, experiment.Cascading} {
		experiment.SetParallelism(1)
		sequential := runAllCases(t, mode)

		for _, workers := range []int{2, 5} {
			experiment.SetParallelism(workers)
			parallel := runAllCases(t, mode)
			for name, seq := range sequential {
				if !reflect.DeepEqual(seq, parallel[name]) {
					t.Errorf("%s %s: %d-worker result differs from sequential\nseq: %+v\npar: %+v",
						name, mode, workers, seq, parallel[name])
				}
			}
		}
	}
}

// TestRunPairedParallelDeterminism asserts the same contract for the
// paired comparison, whose two arms must stay on one worker.
func TestRunPairedParallelDeterminism(t *testing.T) {
	defer experiment.SetParallelism(0)
	ykdF, err := algset.ByName("ykd")
	if err != nil {
		t.Fatal(err)
	}
	dflsF, err := algset.ByName("dfls")
	if err != nil {
		t.Fatal(err)
	}
	spec := experiment.CaseSpec{
		Procs: 24, Changes: 4, MeanRounds: 2, Runs: 20,
		Mode: experiment.FreshStart, Seed: 42,
	}

	experiment.SetParallelism(1)
	sequential, err := experiment.RunPaired(ykdF, dflsF, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		experiment.SetParallelism(workers)
		parallel, err := experiment.RunPaired(ykdF, dflsF, spec)
		if err != nil {
			t.Fatal(err)
		}
		if sequential != parallel {
			t.Errorf("%d workers: paired result differs: seq %+v, par %+v",
				workers, sequential, parallel)
		}
	}
}

// TestRunSweepParallelDeterminism covers the outer layer: a small
// two-algorithm sweep must be invariant under the worker budget too.
func TestRunSweepParallelDeterminism(t *testing.T) {
	defer experiment.SetParallelism(0)
	spec := experiment.SweepSpec{
		Factories: algset.All()[:2],
		Procs:     24,
		Changes:   4,
		Rates:     []float64{0, 3},
		Runs:      15,
		Mode:      experiment.FreshStart,
		Seed:      7,
	}
	experiment.SetParallelism(1)
	sequential, err := experiment.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	experiment.SetParallelism(4)
	parallel, err := experiment.RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sequential, parallel) {
		t.Errorf("sweep differs under parallelism:\nseq: %+v\npar: %+v", sequential, parallel)
	}
}
