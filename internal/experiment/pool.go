package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment layer parallelizes at two granularities — RunSweep
// spreads (algorithm, rate) cells across CPUs, and RunCase/RunPaired
// spread independent fresh-start runs — and both can be active at
// once (a sweep's cells call RunCase). One shared helper budget keeps
// the combined concurrency at the configured level instead of
// multiplying the two layers: every parallelDo caller works on its
// own goroutine unconditionally, and extra goroutines join only while
// a budget token is free. A nested parallelDo therefore never spawns
// beyond what the outer level left unused, and — because tokens are
// only ever tried, never waited for — the scheme cannot deadlock.

// workerBudget is the shared helper-token pool. The default budget of
// GOMAXPROCS-1 helpers plus the caller's goroutine saturates the
// machine without over-subscribing it.
var workerBudget = newTokenPool(runtime.GOMAXPROCS(0) - 1)

// Parallelism returns the configured total worker count (helpers + the
// calling goroutine).
func Parallelism() int { return int(workerBudget.size.Load()) + 1 }

// SetParallelism bounds the number of concurrent workers the
// experiment package uses across RunSweep, RunCase and RunPaired
// combined: n-1 helper goroutines plus the calling goroutine. n ≤ 1
// disables helpers entirely, forcing fully sequential execution —
// results are identical either way (see the determinism tests); only
// wall-clock time changes. n ≤ 0 restores the default (GOMAXPROCS).
// Must not be called while experiment work is in flight.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	workerBudget = newTokenPool(n - 1)
}

// tokenPool hands out helper tokens without ever blocking.
type tokenPool struct {
	size atomic.Int64 // configured helper count, for introspection
	free atomic.Int64
}

func newTokenPool(n int) *tokenPool {
	if n < 0 {
		n = 0
	}
	p := &tokenPool{}
	p.size.Store(int64(n))
	p.free.Store(int64(n))
	return p
}

// tryAcquire takes a token if one is free; it never waits.
func (p *tokenPool) tryAcquire() bool {
	for {
		n := p.free.Load()
		if n <= 0 {
			return false
		}
		if p.free.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

func (p *tokenPool) release() { p.free.Add(1) }

// ParallelWorkers exposes the shared-budget scheduler to sibling
// packages (internal/campaign shards soak chains across the same
// token pool, so a campaign nested under other experiment work cannot
// over-subscribe the machine). fn is invoked as fn(worker, i) for
// i in [0, n) with a stable worker identity; see parallelWorkers.
func ParallelWorkers(n int, fn func(worker, i int)) { parallelWorkers(n, fn) }

// parallelDo runs fn(0), ..., fn(n-1), distributing indices over the
// calling goroutine plus however many helpers the shared budget
// currently allows, and returns once all have completed. fn must be
// safe for concurrent invocation from multiple goroutines; index
// assignment order is unspecified, so callers needing deterministic
// output must write into per-index slots and merge afterwards.
func parallelDo(n int, fn func(int)) {
	parallelWorkers(n, func(_, i int) { fn(i) })
}

// parallelWorkers is parallelDo with a stable worker identity: fn is
// invoked as fn(worker, i) where worker is 0 for the calling goroutine
// and 1..k for the k spawned helpers, and worker < n always. Callers
// use the identity to maintain per-worker reusable state (one
// simulation driver per worker, reset between runs) without locking:
// a worker index is owned by exactly one goroutine for the duration of
// the call.
func parallelWorkers(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	pool := workerBudget
	var next atomic.Int64
	work := func(worker int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(worker, i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1 && pool.tryAcquire(); spawned++ {
		worker := spawned + 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pool.release()
			work(worker)
		}()
	}
	work(0)
	wg.Wait()
}
