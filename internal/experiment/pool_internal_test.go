package experiment

import (
	"sync/atomic"
	"testing"
)

func TestParallelDoCoversEveryIndex(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 3, 8} {
		SetParallelism(workers)
		const n = 100
		var hits [n]atomic.Int32
		parallelDo(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestParallelDoZeroAndOne(t *testing.T) {
	parallelDo(0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	parallelDo(1, func(i int) { ran = true })
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

func TestTokenPoolBudget(t *testing.T) {
	p := newTokenPool(2)
	if !p.tryAcquire() || !p.tryAcquire() {
		t.Fatal("two tokens should be available")
	}
	if p.tryAcquire() {
		t.Fatal("third acquire should fail")
	}
	p.release()
	if !p.tryAcquire() {
		t.Fatal("released token should be reusable")
	}
}

func TestSetParallelismBounds(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(5)
	if got := Parallelism(); got != 5 {
		t.Fatalf("Parallelism() = %d, want 5", got)
	}
	SetParallelism(1)
	if got := Parallelism(); got != 1 {
		t.Fatalf("Parallelism() = %d, want 1", got)
	}
	if workerBudget.tryAcquire() {
		t.Fatal("parallelism 1 must grant no helper tokens")
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d after reset, want >= 1", got)
	}
}
