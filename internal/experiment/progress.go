package experiment

import (
	"fmt"
	"sync"
	"time"
)

// progressReporter turns case completions into "[k/N] ... (eta 12s)"
// lines on a caller-supplied sink. A sweep's workers finish cases in
// arbitrary order; the reporter serializes emission so each completion
// produces exactly one line with a consistent ordinal. A nil reporter
// is a no-op, so call sites never branch on whether progress was
// requested.
type progressReporter struct {
	mu    sync.Mutex
	sink  func(string)
	total int
	done  int
	start time.Time
	now   func() time.Time // test seam for deterministic ETAs
}

func newProgressReporter(total int, sink func(string)) *progressReporter {
	if sink == nil {
		return nil
	}
	return &progressReporter{sink: sink, total: total, start: time.Now(), now: time.Now}
}

// caseDone reports one finished case. The sink runs under the
// reporter's mutex: sinks need no locking of their own, and lines from
// racing workers cannot interleave.
func (p *progressReporter) caseDone(desc string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.sink(fmt.Sprintf("[%d/%d] %s%s", p.done, p.total, desc, p.eta()))
}

// eta extrapolates the remaining wall time from the mean case duration
// so far. Empty until there is something to extrapolate from and once
// nothing remains. Callers hold p.mu.
func (p *progressReporter) eta() string {
	if p.done == 0 || p.done >= p.total {
		return ""
	}
	elapsed := p.now().Sub(p.start)
	remain := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
	return fmt.Sprintf("  (eta %s)", remain.Round(time.Second))
}
