package experiment

import (
	"testing"
	"time"
)

// TestProgressETA pins the extrapolation arithmetic with a fake clock:
// 4 cases, 2 done in 10s → 10s remain.
func TestProgressETA(t *testing.T) {
	var lines []string
	p := newProgressReporter(4, func(s string) { lines = append(lines, s) })
	base := p.start
	p.now = func() time.Time { return base.Add(10 * time.Second) }

	p.caseDone("a")
	p.caseDone("b")
	if want := "[1/4] a  (eta 30s)"; lines[0] != want {
		t.Errorf("line 1 = %q, want %q", lines[0], want)
	}
	if want := "[2/4] b  (eta 10s)"; lines[1] != want {
		t.Errorf("line 2 = %q, want %q", lines[1], want)
	}
	p.caseDone("c")
	p.caseDone("d")
	if want := "[4/4] d"; lines[3] != want {
		t.Errorf("final line = %q, want %q (no ETA once done)", lines[3], want)
	}
}

// TestProgressNilSafe: a nil reporter (no sink requested) is a no-op.
func TestProgressNilSafe(t *testing.T) {
	if p := newProgressReporter(10, nil); p != nil {
		t.Fatal("reporter without a sink should be nil")
	}
	var p *progressReporter
	p.caseDone("must not panic")
}
