package experiment

import (
	"fmt"
	"strings"

	"dynvote/internal/stats"
)

// RenderAvailabilityTable renders one availability figure as a text
// table: one row per swept rate, one column per algorithm, matching
// the series of Figures 4-1 through 4-6.
func RenderAvailabilityTable(caption string, sweep SweepSpec, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", caption)
	fmt.Fprintf(&b, "%d processes, %d runs/case; availability %%\n\n", sweep.Procs, sweep.Runs)

	fmt.Fprintf(&b, "%-22s", "mean rounds between")
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", s.Algorithm)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-22s", "connectivity changes")
	for range series {
		fmt.Fprintf(&b, " %14s", "")
	}
	b.WriteByte('\n')

	for i, rate := range sweep.Rates {
		fmt.Fprintf(&b, "%-22.1f", rate)
		for _, s := range series {
			fmt.Fprintf(&b, " %13.1f%%", s.Points[i].Availability.Percent())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderAvailabilityCSV renders the same data as CSV with a header
// row: rate, then one column per algorithm.
func RenderAvailabilityCSV(sweep SweepSpec, series []Series) string {
	var b strings.Builder
	b.WriteString("mean_rounds")
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Algorithm)
	}
	b.WriteByte('\n')
	for i, rate := range sweep.Rates {
		fmt.Fprintf(&b, "%.2f", rate)
		for _, s := range series {
			fmt.Fprintf(&b, ",%.2f", s.Points[i].Availability.Percent())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// histogramOf selects the stable or in-progress histogram of a point.
func histogramOf(p *CaseResult, stable bool) *stats.Histogram {
	if stable {
		return &p.Stable
	}
	return &p.InProgress
}

// RenderAmbiguityTable renders one panel of Figure 4-7 (stable=true)
// or 4-8 (stable=false): for each rate and algorithm, the percentage
// of samples retaining 1, 2, 3 and 4+ ambiguous sessions, plus the
// maximum ever observed.
func RenderAmbiguityTable(caption string, sweep SweepSpec, series []Series, stable bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d connectivity changes\n", caption, sweep.Changes)
	fmt.Fprintf(&b, "%d processes, %d runs/case; %% of samples retaining N ambiguous sessions\n\n",
		sweep.Procs, sweep.Runs)

	fmt.Fprintf(&b, "%-6s %-12s %8s %8s %8s %8s %8s %5s\n",
		"rate", "algorithm", "≥1", "=1", "=2", "=3", "4+", "max")
	for i, rate := range sweep.Rates {
		for _, s := range series {
			h := histogramOf(&s.Points[i], stable)
			fmt.Fprintf(&b, "%-6.1f %-12s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% %5d\n",
				rate, s.Algorithm,
				h.PercentAtLeast(1), h.Percent(1), h.Percent(2), h.Percent(3),
				h.PercentAtLeast(4), h.Max())
		}
	}
	return b.String()
}

// RenderAmbiguityCSV renders one panel as CSV.
func RenderAmbiguityCSV(sweep SweepSpec, series []Series, stable bool) string {
	var b strings.Builder
	b.WriteString("mean_rounds,algorithm,pct_ge1,pct_1,pct_2,pct_3,pct_ge4,max\n")
	for i, rate := range sweep.Rates {
		for _, s := range series {
			h := histogramOf(&s.Points[i], stable)
			fmt.Fprintf(&b, "%.2f,%s,%.3f,%.3f,%.3f,%.3f,%.3f,%d\n",
				rate, s.Algorithm,
				h.PercentAtLeast(1), h.Percent(1), h.Percent(2), h.Percent(3),
				h.PercentAtLeast(4), h.Max())
		}
	}
	return b.String()
}

// RenderAvailabilityBars renders a quick ASCII visualization of one
// algorithm's availability series, for terminal inspection.
func RenderAvailabilityBars(sweep SweepSpec, s Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Algorithm)
	for i, rate := range sweep.Rates {
		pct := s.Points[i].Availability.Percent()
		bar := strings.Repeat("#", int(pct/2+0.5))
		fmt.Fprintf(&b, "%5.1f |%-50s| %5.1f%%\n", rate, bar, pct)
	}
	return b.String()
}
