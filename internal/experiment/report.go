package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dynvote/internal/metrics"
)

// RunReport is the machine-readable record of one measurement session:
// what was asked for, what came out, how long it took, and — when the
// session was instrumented — a snapshot of every metric the simulator
// and sweep layers accumulated. cmd/availsim and cmd/figures write one
// with -metrics-out; downstream tooling consumes it with encoding/json
// instead of scraping the human-readable tables.
type RunReport struct {
	// Tool names the producer, e.g. "availsim".
	Tool        string       `json:"tool"`
	GeneratedAt time.Time    `json:"generated_at"`
	Seed        int64        `json:"seed"`
	Procs       int          `json:"procs"`
	Runs        int          `json:"runs"`
	Mode        string       `json:"mode"`
	WallSeconds float64      `json:"wall_seconds"`
	Cases       []CaseReport `json:"cases"`
	// Metrics is the registry snapshot at the end of the session; nil
	// when the session ran uninstrumented.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// CaseReport flattens one CaseResult into plain JSON-friendly numbers.
// Availability intervals and histogram summaries are precomputed so a
// consumer needs no knowledge of the stats package.
type CaseReport struct {
	Algorithm  string  `json:"algorithm"`
	Changes    int     `json:"changes"`
	MeanRounds float64 `json:"mean_rounds"`
	Runs       int     `json:"runs"`

	AvailabilityPct float64 `json:"availability_pct"`
	WilsonLowPct    float64 `json:"wilson_low_pct"`
	WilsonHighPct   float64 `json:"wilson_high_pct"`

	ReformMeanRounds float64 `json:"reform_mean_rounds"`
	ReformMaxRounds  int     `json:"reform_max_rounds"`
	NeverReformed    int     `json:"never_reformed"`

	AmbiguousStablePct   float64 `json:"ambiguous_stable_pct"`
	AmbiguousStableMax   int     `json:"ambiguous_stable_max"`
	AmbiguousInFlightPct float64 `json:"ambiguous_in_flight_pct"`
	AmbiguousInFlightMax int     `json:"ambiguous_in_flight_max"`

	MaxMessageBytes int `json:"max_message_bytes,omitempty"`
	MaxRoundBytes   int `json:"max_round_bytes,omitempty"`
}

// NewCaseReport flattens a finished case. Changes is carried alongside
// because CaseResult does not record it.
func NewCaseReport(res CaseResult, changes int) CaseReport {
	lo, hi := res.Availability.WilsonInterval()
	return CaseReport{
		Algorithm:            res.Algorithm,
		Changes:              changes,
		MeanRounds:           res.MeanRounds,
		Runs:                 res.Availability.Runs,
		AvailabilityPct:      res.Availability.Percent(),
		WilsonLowPct:         lo,
		WilsonHighPct:        hi,
		ReformMeanRounds:     res.Reform.Mean(),
		ReformMaxRounds:      res.Reform.Max(),
		NeverReformed:        res.NeverReformed,
		AmbiguousStablePct:   res.Stable.PercentAtLeast(1),
		AmbiguousStableMax:   res.Stable.Max(),
		AmbiguousInFlightPct: res.InProgress.PercentAtLeast(1),
		AmbiguousInFlightMax: res.InProgress.Max(),
		MaxMessageBytes:      res.Sizes.MaxMessageBytes,
		MaxRoundBytes:        res.Sizes.MaxRoundBytes,
	}
}

// AddCase appends one case to the report.
func (r *RunReport) AddCase(res CaseResult, changes int) {
	r.Cases = append(r.Cases, NewCaseReport(res, changes))
}

// AddSeries appends every point of a sweep's series.
func (r *RunReport) AddSeries(series []Series, changes int) {
	for _, s := range series {
		for _, p := range s.Points {
			r.AddCase(p, changes)
		}
	}
}

// Finish stamps the report with the elapsed wall time since start and,
// when reg is non-nil, the final metrics snapshot.
func (r *RunReport) Finish(start time.Time, reg *metrics.Registry) {
	r.GeneratedAt = time.Now().UTC()
	r.WallSeconds = time.Since(start).Seconds()
	if reg != nil {
		s := reg.Snapshot()
		r.Metrics = &s
	}
}

// WriteFile writes the report as indented JSON.
func (r *RunReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("experiment: encode report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("experiment: write report: %w", err)
	}
	return nil
}
