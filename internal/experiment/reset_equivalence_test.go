package experiment

import (
	"reflect"
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
)

// The experiment-layer half of the reset-vs-fresh golden contract:
// RunCase now keeps one driver per worker and resets it between
// fresh-start runs, so its output must match a reference that never
// reuses anything — a brand-new driver per run, executed sequentially
// (the pre-reuse implementation). The check runs for every algorithm,
// both experiment modes and several worker counts; the package-internal
// test reuses runSeed and CaseResult.record so the reference aggregates
// exactly as RunCase does.

// referenceCase computes spec's result with no driver reuse at all.
func referenceCase(t *testing.T, spec CaseSpec) CaseResult {
	t.Helper()
	res := CaseResult{Algorithm: spec.Factory.Name, MeanRounds: spec.MeanRounds}
	root := rng.New(spec.Seed)
	switch spec.Mode {
	case Cascading:
		// Cascading state must carry forward by definition; only the
		// network heals between runs.
		d := sim.NewDriver(spec.Factory, spec.config(), runSeed(root, spec, 0))
		for run := 0; run < spec.Runs; run++ {
			d.Heal()
			r, err := d.Run()
			if err != nil {
				t.Fatalf("%s reference cascading run %d: %v", spec.Factory.Name, run, err)
			}
			res.record(r)
		}
	default:
		for run := 0; run < spec.Runs; run++ {
			d := sim.NewDriver(spec.Factory, spec.config(), runSeed(root, spec, run))
			r, err := d.Run()
			if err != nil {
				t.Fatalf("%s reference fresh run %d: %v", spec.Factory.Name, run, err)
			}
			res.record(r)
		}
	}
	return res
}

// TestRunCaseResetVsFreshEquivalence pins RunCase's driver-reuse
// lifecycle to the no-reuse reference for the full matrix: every
// algorithm, both modes, 1 and 3 workers.
func TestRunCaseResetVsFreshEquivalence(t *testing.T) {
	defer SetParallelism(0)
	for _, f := range algset.All() {
		for _, mode := range []Mode{FreshStart, Cascading} {
			spec := CaseSpec{
				Factory:    f,
				Procs:      20,
				Changes:    4,
				MeanRounds: 2,
				Runs:       10,
				Mode:       mode,
				Seed:       1234,
			}
			want := referenceCase(t, spec)
			for _, workers := range []int{1, 3} {
				SetParallelism(workers)
				got, err := RunCase(spec)
				if err != nil {
					t.Fatalf("%s %s %d workers: %v", f.Name, mode, workers, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s %s: %d-worker reused-driver result differs from fresh reference\nwant: %+v\ngot:  %+v",
						f.Name, mode, workers, want, got)
				}
			}
		}
	}
}

// TestRunPairedResetVsFreshEquivalence does the same for the paired
// comparison, whose per-worker driver pairs are reset per arm.
func TestRunPairedResetVsFreshEquivalence(t *testing.T) {
	defer SetParallelism(0)
	factories := algset.All()
	first, second := factories[0], factories[1] // ykd vs dfls
	spec := CaseSpec{
		Procs: 20, Changes: 4, MeanRounds: 2, Runs: 10,
		Mode: FreshStart, Seed: 1234,
	}

	// Reference: fresh driver per (run, arm), sequential.
	var want PairedResult
	root := rng.New(spec.Seed)
	for run := 0; run < spec.Runs; run++ {
		var formed [2]bool
		for i := 0; i < 2; i++ {
			s := spec
			s.Factory = first
			if i == 1 {
				s.Factory = second
			}
			d := sim.NewDriver(s.Factory, s.config(), runSeed(root, s, run))
			r, err := d.Run()
			if err != nil {
				t.Fatalf("%s reference paired run %d: %v", s.Factory.Name, run, err)
			}
			formed[i] = r.PrimaryFormed
		}
		want.Runs++
		switch {
		case formed[0] && formed[1]:
			want.Both++
		case formed[0]:
			want.OnlyFirst++
		case formed[1]:
			want.OnlySecond++
		default:
			want.Neither++
		}
	}

	for _, workers := range []int{1, 3} {
		SetParallelism(workers)
		got, err := RunPaired(first, second, spec)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if want != got {
			t.Errorf("%d workers: reused-driver paired result differs from fresh reference: want %+v, got %+v",
				workers, want, got)
		}
	}
}
