package experiment

import (
	"fmt"
	"strings"

	"dynvote/internal/algset"
)

// This file implements the N-scaling study, the beyond-thesis
// extension of the §4.1 scaling check. The thesis verifies that the
// Figure 4-2 workload gives almost identical availability at 32, 48
// and 64 processes; the study here carries the same measurement out to
// 1024 processes — past the 256-process inline-set boundary, into the
// wide-word range the kilo-process pass keeps allocation-free. Related
// work studies voting-based membership at these scales, and
// availability staying flat in N is what justifies reading the
// thesis's 64-process figures as general.

// ScalingStudySpec parameterizes the N-scaling sweep: the thesis
// scaling check's workload (YKD, fresh starts) measured across system
// sizes at a few change rates.
type ScalingStudySpec struct {
	// Sizes are the system sizes to measure. Empty means the full
	// sweep: the thesis's 32/48/64 check extended out to 1024.
	Sizes []int
	// Rates are the mean-rounds-between-changes points measured per
	// size (default 1, 4, 8 — the rates the thesis quotes in §4.1).
	Rates []float64
	// Changes per run (default 6, the Figure 4-2 workload).
	Changes int
	// Runs per (size, rate) case (default 1000) at sizes up to 256.
	// Above 256 the per-run cost grows with the O(N²) message floor,
	// so the budget is divided by (N/256)² — availability percentages
	// converge fast enough that the reduced sample stays meaningful,
	// and the sweep's wall time stays roughly flat per size.
	Runs int
	// Seed roots all randomness (default the thesis seed).
	Seed int64
	// Progress, when non-nil, receives one line per finished case.
	Progress func(string)
}

// Defaults fills unset fields with the standard sweep parameters.
func (s ScalingStudySpec) Defaults() ScalingStudySpec {
	if len(s.Sizes) == 0 {
		s.Sizes = []int{32, 48, 64, 96, 128, 192, 256, 512, 1024}
	}
	if len(s.Rates) == 0 {
		s.Rates = []float64{1, 4, 8}
	}
	if s.Changes == 0 {
		s.Changes = 6
	}
	if s.Runs == 0 {
		s.Runs = 1000
	}
	if s.Seed == 0 {
		s.Seed = 20000505
	}
	return s
}

// runsFor returns the run budget for one system size: the configured
// Runs up to 256 processes, divided by (n/256)² beyond — floored at 25
// samples but never raised above the configured budget.
func (s ScalingStudySpec) runsFor(n int) int {
	if n <= 256 {
		return s.Runs
	}
	f := (n / 256) * (n / 256)
	r := s.Runs / f
	if r < 25 {
		r = 25
	}
	if r > s.Runs {
		r = s.Runs
	}
	return r
}

// ScalingRow is one system size's outcome: one CaseResult per rate in
// the spec's Rates, in order.
type ScalingRow struct {
	Procs  int
	Points []CaseResult
}

// RunScalingStudy measures YKD availability at every (size, rate) pair
// of the spec. Each case runs under the same seed, so a row's runs at
// different sizes share nothing but the workload shape — exactly like
// the thesis's scaling check.
func RunScalingStudy(spec ScalingStudySpec) ([]ScalingRow, error) {
	spec = spec.Defaults()
	ykdF := algset.Availability()[0]
	rows := make([]ScalingRow, 0, len(spec.Sizes))
	for _, n := range spec.Sizes {
		row := ScalingRow{Procs: n, Points: make([]CaseResult, 0, len(spec.Rates))}
		for _, rate := range spec.Rates {
			res, err := RunCase(CaseSpec{
				Factory: ykdF, Procs: n, Changes: spec.Changes,
				MeanRounds: rate, Runs: spec.runsFor(n), Mode: FreshStart, Seed: spec.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("scaling study at %d procs, rate %g: %w", n, rate, err)
			}
			row.Points = append(row.Points, res)
			if spec.Progress != nil {
				spec.Progress(fmt.Sprintf("scaling: %d procs, rate %g: %s", n, rate, res.Availability))
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScalingTable renders the study as a text table: one row per
// system size, one column per rate.
func RenderScalingTable(spec ScalingStudySpec, rows []ScalingRow) string {
	spec = spec.Defaults()
	var b strings.Builder
	fmt.Fprintf(&b, "N-scaling study: %d fresh changes, %d runs/case (ykd availability)\n\n",
		spec.Changes, spec.Runs)
	fmt.Fprintf(&b, "%-8s", "procs")
	for _, r := range spec.Rates {
		fmt.Fprintf(&b, " %13s", fmt.Sprintf("rate=%g", r))
	}
	// The runs column makes the divided budgets past 256 processes
	// visible next to the percentages they qualify.
	fmt.Fprintf(&b, " %8s\n", "runs")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8d", row.Procs)
		for _, p := range row.Points {
			fmt.Fprintf(&b, " %12.1f%%", p.Availability.Percent())
		}
		runs := 0
		if len(row.Points) > 0 {
			runs = row.Points[0].Availability.Runs
		}
		fmt.Fprintf(&b, " %8d\n", runs)
	}
	return b.String()
}

// RenderScalingCSV renders the same data as CSV with a header row:
// procs, then one availability column per rate.
func RenderScalingCSV(spec ScalingStudySpec, rows []ScalingRow) string {
	spec = spec.Defaults()
	var b strings.Builder
	b.WriteString("procs")
	for _, r := range spec.Rates {
		fmt.Fprintf(&b, ",rate_%g", r)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%d", row.Procs)
		for _, p := range row.Points {
			fmt.Fprintf(&b, ",%.2f", p.Availability.Percent())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
