package experiment

import (
	"strings"
	"testing"
)

func TestScalingStudySmallSweep(t *testing.T) {
	var progress []string
	spec := ScalingStudySpec{
		Sizes: []int{8, 16}, Rates: []float64{2}, Changes: 2, Runs: 10,
		Progress: func(s string) { progress = append(progress, s) },
	}
	rows, err := RunScalingStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Procs != 8 || rows[1].Procs != 16 {
		t.Fatalf("rows = %+v, want sizes 8 and 16", rows)
	}
	for _, row := range rows {
		if len(row.Points) != 1 {
			t.Fatalf("%d procs: %d points, want 1", row.Procs, len(row.Points))
		}
		if got := row.Points[0].Availability.Runs; got != 10 {
			t.Errorf("%d procs: %d runs counted, want 10", row.Procs, got)
		}
	}
	if len(progress) != 2 {
		t.Errorf("progress lines = %d, want 2", len(progress))
	}

	table := RenderScalingTable(spec, rows)
	for _, want := range []string{"procs", "rate=2", "\n8  ", "\n16 "} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := RenderScalingCSV(spec, rows)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 || lines[0] != "procs,rate_2" {
		t.Errorf("csv = %q", csv)
	}
	if !strings.HasPrefix(lines[1], "8,") || !strings.HasPrefix(lines[2], "16,") {
		t.Errorf("csv rows = %q", lines[1:])
	}
}

// The default sweep must reach 1024 processes — the contract the
// README and DESIGN quote for the beyond-thesis scaling extension.
func TestScalingDefaultsReach1024(t *testing.T) {
	spec := ScalingStudySpec{}.Defaults()
	if spec.Sizes[0] != 32 || spec.Sizes[len(spec.Sizes)-1] != 1024 {
		t.Errorf("default sizes = %v, want 32..1024", spec.Sizes)
	}
	if len(spec.Rates) != 3 || spec.Runs != 1000 || spec.Changes != 6 {
		t.Errorf("defaults = %+v", spec)
	}
}

// Past 256 processes the run budget is divided by (N/256)², floored at
// 25 samples, never raised above the configured budget.
func TestScalingRunBudgets(t *testing.T) {
	spec := ScalingStudySpec{}.Defaults()
	for _, tc := range []struct{ n, want int }{
		{32, 1000}, {256, 1000}, {512, 250}, {1024, 62},
	} {
		if got := spec.runsFor(tc.n); got != tc.want {
			t.Errorf("runsFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	small := ScalingStudySpec{Runs: 10}.Defaults()
	if got := small.runsFor(1024); got != 10 {
		t.Errorf("small-budget runsFor(1024) = %d, want the configured 10", got)
	}
}
