package experiment_test

import (
	"fmt"
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/experiment"
)

// Stream-stability goldens: the multi-word proc.Set representation (and
// every later storage change) must leave 64-process runs bit-identical.
// The fingerprints below were captured from the repository BEFORE the
// representation widened past one inline word — they are the pre-PR
// byte streams, frozen. A mismatch means a change altered either the
// random draws a run consumes or the algorithms' observable behaviour
// at the thesis's system size, which the availability figures would
// silently inherit. Do NOT regenerate these constants to make the test
// pass; a legitimate semantic change must say so explicitly and justify
// why the thesis-scale streams moved.

// caseFingerprint digests every deterministic field of a CaseResult.
func caseFingerprint(res experiment.CaseResult) string {
	return fmt.Sprintf("%s avail=%s stable[n=%d max=%d mean=%.4f] inprog[n=%d max=%d mean=%.4f] reform[n=%d max=%d mean=%.4f] never=%d",
		res.Algorithm, res.Availability,
		res.Stable.Total(), res.Stable.Max(), res.Stable.Mean(),
		res.InProgress.Total(), res.InProgress.Max(), res.InProgress.Mean(),
		res.Reform.Total(), res.Reform.Max(), res.Reform.Mean(),
		res.NeverReformed)
}

// TestStreamStability64RunCase pins fresh-start and cascading RunCase
// outputs for every algorithm at the thesis's 64 processes.
func TestStreamStability64RunCase(t *testing.T) {
	want := map[string]string{
		"fresh/ykd":             "ykd avail=83.3% (25/30) stable[n=30 max=1 mean=0.1333] inprog[n=180 max=2 mean=0.2000] reform[n=25 max=2 mean=1.2400] never=5",
		"fresh/ykd-unopt":       "ykd-unopt avail=83.3% (25/30) stable[n=30 max=1 mean=0.1667] inprog[n=180 max=3 mean=0.2278] reform[n=25 max=2 mean=1.2400] never=5",
		"fresh/dfls":            "dfls avail=86.7% (26/30) stable[n=30 max=2 mean=0.1667] inprog[n=180 max=3 mean=0.4000] reform[n=26 max=2 mean=1.3462] never=4",
		"fresh/1-pending":       "1-pending avail=73.3% (22/30) stable[n=30 max=1 mean=0.1333] inprog[n=180 max=1 mean=0.2222] reform[n=22 max=2 mean=1.5000] never=8",
		"fresh/mr1p":            "mr1p avail=90.0% (27/30) stable[n=30 max=1 mean=0.1333] inprog[n=180 max=1 mean=0.3556] reform[n=27 max=4 mean=2.0000] never=3",
		"fresh/simple-majority": "simple-majority avail=80.0% (24/30) stable[n=30 max=0 mean=0.0000] inprog[n=180 max=0 mean=0.0000] reform[n=24 max=0 mean=0.0000] never=6",
		"cascading/ykd":         "ykd avail=90.0% (27/30) stable[n=30 max=2 mean=0.0667] inprog[n=180 max=2 mean=0.1833] reform[n=27 max=2 mean=1.1852] never=3",
		"cascading/mr1p":        "mr1p avail=93.3% (28/30) stable[n=30 max=1 mean=0.1000] inprog[n=180 max=1 mean=0.3778] reform[n=28 max=4 mean=2.0714] never=2",
	}
	for _, f := range algset.All() {
		modes := []experiment.Mode{experiment.FreshStart}
		if f.Name == "ykd" || f.Name == "mr1p" {
			modes = append(modes, experiment.Cascading)
		}
		for _, mode := range modes {
			key := "fresh/" + f.Name
			if mode == experiment.Cascading {
				key = "cascading/" + f.Name
			}
			res, err := experiment.RunCase(experiment.CaseSpec{
				Factory: f, Procs: 64, Changes: 6, MeanRounds: 4,
				Runs: 30, Mode: mode, Seed: 20000505,
			})
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			if got := caseFingerprint(res); got != want[key] {
				t.Errorf("%s stream moved:\n got  %q\n want %q", key, got, want[key])
			}
		}
	}
}

// TestStreamStability64RunPaired pins the paired ykd-vs-dfls comparison.
func TestStreamStability64RunPaired(t *testing.T) {
	ykdF, err := algset.ByName("ykd")
	if err != nil {
		t.Fatal(err)
	}
	dflsF, err := algset.ByName("dfls")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := experiment.RunPaired(ykdF, dflsF, experiment.CaseSpec{
		Procs: 64, Changes: 6, MeanRounds: 6,
		Runs: 30, Mode: experiment.FreshStart, Seed: 20000505,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("both=%d onlyFirst=%d onlySecond=%d neither=%d runs=%d",
		pr.Both, pr.OnlyFirst, pr.OnlySecond, pr.Neither, pr.Runs)
	const want = "both=26 onlyFirst=1 onlySecond=1 neither=2 runs=30"
	if got != want {
		t.Errorf("paired stream moved:\n got  %q\n want %q", got, want)
	}
}
