package experiment

import (
	"fmt"
	"sync"
	"time"

	"dynvote/internal/core"
	"dynvote/internal/metrics"
)

// SweepSpec is a full figure's workload: several algorithms, a fixed
// number of connectivity changes, and a sweep over change rates.
type SweepSpec struct {
	Factories []core.Factory
	Procs     int
	Changes   int
	// Rates is the x-axis: mean message rounds between connectivity
	// changes.
	Rates []float64
	Runs  int
	Mode  Mode
	Seed  int64
	// MeasureSizes additionally collects message-size maxima.
	MeasureSizes bool
	// Progress, when non-nil, receives one "[k/N] ... (eta 12s)" line
	// per completed case. Lines are serialized; the sink needs no
	// locking of its own.
	Progress func(string)
	// Metrics, when non-nil, receives sweep-level instrumentation
	// (per-case wall time, worker count) and is plumbed into every
	// case's simulation driver.
	Metrics *metrics.Registry
}

// sweepMetrics instruments RunSweep itself; the driver-level counters
// land in the same registry through CaseSpec.Metrics.
type sweepMetrics struct {
	cases   *metrics.Counter
	seconds *metrics.Histogram
	workers *metrics.Gauge
}

func newSweepMetrics(reg *metrics.Registry) sweepMetrics {
	return sweepMetrics{
		cases:   reg.Counter("sweep_cases_total", "measurement cases completed"),
		seconds: reg.Histogram("sweep_case_seconds", "wall-clock seconds per measurement case", metrics.DefBuckets),
		workers: reg.Gauge("sweep_workers", "concurrent sweep workers"),
	}
}

// Series is one algorithm's line in a figure: a result per swept rate.
type Series struct {
	Algorithm string
	Points    []CaseResult
}

// RunSweep executes every (algorithm, rate) case of the sweep,
// spreading cases across CPUs, and returns one series per algorithm in
// the order the factories were given.
func RunSweep(spec SweepSpec) ([]Series, error) {
	type cell struct {
		alg, rate int
	}
	cells := make([]cell, 0, len(spec.Factories)*len(spec.Rates))
	for a := range spec.Factories {
		for r := range spec.Rates {
			cells = append(cells, cell{alg: a, rate: r})
		}
	}

	series := make([]Series, len(spec.Factories))
	for a, f := range spec.Factories {
		series[a] = Series{Algorithm: f.Name, Points: make([]CaseResult, len(spec.Rates))}
	}

	// Cells share the experiment-wide worker budget with the run-level
	// parallelism inside each RunCase: when cases parallelize their
	// own runs, the sweep does not over-subscribe the machine by
	// stacking a second GOMAXPROCS-wide pool on top.
	workers := Parallelism()
	if workers > len(cells) {
		workers = len(cells)
	}
	sm := newSweepMetrics(spec.Metrics)
	sm.workers.Set(int64(workers))
	progress := newProgressReporter(len(cells), spec.Progress)
	var (
		mu       sync.Mutex
		firstErr error
	)
	parallelDo(len(cells), func(i int) {
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			return // a cell failed; don't start new ones
		}
		c := cells[i]
		cs := CaseSpec{
			Factory:      spec.Factories[c.alg],
			Procs:        spec.Procs,
			Changes:      spec.Changes,
			MeanRounds:   spec.Rates[c.rate],
			Runs:         spec.Runs,
			Mode:         spec.Mode,
			Seed:         spec.Seed,
			MeasureSizes: spec.MeasureSizes,
			Metrics:      spec.Metrics,
		}
		caseStart := time.Now()
		res, err := RunCase(cs)
		sm.seconds.Observe(time.Since(caseStart).Seconds())
		sm.cases.Inc()

		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = err
		} else {
			series[c.alg].Points[c.rate] = res
		}
		mu.Unlock()
		if err == nil {
			progress.caseDone(fmt.Sprintf("%-16s rate=%-5.1f %s",
				res.Algorithm, res.MeanRounds, res.Availability))
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return series, nil
}
