package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"dynvote/internal/core"
)

// SweepSpec is a full figure's workload: several algorithms, a fixed
// number of connectivity changes, and a sweep over change rates.
type SweepSpec struct {
	Factories []core.Factory
	Procs     int
	Changes   int
	// Rates is the x-axis: mean message rounds between connectivity
	// changes.
	Rates []float64
	Runs  int
	Mode  Mode
	Seed  int64
	// MeasureSizes additionally collects message-size maxima.
	MeasureSizes bool
	// Progress, when non-nil, receives one line per completed case.
	Progress func(string)
}

// Series is one algorithm's line in a figure: a result per swept rate.
type Series struct {
	Algorithm string
	Points    []CaseResult
}

// RunSweep executes every (algorithm, rate) case of the sweep,
// spreading cases across CPUs, and returns one series per algorithm in
// the order the factories were given.
func RunSweep(spec SweepSpec) ([]Series, error) {
	type cell struct {
		alg, rate int
	}
	cells := make([]cell, 0, len(spec.Factories)*len(spec.Rates))
	for a := range spec.Factories {
		for r := range spec.Rates {
			cells = append(cells, cell{alg: a, rate: r})
		}
	}

	series := make([]Series, len(spec.Factories))
	for a, f := range spec.Factories {
		series[a] = Series{Algorithm: f.Name, Points: make([]CaseResult, len(spec.Rates))}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	var (
		mu       sync.Mutex
		firstErr error
		next     int
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= len(cells) {
					mu.Unlock()
					return
				}
				c := cells[next]
				next++
				mu.Unlock()

				cs := CaseSpec{
					Factory:      spec.Factories[c.alg],
					Procs:        spec.Procs,
					Changes:      spec.Changes,
					MeanRounds:   spec.Rates[c.rate],
					Runs:         spec.Runs,
					Mode:         spec.Mode,
					Seed:         spec.Seed,
					MeasureSizes: spec.MeasureSizes,
				}
				res, err := RunCase(cs)

				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				} else {
					series[c.alg].Points[c.rate] = res
					if spec.Progress != nil {
						spec.Progress(fmt.Sprintf("%-16s rate=%-5.1f %s",
							res.Algorithm, res.MeanRounds, res.Availability))
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return series, nil
}
