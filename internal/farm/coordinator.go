package farm

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dynvote/internal/campaign"
	"dynvote/internal/metrics"
	"dynvote/internal/wire"
)

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// Campaign is the campaign to farm out. Progress and AlgorithmDone
	// hooks fire on the coordinator (serialized); Abort, when set,
	// drains the farm like SIGINT does.
	Campaign campaign.Config
	// Listen is the TCP listen address (e.g. "127.0.0.1:0").
	Listen string
	// Window is how many chains beyond its executing capacity a worker
	// holds queued, so it never idles between chains (default 1).
	Window int
	// StragglerAfter re-issues a chain to an idle worker when its
	// current holder has been running it longer than this and no fresh
	// work remains — the tail-latency hedge. 0 disables.
	StragglerAfter time.Duration
	// ProgressEvery throttles Progress callbacks; 0 disables them.
	ProgressEvery time.Duration
	// Progress, when non-nil, receives farm-level progress updates,
	// serialized with the campaign AlgorithmDone hook.
	Progress func(Update)
	// Metrics, when non-nil, receives the farm counters: chains
	// dispatched/completed/requeued, connected workers, and per-worker
	// completion counters.
	Metrics *metrics.Registry
}

// Update is one farm progress snapshot.
type Update struct {
	Done, Total int // chains merged / chains overall
	Requeued    int // chain re-issues so far
	Workers     int // connected workers
	Elapsed     time.Duration
}

// farmMetrics resolves the coordinator's instruments once.
type farmMetrics struct {
	reg        *metrics.Registry
	dispatched *metrics.Counter
	completed  *metrics.Counter
	requeued   *metrics.Counter
	workers    *metrics.Gauge
}

func newFarmMetrics(reg *metrics.Registry) farmMetrics {
	return farmMetrics{
		reg:        reg,
		dispatched: reg.Counter("farm_chains_dispatched_total", "chain assignments sent to workers (re-issues included)"),
		completed:  reg.Counter("farm_chains_completed_total", "chains merged exactly once"),
		requeued:   reg.Counter("farm_chains_requeued_total", "chain re-issues after worker loss or straggler deadline"),
		workers:    reg.Gauge("farm_workers_connected", "currently connected workers"),
	}
}

// Coordinator owns the farmed campaign: the work queue, the per-worker
// in-flight windows, requeue/straggler bookkeeping, and the
// chain-ordered merge through campaign.AssembleResult.
type Coordinator struct {
	cfg       CoordinatorConfig
	camp      campaign.Config // withDefaults applied
	ln        net.Listener
	confBody  []byte // config frame body, serialized once
	start     time.Time
	drainFlag atomic.Bool
	m         farmMetrics
	hookMu    sync.Mutex // serializes Progress/AlgorithmDone hooks

	mu          sync.Mutex
	queue       []int // pending job indices (job = alg*Chains + chain)
	stats       []campaign.ChainStats
	errs        []error
	done        []bool // seen-set: at-most-once merge guard
	requeued    []int
	remaining   int
	algsLeft    []int // undone chains per algorithm, for AlgorithmDone
	algStart    []time.Time
	workers     map[*coordWorker]struct{}
	workerSeq   int
	peakWorkers int
	violated    bool
	finished    bool

	finishedCh chan struct{}
	acceptDone chan struct{}
}

// coordWorker is the coordinator's view of one connected worker.
type coordWorker struct {
	conn     net.Conn
	bw       *bufio.Writer
	wmu      sync.Mutex // serializes frame writes (assigns, abort)
	id       int
	window   int // capacity + CoordinatorConfig.Window
	draining bool
	// outstanding maps issued-but-unmerged jobs to their issue time.
	outstanding map[int]time.Time
	completed   *metrics.Counter
}

// NewCoordinator binds the listen address and starts accepting
// workers. The campaign does not progress until Run is called.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	camp := cfg.Campaign
	if len(camp.Factories) == 0 {
		return nil, fmt.Errorf("farm: campaign has no algorithms")
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("farm: listen %s: %w", cfg.Listen, err)
	}
	var w wire.Writer
	encodeConfig(&w, camp)
	c := &Coordinator{
		cfg:        cfg,
		camp:       withDefaults(camp),
		ln:         ln,
		confBody:   append([]byte(nil), w.Bytes()...),
		m:          newFarmMetrics(cfg.Metrics),
		workers:    make(map[*coordWorker]struct{}),
		finishedCh: make(chan struct{}),
		acceptDone: make(chan struct{}),
	}
	jobs := len(c.camp.Factories) * c.camp.Chains
	c.stats = make([]campaign.ChainStats, jobs)
	c.errs = make([]error, jobs)
	c.done = make([]bool, jobs)
	c.requeued = make([]int, jobs)
	c.remaining = jobs
	c.queue = make([]int, jobs)
	for i := range c.queue {
		c.queue[i] = i
	}
	c.algsLeft = make([]int, len(c.camp.Factories))
	for i := range c.algsLeft {
		c.algsLeft[i] = c.camp.Chains
	}
	c.algStart = make([]time.Time, len(c.camp.Factories))
	c.start = time.Now()
	go c.acceptLoop()
	return c, nil
}

// withDefaults mirrors campaign.Config's internal defaulting for the
// fields the coordinator indexes by (Chains, Segment).
func withDefaults(c campaign.Config) campaign.Config {
	if c.Chains <= 0 {
		c.Chains = 1
	}
	if c.Segment <= 0 {
		c.Segment = 12
	}
	return c
}

// Addr returns the coordinator's bound listen address, for workers to
// join.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Workers returns the current and peak connected worker counts.
func (c *Coordinator) Workers() (current, peak int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers), c.peakWorkers
}

// Drain stops issuing new chains and finishes once every in-flight
// chain has reported (or its worker vanished): the SIGINT path. The
// merged result covers whatever completed, marked Aborted.
func (c *Coordinator) Drain() {
	c.drainFlag.Store(true)
	c.mu.Lock()
	c.maybeFinishLocked()
	c.mu.Unlock()
}

// Run drives the farm to completion and returns the merged campaign
// result — bit-identical to a local campaign.Run for the same
// (seed, chains) — and the first violation as the error, exactly like
// campaign.Run. It blocks until the work queue drains, a violation
// aborts the farm, or Drain empties the in-flight window.
func (c *Coordinator) Run() (*campaign.Result, error) {
	var ticker *time.Ticker
	var tick <-chan time.Time
	interval := c.cfg.ProgressEvery
	if c.cfg.StragglerAfter > 0 {
		if half := c.cfg.StragglerAfter / 2; interval == 0 || half < interval {
			interval = half
		}
	}
	if interval > 0 {
		ticker = time.NewTicker(interval)
		tick = ticker.C
		defer ticker.Stop()
	}
	lastProgress := time.Now()
loop:
	for {
		select {
		case <-c.finishedCh:
			break loop
		case <-tick:
			// The straggler hedge needs a periodic nudge: an idle worker
			// only asks for work when a result frees its window, and a
			// stalled tail produces no results.
			c.fillAll()
			if c.cfg.Progress != nil && c.cfg.ProgressEvery > 0 &&
				time.Since(lastProgress) >= c.cfg.ProgressEvery {
				lastProgress = time.Now()
				c.emitProgress()
			}
		}
	}
	c.Close()

	c.mu.Lock()
	stats := append([]campaign.ChainStats(nil), c.stats...)
	for i := range stats {
		stats[i].Requeued = c.requeued[i]
	}
	errs := append([]error(nil), c.errs...)
	c.mu.Unlock()

	camp := c.camp
	if c.drainFlag.Load() {
		// AssembleResult reads Config.Abort to mark the result; wire the
		// drain flag through so a drained farm reports Aborted like a
		// drained local campaign.
		ab := new(atomic.Bool)
		ab.Store(true)
		camp.Abort = ab
	}
	return campaign.AssembleResult(camp, stats, errs, time.Since(c.start))
}

// Close shuts the listener and every worker connection down. Run calls
// it on the way out; it is idempotent.
func (c *Coordinator) Close() {
	_ = c.ln.Close()
	c.mu.Lock()
	conns := make([]net.Conn, 0, len(c.workers))
	for w := range c.workers {
		conns = append(conns, w.conn)
	}
	c.mu.Unlock()
	for _, conn := range conns {
		_ = conn.Close()
	}
	<-c.acceptDone
}

func (c *Coordinator) emitProgress() {
	c.mu.Lock()
	u := Update{
		Done:    len(c.done) - c.remaining,
		Total:   len(c.done),
		Workers: len(c.workers),
		Elapsed: time.Since(c.start),
	}
	for _, r := range c.requeued {
		u.Requeued += r
	}
	c.mu.Unlock()
	c.hookMu.Lock()
	c.cfg.Progress(u)
	c.hookMu.Unlock()
}

func (c *Coordinator) acceptLoop() {
	defer close(c.acceptDone)
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed: campaign finished or aborted
		}
		go c.handleWorker(conn)
	}
}

// handleWorker owns one worker connection: handshake, config frame,
// then the issue/collect loop until the connection dies or the farm
// finishes. On any exit, the worker's outstanding chains requeue.
func (c *Coordinator) handleWorker(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)

	// Handshake under a deadline: a junk connection (port scan, fault
	// test) must not hold a coordinator slot open forever.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	body, err := wire.ReadFrame(br, nil, maxFrame)
	if err != nil {
		_ = conn.Close()
		return
	}
	r := wire.NewReader(body)
	if r.Byte() != msgHello {
		_ = conn.Close()
		return
	}
	capacity, err := decodeHello(r)
	if err != nil {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	w := &coordWorker{
		conn:        conn,
		bw:          bufio.NewWriterSize(conn, 16<<10),
		window:      capacity + c.cfg.Window,
		outstanding: make(map[int]time.Time),
	}

	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		_ = conn.Close()
		return
	}
	c.workerSeq++
	w.id = c.workerSeq
	c.workers[w] = struct{}{}
	if len(c.workers) > c.peakWorkers {
		c.peakWorkers = len(c.workers)
	}
	w.completed = c.m.reg.Counter(
		fmt.Sprintf("farm_worker_%d_chains_total", w.id),
		"chains completed by this worker")
	c.mu.Unlock()
	c.m.workers.Add(1)

	defer func() {
		_ = conn.Close()
		c.m.workers.Add(-1)
		c.unregister(w)
	}()

	// The campaign config crosses the wire exactly once per connection;
	// every subsequent assign is ~10 bytes.
	w.wmu.Lock()
	err = wire.WriteFrame(w.bw, c.confBody, maxFrame)
	if err == nil {
		err = w.bw.Flush()
	}
	w.wmu.Unlock()
	if err != nil {
		return
	}

	c.fill(w)

	var buf []byte
	for {
		body, err := wire.ReadFrame(br, buf, maxFrame)
		if err != nil {
			return
		}
		buf = body[:0]
		r := wire.NewReader(body)
		switch r.Byte() {
		case msgResult:
			res, err := decodeResult(r)
			if err != nil {
				return // corrupt frame: drop the worker, requeue its chains
			}
			c.handleResult(w, res)
		case msgGoodbye:
			c.mu.Lock()
			w.draining = true
			c.mu.Unlock()
		default:
			return // protocol violation
		}
	}
}

// unregister removes a worker and requeues its outstanding unmerged
// chains — the chain index is the unit of retry, and the seen-set in
// handleResult keeps a requeued chain from ever merging twice.
func (c *Coordinator) unregister(w *coordWorker) {
	c.mu.Lock()
	if _, ok := c.workers[w]; !ok {
		c.mu.Unlock()
		return
	}
	delete(c.workers, w)
	requeuedAny := false
	for job := range w.outstanding {
		if c.done[job] {
			continue
		}
		if !c.queuedLocked(job) {
			c.queue = append(c.queue, job)
		}
		c.requeued[job]++
		c.m.requeued.Inc()
		requeuedAny = true
	}
	c.maybeFinishLocked()
	c.mu.Unlock()
	if requeuedAny {
		c.fillAll()
	}
}

// queuedLocked reports whether job is already sitting in the pending
// queue (it can be, when a straggler re-issue and a worker loss race).
func (c *Coordinator) queuedLocked(job int) bool {
	for _, q := range c.queue {
		if q == job {
			return true
		}
	}
	return false
}

// handleResult merges one chain outcome: exactly once per job (the
// seen-set guard — duplicate results from straggler re-issues are
// dropped), violation errors reconstructed as ChainErrors, algorithm
// completion hooks fired in the same shape as a local campaign.
func (c *Coordinator) handleResult(w *coordWorker, res chainResult) {
	c.mu.Lock()
	job := res.alg*c.camp.Chains + res.chain
	if res.alg < 0 || res.alg >= len(c.camp.Factories) ||
		res.chain < 0 || res.chain >= c.camp.Chains {
		c.mu.Unlock()
		return // nonsense coordinates: ignore
	}
	delete(w.outstanding, job)
	if c.done[job] {
		c.mu.Unlock()
		c.fill(w)
		return
	}
	c.done[job] = true
	c.remaining--
	name := c.camp.Factories[res.alg].Name
	res.stat.Algorithm = name
	c.stats[job] = res.stat
	if res.errMsg != "" {
		c.errs[job] = &campaign.ChainError{
			Algorithm: name,
			Chain:     res.chain,
			Chains:    c.camp.Chains,
			Changes:   res.stat.Changes,
			Err:       errors.New(res.errMsg),
		}
		c.violated = true
	}
	c.m.completed.Inc()
	w.completed.Inc()

	var algDone *campaign.AlgorithmResult
	c.algsLeft[res.alg]--
	if c.algsLeft[res.alg] == 0 && c.errs[job] == nil && c.camp.AlgorithmDone != nil {
		clean := true
		lo, hi := res.alg*c.camp.Chains, (res.alg+1)*c.camp.Chains
		for _, err := range c.errs[lo:hi] {
			if err != nil {
				clean = false
				break
			}
		}
		if clean {
			merged := campaign.AssembleAlgorithm(name, c.stats[lo:hi])
			merged.Elapsed = time.Since(c.algStart[res.alg])
			algDone = &merged
		}
	}
	violated := c.violated
	c.maybeFinishLocked()
	c.mu.Unlock()

	if algDone != nil {
		c.hookMu.Lock()
		c.camp.AlgorithmDone(*algDone)
		c.hookMu.Unlock()
	}
	if violated {
		c.abortWorkers()
		return
	}
	c.fill(w)
}

// maybeFinishLocked closes the farm when the queue has fully merged,
// a violation aborted it, or a drain has no chains left in flight.
func (c *Coordinator) maybeFinishLocked() {
	if c.finished {
		return
	}
	finish := c.remaining == 0 || c.violated
	if !finish && c.drainFlag.Load() {
		inFlight := 0
		for w := range c.workers {
			inFlight += len(w.outstanding)
		}
		finish = inFlight == 0
	}
	if finish {
		c.finished = true
		close(c.finishedCh)
	}
}

// abortWorkers broadcasts the abort frame: chains stop cooperatively
// at their next run boundary, mirroring the local campaign's abort.
func (c *Coordinator) abortWorkers() {
	c.mu.Lock()
	ws := make([]*coordWorker, 0, len(c.workers))
	for w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	var enc wire.Writer
	enc.Byte(msgAbort)
	for _, w := range ws {
		w.wmu.Lock()
		if wire.WriteFrame(w.bw, enc.Bytes(), maxFrame) == nil {
			_ = w.bw.Flush()
		}
		w.wmu.Unlock()
	}
}

// fillAll tops up every worker's window; used after requeues and by
// the straggler ticker.
func (c *Coordinator) fillAll() {
	c.mu.Lock()
	ws := make([]*coordWorker, 0, len(c.workers))
	for w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	for _, w := range ws {
		c.fill(w)
	}
}

// fill issues chains to one worker until its in-flight window is full
// or no work is available. Frame writes happen outside the coordinator
// lock: a slow worker's TCP backpressure must not stall the farm.
func (c *Coordinator) fill(w *coordWorker) {
	var enc wire.Writer
	for {
		c.mu.Lock()
		job, ok := c.nextJobLocked(w)
		c.mu.Unlock()
		if !ok {
			return
		}
		alg, chain := job/c.camp.Chains, job%c.camp.Chains
		encodeAssign(&enc, alg, chain)
		w.wmu.Lock()
		err := wire.WriteFrame(w.bw, enc.Bytes(), maxFrame)
		if err == nil {
			err = w.bw.Flush()
		}
		w.wmu.Unlock()
		if err != nil {
			// The connection is dying; its read loop will requeue this
			// job (it is recorded outstanding) along with the rest.
			return
		}
		c.m.dispatched.Inc()
	}
}

// nextJobLocked picks the next chain for w: fresh work from the queue
// first; with the queue empty and a straggler deadline configured, the
// oldest over-deadline chain held by another worker is hedged here
// (counted as a requeue — first result wins, the seen-set drops the
// loser).
func (c *Coordinator) nextJobLocked(w *coordWorker) (int, bool) {
	if c.finished || c.violated || c.drainFlag.Load() || w.draining {
		return 0, false
	}
	if _, ok := c.workers[w]; !ok {
		return 0, false
	}
	if len(w.outstanding) >= w.window {
		return 0, false
	}
	if len(c.queue) > 0 {
		job := c.queue[0]
		c.queue = c.queue[1:]
		if c.done[job] {
			// Merged while queued (requeue raced a late result): skip.
			return c.nextJobLocked(w)
		}
		c.issueLocked(w, job)
		return job, true
	}
	if c.cfg.StragglerAfter <= 0 {
		return 0, false
	}
	deadline := time.Now().Add(-c.cfg.StragglerAfter)
	best, bestAt := -1, time.Time{}
	for other := range c.workers {
		if other == w {
			continue
		}
		for job, at := range other.outstanding {
			if c.done[job] || !at.Before(deadline) {
				continue
			}
			if _, dup := w.outstanding[job]; dup {
				continue
			}
			if best == -1 || at.Before(bestAt) {
				best, bestAt = job, at
			}
		}
	}
	if best == -1 {
		return 0, false
	}
	c.requeued[best]++
	c.m.requeued.Inc()
	c.issueLocked(w, best)
	return best, true
}

func (c *Coordinator) issueLocked(w *coordWorker, job int) {
	w.outstanding[job] = time.Now()
	alg := job / c.camp.Chains
	if c.algStart[alg].IsZero() {
		c.algStart[alg] = time.Now()
	}
}
