package farm

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/campaign"
	"dynvote/internal/core"
	"dynvote/internal/experiment"
	"dynvote/internal/metrics"
	"dynvote/internal/naive"
)

// goldenConfig is the exact configuration pinned by
// internal/campaign/golden_test.go: the farm must reproduce those
// fingerprints bit-identically through coordinator + workers over TCP.
func goldenConfig(t *testing.T) campaign.Config {
	t.Helper()
	ykdF, err := algset.ByName("ykd")
	if err != nil {
		t.Fatal(err)
	}
	dflsF, err := algset.ByName("dfls")
	if err != nil {
		t.Fatal(err)
	}
	return campaign.Config{
		Factories: []core.Factory{ykdF, dflsF},
		Procs:     64,
		Changes:   120,
		Segment:   12,
		Rate:      1.5,
		Seed:      20000505,
		Chains:    3,
	}
}

// goldenWant are the pre-PR fingerprints from campaign/golden_test.go.
var goldenWant = []string{
	"ykd changes=144 runs=12 formed=10 assertions=300",
	"dfls changes=144 runs=12 formed=8 assertions=301",
}

// fingerprint renders the deterministic fields of a campaign result —
// per-chain and merged — so local and farmed runs can be compared
// byte-for-byte. Wall times and requeue counts are execution
// accounting, deliberately excluded.
func fingerprint(res *campaign.Result) string {
	var b strings.Builder
	for _, a := range res.Algorithms {
		fmt.Fprintf(&b, "%s changes=%d runs=%d formed=%d assertions=%d\n",
			a.Algorithm, a.Changes, a.Runs, a.Formed, a.Assertions)
		for _, c := range a.Chains {
			fmt.Fprintf(&b, "  chain %d: alg=%s changes=%d runs=%d formed=%d assertions=%d\n",
				c.Chain, c.Algorithm, c.Changes, c.Runs, c.Formed, c.Assertions)
		}
	}
	return b.String()
}

// startWorker joins the coordinator and serves in a goroutine; the
// returned wait function joins it (failing the test on serve errors).
func startWorker(t *testing.T, addr string, cfg WorkerConfig) func() {
	t.Helper()
	cfg.Addr = addr
	w, err := Join(cfg)
	if err != nil {
		t.Fatalf("worker join %s: %v", addr, err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	return func() {
		if err := <-done; err != nil {
			t.Errorf("worker serve: %v", err)
		}
	}
}

// runFarm executes cfg through a coordinator plus workers and returns
// the merged result.
func runFarm(t *testing.T, camp campaign.Config, ccfg CoordinatorConfig, workers []WorkerConfig) (*campaign.Result, error) {
	t.Helper()
	ccfg.Campaign = camp
	if ccfg.Listen == "" {
		ccfg.Listen = "127.0.0.1:0"
	}
	c, err := NewCoordinator(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	waits := make([]func(), 0, len(workers))
	for _, wc := range workers {
		waits = append(waits, startWorker(t, c.Addr(), wc))
	}
	res, ferr := c.Run()
	for _, wait := range waits {
		wait()
	}
	return res, ferr
}

// TestFarmGoldenLoopback: the same rootSeed run locally and via
// coordinator + {1, 3} workers over localhost TCP must produce
// bit-identical merged fingerprints — and both must equal the pre-PR
// golden constants.
func TestFarmGoldenLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("farm soak in -short mode")
	}
	defer experiment.SetParallelism(0)
	experiment.SetParallelism(2)

	cfg := goldenConfig(t)
	local, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(local)
	for i, w := range goldenWant {
		a := local.Algorithms[i]
		got := fmt.Sprintf("%s changes=%d runs=%d formed=%d assertions=%d",
			a.Algorithm, a.Changes, a.Runs, a.Formed, a.Assertions)
		if got != w {
			t.Fatalf("local campaign moved off the pre-PR golden:\n got  %q\n want %q", got, w)
		}
	}

	for _, n := range []int{1, 3} {
		workers := make([]WorkerConfig, n)
		for i := range workers {
			workers[i] = WorkerConfig{Capacity: 2}
		}
		res, ferr := runFarm(t, cfg, CoordinatorConfig{}, workers)
		if ferr != nil {
			t.Fatalf("workers=%d: %v", n, ferr)
		}
		if got := fingerprint(res); got != want {
			t.Errorf("workers=%d: farmed merge differs from local run:\n got:\n%s\nwant:\n%s", n, got, want)
		}
		if res.Aborted {
			t.Errorf("workers=%d: clean farm run marked aborted", n)
		}
	}
}

// TestFarmWorkerKillRequeuesExactlyOnce: a worker dying mid-campaign
// must have its outstanding chains re-issued, each merging exactly
// once — the merged result stays bit-identical to a local run and the
// requeue shows up in the accounting.
func TestFarmWorkerKillRequeuesExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("farm soak in -short mode")
	}
	defer experiment.SetParallelism(0)
	experiment.SetParallelism(2)

	cfg := goldenConfig(t)
	cfg.Chains = 6 // more cells, so the dying worker holds several
	local, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	res, ferr := runFarm(t, cfg, CoordinatorConfig{Metrics: reg}, []WorkerConfig{
		{Capacity: 2, dieAfterResults: 1}, // killed after its first result
		{Capacity: 2},
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if got, want := fingerprint(res), fingerprint(local); got != want {
		t.Errorf("post-kill merge differs from local run:\n got:\n%s\nwant:\n%s", got, want)
	}

	requeued := 0
	for _, a := range res.Algorithms {
		for _, c := range a.Chains {
			requeued += c.Requeued
		}
	}
	if requeued == 0 {
		t.Error("worker died holding chains, yet nothing was requeued")
	}
	if v := reg.Counter("farm_chains_requeued_total", "").Value(); int(v) != requeued {
		t.Errorf("requeue counter %d != per-chain requeue sum %d", v, requeued)
	}
	// Exactly-once merge: every chain's runs counted once, so totals
	// match the local run (already covered by the fingerprint, but make
	// the double-merge failure mode explicit).
	for i, a := range res.Algorithms {
		if a.Runs != local.Algorithms[i].Runs {
			t.Errorf("%s merged %d runs, want %d (chain merged twice or lost)",
				a.Algorithm, a.Runs, local.Algorithms[i].Runs)
		}
	}
}

// TestFarmViolationAbortsFarm: the naive strawman's violation must
// surface at the coordinator as a ChainError with the trace dump, and
// abort the farm rather than running the full budget.
func TestFarmViolationAbortsFarm(t *testing.T) {
	if testing.Short() {
		t.Skip("farm soak in -short mode")
	}
	cfg := campaign.Config{
		Factories:   []core.Factory{naive.Factory()},
		Procs:       8,
		Changes:     40000, // far more than needed: the abort must cut it short
		Segment:     10,
		Rate:        1,
		Seed:        29,
		Chains:      4,
		TraceRetain: 512,
	}
	res, ferr := runFarm(t, cfg, CoordinatorConfig{}, []WorkerConfig{{Capacity: 2}})
	if ferr == nil {
		t.Fatal("the naive strawman survived the farmed campaign")
	}
	msg := ferr.Error()
	if !strings.Contains(msg, "INCONSISTENCY") || !strings.Contains(msg, "--- trace") {
		t.Errorf("farm violation missing inconsistency/trace dump: %.200s", msg)
	}
	if len(res.Violations) == 0 {
		t.Error("farm result records no violations")
	}
	if got := res.Algorithms[0].Changes; got >= cfg.Changes {
		t.Errorf("farm ran to full budget (%d changes) despite violation", got)
	}
}

// TestFarmDrainEmitsPartialResult: Drain mid-campaign finishes the
// in-flight chains, merges what completed, and marks the result
// aborted — without hanging.
func TestFarmDrainEmitsPartialResult(t *testing.T) {
	if testing.Short() {
		t.Skip("farm soak in -short mode")
	}
	cfg := goldenConfig(t)
	cfg.Changes = 2400 // big enough that the drain lands mid-campaign
	cfg.Chains = 24

	c, err := NewCoordinator(CoordinatorConfig{Campaign: cfg, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	wait := startWorker(t, c.Addr(), WorkerConfig{Capacity: 1})
	go func() {
		time.Sleep(30 * time.Millisecond)
		c.Drain()
	}()
	done := make(chan struct{})
	var res *campaign.Result
	var ferr error
	go func() {
		res, ferr = c.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("drained farm did not finish")
	}
	wait()
	if ferr != nil {
		t.Fatalf("drain surfaced an error: %v", ferr)
	}
	if !res.Aborted {
		t.Error("drained farm result not marked aborted")
	}
	total := 0
	for _, a := range res.Algorithms {
		total += a.Changes
	}
	if total >= 2*cfg.Changes {
		t.Errorf("drained farm ran the full budget (%d changes)", total)
	}
}

// TestFarmStragglerReissue: a worker that sits on its chains forever
// must not stall the tail — the straggler deadline re-issues its
// chains to a live worker and the campaign completes, bit-identical.
func TestFarmStragglerReissue(t *testing.T) {
	if testing.Short() {
		t.Skip("farm soak in -short mode")
	}
	defer experiment.SetParallelism(0)
	experiment.SetParallelism(2)

	cfg := goldenConfig(t)
	local, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCoordinator(CoordinatorConfig{
		Campaign:       cfg,
		Listen:         "127.0.0.1:0",
		StragglerAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The black hole speaks the protocol but never executes anything:
	// it takes assignments and sits on them.
	hole := dialBlackHole(t, c.Addr(), 2)
	defer hole.Close()

	wait := startWorker(t, c.Addr(), WorkerConfig{Capacity: 2})
	res, ferr := c.Run()
	wait()
	if ferr != nil {
		t.Fatal(ferr)
	}
	if got, want := fingerprint(res), fingerprint(local); got != want {
		t.Errorf("straggler-hedged merge differs from local run:\n got:\n%s\nwant:\n%s", got, want)
	}
	requeued := 0
	for _, a := range res.Algorithms {
		for _, cs := range a.Chains {
			requeued += cs.Requeued
		}
	}
	if requeued == 0 {
		t.Error("straggler deadline never re-issued the black hole's chains")
	}
}

// TestFarmWorkersGauge: the workers gauge and peak tracking reflect
// joins and exits.
func TestFarmWorkersGauge(t *testing.T) {
	if testing.Short() {
		t.Skip("farm soak in -short mode")
	}
	cfg := goldenConfig(t)
	cfg.Changes = 60
	reg := metrics.NewRegistry()
	res, ferr := runFarm(t, cfg, CoordinatorConfig{Metrics: reg}, []WorkerConfig{
		{Capacity: 1}, {Capacity: 1},
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if res == nil || len(res.Algorithms) == 0 {
		t.Fatal("no merged result")
	}
	if v := reg.Counter("farm_chains_completed_total", "").Value(); v != int64(2*withDefaults(cfg).Chains) {
		t.Errorf("completed counter = %d, want %d", v, 2*withDefaults(cfg).Chains)
	}
	// The coordinator-side connection handlers decrement the gauge as
	// they unwind; give them a moment after Run returns.
	gauge := reg.Gauge("farm_workers_connected", "")
	deadline := time.Now().Add(5 * time.Second)
	for gauge.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if v := gauge.Value(); v != 0 {
		t.Errorf("workers gauge = %d after farm shutdown, want 0", v)
	}
}
