package farm

// Frame-level fault injection, modeled on internal/gcs's TCP recovery
// tests: truncated frames, oversize frames, junk handshakes, and
// mid-campaign worker reconnects. In every case the farm must shed the
// bad connection, requeue its chains, and still merge a result
// bit-identical to a local run.

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"dynvote/internal/campaign"
	"dynvote/internal/experiment"
	"dynvote/internal/wire"
)

// rawConn speaks the farm protocol by hand, for saboteur workers.
type rawConn struct {
	t  *testing.T
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial %s: %v", addr, err)
	}
	return &rawConn{t: t, c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

func (r *rawConn) Close() error { return r.c.Close() }

func (r *rawConn) hello(capacity int) {
	r.t.Helper()
	var enc wire.Writer
	encodeHello(&enc, capacity)
	if err := wire.WriteFrame(r.bw, enc.Bytes(), maxFrame); err != nil {
		r.t.Fatal(err)
	}
	if err := r.bw.Flush(); err != nil {
		r.t.Fatal(err)
	}
}

// readFrame reads one frame body with a test deadline.
func (r *rawConn) readFrame() []byte {
	r.t.Helper()
	_ = r.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	body, err := wire.ReadFrame(r.br, nil, maxFrame)
	if err != nil {
		r.t.Fatalf("raw read frame: %v", err)
	}
	return body
}

// expectClosed asserts the coordinator hung up on this connection.
func (r *rawConn) expectClosed() {
	r.t.Helper()
	_ = r.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		if _, err := wire.ReadFrame(r.br, nil, maxFrame); err != nil {
			if errors_IsTimeout(err) {
				r.t.Error("coordinator kept a bad connection open")
			}
			return
		}
	}
}

func errors_IsTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// dialBlackHole joins the farm as a worker that accepts assignments and
// never executes them — the straggler the hedge exists for.
func dialBlackHole(t *testing.T, addr string, capacity int) io.Closer {
	t.Helper()
	r := dialRaw(t, addr)
	r.hello(capacity)
	if body := r.readFrame(); len(body) == 0 || body[0] != msgConfig {
		t.Fatalf("black hole: expected config frame, got %v", body)
	}
	return r
}

// faultConfig is a small campaign the fault tests can run repeatedly.
func faultConfig(t *testing.T) campaign.Config {
	cfg := goldenConfig(t)
	cfg.Changes = 60
	cfg.Chains = 6
	return cfg
}

// TestFarmTruncatedResultFrame: a worker whose result frame is cut off
// mid-body gets dropped; its chains requeue and merge exactly once via
// a healthy worker.
func TestFarmTruncatedResultFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("farm fault soak in -short mode")
	}
	cfg := faultConfig(t)
	local, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCoordinator(CoordinatorConfig{Campaign: cfg, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	sab := dialRaw(t, c.Addr())
	sab.hello(2)
	if body := sab.readFrame(); body[0] != msgConfig {
		t.Fatalf("expected config, got type %d", body[0])
	}
	if body := sab.readFrame(); body[0] != msgAssign {
		t.Fatalf("expected assign, got type %d", body[0])
	}
	// A result frame whose header promises 100 bytes but delivers 3.
	var hdr [wire.FrameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := sab.c.Write(append(hdr[:], msgResult, 0, 0)); err != nil {
		t.Fatal(err)
	}
	_ = sab.Close()

	wait := startWorker(t, c.Addr(), WorkerConfig{Capacity: 2})
	res, ferr := c.Run()
	wait()
	if ferr != nil {
		t.Fatal(ferr)
	}
	if got, want := fingerprint(res), fingerprint(local); got != want {
		t.Errorf("merge after truncated frame differs from local run:\n got:\n%s\nwant:\n%s", got, want)
	}
	requeued := 0
	for _, a := range res.Algorithms {
		for _, cs := range a.Chains {
			requeued += cs.Requeued
		}
	}
	if requeued == 0 {
		t.Error("saboteur held assignments, yet nothing was requeued")
	}
}

// TestFarmOversizeFrameDropsWorker: a frame header exceeding the frame
// cap drops the connection before any allocation; the campaign
// completes on the healthy worker.
func TestFarmOversizeFrameDropsWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("farm fault soak in -short mode")
	}
	cfg := faultConfig(t)
	local, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCoordinator(CoordinatorConfig{Campaign: cfg, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	sab := dialRaw(t, c.Addr())
	sab.hello(1)
	if body := sab.readFrame(); body[0] != msgConfig {
		t.Fatalf("expected config, got type %d", body[0])
	}
	var hdr [wire.FrameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := sab.c.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	sab.expectClosed()
	_ = sab.Close()

	wait := startWorker(t, c.Addr(), WorkerConfig{Capacity: 2})
	res, ferr := c.Run()
	wait()
	if ferr != nil {
		t.Fatal(ferr)
	}
	if got, want := fingerprint(res), fingerprint(local); got != want {
		t.Errorf("merge after oversize frame differs from local run:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestFarmRejectsJunkHello: a connection that opens with garbage (wrong
// type, wrong protocol version) is hung up on and never assigned work.
func TestFarmRejectsJunkHello(t *testing.T) {
	cfg := faultConfig(t)
	c, err := NewCoordinator(CoordinatorConfig{Campaign: cfg, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Wrong frame type.
	junk := dialRaw(t, c.Addr())
	if err := wire.WriteFrame(junk.bw, []byte{0xFF, 1, 2, 3}, maxFrame); err != nil {
		t.Fatal(err)
	}
	_ = junk.bw.Flush()
	junk.expectClosed()
	_ = junk.Close()

	// Wrong protocol version inside a well-formed hello.
	vmm := dialRaw(t, c.Addr())
	var enc wire.Writer
	enc.Byte(msgHello)
	enc.Uvarint(protoVersion + 7)
	enc.Uvarint(4)
	if err := wire.WriteFrame(vmm.bw, enc.Bytes(), maxFrame); err != nil {
		t.Fatal(err)
	}
	_ = vmm.bw.Flush()
	vmm.expectClosed()
	_ = vmm.Close()

	if cur, _ := c.Workers(); cur != 0 {
		t.Errorf("%d junk connections registered as workers", cur)
	}
}

// TestFarmWorkerReconnectMidStream: a worker crashing mid-campaign and
// a replacement joining afterwards (same process, fresh connection,
// fresh config frame) must hand back a bit-identical merge.
func TestFarmWorkerReconnectMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("farm fault soak in -short mode")
	}
	defer experiment.SetParallelism(0)
	experiment.SetParallelism(2)

	cfg := faultConfig(t)
	local, err := campaign.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCoordinator(CoordinatorConfig{Campaign: cfg, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	// First incarnation crashes after reporting one chain.
	waitDead := startWorker(t, c.Addr(), WorkerConfig{Capacity: 2, dieAfterResults: 1})
	waitDead()
	// Second incarnation reconnects and finishes the job.
	wait := startWorker(t, c.Addr(), WorkerConfig{Capacity: 2})
	res, ferr := c.Run()
	wait()
	if ferr != nil {
		t.Fatal(ferr)
	}
	if got, want := fingerprint(res), fingerprint(local); got != want {
		t.Errorf("post-reconnect merge differs from local run:\n got:\n%s\nwant:\n%s", got, want)
	}
	if _, peak := c.Workers(); peak < 1 {
		t.Errorf("peak workers = %d, want >= 1", peak)
	}
}

// TestWorkerJoinRejectsBadCoordinator: Join must fail cleanly against a
// coordinator that never sends a config frame, sends garbage, or sends
// a config naming an unknown algorithm.
func TestWorkerJoinRejectsBadCoordinator(t *testing.T) {
	serve := func(t *testing.T, reply func(net.Conn)) string {
		t.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ln.Close() })
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			if _, err := wire.ReadFrame(br, nil, maxFrame); err != nil {
				return // hello
			}
			reply(conn)
		}()
		return ln.Addr().String()
	}

	cases := []struct {
		name  string
		reply func(net.Conn)
		want  string
	}{
		{"wrong frame type", func(conn net.Conn) {
			bw := bufio.NewWriter(conn)
			_ = wire.WriteFrame(bw, []byte{msgAssign, 0, 0}, maxFrame)
			_ = bw.Flush()
		}, "config frame"},
		{"truncated config", func(conn net.Conn) {
			bw := bufio.NewWriter(conn)
			_ = wire.WriteFrame(bw, []byte{msgConfig, 0x01}, maxFrame)
			_ = bw.Flush()
		}, ""},
		{"unknown algorithm", func(conn net.Conn) {
			// A well-formed config frame naming a factory nothing resolves.
			var enc wire.Writer
			enc.Byte(msgConfig)
			enc.Varint(1)                    // seed
			enc.Uvarint(8)                   // procs
			enc.Uvarint(100)                 // changes
			enc.Uvarint(10)                  // segment
			enc.Uvarint(math.Float64bits(1)) // rate
			enc.Uvarint(1)                   // chains
			enc.Uvarint(0)                   // trace retain
			enc.Uvarint(1)                   // one factory
			enc.RawBytes([]byte("no-such-algorithm"))
			bw := bufio.NewWriter(conn)
			_ = wire.WriteFrame(bw, enc.Bytes(), maxFrame)
			_ = bw.Flush()
		}, "no-such-algorithm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := serve(t, tc.reply)
			w, err := Join(WorkerConfig{Addr: addr})
			if err == nil {
				_ = w.conn.Close()
				t.Fatal("Join accepted a bad coordinator")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Join error %q does not mention %q", err, tc.want)
			}
		})
	}
}
