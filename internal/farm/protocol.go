// Package farm distributes a soak campaign across worker processes
// over TCP: a coordinator owns the work queue of (algorithm, chain)
// cells and the chain-ordered merge, workers execute chains and stream
// back per-chain reports. Chains are seeded purely from
// (rootSeed, algorithm, chainIndex) — see internal/campaign — so the
// farmed merge is bit-identical to a local run at any worker count and
// any completion order, which also makes the chain the natural unit of
// retry: a lost worker's outstanding chains are simply re-issued, and
// a seen-set guarantees each chain merges exactly once no matter how
// many times it was dispatched.
//
// The wire protocol is length-prefixed frames (internal/wire's shared
// framing) carrying wire-codec bodies whose first byte is the message
// type. The campaign configuration crosses the wire once per
// connection; per-chain dispatch costs one ~10-byte assign frame, and
// workers coalesce result frames into buffered writes flushed only
// when no further result is pending.
package farm

import (
	"fmt"
	"math"
	"time"

	"dynvote/internal/algset"
	"dynvote/internal/campaign"
	"dynvote/internal/core"
	"dynvote/internal/naive"
	"dynvote/internal/wire"
)

// protoVersion is bumped on any incompatible frame change; a
// coordinator refuses workers speaking another version.
const protoVersion = 1

// maxFrame bounds farm frame bodies. Violation results carry the full
// trace ring-buffer dump in their error text, so the cap is generous.
const maxFrame = 8 << 20

// Message types, first byte of every frame body.
const (
	// msgHello (worker → coordinator): protocol version, capacity.
	msgHello byte = iota + 1
	// msgConfig (coordinator → worker): the campaign parameters, sent
	// exactly once per connection.
	msgConfig
	// msgAssign (coordinator → worker): one (algorithm, chain) cell.
	msgAssign
	// msgAbort (coordinator → worker): a violation elsewhere — stop all
	// chains at their next run boundary and exit.
	msgAbort
	// msgResult (worker → coordinator): one chain's outcome.
	msgResult
	// msgGoodbye (worker → coordinator): draining — assign no more; the
	// worker finishes and reports its outstanding chains, then leaves.
	msgGoodbye
)

// Result statuses.
const (
	statusOK byte = iota
	statusViolation
)

func encodeHello(w *wire.Writer, capacity int) {
	w.Reset()
	w.Byte(msgHello)
	w.Uvarint(protoVersion)
	w.Uvarint(uint64(capacity))
}

func decodeHello(r *wire.Reader) (capacity int, err error) {
	if v := r.Uvarint(); r.Err() == nil && v != protoVersion {
		return 0, fmt.Errorf("farm: worker speaks protocol %d, want %d", v, protoVersion)
	}
	capacity = int(r.Uvarint())
	if err := r.Err(); err != nil {
		return 0, err
	}
	if capacity <= 0 || capacity > 1<<16 {
		return 0, fmt.Errorf("farm: implausible worker capacity %d", capacity)
	}
	return capacity, nil
}

// encodeConfig ships the deterministic campaign parameters; hooks and
// scheduling knobs stay local to each side.
func encodeConfig(w *wire.Writer, cfg campaign.Config) {
	w.Reset()
	w.Byte(msgConfig)
	w.Varint(cfg.Seed)
	w.Uvarint(uint64(cfg.Procs))
	w.Uvarint(uint64(cfg.Changes))
	w.Uvarint(uint64(cfg.Segment))
	w.Uvarint(math.Float64bits(cfg.Rate))
	w.Uvarint(uint64(cfg.Chains))
	w.Uvarint(uint64(cfg.TraceRetain))
	w.Uvarint(uint64(len(cfg.Factories)))
	for _, f := range cfg.Factories {
		w.RawBytes([]byte(f.Name))
	}
}

func decodeConfig(r *wire.Reader) (campaign.Config, error) {
	cfg := campaign.Config{
		Seed:        r.Varint(),
		Procs:       int(r.Uvarint()),
		Changes:     int(r.Uvarint()),
		Segment:     int(r.Uvarint()),
		Rate:        math.Float64frombits(r.Uvarint()),
		Chains:      int(r.Uvarint()),
		TraceRetain: int(r.Uvarint()),
	}
	n := int(r.Uvarint())
	if r.Err() != nil {
		return campaign.Config{}, r.Err()
	}
	if n <= 0 || n > 1024 {
		return campaign.Config{}, fmt.Errorf("farm: implausible algorithm count %d", n)
	}
	for i := 0; i < n; i++ {
		name := r.RawString()
		if r.Err() != nil {
			return campaign.Config{}, r.Err()
		}
		f, err := resolveFactory(name)
		if err != nil {
			return campaign.Config{}, err
		}
		cfg.Factories = append(cfg.Factories, f)
	}
	return cfg, nil
}

// resolveFactory maps an algorithm name back to its factory on the
// worker side. The naive strawman sits outside algset (it exists to
// prove the checker works), so it gets an explicit branch — a farmed
// `-alg naive` checker-validation run must behave like a local one.
func resolveFactory(name string) (core.Factory, error) {
	if nf := naive.Factory(); name == nf.Name {
		return nf, nil
	}
	return algset.ByName(name)
}

func encodeAssign(w *wire.Writer, alg, chain int) {
	w.Reset()
	w.Byte(msgAssign)
	w.Uvarint(uint64(alg))
	w.Uvarint(uint64(chain))
}

// chainResult is one executed chain crossing the wire back.
type chainResult struct {
	alg, chain int
	stat       campaign.ChainStats
	// errMsg is the underlying violation text (trace dump included);
	// empty for a clean chain.
	errMsg string
}

func encodeResult(w *wire.Writer, res chainResult) {
	w.Reset()
	w.Byte(msgResult)
	w.Uvarint(uint64(res.alg))
	w.Uvarint(uint64(res.chain))
	w.Uvarint(uint64(res.stat.Changes))
	w.Uvarint(uint64(res.stat.Runs))
	w.Uvarint(uint64(res.stat.Formed))
	w.Uvarint(uint64(res.stat.Assertions))
	w.Uvarint(uint64(res.stat.Wall))
	if res.errMsg == "" {
		w.Byte(statusOK)
	} else {
		w.Byte(statusViolation)
		w.RawBytes([]byte(res.errMsg))
	}
}

func decodeResult(r *wire.Reader) (chainResult, error) {
	res := chainResult{
		alg:   int(r.Uvarint()),
		chain: int(r.Uvarint()),
	}
	res.stat.Changes = int(r.Uvarint())
	res.stat.Runs = int(r.Uvarint())
	res.stat.Formed = int(r.Uvarint())
	res.stat.Assertions = int64(r.Uvarint())
	res.stat.Wall = time.Duration(r.Uvarint())
	res.stat.Chain = res.chain
	if r.Byte() == statusViolation {
		res.errMsg = r.RawString()
	}
	return res, r.Err()
}
