package farm

import (
	"bufio"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynvote/internal/campaign"
	"dynvote/internal/metrics"
	"dynvote/internal/wire"
)

// WorkerConfig assembles a Worker.
type WorkerConfig struct {
	// Addr is the coordinator's address.
	Addr string
	// Capacity is how many chains this worker executes concurrently
	// (default GOMAXPROCS). The coordinator keeps Capacity+window
	// chains assigned so the worker never idles between chains.
	Capacity int
	// Metrics, when non-nil, counts chains executed by this worker.
	Metrics *metrics.Registry

	// dieAfterResults is a test hook: after sending (and flushing) this
	// many result frames, the worker closes its connection abruptly,
	// simulating a worker crash mid-campaign. 0 disables.
	dieAfterResults int
}

// assignment is one (algorithm, chain) cell to execute.
type assignment struct{ alg, chain int }

// Worker executes campaign chains for a remote coordinator. Join
// performs the handshake and receives the campaign configuration (once
// per connection); Serve runs chains until the coordinator closes the
// connection, aborts, or Drain winds the worker down.
type Worker struct {
	cfg  WorkerConfig
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	wmu  sync.Mutex // serializes frame writes (results, goodbye)
	camp campaign.Config

	abort     atomic.Bool // stop chains at their next run boundary
	draining  atomic.Bool // goodbye sent: ignore further assigns
	assignsMu sync.Once   // closes assigns exactly once
	assigns   chan assignment
	results   chan chainResult
	readDone  chan struct{}
	readErr   error

	chainsRun *metrics.Counter
}

// Join dials the coordinator, introduces this worker's capacity, and
// receives the campaign configuration.
func Join(cfg WorkerConfig) (*Worker, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = runtime.GOMAXPROCS(0)
	}
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		cfg:       cfg,
		conn:      conn,
		br:        bufio.NewReaderSize(conn, 64<<10),
		bw:        bufio.NewWriterSize(conn, 64<<10),
		readDone:  make(chan struct{}),
		chainsRun: cfg.Metrics.Counter("farm_worker_chains_run_total", "chains executed by this worker"),
	}
	// The window the coordinator maintains is capacity+window; size the
	// channels generously so the read loop never blocks on them.
	w.assigns = make(chan assignment, 4*cfg.Capacity+16)
	w.results = make(chan chainResult, 4*cfg.Capacity+16)

	var enc wire.Writer
	encodeHello(&enc, cfg.Capacity)
	if err := wire.WriteFrame(w.bw, enc.Bytes(), maxFrame); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := w.bw.Flush(); err != nil {
		_ = conn.Close()
		return nil, err
	}

	body, err := wire.ReadFrame(w.br, nil, maxFrame)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	r := wire.NewReader(body)
	if r.Byte() != msgConfig {
		_ = conn.Close()
		return nil, errors.New("farm: coordinator did not send a config frame")
	}
	camp, err := decodeConfig(r)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	w.camp = camp
	return w, nil
}

// Serve executes assigned chains until the coordinator closes the
// connection (campaign finished), an abort frame arrives, or Drain
// winds the worker down. It returns nil on every cooperative exit.
func (w *Worker) Serve() error {
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Capacity; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.runChains()
		}()
	}
	go func() {
		wg.Wait()
		close(w.results)
	}()
	go w.readLoop()

	if err := w.writeResults(); err != nil {
		// The connection died under us: stop chains and discard what
		// they were about to report — the coordinator requeues.
		w.abort.Store(true)
	}
	for range w.results {
		// Drain any residue so the runner goroutines can exit.
	}
	_ = w.conn.Close()
	<-w.readDone
	return w.readErr
}

// Drain winds the worker down gracefully (the SIGINT path): tell the
// coordinator to assign no more, finish every chain already assigned,
// report those results, and let Serve return. Chains in the assign
// queue count as in-flight — they are outstanding at the coordinator,
// so finishing them here merges their work instead of forcing a requeue.
func (w *Worker) Drain() {
	if w.draining.Swap(true) {
		return
	}
	var enc wire.Writer
	enc.Byte(msgGoodbye)
	w.wmu.Lock()
	if wire.WriteFrame(w.bw, enc.Bytes(), maxFrame) == nil {
		_ = w.bw.Flush()
	}
	w.wmu.Unlock()
	// Unblock the read loop: no further frames matter except abort, and
	// a drained worker exiting on abort a moment late is harmless.
	_ = w.conn.SetReadDeadline(time.Now())
}

// closeAssigns is the read loop's exclusive shutdown signal to the
// chain runners.
func (w *Worker) closeAssigns() {
	w.assignsMu.Do(func() { close(w.assigns) })
}

// readLoop handles coordinator frames: assigns feed the chain runners,
// abort stops everything cooperatively, EOF means the campaign is done.
func (w *Worker) readLoop() {
	defer close(w.readDone)
	defer w.closeAssigns()
	var buf []byte
	for {
		body, err := wire.ReadFrame(w.br, buf, maxFrame)
		if err != nil {
			if w.draining.Load() || w.abort.Load() ||
				errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return // cooperative shutdown
			}
			w.readErr = err
			return
		}
		buf = body[:0]
		r := wire.NewReader(body)
		switch r.Byte() {
		case msgAssign:
			alg, chain := int(r.Uvarint()), int(r.Uvarint())
			if r.Err() != nil {
				w.readErr = r.Err()
				return
			}
			if w.draining.Load() {
				continue // said goodbye; the coordinator will requeue
			}
			select {
			case w.assigns <- assignment{alg, chain}:
			default:
				// Window overflow (coordinator bug): drop; it requeues.
			}
		case msgAbort:
			w.abort.Store(true)
			return
		default:
			w.readErr = errors.New("farm: unexpected frame from coordinator")
			return
		}
	}
}

// runChains is one runner goroutine: execute assigned chains to their
// full budget, deterministically, and queue the results.
func (w *Worker) runChains() {
	for a := range w.assigns {
		if a.alg < 0 || a.alg >= len(w.camp.Factories) ||
			a.chain < 0 || a.chain >= maxInt(w.camp.Chains, 1) {
			continue
		}
		stat, err := campaign.RunChain(w.camp, a.alg, a.chain, &w.abort)
		if err == campaign.ErrAborted {
			continue // nobody wants a partial chain
		}
		res := chainResult{alg: a.alg, chain: a.chain, stat: stat}
		if err != nil {
			var ce *campaign.ChainError
			if errors.As(err, &ce) {
				// Ship the underlying violation text (trace dump
				// included); the coordinator rebuilds the ChainError so
				// the coordinates are not double-wrapped.
				res.errMsg = ce.Err.Error()
			} else {
				res.errMsg = err.Error()
			}
		}
		w.chainsRun.Inc()
		w.results <- res
	}
}

// writeResults streams result frames back, coalescing: frames
// accumulate in the buffered writer and flush only when no further
// result is immediately pending — one syscall per burst, not per chain.
func (w *Worker) writeResults() error {
	var enc wire.Writer
	sent := 0
	for res := range w.results {
		encodeResult(&enc, res)
		w.wmu.Lock()
		err := wire.WriteFrame(w.bw, enc.Bytes(), maxFrame)
		if err == nil && len(w.results) == 0 {
			err = w.bw.Flush()
		}
		w.wmu.Unlock()
		if err != nil {
			return err
		}
		sent++
		if w.cfg.dieAfterResults > 0 && sent >= w.cfg.dieAfterResults {
			// Crash simulation: the flushed results made it out; the
			// rest of this worker's window dies with the connection.
			_ = w.conn.Close()
			return errors.New("farm: worker killed by test hook")
		}
	}
	w.wmu.Lock()
	err := w.bw.Flush()
	w.wmu.Unlock()
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
