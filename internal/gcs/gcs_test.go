package gcs_test

import (
	"sync"
	"testing"
	"time"

	"dynvote/internal/gcs"
	"dynvote/internal/mr1p"
	"dynvote/internal/proc"
	"dynvote/internal/ykd"
)

// memCluster is a running in-memory gcs cluster for tests.
type memCluster struct {
	net   *gcs.MemNetwork
	nodes []*gcs.Node

	mu   sync.Mutex
	apps map[proc.ID][]string
}

func startMemCluster(t *testing.T, n int, variant ykd.Variant) *memCluster {
	t.Helper()
	mc := &memCluster{net: gcs.NewMemNetwork(n), apps: make(map[proc.ID][]string)}
	for i := 0; i < n; i++ {
		id := proc.ID(i)
		node, err := gcs.NewNode(gcs.Config{
			ID:        id,
			N:         n,
			Transport: mc.net.Transport(id),
			Algorithm: ykd.Factory(variant),
			OnEvent: func(ev gcs.Event) {
				if ev.Kind == gcs.EventApp {
					mc.mu.Lock()
					mc.apps[id] = append(mc.apps[id], string(ev.Payload))
					mc.mu.Unlock()
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		node.Run()
		mc.nodes = append(mc.nodes, node)
	}
	t.Cleanup(func() {
		for _, n := range mc.nodes {
			n.Stop()
		}
	})
	return mc
}

func (mc *memCluster) appLog(id proc.ID) []string {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	out := make([]string, len(mc.apps[id]))
	copy(out, mc.apps[id])
	return out
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

func primaries(nodes []*gcs.Node, want map[int]bool) func() bool {
	return func() bool {
		for i, w := range want {
			if nodes[i].InPrimary() != w {
				return false
			}
		}
		return true
	}
}

func TestInitialPrimaryEverywhere(t *testing.T) {
	mc := startMemCluster(t, 5, ykd.VariantYKD)
	eventually(t, "all nodes start in primary", primaries(mc.nodes,
		map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}))
}

func TestPartitionMovesPrimary(t *testing.T) {
	mc := startMemCluster(t, 5, ykd.VariantYKD)
	if err := mc.net.SetComponents(proc.NewSet(0, 1, 2), proc.NewSet(3, 4)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "majority side primary, minority not", primaries(mc.nodes,
		map[int]bool{0: true, 1: true, 2: true, 3: false, 4: false}))

	// Heal: everyone rejoins the primary.
	if err := mc.net.SetComponents(proc.Universe(5)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "all primary after heal", primaries(mc.nodes,
		map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}))
}

func TestDynamicVotingShrinksOverGCS(t *testing.T) {
	mc := startMemCluster(t, 8, ykd.VariantYKD)
	if err := mc.net.SetComponents(proc.NewSet(0, 1, 2, 3, 4), proc.NewSet(5, 6, 7)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "first shrink", primaries(mc.nodes, map[int]bool{0: true, 5: false}))

	if err := mc.net.SetComponents(proc.NewSet(0, 1, 2), proc.NewSet(3, 4), proc.NewSet(5, 6, 7)); err != nil {
		t.Fatal(err)
	}
	// {0,1,2} is 3 of the previous 5-member primary but only 3 of 8
	// overall: only dynamic voting keeps it primary.
	eventually(t, "second shrink", primaries(mc.nodes,
		map[int]bool{0: true, 1: true, 2: true, 3: false, 5: false}))
}

func TestMR1pOverGCS(t *testing.T) {
	n := 5
	mc := &memCluster{net: gcs.NewMemNetwork(n), apps: make(map[proc.ID][]string)}
	for i := 0; i < n; i++ {
		id := proc.ID(i)
		node, err := gcs.NewNode(gcs.Config{
			ID: id, N: n, Transport: mc.net.Transport(id), Algorithm: mr1p.Factory(),
		})
		if err != nil {
			t.Fatal(err)
		}
		node.Run()
		mc.nodes = append(mc.nodes, node)
	}
	defer func() {
		for _, nd := range mc.nodes {
			nd.Stop()
		}
	}()

	if err := mc.net.SetComponents(proc.NewSet(0, 1, 2), proc.NewSet(3, 4)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "mr1p majority side primary", primaries(mc.nodes,
		map[int]bool{0: true, 1: true, 2: true, 3: false, 4: false}))
}

func TestApplicationBroadcastPiggybacks(t *testing.T) {
	mc := startMemCluster(t, 3, ykd.VariantYKD)
	eventually(t, "stable start", primaries(mc.nodes, map[int]bool{0: true, 2: true}))

	if err := mc.nodes[0].Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "payload delivered everywhere, sender included", func() bool {
		for i := 0; i < 3; i++ {
			log := mc.appLog(proc.ID(i))
			if len(log) != 1 || log[0] != "hello" {
				return false
			}
		}
		return true
	})
}

func TestGarbageFramesIgnored(t *testing.T) {
	mc := startMemCluster(t, 3, ykd.VariantYKD)
	// Inject garbage directly at node 0's transport.
	tr := mc.net.Transport(1)
	for _, junk := range [][]byte{nil, {0}, {99, 1, 2, 3}, {2 /* bundle */, 0xFF}} {
		if err := tr.Send(0, junk); err != nil {
			t.Fatal(err)
		}
	}
	// The cluster still works.
	if err := mc.net.SetComponents(proc.NewSet(0, 1), proc.NewSet(2)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "survives garbage", primaries(mc.nodes,
		map[int]bool{0: true, 1: true, 2: false}))
}

func TestViewSynchronousSafetyUnderChurn(t *testing.T) {
	mc := startMemCluster(t, 6, ykd.VariantYKD)
	splits := [][]proc.Set{
		{proc.NewSet(0, 1, 2, 3), proc.NewSet(4, 5)},
		{proc.NewSet(0, 1), proc.NewSet(2, 3), proc.NewSet(4, 5)},
		{proc.NewSet(0, 1, 2, 3, 4, 5)},
		{proc.NewSet(0, 2, 4), proc.NewSet(1, 3, 5)},
		{proc.NewSet(0, 1, 2, 3, 4, 5)},
	}
	for _, comps := range splits {
		if err := mc.net.SetComponents(comps...); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
		// At no observable moment may two disjoint groups both have
		// all members in primary. Sample aggressively.
		for k := 0; k < 20; k++ {
			assertAtMostOnePrimaryComponent(t, mc)
			time.Sleep(time.Millisecond)
		}
	}
	eventually(t, "final heal converges", primaries(mc.nodes,
		map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true}))
}

func assertAtMostOnePrimaryComponent(t *testing.T, mc *memCluster) {
	t.Helper()
	// Group nodes by installed view; a view counts as primary if all
	// its present members report primary.
	byView := make(map[int64]struct {
		members proc.Set
		inP     int
		total   int
	})
	for i, nd := range mc.nodes {
		v := nd.CurrentView()
		e := byView[v.ID]
		e.members = v.Members
		e.total++
		if nd.InPrimary() {
			e.inP++
		}
		_ = i
		byView[v.ID] = e
	}
	count := 0
	for _, e := range byView {
		if e.total > 0 && e.inP == e.total && e.inP == e.members.Count() {
			count++
		}
	}
	if count > 1 {
		t.Fatalf("%d primary components observed concurrently", count)
	}
}

func TestTCPClusterFormsAndPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster test")
	}
	const n = 5
	transports := make([]*gcs.TCPTransport, n)
	addrs := make(map[proc.ID]string, n)
	for i := 0; i < n; i++ {
		tr, err := gcs.NewTCPTransport(gcs.TCPConfig{
			ID:             proc.ID(i),
			OwnAddr:        "127.0.0.1:0",
			HeartbeatEvery: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		addrs[proc.ID(i)] = tr.Addr()
	}
	for _, tr := range transports {
		tr.SetPeers(addrs)
	}

	nodes := make([]*gcs.Node, n)
	for i := 0; i < n; i++ {
		node, err := gcs.NewNode(gcs.Config{
			ID: proc.ID(i), N: n, Transport: transports[i],
			Algorithm: ykd.Factory(ykd.VariantYKD),
		})
		if err != nil {
			t.Fatal(err)
		}
		node.Run()
		nodes[i] = node
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	eventually(t, "tcp cluster converges to all-primary", func() bool {
		for _, nd := range nodes {
			if !nd.InPrimary() || nd.CurrentView().Size() != n {
				return false
			}
		}
		return true
	})

	// Partition {0,1,2} | {3,4} by blocking at both sides.
	for i := 0; i < 3; i++ {
		transports[i].Block(3, 4)
	}
	transports[3].Block(0, 1, 2)
	transports[4].Block(0, 1, 2)

	eventually(t, "tcp majority side primary", func() bool {
		return nodes[0].InPrimary() && nodes[1].InPrimary() && nodes[2].InPrimary() &&
			!nodes[3].InPrimary() && !nodes[4].InPrimary()
	})

	// Heal.
	for i := 0; i < n; i++ {
		transports[i].Block()
	}
	eventually(t, "tcp heal converges", func() bool {
		for _, nd := range nodes {
			if !nd.InPrimary() {
				return false
			}
		}
		return true
	})
}

func TestNodeConfigValidation(t *testing.T) {
	net := gcs.NewMemNetwork(2)
	cases := []gcs.Config{
		{ID: 0, N: 0, Transport: net.Transport(0), Algorithm: ykd.Factory(ykd.VariantYKD)},
		{ID: 5, N: 2, Transport: net.Transport(0), Algorithm: ykd.Factory(ykd.VariantYKD)},
		{ID: 0, N: 2, Transport: nil, Algorithm: ykd.Factory(ykd.VariantYKD)},
	}
	for i, cfg := range cases {
		if _, err := gcs.NewNode(cfg); err == nil {
			t.Errorf("case %d: NewNode accepted bad config", i)
		}
	}
}

func TestMemNetworkRejectsPartialComponents(t *testing.T) {
	net := gcs.NewMemNetwork(4)
	if err := net.SetComponents(proc.NewSet(0, 1)); err == nil {
		t.Error("SetComponents accepted a non-covering partition")
	}
}

// TestNodeMajorityKeepsPrimary: three processes over an in-memory
// network; partition and check who keeps the primary component.
func TestNodeMajorityKeepsPrimary(t *testing.T) {
	net := gcs.NewMemNetwork(3)
	nodes := make([]*gcs.Node, 3)
	for i := range nodes {
		n, err := gcs.NewNode(gcs.Config{
			ID: proc.ID(i), N: 3,
			Transport: net.Transport(proc.ID(i)),
			Algorithm: ykd.Factory(ykd.VariantYKD),
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		nodes[i] = n
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	if err := net.SetComponents(proc.NewSet(0, 1), proc.NewSet(2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[0].InPrimary() && nodes[1].InPrimary() && !nodes[2].InPrimary() {
			t.Logf("majority side kept the primary: view %v", nodes[0].CurrentView())
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timed out waiting for the majority side to keep the primary")
}

// TestNodeRestartWithSnapshot: a node stops, its durable state is
// snapshotted (stable storage), and a new incarnation restores it and
// rejoins without forgetting which primaries it helped form.
func TestNodeRestartWithSnapshot(t *testing.T) {
	mc := startMemCluster(t, 5, ykd.VariantYKD)
	// Shrink the primary so durable state is non-trivial.
	if err := mc.net.SetComponents(proc.NewSet(0, 1, 2), proc.NewSet(3, 4)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "shrunken primary", primaries(mc.nodes, map[int]bool{0: true, 3: false}))

	// Node 2 "crashes": isolate it, stop it, snapshot its state.
	if err := mc.net.SetComponents(proc.NewSet(0, 1), proc.NewSet(2), proc.NewSet(3, 4)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "majority side reforms without 2", primaries(mc.nodes, map[int]bool{0: true, 1: true}))
	mc.nodes[2].Stop()
	snap, err := mc.nodes[2].Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.nodes[2].Snapshot(); err != nil {
		t.Fatal("second snapshot should also work:", err)
	}

	// New incarnation restores the snapshot and rejoins everyone.
	restarted, err := gcs.NewNode(gcs.Config{
		ID: 2, N: 5,
		Transport: mc.net.Transport(2),
		Algorithm: ykd.Factory(ykd.VariantYKD),
		Restore:   snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	restarted.Run()
	mc.nodes[2] = restarted

	if err := mc.net.SetComponents(proc.Universe(5)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "restarted node rejoins the primary", primaries(mc.nodes,
		map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}))
}

func TestSnapshotRequiresStoppedNode(t *testing.T) {
	mc := startMemCluster(t, 3, ykd.VariantYKD)
	if _, err := mc.nodes[0].Snapshot(); err == nil {
		t.Error("Snapshot on a running node accepted")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	net := gcs.NewMemNetwork(3)
	_, err := gcs.NewNode(gcs.Config{
		ID: 0, N: 3,
		Transport: net.Transport(0),
		Algorithm: ykd.Factory(ykd.VariantYKD),
		Restore:   []byte{0xFF, 0x01},
	})
	if err == nil {
		t.Error("garbage restore accepted")
	}
}

// TestFDFirstReadingPublishes is the regression test for a failure-
// detector bootstrap bug: a node that starts already partitioned from
// everyone computes reach = {self}, equal to the optimistic initial
// value — it must still get that first event, or it would trust its
// assumed-connected initial view forever.
func TestFDFirstReadingPublishes(t *testing.T) {
	tr, err := gcs.NewTCPTransport(gcs.TCPConfig{
		ID: 0, OwnAddr: "127.0.0.1:0",
		HeartbeatEvery: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// No peers at all: the first reading is {p0} and must arrive.
	select {
	case reach := <-tr.Reachability():
		if !reach.Equal(proc.NewSet(0)) {
			t.Errorf("first reading = %v, want {p0}", reach)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("failure detector never published its first reading")
	}
}

// TestStartupInsidePartition drives the full node stack through the
// same scenario: a cluster partitioned before any heartbeat flows must
// still reconcile — the detached node may not keep claiming the
// initial all-connected primary.
func TestStartupInsidePartition(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP timing test")
	}
	const n = 3
	transports := make([]*gcs.TCPTransport, n)
	addrs := make(map[proc.ID]string, n)
	for i := 0; i < n; i++ {
		tr, err := gcs.NewTCPTransport(gcs.TCPConfig{
			ID: proc.ID(i), OwnAddr: "127.0.0.1:0",
			HeartbeatEvery: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		addrs[proc.ID(i)] = tr.Addr()
	}
	// Partition {0,1} | {2} before peers are even registered.
	transports[0].Block(2)
	transports[1].Block(2)
	transports[2].Block(0, 1)
	for _, tr := range transports {
		tr.SetPeers(addrs)
	}

	nodes := make([]*gcs.Node, n)
	for i := 0; i < n; i++ {
		node, err := gcs.NewNode(gcs.Config{
			ID: proc.ID(i), N: n, Transport: transports[i],
			Algorithm: ykd.Factory(ykd.VariantYKD),
		})
		if err != nil {
			t.Fatal(err)
		}
		node.Run()
		nodes[i] = node
	}
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	}()

	eventually(t, "majority side forms, detached node steps down", func() bool {
		return nodes[0].InPrimary() && nodes[1].InPrimary() &&
			!nodes[2].InPrimary() && nodes[2].CurrentView().Size() == 1
	})
}
