package gcs

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dynvote/internal/metrics"
	"dynvote/internal/proc"
)

// FaultProfile configures injected network conditions on an
// InstrumentedTransport's send path, giving the live TCP stack the
// same latency-modeled treatment the simulator applies to message
// rounds. The zero value injects nothing.
type FaultProfile struct {
	// Latency is a fixed delay added to every outgoing frame.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) on top of
	// Latency, per frame.
	Jitter time.Duration
	// DropRate is the probability in [0, 1] that an outgoing frame is
	// silently dropped before reaching the wire.
	DropRate float64
	// Seed seeds the jitter/drop RNG so injected conditions replay
	// deterministically. Zero means seed 1.
	Seed int64
}

func (fp FaultProfile) delaying() bool { return fp.Latency > 0 || fp.Jitter > 0 }

// latTracker accumulates min/max/total latency with atomics so the
// send and receive paths never contend on a lock.
type latTracker struct {
	count atomic.Int64
	total atomic.Int64 // nanoseconds
	min   atomic.Int64 // nanoseconds; math.MaxInt64 when empty
	max   atomic.Int64 // nanoseconds
}

const latEmpty = int64(1<<63 - 1)

func (l *latTracker) observe(d time.Duration) {
	ns := int64(d)
	l.count.Add(1)
	l.total.Add(ns)
	for {
		cur := l.min.Load()
		if cur != latEmpty && ns >= cur {
			break
		}
		if l.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := l.max.Load()
		if ns <= cur {
			break
		}
		if l.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// LatencyStats is a min/max/total latency snapshot.
type LatencyStats struct {
	Count int64
	Min   time.Duration
	Max   time.Duration
	Total time.Duration
}

// Mean returns the average latency, 0 when empty.
func (s LatencyStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

func (l *latTracker) stats() LatencyStats {
	s := LatencyStats{
		Count: l.count.Load(),
		Total: time.Duration(l.total.Load()),
		Max:   time.Duration(l.max.Load()),
	}
	if min := l.min.Load(); min != latEmpty {
		s.Min = time.Duration(min)
	}
	return s
}

// PeerStats is one peer's traffic, as seen from one endpoint's
// InstrumentedTransport.
type PeerStats struct {
	Peer     proc.ID
	MsgsOut  int64
	BytesOut int64
	MsgsIn   int64
	BytesIn  int64
	// Dropped counts outgoing frames discarded by fault injection
	// (DropRate plus delay-queue overflow).
	Dropped int64
	// Send is the latency of the underlying Send call (the real wire
	// cost; injected delay is excluded).
	Send LatencyStats
	// RecvGap is the inter-arrival gap between successive frames from
	// this peer — the live analogue of a heartbeat trace.
	RecvGap LatencyStats
}

// peerState is the per-peer half of the wrapper's bookkeeping.
type peerState struct {
	id       proc.ID
	msgsOut  atomic.Int64
	bytesOut atomic.Int64
	msgsIn   atomic.Int64
	bytesIn  atomic.Int64
	dropped  atomic.Int64
	send     latTracker
	recvGap  latTracker
	lastRecv atomic.Int64 // UnixNano of the previous frame; 0 = none yet

	// registry instruments (nil when uninstrumented)
	mMsgsOut  *metrics.Counter
	mBytesOut *metrics.Counter
	mMsgsIn   *metrics.Counter
	mBytesIn  *metrics.Counter
	mDropped  *metrics.Counter
	mSendSec  *metrics.Histogram
	mRecvGap  *metrics.Histogram

	// delayed-send queue, created lazily when the profile delays
	delay chan delayedFrame
}

type delayedFrame struct {
	due  time.Time
	data []byte
}

// InstrumentedTransport wraps any Transport with per-peer message and
// byte counters, send/receive latency tracking (min/max/total plus
// registry histogram buckets), and configurable injected
// latency/jitter/drop — the live-path port of the simulator's
// latency-modeled delivery. All instruments live in the supplied
// metrics.Registry (nil disables registry export but keeps the local
// stats), named <prefix>_peer_p<ID>_*; share one registry across a
// cluster for cluster-wide per-peer totals.
type InstrumentedTransport struct {
	inner  Transport
	self   proc.ID
	reg    *metrics.Registry
	prefix string
	fp     FaultProfile

	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.Mutex
	peers   map[proc.ID]*peerState
	stopped bool // guarded by mu; set before stop closes

	frames chan Frame

	stop     chan struct{}
	done     chan struct{} // receive forwarder exit
	sendWG   sync.WaitGroup
	stopOnce sync.Once
}

var _ Transport = (*InstrumentedTransport)(nil)

// InstrumentTransport wraps inner. self names this endpoint in log
// output; reg may be nil (stats stay queryable via PeerStats). The
// returned transport must be Closed to release its forwarding
// goroutine — closing it also closes inner.
func InstrumentTransport(inner Transport, self proc.ID, reg *metrics.Registry, fp FaultProfile) *InstrumentedTransport {
	seed := fp.Seed
	if seed == 0 {
		seed = 1
	}
	t := &InstrumentedTransport{
		inner:  inner,
		self:   self,
		reg:    reg,
		prefix: "gcs",
		fp:     fp,
		rng:    rand.New(rand.NewSource(seed)),
		peers:  make(map[proc.ID]*peerState),
		frames: make(chan Frame, memChanDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go t.forwardFrames()
	return t
}

// peer returns (creating on first use) the bookkeeping for one peer.
func (t *InstrumentedTransport) peer(id proc.ID) *peerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ps, ok := t.peers[id]; ok {
		return ps
	}
	ps := &peerState{id: id}
	ps.send.min.Store(latEmpty)
	ps.recvGap.min.Store(latEmpty)
	name := func(suffix string) string {
		return fmt.Sprintf("%s_peer_p%d_%s", t.prefix, id, suffix)
	}
	ps.mMsgsOut = t.reg.Counter(name("msgs_out_total"), fmt.Sprintf("frames sent to peer %d", id))
	ps.mBytesOut = t.reg.Counter(name("bytes_out_total"), fmt.Sprintf("payload bytes sent to peer %d", id))
	ps.mMsgsIn = t.reg.Counter(name("msgs_in_total"), fmt.Sprintf("frames received from peer %d", id))
	ps.mBytesIn = t.reg.Counter(name("bytes_in_total"), fmt.Sprintf("payload bytes received from peer %d", id))
	ps.mDropped = t.reg.Counter(name("injected_drops_total"), fmt.Sprintf("frames to peer %d dropped by fault injection", id))
	ps.mSendSec = t.reg.Histogram(name("send_seconds"), fmt.Sprintf("underlying send latency to peer %d", id), metrics.WireBuckets)
	ps.mRecvGap = t.reg.Histogram(name("recv_gap_seconds"), fmt.Sprintf("inter-arrival gap of frames from peer %d", id), metrics.WireBuckets)
	// No new delay goroutines once Close has begun (it waits on
	// sendWG); such late sends fall through to the inner transport,
	// which is shutting down anyway. t.mu orders this against Close.
	if t.fp.delaying() && !t.stopped {
		ps.delay = make(chan delayedFrame, memChanDepth)
		t.sendWG.Add(1)
		go t.delayLoop(ps)
	}
	t.peers[id] = ps
	return ps
}

// Send implements Transport: count, maybe drop, maybe delay, then pass
// to the inner transport. Delayed frames preserve per-peer FIFO order
// through a dedicated queue.
func (t *InstrumentedTransport) Send(to proc.ID, data []byte) error {
	ps := t.peer(to)
	if t.fp.DropRate > 0 {
		t.rngMu.Lock()
		drop := t.rng.Float64() < t.fp.DropRate
		t.rngMu.Unlock()
		if drop {
			ps.dropped.Add(1)
			ps.mDropped.Inc()
			return nil
		}
	}
	if ps.delay != nil {
		delay := t.fp.Latency
		if t.fp.Jitter > 0 {
			t.rngMu.Lock()
			delay += time.Duration(t.rng.Int63n(int64(t.fp.Jitter)))
			t.rngMu.Unlock()
		}
		// The caller's buffer may be reused once Send returns; a frame
		// parked in the delay queue needs its own copy.
		buf := make([]byte, len(data))
		copy(buf, data)
		select {
		case ps.delay <- delayedFrame{due: time.Now().Add(delay), data: buf}:
		default:
			// Queue overflow behaves like any saturated link: drop.
			ps.dropped.Add(1)
			ps.mDropped.Inc()
		}
		return nil
	}
	t.sendNow(ps, data)
	return nil
}

// sendNow performs the instrumented inner send.
func (t *InstrumentedTransport) sendNow(ps *peerState, data []byte) {
	start := time.Now()
	err := t.inner.Send(ps.id, data)
	took := time.Since(start)
	if err != nil {
		return
	}
	ps.msgsOut.Add(1)
	ps.bytesOut.Add(int64(len(data)))
	ps.send.observe(took)
	ps.mMsgsOut.Inc()
	ps.mBytesOut.Add(int64(len(data)))
	ps.mSendSec.Observe(took.Seconds())
}

// delayLoop drains one peer's delay queue in order, sleeping each
// frame until its due time.
func (t *InstrumentedTransport) delayLoop(ps *peerState) {
	defer t.sendWG.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-t.stop:
			return
		case f := <-ps.delay:
			if wait := time.Until(f.due); wait > 0 {
				timer.Reset(wait)
				select {
				case <-t.stop:
					return
				case <-timer.C:
				}
			}
			t.sendNow(ps, f.data)
		}
	}
}

// forwardFrames relays the inner frame stream, recording per-peer
// receive counters and inter-arrival gaps.
func (t *InstrumentedTransport) forwardFrames() {
	defer close(t.done)
	in := t.inner.Frames()
	for {
		select {
		case <-t.stop:
			return
		case f, ok := <-in:
			if !ok {
				return
			}
			ps := t.peer(f.From)
			now := time.Now()
			ps.msgsIn.Add(1)
			ps.bytesIn.Add(int64(len(f.Data)))
			ps.mMsgsIn.Inc()
			ps.mBytesIn.Add(int64(len(f.Data)))
			if prev := ps.lastRecv.Swap(now.UnixNano()); prev != 0 {
				gap := time.Duration(now.UnixNano() - prev)
				ps.recvGap.observe(gap)
				ps.mRecvGap.Observe(gap.Seconds())
			}
			select {
			case t.frames <- f:
			case <-t.stop:
				return
			}
		}
	}
}

// Frames implements Transport.
func (t *InstrumentedTransport) Frames() <-chan Frame { return t.frames }

// Reachability implements Transport, passing the failure-detector
// stream through untouched.
func (t *InstrumentedTransport) Reachability() <-chan proc.Set { return t.inner.Reachability() }

// Close implements Transport: stops the forwarding and delay
// goroutines (pending delayed frames are discarded) and closes the
// inner transport.
func (t *InstrumentedTransport) Close() error {
	var err error
	t.stopOnce.Do(func() {
		t.mu.Lock()
		t.stopped = true
		t.mu.Unlock()
		close(t.stop)
		t.sendWG.Wait()
		<-t.done
		err = t.inner.Close()
	})
	return err
}

// PeerStats returns the traffic snapshot for one peer; ok is false if
// the peer has never been seen.
func (t *InstrumentedTransport) PeerStats(id proc.ID) (PeerStats, bool) {
	t.mu.Lock()
	ps, ok := t.peers[id]
	t.mu.Unlock()
	if !ok {
		return PeerStats{}, false
	}
	return ps.snapshot(), true
}

// Peers returns snapshots for every peer seen so far, ordered by ID.
func (t *InstrumentedTransport) Peers() []PeerStats {
	t.mu.Lock()
	states := make([]*peerState, 0, len(t.peers))
	for _, ps := range t.peers {
		states = append(states, ps)
	}
	t.mu.Unlock()
	out := make([]PeerStats, len(states))
	for i, ps := range states {
		out[i] = ps.snapshot()
	}
	sortPeerStats(out)
	return out
}

func sortPeerStats(s []PeerStats) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Peer < s[j-1].Peer; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (ps *peerState) snapshot() PeerStats {
	return PeerStats{
		Peer:     ps.id,
		MsgsOut:  ps.msgsOut.Load(),
		BytesOut: ps.bytesOut.Load(),
		MsgsIn:   ps.msgsIn.Load(),
		BytesIn:  ps.bytesIn.Load(),
		Dropped:  ps.dropped.Load(),
		Send:     ps.send.stats(),
		RecvGap:  ps.recvGap.stats(),
	}
}
