package gcs_test

import (
	"strings"
	"testing"
	"time"

	"dynvote/internal/gcs"
	"dynvote/internal/metrics"
	"dynvote/internal/proc"
	"dynvote/internal/ykd"
)

// startInstrumentedCluster wraps every MemTransport endpoint in an
// InstrumentedTransport and runs a node on each.
func startInstrumentedCluster(t *testing.T, n int, reg *metrics.Registry, fp gcs.FaultProfile, tl *gcs.Timeline) (*gcs.MemNetwork, []*gcs.Node, []*gcs.InstrumentedTransport) {
	t.Helper()
	net := gcs.NewMemNetwork(n)
	wrapped := make([]*gcs.InstrumentedTransport, n)
	nodes := make([]*gcs.Node, n)
	for i := 0; i < n; i++ {
		id := proc.ID(i)
		wrapped[i] = gcs.InstrumentTransport(net.Transport(id), id, reg, fp)
		node, err := gcs.NewNode(gcs.Config{
			ID: id, N: n,
			Transport: wrapped[i],
			Algorithm: ykd.Factory(ykd.VariantYKD),
			OnEvent:   tl.Hook(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		node.Run()
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Stop()
		}
	})
	return net, nodes, wrapped
}

func TestInstrumentedTransportCountsTraffic(t *testing.T) {
	reg := metrics.NewRegistry()
	net, nodes, wrapped := startInstrumentedCluster(t, 3, reg, gcs.FaultProfile{}, nil)
	eventually(t, "cluster converges", primaries(nodes, map[int]bool{0: true, 1: true, 2: true}))

	if err := nodes[0].Broadcast([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "peer counters populate", func() bool {
		s, ok := wrapped[0].PeerStats(1)
		return ok && s.MsgsOut > 0 && s.BytesOut > 0
	})
	eventually(t, "receive side counted", func() bool {
		s, ok := wrapped[1].PeerStats(0)
		return ok && s.MsgsIn > 0 && s.BytesIn > 0
	})

	s, _ := wrapped[0].PeerStats(1)
	if s.Send.Count == 0 || s.Send.Max < s.Send.Min || s.Send.Total < s.Send.Max {
		t.Errorf("send latency stats inconsistent: %+v", s.Send)
	}
	if s.Send.Mean() < s.Send.Min || s.Send.Mean() > s.Send.Max {
		t.Errorf("send mean %v outside [min %v, max %v]", s.Send.Mean(), s.Send.Min, s.Send.Max)
	}

	// Registry export carries the per-peer series.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gcs_peer_p1_msgs_out_total",
		"gcs_peer_p1_bytes_out_total",
		"gcs_peer_p0_msgs_in_total",
		"gcs_peer_p1_send_seconds_bucket",
		"gcs_peer_p1_send_seconds_quantile",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("prometheus export missing %s", want)
		}
	}

	// Peers() is sorted and covers both directions.
	peers := wrapped[0].Peers()
	for i := 1; i < len(peers); i++ {
		if peers[i].Peer <= peers[i-1].Peer {
			t.Errorf("Peers() not sorted: %v", peers)
		}
	}
	_ = net
}

// TestInstrumentedDropAll: DropRate 1 on one endpoint severs it as
// thoroughly as a partition — and every discard is counted.
func TestInstrumentedDropAll(t *testing.T) {
	net := gcs.NewMemNetwork(3)
	// Node 2's outgoing traffic is entirely dropped; its heartbeat-free
	// MemNetwork reachability still includes it, but its algorithm
	// traffic never arrives.
	tr2 := gcs.InstrumentTransport(net.Transport(2), 2, nil, gcs.FaultProfile{DropRate: 1, Seed: 7})
	defer tr2.Close()
	for i := 0; i < 20; i++ {
		if err := tr2.Send(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	s, ok := tr2.PeerStats(0)
	if !ok || s.Dropped != 20 || s.MsgsOut != 0 {
		t.Errorf("drop accounting: %+v (ok=%v)", s, ok)
	}
}

// TestInstrumentedInjectedLatency: injected latency delays delivery but
// preserves per-peer order, and the cluster still converges.
func TestInstrumentedInjectedLatency(t *testing.T) {
	reg := metrics.NewRegistry()
	fp := gcs.FaultProfile{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Seed: 42}
	_, nodes, wrapped := startInstrumentedCluster(t, 3, reg, fp, nil)
	eventually(t, "cluster converges despite injected latency",
		primaries(nodes, map[int]bool{0: true, 1: true, 2: true}))
	if err := nodes[0].Broadcast([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	eventually(t, "delayed frames still flow", func() bool {
		s, ok := wrapped[0].PeerStats(1)
		return ok && s.MsgsOut > 0
	})
}

func TestTimelineRecordsFailover(t *testing.T) {
	tl := gcs.NewTimeline()
	net, nodes, _ := startInstrumentedCluster(t, 5, nil, gcs.FaultProfile{}, tl)
	eventually(t, "cluster converges", primaries(nodes,
		map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true}))

	injectedAt := time.Now()
	if err := net.SetComponents(proc.NewSet(0, 1, 2), proc.NewSet(3, 4)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "majority re-forms", primaries(nodes,
		map[int]bool{0: true, 1: true, 2: true, 3: false, 4: false}))

	lost, regained, ok := tl.Recovery(injectedAt)
	if !ok {
		t.Fatalf("no recovery measured; timeline:\n%s", tl)
	}
	if lost < 0 || regained < lost {
		t.Errorf("recovery ordering wrong: lost=%v regained=%v", lost, regained)
	}
	if tl.CountKind(gcs.EventViewProposed) == 0 {
		t.Error("no view proposals recorded")
	}
	if tl.CountKind(gcs.EventView) == 0 {
		t.Error("no view installs recorded")
	}
	if s := tl.String(); !strings.Contains(s, "proposes view") || !strings.Contains(s, "regains primary") {
		t.Errorf("timeline rendering incomplete:\n%s", s)
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *gcs.Timeline
	tl.Record(0, gcs.Event{Kind: gcs.EventPrimary})
	if tl.Len() != 0 || tl.Events() != nil || tl.CountKind(gcs.EventPrimary) != 0 {
		t.Error("nil timeline should no-op")
	}
	if _, _, ok := tl.Recovery(time.Now()); ok {
		t.Error("nil timeline measured a recovery")
	}
	hook := tl.Hook(3)
	hook(gcs.Event{Kind: gcs.EventView}) // must not panic
}

// TestTimelineRecoverySemantics: recovery is first-loss to first-regain
// strictly after the injection point.
func TestTimelineRecoverySemantics(t *testing.T) {
	tl := gcs.NewTimeline()
	// A pre-injection primary flap must not count.
	tl.Record(0, gcs.Event{Kind: gcs.EventPrimary, Primary: false})
	tl.Record(0, gcs.Event{Kind: gcs.EventPrimary, Primary: true})
	injected := time.Now()
	if _, _, ok := tl.Recovery(injected); ok {
		t.Fatal("recovery measured from pre-injection events")
	}
	time.Sleep(time.Millisecond)
	tl.Record(1, gcs.Event{Kind: gcs.EventPrimary, Primary: false})
	if _, _, ok := tl.Recovery(injected); ok {
		t.Fatal("recovery measured before any node regained")
	}
	time.Sleep(time.Millisecond)
	tl.Record(1, gcs.Event{Kind: gcs.EventPrimary, Primary: true})
	lost, regained, ok := tl.Recovery(injected)
	if !ok || lost <= 0 || regained <= lost {
		t.Errorf("recovery = (%v, %v, %v)", lost, regained, ok)
	}
}
