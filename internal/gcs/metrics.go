package gcs

import (
	"dynvote/internal/metrics"
)

// nodeMetrics bundles a Node's instrumentation, resolved once at
// construction. All instruments are shared across the nodes of one
// registry — a scrape sees cluster-wide totals. A nil registry yields
// nil instruments (no-ops), so the event loop is branch-cheap when
// uninstrumented.
type nodeMetrics struct {
	broadcasts  *metrics.Counter // frames broadcast (views + bundles), per recipient
	bundlesIn   *metrics.Counter // current-view bundles delivered to the algorithm
	views       *metrics.Counter // views installed
	reconfigs   *metrics.Counter // failure-detector reachability reports processed
	earlyHeld   *metrics.Counter // bundles buffered ahead of their view
	snapSaves   *metrics.Counter // durable snapshots taken
	snapLoads   *metrics.Counter // durable snapshots restored
	appPayloads *metrics.Counter // application payloads delivered
}

func newNodeMetrics(reg *metrics.Registry) nodeMetrics {
	return nodeMetrics{
		broadcasts:  reg.Counter("gcs_broadcasts_sent_total", "frames broadcast to peers (one per recipient)"),
		bundlesIn:   reg.Counter("gcs_bundles_delivered_total", "current-view bundles delivered to the algorithm"),
		views:       reg.Counter("gcs_views_installed_total", "views installed by nodes"),
		reconfigs:   reg.Counter("gcs_reconfigurations_total", "failure-detector reachability reports processed"),
		earlyHeld:   reg.Counter("gcs_early_bundles_held_total", "bundles buffered ahead of their view's announcement"),
		snapSaves:   reg.Counter("gcs_snapshot_saves_total", "durable state snapshots taken"),
		snapLoads:   reg.Counter("gcs_snapshot_restores_total", "durable state snapshots restored"),
		appPayloads: reg.Counter("gcs_app_payloads_delivered_total", "application payloads delivered to handlers"),
	}
}

// tcpMetrics instruments a TCPTransport's wire traffic. The three
// drop counters make saturation visible instead of silent: inboxDrops
// is receive-side overflow of the frames channel, sendqDrops is
// overflow of a peer's bounded send queue, deadDrops is frames
// discarded because their peer was unreachable (dialing or backing
// off).
type tcpMetrics struct {
	bytesIn    *metrics.Counter
	bytesOut   *metrics.Counter
	framesIn   *metrics.Counter
	framesOut  *metrics.Counter
	redials    *metrics.Counter
	inboxDrops *metrics.Counter
	sendqDrops *metrics.Counter
	deadDrops  *metrics.Counter
}

func newTCPMetrics(reg *metrics.Registry) tcpMetrics {
	return tcpMetrics{
		bytesIn:    reg.Counter("gcs_tcp_bytes_in_total", "bytes read from peers (headers included)"),
		bytesOut:   reg.Counter("gcs_tcp_bytes_out_total", "bytes written to peers (headers included)"),
		framesIn:   reg.Counter("gcs_tcp_frames_in_total", "frames read from peers (heartbeats included)"),
		framesOut:  reg.Counter("gcs_tcp_frames_out_total", "frames written to peers (heartbeats included)"),
		redials:    reg.Counter("gcs_tcp_dials_total", "outgoing connections established"),
		inboxDrops: reg.Counter("gcs_tcp_inbox_drops_total", "inbound frames dropped on frames-channel overflow"),
		sendqDrops: reg.Counter("gcs_tcp_sendq_drops_total", "outbound frames dropped on send-queue overflow"),
		deadDrops:  reg.Counter("gcs_tcp_unreachable_drops_total", "outbound frames dropped because the peer was unreachable"),
	}
}
