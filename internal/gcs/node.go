package gcs

import (
	"fmt"
	"sync"

	"dynvote/internal/core"
	"dynvote/internal/metrics"
	"dynvote/internal/proc"
	"dynvote/internal/view"
	"dynvote/internal/wire"
)

// Frame kinds on the wire.
const (
	frameView byte = iota + 1 // leader's view announcement
	frameBundle
	frameViewNack // "your announcement is stale; I have seen view N"
)

// EventKind classifies node events.
type EventKind int

const (
	// EventView: a new view was installed.
	EventView EventKind = iota + 1
	// EventApp: an application payload was delivered.
	EventApp
	// EventPrimary: the node's primary-component status changed.
	EventPrimary
	// EventViewProposed: this node, as leader of its component,
	// announced a new view (it installs moments later). The
	// proposed→installed gap is the membership half of failover time.
	EventViewProposed
)

// Event is a notification from the node's event loop. Handlers run on
// the loop goroutine and must not block.
type Event struct {
	Kind    EventKind
	View    view.View
	From    proc.ID
	Payload []byte
	Primary bool
}

// Config assembles a Node.
type Config struct {
	// ID is this process's identity; processes are numbered 0..N-1.
	ID proc.ID
	// N is the total number of processes in the system.
	N int
	// Transport carries frames and failure-detector events.
	Transport Transport
	// Algorithm chooses the primary component algorithm variant.
	Algorithm core.Factory
	// OnEvent, when non-nil, receives node events from the loop
	// goroutine.
	OnEvent func(Event)
	// Restore, when non-nil, is a durable-state snapshot (from
	// Node.Snapshot of a previous incarnation) to restore before the
	// node starts — how a process rejoins after a crash without
	// forgetting which primaries it helped form.
	Restore []byte
	// Metrics, when non-nil, receives the node's instrumentation
	// (broadcasts, deliveries, views, reconfigurations, snapshot
	// activity). Share one registry across a cluster's nodes for
	// cluster-wide totals.
	Metrics *metrics.Registry
}

// Node hosts a primary component algorithm over a Transport: it runs
// the membership protocol, broadcasts the algorithm's messages, and
// piggybacks application payloads onto the same frames, exactly as the
// thesis's application interface prescribes (Figure 2-2).
type Node struct {
	cfg   Config
	alg   core.Algorithm
	pb    *core.Piggyback
	sends chan []byte
	m     nodeMetrics

	mu        sync.Mutex // guards the snapshot fields below
	curView   view.View
	inPrimary bool

	// early buffers bundles that arrive before their view is
	// installed here: members install a new view at slightly
	// different moments, and a fast member's state exchange must not
	// be lost to a slow one. Keyed by view ID; bounded.
	early      map[int64][]Frame
	earlyTotal int

	// maxSeenViewID tracks the highest view ID this node has heard of
	// — including via stale-view NACKs — so a leader whose process ID
	// composes smaller view IDs can still outbid a view it was never
	// a member of. lastReach remembers the latest failure-detector
	// report for re-announcements.
	maxSeenViewID int64
	lastReach     proc.Set

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewNode builds a node; Run starts it.
func NewNode(cfg Config) (*Node, error) {
	if cfg.N <= 0 || cfg.ID < 0 || int(cfg.ID) >= cfg.N {
		return nil, fmt.Errorf("gcs: bad identity %v of %d", cfg.ID, cfg.N)
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("gcs: transport required")
	}
	all := proc.Universe(cfg.N)
	initial := view.View{ID: 0, Members: all}
	alg := cfg.Algorithm.New(cfg.ID, initial)
	m := newNodeMetrics(cfg.Metrics)
	if cfg.Restore != nil {
		snap, ok := alg.(core.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("gcs: %s does not support state restore", cfg.Algorithm.Name)
		}
		if err := snap.Restore(cfg.Restore); err != nil {
			return nil, fmt.Errorf("gcs: restore: %w", err)
		}
		m.snapLoads.Inc()
	}
	return &Node{
		cfg:       cfg,
		alg:       alg,
		m:         m,
		pb:        core.NewPiggyback(alg, cfg.Algorithm.Codec),
		sends:     make(chan []byte, 64),
		early:     make(map[int64][]Frame),
		curView:   initial,
		inPrimary: alg.InPrimary(),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// Run starts the event loop. Stop shuts it down and waits for exit.
func (n *Node) Run() { go n.loop() }

// Stop signals the loop to exit and waits for it.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	<-n.done
}

// Snapshot captures the algorithm's durable state after stopping the
// node, suitable for Config.Restore in a later incarnation. It fails
// for algorithms without persistence support. Call only after Stop —
// the algorithm is not safe to read while the loop runs.
func (n *Node) Snapshot() ([]byte, error) {
	select {
	case <-n.done:
	default:
		return nil, fmt.Errorf("gcs: Snapshot requires a stopped node")
	}
	snap, ok := n.alg.(core.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("gcs: %s does not support snapshots", n.alg.Name())
	}
	data, err := snap.Snapshot()
	if err == nil {
		n.m.snapSaves.Inc()
	}
	return data, err
}

// InPrimary reports whether this process currently belongs to the
// primary component.
func (n *Node) InPrimary() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inPrimary
}

// CurrentView returns the installed view.
func (n *Node) CurrentView() view.View {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.curView
}

// Broadcast queues an application payload for delivery to the current
// view, riding the same frames as the algorithm's traffic.
func (n *Node) Broadcast(payload []byte) error {
	buf := make([]byte, len(payload))
	copy(buf, payload)
	select {
	case n.sends <- buf:
		return nil
	case <-n.stop:
		return fmt.Errorf("gcs: node stopped")
	}
}

func (n *Node) loop() {
	defer close(n.done)
	for {
		select {
		case <-n.stop:
			_ = n.cfg.Transport.Close()
			return
		case reach := <-n.cfg.Transport.Reachability():
			n.onReachability(reach)
		case f := <-n.cfg.Transport.Frames():
			n.onFrame(f)
		case payload := <-n.sends:
			n.flush(payload)
		}
	}
}

// onReachability runs the membership step: the smallest reachable
// process leads; a leader announces a fresh view to its component.
func (n *Node) onReachability(reach proc.Set) {
	n.m.reconfigs.Inc()
	if !reach.Contains(n.cfg.ID) {
		reach = reach.With(n.cfg.ID)
	}
	n.lastReach = reach
	if reach.Smallest() != n.cfg.ID {
		return // a smaller process will lead and announce the view
	}
	v := view.View{ID: n.nextViewID(), Members: reach}
	n.emit(Event{Kind: EventViewProposed, View: v})
	var w wire.Writer
	w.Byte(frameView)
	w.Varint(v.ID)
	w.Set(v.Members)
	n.broadcastRaw(v.Members, w.Bytes())
	n.installView(v)
}

// nextViewID composes a view identifier that is strictly increasing at
// this leader and globally unique: the high bits carry an epoch above
// every view this leader has seen or been told about, the low bits its
// process ID, so concurrent leaders in disjoint components never
// collide.
func (n *Node) nextViewID() int64 {
	n.mu.Lock()
	base := n.curView.ID
	n.mu.Unlock()
	if n.maxSeenViewID > base {
		base = n.maxSeenViewID
	}
	epoch := base>>16 + 1
	id := epoch<<16 | int64(n.cfg.ID&0xFFFF)
	n.maxSeenViewID = id
	return id
}

func (n *Node) onFrame(f Frame) {
	r := wire.NewReader(f.Data)
	switch kind := r.Byte(); kind {
	case frameView:
		v := view.View{ID: r.Varint(), Members: r.Set()}
		if r.Err() != nil || !v.Members.Contains(n.cfg.ID) {
			return
		}
		// Trust only the member that leads this view.
		if f.From != v.Members.Smallest() {
			return
		}
		if v.ID > n.maxSeenViewID {
			n.maxSeenViewID = v.ID
		}
		if v.ID <= n.CurrentView().ID {
			// Stale announcement — typically a rightful leader whose
			// process ID composes smaller view IDs than one we joined
			// during a failure-detector race. Tell it how far we have
			// seen so it can re-announce above us.
			var w wire.Writer
			w.Byte(frameViewNack)
			w.Varint(n.CurrentView().ID)
			_ = n.cfg.Transport.Send(f.From, w.Bytes())
			return
		}
		n.installView(v)
	case frameViewNack:
		seen := r.Varint()
		if r.Err() != nil {
			return
		}
		if seen > n.maxSeenViewID {
			n.maxSeenViewID = seen
		}
		// Re-announce with a higher epoch if we still lead.
		if !n.lastReach.Empty() && n.CurrentView().ID <= seen {
			n.onReachability(n.lastReach)
		}
	case frameBundle:
		viewID := r.Varint()
		if r.Err() != nil {
			return
		}
		cur := n.CurrentView().ID
		switch {
		case viewID == cur:
			n.deliverBundle(f)
			n.flush(nil)
		case viewID > cur:
			// The sender installed a newer view before we did; hold
			// the bundle until the leader's announcement arrives.
			const maxEarly = 1024
			if n.earlyTotal < maxEarly {
				n.early[viewID] = append(n.early[viewID], f)
				n.earlyTotal++
				n.m.earlyHeld.Inc()
			}
		default:
			// Older view: view-synchronous drop.
		}
	}
}

// deliverBundle hands a current-view bundle to the algorithm and the
// application.
func (n *Node) deliverBundle(f Frame) {
	r := wire.NewReader(f.Data)
	_ = r.Byte()   // kind
	_ = r.Varint() // view id
	rest := f.Data[len(f.Data)-r.Remaining():]
	app, err := n.pb.Incoming(f.From, rest)
	if err != nil {
		return // corrupt frame; drop
	}
	n.m.bundlesIn.Inc()
	if app != nil {
		n.m.appPayloads.Inc()
		n.emit(Event{Kind: EventApp, From: f.From, Payload: app})
	}
}

// installView delivers the view to the algorithm and flushes whatever
// it wants to say.
func (n *Node) installView(v view.View) {
	n.m.views.Inc()
	n.mu.Lock()
	n.curView = v
	n.mu.Unlock()
	n.pb.ViewChanged(v)
	n.emit(Event{Kind: EventView, View: v})
	n.flush(nil)

	if v.ID > n.maxSeenViewID {
		n.maxSeenViewID = v.ID
	}
	// Replay bundles that raced ahead of this view's announcement and
	// discard buffered traffic for views we skipped past.
	replay := n.early[v.ID]
	for id, frames := range n.early {
		if id <= v.ID {
			n.earlyTotal -= len(frames)
			delete(n.early, id)
		}
	}
	for _, f := range replay {
		if n.CurrentView().ID != v.ID {
			break // a replayed frame moved us to yet another view
		}
		n.deliverBundle(f)
		n.flush(nil)
	}
}

// flush bundles pending algorithm messages (and an optional
// application payload) and broadcasts them to the current view — the
// thesis's outgoingMessagePoll discipline: poll after every new piece
// of information.
func (n *Node) flush(appPayload []byte) {
	v := n.CurrentView()
	data, send, err := n.pb.Outgoing(appPayload)
	if err != nil || !send {
		n.checkPrimary()
		return
	}
	var w wire.Writer
	w.Byte(frameBundle)
	w.Varint(v.ID)
	bundle := append(w.Bytes(), data...)
	n.broadcastRaw(v.Members, bundle)
	if appPayload != nil {
		// Group multicast delivers to the sender too.
		n.emit(Event{Kind: EventApp, From: n.cfg.ID, Payload: appPayload})
	}
	n.checkPrimary()
}

func (n *Node) broadcastRaw(members proc.Set, data []byte) {
	members.ForEach(func(q proc.ID) {
		if q != n.cfg.ID {
			n.m.broadcasts.Inc()
			_ = n.cfg.Transport.Send(q, data)
		}
	})
}

func (n *Node) checkPrimary() {
	now := n.alg.InPrimary()
	n.mu.Lock()
	changed := now != n.inPrimary
	n.inPrimary = now
	n.mu.Unlock()
	if changed {
		n.emit(Event{Kind: EventPrimary, Primary: now})
	}
}

func (n *Node) emit(ev Event) {
	if n.cfg.OnEvent != nil {
		n.cfg.OnEvent(ev)
	}
}
