package gcs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dynvote/internal/metrics"
	"dynvote/internal/proc"
)

// TCPConfig assembles a TCPTransport.
type TCPConfig struct {
	// ID is this process's identity.
	ID proc.ID
	// OwnAddr is this process's listen address (e.g. "127.0.0.1:0").
	// If empty, Addrs[ID] is used.
	OwnAddr string
	// Addrs maps peers to their listen addresses. More peers can be
	// registered later with SetPeers — useful when ports are assigned
	// by the operating system.
	Addrs map[proc.ID]string
	// HeartbeatEvery is the heartbeat period (default 50ms).
	HeartbeatEvery time.Duration
	// FailAfter is how long a silent peer stays "reachable" (default
	// 3× HeartbeatEvery).
	FailAfter time.Duration
	// Metrics, when non-nil, receives wire-traffic instrumentation
	// (bytes and frames in/out, dials, dropped frames).
	Metrics *metrics.Registry
}

// TCPTransport implements Transport over a full TCP mesh. Each peer
// gets a dedicated writer goroutine fed by a bounded frame queue:
// Send enqueues and returns, the writer coalesces whatever is queued
// into one write syscall per drain cycle, and dialing (with backoff)
// happens on the writer, never on the caller — a dead peer costs its
// own writer a dial timeout, not the sender or the heartbeat loop.
// The inbound path reads through a buffered reader into grow-only
// arena chunks, so a frame costs no per-frame heap allocation and the
// heartbeat bookkeeping is batched to one mutex acquisition per drain.
// A Block list simulates network partitions for demos and tests
// without touching the operating system.
type TCPTransport struct {
	cfg      TCPConfig
	listener net.Listener
	frames   chan Frame
	fd       chan proc.Set
	m        tcpMetrics

	// dialFn dials one peer; tests substitute slow or failing dialers.
	// Set only before peers are registered (writers snapshot it).
	dialFn func(network, addr string, timeout time.Duration) (net.Conn, error)

	mu        sync.Mutex
	peers     map[proc.ID]string
	conns     map[proc.ID]*peerConn
	accepted  map[net.Conn]struct{}
	lastHB    map[proc.ID]time.Time
	blocked   proc.Set
	reach     proc.Set
	published bool
	closed    bool

	// bufPool recycles Send's frame-body copies between the callers
	// and the writer goroutines; a channel free list stays warm under
	// GC pressure, unlike sync.Pool.
	bufPool chan []byte

	stop     chan struct{}
	done     chan struct{} // heartbeat loop exit
	writerWG sync.WaitGroup
	stopOnce sync.Once
}

var _ Transport = (*TCPTransport)(nil)

// Frame wire format: 4-byte big-endian length, 4-byte sender ID, body.
// A zero-length body is a heartbeat.
const tcpHeader = 8

// Wire-path tuning. sendQueueDepth bounds per-peer outbound buffering:
// overflow drops frames (counted) rather than blocking the sender.
// flushBufCap caps how many bytes one drain cycle coalesces into a
// single write; readBufSize is the inbound bufio window; readChunk is
// the arena granularity for received frame bodies (one allocation
// amortized over ~readChunk bytes of delivered frames).
const (
	sendQueueDepth = 512
	flushBufCap    = 64 << 10
	readBufSize    = 64 << 10
	readChunk      = 64 << 10
	dialTimeout    = 200 * time.Millisecond
	redialMin      = 10 * time.Millisecond
	redialMax      = 300 * time.Millisecond
)

// NewTCPTransport starts listening on cfg.Addrs[cfg.ID] and begins
// heartbeating all peers.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 50 * time.Millisecond
	}
	if cfg.FailAfter == 0 {
		cfg.FailAfter = 3 * cfg.HeartbeatEvery
	}
	addr := cfg.OwnAddr
	if addr == "" {
		addr = cfg.Addrs[cfg.ID]
	}
	if addr == "" {
		return nil, fmt.Errorf("gcs: no listen address for %v", cfg.ID)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gcs: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		cfg:      cfg,
		listener: ln,
		m:        newTCPMetrics(cfg.Metrics),
		dialFn:   net.DialTimeout,
		frames:   make(chan Frame, memChanDepth),
		fd:       make(chan proc.Set, 1),
		peers:    make(map[proc.ID]string, len(cfg.Addrs)),
		conns:    make(map[proc.ID]*peerConn),
		accepted: make(map[net.Conn]struct{}),
		lastHB:   make(map[proc.ID]time.Time),
		reach:    proc.NewSet(cfg.ID),
		bufPool:  make(chan []byte, 1024),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for id, a := range cfg.Addrs {
		if id != cfg.ID {
			t.peers[id] = a
		}
	}
	go t.acceptLoop()
	go t.heartbeatLoop()
	return t, nil
}

// SetPeers registers (or replaces) peer addresses. Call before the
// cluster is expected to converge.
func (t *TCPTransport) SetPeers(addrs map[proc.ID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, a := range addrs {
		if id != t.cfg.ID {
			t.peers[id] = a
		}
	}
}

// Addr returns the transport's bound listen address.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// grabBuf returns a recycled body buffer (or a fresh one).
func (t *TCPTransport) grabBuf() []byte {
	select {
	case b := <-t.bufPool:
		return b
	default:
		return make([]byte, 0, 256)
	}
}

// releaseBuf returns a body buffer to the pool. nil (heartbeat) is a
// no-op; a full pool lets the buffer fall to the garbage collector.
func (t *TCPTransport) releaseBuf(b []byte) {
	if b == nil {
		return
	}
	select {
	case t.bufPool <- b[:0]:
	default:
	}
}

// Send implements Transport: copy the frame into a pooled buffer and
// enqueue it on the peer's writer. It never blocks and never dials —
// queue overflow and unreachable peers drop the frame (counted), like
// UDP into a dead link.
func (t *TCPTransport) Send(to proc.ID, data []byte) error {
	t.mu.Lock()
	if t.blocked.Contains(to) || t.closed {
		t.mu.Unlock()
		return nil
	}
	pc := t.peerConnLocked(to)
	t.mu.Unlock()
	if pc == nil {
		return nil // unknown peer: drop, like a dead link
	}
	var buf []byte
	if len(data) > 0 {
		buf = append(t.grabBuf(), data...)
	}
	select {
	case pc.queue <- buf:
	default:
		t.m.sendqDrops.Inc()
		t.releaseBuf(buf)
	}
	return nil
}

// Frames implements Transport.
func (t *TCPTransport) Frames() <-chan Frame { return t.frames }

// Reachability implements Transport.
func (t *TCPTransport) Reachability() <-chan proc.Set { return t.fd }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.stopOnce.Do(func() {
		close(t.stop)
		t.mu.Lock()
		t.closed = true
		// Force-close every writer's live connection so writers
		// blocked in a write return immediately; the writers
		// themselves exit on t.stop.
		for _, pc := range t.conns {
			pc.closeConn()
		}
		// Accepted inbound connections must close too: leaving them
		// open leaks their readLoop goroutines and keeps peers writing
		// into a transport that will never deliver — a "restarted"
		// process would still look alive to the rest of the cluster.
		for c := range t.accepted {
			_ = c.Close()
		}
		t.mu.Unlock()
		_ = t.listener.Close()
		t.writerWG.Wait()
		<-t.done
	})
	return nil
}

// Block drops all traffic to and from the given peers, simulating a
// partition. Passing no peers clears the block list (heals).
func (t *TCPTransport) Block(peers ...proc.ID) {
	t.mu.Lock()
	t.blocked = proc.NewSet(peers...)
	t.mu.Unlock()
}

// peerConn owns one peer's outbound path: a bounded frame queue
// drained by a dedicated writer goroutine that dials (with backoff),
// coalesces queued frames into one buffer, and writes them with a
// single syscall per drain cycle.
type peerConn struct {
	t  *TCPTransport
	id proc.ID
	// queue carries pooled frame bodies; nil means heartbeat.
	queue chan []byte

	connMu sync.Mutex
	c      net.Conn // live connection, nil while down; Close() forces it shut
}

// peerConnLocked returns (creating on first use) the writer for one
// peer. Caller holds t.mu. Returns nil for unknown peers and after
// Close.
func (t *TCPTransport) peerConnLocked(to proc.ID) *peerConn {
	if pc, ok := t.conns[to]; ok {
		return pc
	}
	if _, ok := t.peers[to]; !ok {
		return nil
	}
	if t.closed {
		return nil
	}
	pc := &peerConn{t: t, id: to, queue: make(chan []byte, sendQueueDepth)}
	t.conns[to] = pc
	t.writerWG.Add(1)
	go pc.writeLoop()
	return pc
}

// closeConn force-closes the writer's live connection, if any.
func (pc *peerConn) closeConn() {
	pc.connMu.Lock()
	if pc.c != nil {
		_ = pc.c.Close()
	}
	pc.connMu.Unlock()
}

// setConn publishes the writer's live connection for closeConn.
func (pc *peerConn) setConn(c net.Conn) {
	pc.connMu.Lock()
	pc.c = c
	pc.connMu.Unlock()
}

// appendWireFrame encodes one frame (header + body) onto dst.
func appendWireFrame(dst []byte, from proc.ID, body []byte) []byte {
	var hdr [tcpHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(from))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// writeLoop drains the peer's queue: block for the first frame,
// opportunistically coalesce everything else already queued into one
// reused flush buffer, make sure a connection exists (dialing with
// backoff off the senders' path), and write the whole batch with one
// syscall. Write errors drop the connection and the in-flight batch —
// the transport promises datagram semantics, not delivery.
func (pc *peerConn) writeLoop() {
	t := pc.t
	defer t.writerWG.Done()
	var (
		conn     net.Conn
		flush    []byte
		backoff  time.Duration
		nextDial time.Time
	)
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		var first []byte
		select {
		case <-t.stop:
			return
		case first = <-pc.queue:
		}
		flush = appendWireFrame(flush[:0], t.cfg.ID, first)
		t.releaseBuf(first)
		frames := int64(1)
	drain:
		for len(flush) < flushBufCap {
			select {
			case b := <-pc.queue:
				flush = appendWireFrame(flush, t.cfg.ID, b)
				t.releaseBuf(b)
				frames++
			default:
				break drain
			}
		}
		if conn == nil {
			if time.Now().Before(nextDial) {
				t.m.deadDrops.Add(frames)
				continue
			}
			c, err := t.dialPeer(pc.id)
			if err != nil {
				if backoff == 0 {
					backoff = redialMin
				} else if backoff < redialMax {
					backoff *= 2
					if backoff > redialMax {
						backoff = redialMax
					}
				}
				nextDial = time.Now().Add(backoff)
				t.m.deadDrops.Add(frames)
				continue
			}
			conn = c
			backoff = 0
			pc.setConn(conn)
			// Close may have swept past before setConn registered this
			// connection; it would then never be force-closed, and a
			// blocked write could stall shutdown. Re-check and bail.
			select {
			case <-t.stop:
				return
			default:
			}
		}
		if _, err := conn.Write(flush); err != nil {
			_ = conn.Close()
			conn = nil
			pc.setConn(nil)
			backoff = redialMin
			nextDial = time.Now().Add(backoff)
			continue
		}
		t.m.bytesOut.Add(int64(len(flush)))
		t.m.framesOut.Add(frames)
	}
}

// dialPeer resolves the peer's current address and dials it.
func (t *TCPTransport) dialPeer(to proc.ID) (net.Conn, error) {
	t.mu.Lock()
	addr, ok := t.peers[to]
	dial := t.dialFn
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("gcs: unknown peer %v", to)
	}
	c, err := dial("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	t.m.redials.Inc()
	return c, nil
}

func (t *TCPTransport) acceptLoop() {
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // listener closed: shutting down
			}
			// Transient accept failure (resource pressure, aborted
			// handshake): back off briefly and keep accepting. Dying
			// here would silently deafen this node to new peers.
			select {
			case <-t.stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		go t.readLoop(conn)
	}
}

// hbMark is one batched heartbeat observation: the latest arrival
// time per sender within a drain cycle.
type hbMark struct {
	from proc.ID
	at   time.Time
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return
	}
	t.accepted[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, readBufSize)
	var (
		header   [tcpHeader]byte
		chunk    []byte // grow-only arena for delivered frame bodies
		bytesIn  int64
		framesIn int64
		hbs      []hbMark // reused; almost always one sender per conn
	)
	// flush applies one drain cycle's batched effects: wire counters
	// and heartbeat freshness, one mutex acquisition for the lot. The
	// block list is re-checked under the lock so a peer blocked
	// mid-drain cannot resurrect its heartbeat.
	flush := func() {
		if bytesIn != 0 {
			t.m.bytesIn.Add(bytesIn)
			t.m.framesIn.Add(framesIn)
			bytesIn, framesIn = 0, 0
		}
		if len(hbs) == 0 {
			return
		}
		t.mu.Lock()
		for _, hb := range hbs {
			if !t.blocked.Contains(hb.from) {
				t.lastHB[hb.from] = hb.at
			}
		}
		t.mu.Unlock()
		hbs = hbs[:0]
	}
	defer flush()

	blocked := t.blockedSnapshot()
	for {
		if _, err := io.ReadFull(br, header[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(header[:])
		from := proc.ID(binary.BigEndian.Uint32(header[4:]))
		if size > 1<<22 {
			return // corrupt stream
		}
		var body []byte
		if size > 0 {
			if cap(chunk)-len(chunk) < int(size) {
				n := readChunk
				if int(size) > n {
					n = int(size)
				}
				chunk = make([]byte, 0, n)
			}
			body = chunk[len(chunk) : len(chunk)+int(size)]
			chunk = chunk[:len(chunk)+int(size)]
			if _, err := io.ReadFull(br, body); err != nil {
				return
			}
		}
		bytesIn += int64(tcpHeader) + int64(size)
		framesIn++
		if !blocked.Contains(from) {
			// Record heartbeat freshness, overwriting this sender's
			// earlier mark within the drain (latest wins).
			now := time.Now()
			found := false
			for i := range hbs {
				if hbs[i].from == from {
					hbs[i].at = now
					found = true
					break
				}
			}
			if !found {
				hbs = append(hbs, hbMark{from: from, at: now})
			}
			if size > 0 {
				select {
				case t.frames <- Frame{From: from, Data: body}:
				default:
					// Inbox overflow: drop (counted) and rewind the
					// arena — the body was the last carve.
					t.m.inboxDrops.Inc()
					chunk = chunk[:len(chunk)-int(size)]
				}
			}
		}
		// About to block on the next header: apply the batch and
		// refresh the block-list snapshot for the next drain.
		if br.Buffered() < tcpHeader {
			flush()
			blocked = t.blockedSnapshot()
		}
	}
}

func (t *TCPTransport) blockedSnapshot() proc.Set {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.blocked
}

// heartbeatLoop enqueues one heartbeat per peer per tick. Enqueueing
// is non-blocking, and dialing dead peers happens on their writer
// goroutines — one unreachable peer can no longer eat the heartbeat
// budget of the healthy ones.
func (t *TCPTransport) heartbeatLoop() {
	defer close(t.done)
	ticker := time.NewTicker(t.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.mu.Lock()
			if !t.closed {
				for id := range t.peers {
					if t.blocked.Contains(id) {
						continue
					}
					pc := t.peerConnLocked(id)
					if pc == nil {
						continue
					}
					select {
					case pc.queue <- nil:
					default:
						t.m.sendqDrops.Inc()
					}
				}
			}
			t.mu.Unlock()
			t.refreshReachability()
		}
	}
}

// refreshReachability recomputes the reachable set from heartbeat
// freshness and publishes it if it changed.
func (t *TCPTransport) refreshReachability() {
	now := time.Now()
	reach := proc.NewSet(t.cfg.ID)
	t.mu.Lock()
	for id, last := range t.lastHB {
		if !t.blocked.Contains(id) && now.Sub(last) <= t.cfg.FailAfter {
			reach = reach.With(id)
		}
	}
	// The first reading always publishes, even when it equals the
	// optimistic initial value: a node that starts inside a partition
	// would otherwise never learn that its assumed-connected initial
	// view is fiction — no "change" ever fires.
	changed := !t.published || !reach.Equal(t.reach)
	t.published = true
	t.reach = reach
	t.mu.Unlock()
	if !changed {
		return
	}
	for {
		select {
		case t.fd <- reach:
			return
		default:
			select {
			case <-t.fd:
			default:
			}
		}
	}
}

// Reach returns the current reachable set as the failure detector
// computed it at the last heartbeat tick — a diagnostic snapshot.
func (t *TCPTransport) Reach() proc.Set {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reach
}
