package gcs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dynvote/internal/metrics"
	"dynvote/internal/proc"
)

// TCPConfig assembles a TCPTransport.
type TCPConfig struct {
	// ID is this process's identity.
	ID proc.ID
	// OwnAddr is this process's listen address (e.g. "127.0.0.1:0").
	// If empty, Addrs[ID] is used.
	OwnAddr string
	// Addrs maps peers to their listen addresses. More peers can be
	// registered later with SetPeers — useful when ports are assigned
	// by the operating system.
	Addrs map[proc.ID]string
	// HeartbeatEvery is the heartbeat period (default 50ms).
	HeartbeatEvery time.Duration
	// FailAfter is how long a silent peer stays "reachable" (default
	// 3× HeartbeatEvery).
	FailAfter time.Duration
	// Metrics, when non-nil, receives wire-traffic instrumentation
	// (bytes and frames in/out, dials).
	Metrics *metrics.Registry
}

// TCPTransport implements Transport over a full TCP mesh: one outgoing
// connection per peer, re-dialed lazily, with heartbeats doubling as
// the failure detector. A Block list simulates network partitions for
// demos and tests without touching the operating system.
type TCPTransport struct {
	cfg      TCPConfig
	listener net.Listener
	frames   chan Frame
	fd       chan proc.Set
	m        tcpMetrics

	mu        sync.Mutex
	peers     map[proc.ID]string
	conns     map[proc.ID]*peerConn
	accepted  map[net.Conn]struct{}
	lastHB    map[proc.ID]time.Time
	blocked   proc.Set
	reach     proc.Set
	published bool
	closed    bool

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

var _ Transport = (*TCPTransport)(nil)

// Frame wire format: 4-byte big-endian length, 4-byte sender ID, body.
// A zero-length body is a heartbeat.
const tcpHeader = 8

// NewTCPTransport starts listening on cfg.Addrs[cfg.ID] and begins
// heartbeating all peers.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 50 * time.Millisecond
	}
	if cfg.FailAfter == 0 {
		cfg.FailAfter = 3 * cfg.HeartbeatEvery
	}
	addr := cfg.OwnAddr
	if addr == "" {
		addr = cfg.Addrs[cfg.ID]
	}
	if addr == "" {
		return nil, fmt.Errorf("gcs: no listen address for %v", cfg.ID)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gcs: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		cfg:      cfg,
		listener: ln,
		m:        newTCPMetrics(cfg.Metrics),
		frames:   make(chan Frame, memChanDepth),
		fd:       make(chan proc.Set, 1),
		peers:    make(map[proc.ID]string, len(cfg.Addrs)),
		conns:    make(map[proc.ID]*peerConn),
		accepted: make(map[net.Conn]struct{}),
		lastHB:   make(map[proc.ID]time.Time),
		reach:    proc.NewSet(cfg.ID),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for id, a := range cfg.Addrs {
		if id != cfg.ID {
			t.peers[id] = a
		}
	}
	go t.acceptLoop()
	go t.heartbeatLoop()
	return t, nil
}

// SetPeers registers (or replaces) peer addresses. Call before the
// cluster is expected to converge.
func (t *TCPTransport) SetPeers(addrs map[proc.ID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, a := range addrs {
		if id != t.cfg.ID {
			t.peers[id] = a
		}
	}
}

// Addr returns the transport's bound listen address.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// Send implements Transport.
func (t *TCPTransport) Send(to proc.ID, data []byte) error {
	t.mu.Lock()
	if t.blocked.Contains(to) || t.closed {
		t.mu.Unlock()
		return nil
	}
	t.mu.Unlock()
	pc, err := t.conn(to)
	if err != nil {
		return nil // unreachable: drop, like a dead link
	}
	buf := make([]byte, tcpHeader+len(data))
	binary.BigEndian.PutUint32(buf, uint32(len(data)))
	binary.BigEndian.PutUint32(buf[4:], uint32(t.cfg.ID))
	copy(buf[tcpHeader:], data)
	pc.mu.Lock()
	_, err = pc.c.Write(buf)
	pc.mu.Unlock()
	if err != nil {
		t.dropConn(to)
		return nil
	}
	t.m.bytesOut.Add(int64(len(buf)))
	t.m.framesOut.Inc()
	return nil
}

// Frames implements Transport.
func (t *TCPTransport) Frames() <-chan Frame { return t.frames }

// Reachability implements Transport.
func (t *TCPTransport) Reachability() <-chan proc.Set { return t.fd }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.stopOnce.Do(func() {
		close(t.stop)
		t.mu.Lock()
		t.closed = true
		for id, pc := range t.conns {
			_ = pc.c.Close()
			delete(t.conns, id)
		}
		// Accepted inbound connections must close too: leaving them
		// open leaks their readLoop goroutines and keeps peers writing
		// into a transport that will never deliver — a "restarted"
		// process would still look alive to the rest of the cluster.
		for c := range t.accepted {
			_ = c.Close()
		}
		t.mu.Unlock()
		_ = t.listener.Close()
		<-t.done
	})
	return nil
}

// Block drops all traffic to and from the given peers, simulating a
// partition. Passing no peers clears the block list (heals).
func (t *TCPTransport) Block(peers ...proc.ID) {
	t.mu.Lock()
	t.blocked = proc.NewSet(peers...)
	t.mu.Unlock()
}

// peerConn serializes writes to one outgoing connection: the node
// loop and the heartbeat loop both send, and interleaved partial
// writes would corrupt the framing.
type peerConn struct {
	mu sync.Mutex
	c  net.Conn
}

func (t *TCPTransport) conn(to proc.ID) (*peerConn, error) {
	t.mu.Lock()
	if pc, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return pc, nil
	}
	addr, ok := t.peers[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("gcs: unknown peer %v", to)
	}
	c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = c.Close()
		return nil, fmt.Errorf("gcs: transport closed")
	}
	if old, ok := t.conns[to]; ok {
		_ = c.Close()
		return old, nil
	}
	pc := &peerConn{c: c}
	t.conns[to] = pc
	t.m.redials.Inc()
	return pc, nil
}

func (t *TCPTransport) dropConn(to proc.ID) {
	t.mu.Lock()
	if pc, ok := t.conns[to]; ok {
		_ = pc.c.Close()
		delete(t.conns, to)
	}
	t.mu.Unlock()
}

func (t *TCPTransport) acceptLoop() {
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // listener closed: shutting down
			}
			// Transient accept failure (resource pressure, aborted
			// handshake): back off briefly and keep accepting. Dying
			// here would silently deafen this node to new peers.
			select {
			case <-t.stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return
	}
	t.accepted[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	header := make([]byte, tcpHeader)
	for {
		if _, err := io.ReadFull(conn, header); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(header)
		from := proc.ID(binary.BigEndian.Uint32(header[4:]))
		if size > 1<<22 {
			return // corrupt stream
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		t.m.bytesIn.Add(int64(tcpHeader + len(body)))
		t.m.framesIn.Inc()
		t.mu.Lock()
		blocked := t.blocked.Contains(from)
		if !blocked {
			t.lastHB[from] = time.Now()
		}
		t.mu.Unlock()
		if blocked || size == 0 {
			continue // blocked peer or bare heartbeat
		}
		select {
		case t.frames <- Frame{From: from, Data: body}:
		default: // inbox overflow: drop
		}
	}
}

func (t *TCPTransport) heartbeatLoop() {
	defer close(t.done)
	ticker := time.NewTicker(t.cfg.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.mu.Lock()
			ids := make([]proc.ID, 0, len(t.peers))
			for id := range t.peers {
				ids = append(ids, id)
			}
			t.mu.Unlock()
			for _, id := range ids {
				_ = t.Send(id, nil)
			}
			t.refreshReachability()
		}
	}
}

// refreshReachability recomputes the reachable set from heartbeat
// freshness and publishes it if it changed.
func (t *TCPTransport) refreshReachability() {
	now := time.Now()
	reach := proc.NewSet(t.cfg.ID)
	t.mu.Lock()
	for id, last := range t.lastHB {
		if !t.blocked.Contains(id) && now.Sub(last) <= t.cfg.FailAfter {
			reach = reach.With(id)
		}
	}
	// The first reading always publishes, even when it equals the
	// optimistic initial value: a node that starts inside a partition
	// would otherwise never learn that its assumed-connected initial
	// view is fiction — no "change" ever fires.
	changed := !t.published || !reach.Equal(t.reach)
	t.published = true
	t.reach = reach
	t.mu.Unlock()
	if !changed {
		return
	}
	for {
		select {
		case t.fd <- reach:
			return
		default:
			select {
			case <-t.fd:
			default:
			}
		}
	}
}

// Reach returns the current reachable set as the failure detector
// computed it at the last heartbeat tick — a diagnostic snapshot.
func (t *TCPTransport) Reach() proc.Set {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reach
}
