package gcs

// White-box tests for the coalesced TCP wire path: they reach the
// dialFn test hook, the buffer pool and the queue constants, so they
// live inside the package rather than in gcs_test.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"dynvote/internal/metrics"
	"dynvote/internal/proc"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// setDialFn installs a dial hook. Safe only while the transport has no
// registered peers (no writer goroutine exists yet to race with).
func setDialFn(t *TCPTransport, fn func(network, addr string, timeout time.Duration) (net.Conn, error)) {
	t.mu.Lock()
	t.dialFn = fn
	t.mu.Unlock()
}

// TestHeartbeatSurvivesDeadPeer is the head-of-line regression test:
// one unreachable peer whose dials burn the full dial timeout must not
// starve the heartbeats of healthy peers. The pre-coalescing transport
// dialed dead peers serially on the heartbeat goroutine, so a single
// dead peer (200ms per tick against a 20ms period) made live peers
// flap dead too.
func TestHeartbeatSurvivesDeadPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test")
	}
	a, err := NewTCPTransport(TCPConfig{
		ID: 0, OwnAddr: "127.0.0.1:0",
		HeartbeatEvery: 20 * time.Millisecond,
		FailAfter:      150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport(TCPConfig{
		ID: 1, OwnAddr: "127.0.0.1:0",
		HeartbeatEvery: 20 * time.Millisecond,
		FailAfter:      150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Peer 2 is dead: every dial to it hangs for the full timeout and
	// fails, the worst case for head-of-line blocking.
	const deadAddr = "192.0.2.1:9"
	setDialFn(a, func(network, addr string, timeout time.Duration) (net.Conn, error) {
		if addr == deadAddr {
			time.Sleep(timeout)
			return nil, errors.New("peer down")
		}
		return net.DialTimeout(network, addr, timeout)
	})
	a.SetPeers(map[proc.ID]string{1: b.Addr(), 2: deadAddr})
	b.SetPeers(map[proc.ID]string{0: a.Addr()})

	waitFor(t, "b hears a's heartbeats", func() bool { return b.Reach().Contains(0) })
	waitFor(t, "a hears b's heartbeats", func() bool { return a.Reach().Contains(1) })

	// The dead peer keeps eating dial timeouts the whole while; the live
	// link must never flap.
	until := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(until) {
		if !b.Reach().Contains(0) {
			t.Fatal("live peer 0 flapped dead while peer 2 was unreachable")
		}
		if !a.Reach().Contains(1) {
			t.Fatal("live peer 1 flapped dead while peer 2 was unreachable")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if a.Reach().Contains(2) {
		t.Error("dead peer 2 reported reachable")
	}
}

// TestTCPSendSteadyStateAllocs pins the steady-state allocation cost of
// the live wire path end to end: Send's pooled copy, the writer's
// reused flush buffer, and the receiver's arena carving together must
// average well under one heap allocation per frame once warm.
func TestTCPSendSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test")
	}
	a, err := NewTCPTransport(TCPConfig{
		ID: 0, OwnAddr: "127.0.0.1:0", HeartbeatEvery: time.Hour,
		Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport(TCPConfig{
		ID: 1, OwnAddr: "127.0.0.1:0", HeartbeatEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeers(map[proc.ID]string{1: b.Addr()})

	payload := bytes.Repeat([]byte{0xab}, 64)
	// Warm up: dial the connection, grow the writer's flush buffer, and
	// confirm frames flow.
	for i := 0; i < 200; i++ {
		_ = a.Send(1, payload)
	}
	waitFor(t, "warmup frames delivered", func() bool {
		return a.m.framesOut.Value() >= 200
	})
	// Top up the buffer pool so the measurement never depends on how
	// quickly the writer goroutine recycles.
	for len(a.bufPool) < 256 {
		a.bufPool <- make([]byte, 0, 256)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = a.Send(1, payload)
	})
	if allocs >= 1 {
		t.Errorf("steady-state Send averaged %.2f allocs, want < 1", allocs)
	}
}

// TestTCPDropCountersExported drives both overflow paths — a send
// queue backed up behind a hung dial, and an inbound frames channel
// nobody drains — and checks the drops land in Prometheus-visible
// counters instead of vanishing.
func TestTCPDropCountersExported(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test")
	}
	reg := metrics.NewRegistry()

	// Outbound: the writer's one coalesced batch is bounded by
	// flushBufCap, then it hangs forever in dial; everything past the
	// batch plus the queue depth must be dropped and counted.
	a, err := NewTCPTransport(TCPConfig{
		ID: 0, OwnAddr: "127.0.0.1:0", HeartbeatEvery: time.Hour, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	setDialFn(a, func(network, addr string, timeout time.Duration) (net.Conn, error) {
		<-a.stop
		return nil, errors.New("peer down")
	})
	a.SetPeers(map[proc.ID]string{1: "192.0.2.1:9"})
	body := make([]byte, 1024)
	total := flushBufCap/len(body) + sendQueueDepth + 128
	for i := 0; i < total; i++ {
		_ = a.Send(1, body)
	}
	if got := a.m.sendqDrops.Value(); got == 0 {
		t.Error("send-queue overflow produced no sendq drops")
	}

	// Inbound: flood past the frames channel depth without draining.
	b, err := NewTCPTransport(TCPConfig{
		ID: 1, OwnAddr: "127.0.0.1:0", HeartbeatEvery: time.Hour, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame := rawWireFrame(2, []byte("overflow me"))
	var burst []byte
	for i := 0; i < memChanDepth+256; i++ {
		burst = append(burst, frame...)
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "inbox overflow counted", func() bool {
		return b.m.inboxDrops.Value() > 0
	})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"gcs_tcp_sendq_drops_total",
		"gcs_tcp_inbox_drops_total",
		"gcs_tcp_unreachable_drops_total",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metric %s missing from Prometheus exposition", name)
		}
	}
}

// rawWireFrame encodes one frame in the transport framing.
func rawWireFrame(from proc.ID, body []byte) []byte {
	return appendWireFrame(nil, from, body)
}

// BenchmarkTCPRoundTrip measures one full wire round trip: Send →
// writer coalesce → syscall → buffered read → arena → frames channel,
// and the same back again.
func BenchmarkTCPRoundTrip(b *testing.B) {
	ta, err := NewTCPTransport(TCPConfig{
		ID: 0, OwnAddr: "127.0.0.1:0", HeartbeatEvery: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewTCPTransport(TCPConfig{
		ID: 1, OwnAddr: "127.0.0.1:0", HeartbeatEvery: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	ta.SetPeers(map[proc.ID]string{1: tb.Addr()})
	tb.SetPeers(map[proc.ID]string{0: ta.Addr()})

	payload := bytes.Repeat([]byte{0x5a}, 64)
	roundTrip := func() error {
		_ = ta.Send(1, payload)
		select {
		case <-tb.Frames():
		case <-time.After(5 * time.Second):
			return fmt.Errorf("a→b frame lost")
		}
		_ = tb.Send(0, payload)
		select {
		case <-ta.Frames():
		case <-time.After(5 * time.Second):
			return fmt.Errorf("b→a frame lost")
		}
		return nil
	}
	// Warm up both directions: dials and flush-buffer growth happen
	// here, not on the clock.
	if err := roundTrip(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := roundTrip(); err != nil {
			b.Fatal(err)
		}
	}
}
