package gcs_test

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"dynvote/internal/gcs"
	"dynvote/internal/metrics"
	"dynvote/internal/proc"
	"dynvote/internal/ykd"
)

// rawFrame encodes one wire frame in the TCPTransport framing: 4-byte
// length, 4-byte sender, body.
func rawFrame(from proc.ID, body []byte) []byte {
	buf := make([]byte, 8+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	binary.BigEndian.PutUint32(buf[4:], uint32(from))
	copy(buf[8:], body)
	return buf
}

// TestTCPPartialFrameDropRecovers: a connection that dies mid-frame
// (header promised more bytes than ever arrive) must not wedge the
// receiver or corrupt its counters; traffic on fresh connections keeps
// flowing.
func TestTCPPartialFrameDropRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test")
	}
	reg := metrics.NewRegistry()
	tr, err := gcs.NewTCPTransport(gcs.TCPConfig{
		ID: 0, OwnAddr: "127.0.0.1:0",
		// Long heartbeat: nothing else generates traffic during the test.
		HeartbeatEvery: time.Hour,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// A connection that dies mid-frame: full header claiming a 64-byte
	// body, then only 10 bytes, then a hard close.
	c1, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	partial := rawFrame(1, make([]byte, 64))
	if _, err := c1.Write(partial[:8+10]); err != nil {
		t.Fatal(err)
	}
	_ = c1.Close()

	// And one that dies mid-header.
	c2, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write(partial[:3]); err != nil {
		t.Fatal(err)
	}
	_ = c2.Close()

	// A healthy connection afterwards still delivers, and the frame
	// counters reflect only the complete frame.
	c3, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	body := []byte("still alive")
	if _, err := c3.Write(rawFrame(2, body)); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-tr.Frames():
		if f.From != 2 || string(f.Data) != "still alive" {
			t.Errorf("frame = %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("complete frame never delivered after partial-frame drops")
	}
	s := reg.Snapshot()
	if got := s.Counters["gcs_tcp_frames_in_total"]; got != 1 {
		t.Errorf("frames_in = %d, want 1 (partial frames must not count)", got)
	}
	if got := s.Counters["gcs_tcp_bytes_in_total"]; got != int64(8+len(body)) {
		t.Errorf("bytes_in = %d, want %d", got, 8+len(body))
	}
}

// TestTCPOversizeFrameClosesOnlyThatConn: a corrupt length prefix
// kills its connection, not the listener.
func TestTCPOversizeFrameClosesOnlyThatConn(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test")
	}
	tr, err := gcs.NewTCPTransport(gcs.TCPConfig{
		ID: 0, OwnAddr: "127.0.0.1:0", HeartbeatEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	bad, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	corrupt := make([]byte, 8)
	binary.BigEndian.PutUint32(corrupt, 1<<23) // over the 1<<22 cap
	binary.BigEndian.PutUint32(corrupt[4:], 1)
	if _, err := bad.Write(corrupt); err != nil {
		t.Fatal(err)
	}

	good, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := good.Write(rawFrame(2, []byte("ok"))); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-tr.Frames():
		if string(f.Data) != "ok" {
			t.Errorf("frame = %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("listener dead after oversize frame")
	}
}

// TestTCPReconnectAfterPeerRestart: the sender's cached connection goes
// stale when the peer dies; writes eventually error, the connection is
// dropped, and the next send re-dials the restarted peer on the same
// address. Counters (dials) reflect the reconnect.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test")
	}
	reg := metrics.NewRegistry()
	a, err := gcs.NewTCPTransport(gcs.TCPConfig{
		ID: 0, OwnAddr: "127.0.0.1:0", HeartbeatEvery: time.Hour, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	b1, err := gcs.NewTCPTransport(gcs.TCPConfig{
		ID: 1, OwnAddr: "127.0.0.1:0", HeartbeatEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	bAddr := b1.Addr()
	a.SetPeers(map[proc.ID]string{1: bAddr})

	if err := a.Send(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-b1.Frames():
		if string(f.Data) != "first" {
			t.Fatalf("b1 got %q", f.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first frame never arrived")
	}

	// Peer restarts on the same address. Go listeners set SO_REUSEADDR,
	// so the rebind succeeds immediately.
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := gcs.NewTCPTransport(gcs.TCPConfig{
		ID: 1, OwnAddr: bAddr, HeartbeatEvery: time.Hour,
	})
	if err != nil {
		t.Fatalf("rebind %s: %v", bAddr, err)
	}
	defer b2.Close()

	// A's cached connection is now dead. Keep sending: the first
	// write(s) into the dead socket may succeed against the kernel
	// buffer, then error, dropping the connection; the send after that
	// re-dials b2.
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for !recovered && time.Now().Before(deadline) {
		_ = a.Send(1, []byte("retry"))
		select {
		case f := <-b2.Frames():
			if string(f.Data) == "retry" {
				recovered = true
			}
		case <-time.After(20 * time.Millisecond):
		}
	}
	if !recovered {
		t.Fatal("sender never reconnected to the restarted peer")
	}
	if got := reg.Snapshot().Counters["gcs_tcp_dials_total"]; got < 2 {
		t.Errorf("dials = %d, want >= 2 (initial + reconnect)", got)
	}
}

// TestTCPNodeSurvivesMidFrameDrop drives the full node stack: a
// two-node cluster converges, garbage and partial frames are injected
// into node 0's transport mid-run, a peer restarts, and the cluster
// converges again — the node never wedges and its wire counters stay
// monotonic.
func TestTCPNodeSurvivesMidFrameDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP test")
	}
	reg := metrics.NewRegistry()
	const n = 2
	transports := make([]*gcs.TCPTransport, n)
	addrs := make(map[proc.ID]string, n)
	for i := 0; i < n; i++ {
		tr, err := gcs.NewTCPTransport(gcs.TCPConfig{
			ID: proc.ID(i), OwnAddr: "127.0.0.1:0",
			HeartbeatEvery: 20 * time.Millisecond,
			Metrics:        reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		addrs[proc.ID(i)] = tr.Addr()
	}
	for _, tr := range transports {
		tr.SetPeers(addrs)
	}
	nodes := make([]*gcs.Node, n)
	for i := 0; i < n; i++ {
		node, err := gcs.NewNode(gcs.Config{
			ID: proc.ID(i), N: n, Transport: transports[i],
			Algorithm: ykd.Factory(ykd.VariantYKD),
		})
		if err != nil {
			t.Fatal(err)
		}
		node.Run()
		nodes[i] = node
		defer node.Stop()
	}
	eventually(t, "two-node tcp cluster converges", func() bool {
		return nodes[0].InPrimary() && nodes[1].InPrimary()
	})

	// Mid-run, hit node 0's listener with a mid-frame drop claiming to
	// be from node 1, plus junk claiming an unknown sender.
	for _, from := range []proc.ID{1, 9} {
		c, err := net.Dial("tcp", transports[0].Addr())
		if err != nil {
			t.Fatal(err)
		}
		frame := rawFrame(from, make([]byte, 128))
		if _, err := c.Write(frame[:8+17]); err != nil {
			t.Fatal(err)
		}
		_ = c.Close()
	}

	before := reg.Snapshot().Counters["gcs_tcp_frames_in_total"]
	// The cluster keeps exchanging heartbeats and stays primary.
	time.Sleep(200 * time.Millisecond)
	if !nodes[0].InPrimary() || !nodes[1].InPrimary() {
		t.Fatal("cluster lost primary after mid-frame drops")
	}
	after := reg.Snapshot().Counters["gcs_tcp_frames_in_total"]
	if after < before {
		t.Errorf("frames_in went backwards: %d -> %d", before, after)
	}
	if after == before {
		t.Error("no frames flowed after the injected drops — transport wedged?")
	}
}
