package gcs

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"dynvote/internal/proc"
)

// TimelineEvent is one structured entry in a cluster's failover
// timeline: which node, what happened, when.
type TimelineEvent struct {
	At      time.Time
	Node    proc.ID
	Kind    EventKind
	ViewID  int64
	Members proc.Set
	Primary bool
}

// String renders the event for human-readable timelines.
func (e TimelineEvent) String() string {
	switch e.Kind {
	case EventViewProposed:
		return fmt.Sprintf("n%d proposes view %d %v", e.Node, e.ViewID, e.Members)
	case EventView:
		return fmt.Sprintf("n%d installs view %d %v", e.Node, e.ViewID, e.Members)
	case EventPrimary:
		if e.Primary {
			return fmt.Sprintf("n%d regains primary", e.Node)
		}
		return fmt.Sprintf("n%d loses primary", e.Node)
	default:
		return fmt.Sprintf("n%d event %d", e.Node, e.Kind)
	}
}

// Timeline records node events with wall-clock timestamps across a
// cluster, so a harness can inject a fault and measure concrete
// time-to-recovery — the live analogue of the thesis's availability
// metric (time spent outside a primary component). Hook one handler
// per node; recording is concurrency-safe and cheap enough for the
// node loop. A nil Timeline is a no-op.
type Timeline struct {
	mu     sync.Mutex
	events []TimelineEvent
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Hook returns an event handler recording node id's view and primary
// transitions (application payloads are load, not membership — they
// are skipped). Chain it from a Config.OnEvent callback.
func (tl *Timeline) Hook(id proc.ID) func(Event) {
	return func(ev Event) { tl.Record(id, ev) }
}

// Record appends one event, stamping the current time.
func (tl *Timeline) Record(id proc.ID, ev Event) {
	if tl == nil || ev.Kind == EventApp {
		return
	}
	te := TimelineEvent{
		At:      time.Now(),
		Node:    id,
		Kind:    ev.Kind,
		ViewID:  ev.View.ID,
		Members: ev.View.Members,
		Primary: ev.Primary,
	}
	tl.mu.Lock()
	tl.events = append(tl.events, te)
	tl.mu.Unlock()
}

// Events returns a copy of the recorded timeline in arrival order.
func (tl *Timeline) Events() []TimelineEvent {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := make([]TimelineEvent, len(tl.events))
	copy(out, tl.events)
	return out
}

// Len returns the number of recorded events.
func (tl *Timeline) Len() int {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.events)
}

// Recovery measures primary-component failover after a fault injected
// at the given time: lost is when the first node dropped out of the
// primary at or after that moment, regained when the first node was
// back in a primary component after the loss. ok is false until both
// transitions have been observed. The durations are measured from the
// injection time, so `regained` is the harness-visible
// time-to-primary-recovery.
func (tl *Timeline) Recovery(injectedAt time.Time) (lost, regained time.Duration, ok bool) {
	if tl == nil {
		return 0, 0, false
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var lostAt time.Time
	for _, e := range tl.events {
		if e.Kind != EventPrimary || e.At.Before(injectedAt) {
			continue
		}
		if lostAt.IsZero() {
			if !e.Primary {
				lostAt = e.At
			}
			continue
		}
		if e.Primary {
			return lostAt.Sub(injectedAt), e.At.Sub(injectedAt), true
		}
	}
	return 0, 0, false
}

// CountKind returns how many events of the given kind were recorded.
func (tl *Timeline) CountKind(kind EventKind) int {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	n := 0
	for _, e := range tl.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// String renders the whole timeline, one event per line, with
// millisecond offsets from the first event.
func (tl *Timeline) String() string {
	events := tl.Events()
	if len(events) == 0 {
		return "(empty timeline)"
	}
	t0 := events[0].At
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%8.1fms  %s\n", float64(e.At.Sub(t0))/float64(time.Millisecond), e)
	}
	return b.String()
}
