// Package gcs is a live group communication substrate — the
// repository's stand-in for Transis (thesis Chapter 2). It provides
// the two services every primary component algorithm needs: reliable
// FIFO broadcast within a view, and view change notifications. The
// same core.Algorithm implementations that run in the simulator run
// unchanged on a gcs.Node, over an in-memory network or over TCP.
//
// Membership is deliberately simple (the thesis delegates it to
// Transis): within each connected component, the lexically smallest
// reachable process leads, assigning monotonically increasing view
// identifiers and announcing the view to its members. Messages are
// tagged with the view they were sent in and discarded by receivers in
// any other view — exactly the view-synchronous drop semantics the
// algorithms are designed for (an interrupted attempt becomes an
// ambiguous session; that is the phenomenon the thesis studies).
package gcs

import (
	"fmt"
	"sync"

	"dynvote/internal/proc"
)

// Frame is one point-to-point datagram between nodes.
type Frame struct {
	From proc.ID
	Data []byte
}

// Transport moves frames between nodes and reports reachability. The
// reachability channel is the failure detector: it carries the current
// set of reachable processes (including the receiver itself) whenever
// connectivity changes.
type Transport interface {
	// Send delivers a frame to one peer. Sends to unreachable peers
	// are silently dropped, like UDP into a dead link.
	Send(to proc.ID, data []byte) error
	// Frames returns the incoming frame stream.
	Frames() <-chan Frame
	// Reachability returns the failure-detector stream. It carries
	// the latest reachable set; intermediate values may be skipped.
	Reachability() <-chan proc.Set
	// Close releases the transport's resources.
	Close() error
}

// memChanDepth bounds per-node inbox buffering. Overflow drops frames
// (with a counter) rather than deadlocking two nodes sending to each
// other; the algorithms tolerate loss by design.
const memChanDepth = 4096

// MemNetwork is an in-process network of MemTransports with
// injectable partitions — the live analogue of the simulator's
// netsim.Topology, with a perfect failure detector.
type MemNetwork struct {
	mu      sync.Mutex
	nodes   map[proc.ID]*MemTransport
	reach   map[proc.ID]proc.Set
	dropped int
}

// NewMemNetwork creates a fully connected network over processes
// 0..n-1.
func NewMemNetwork(n int) *MemNetwork {
	mn := &MemNetwork{
		nodes: make(map[proc.ID]*MemTransport, n),
		reach: make(map[proc.ID]proc.Set, n),
	}
	all := proc.Universe(n)
	for i := 0; i < n; i++ {
		id := proc.ID(i)
		mn.nodes[id] = &MemTransport{
			id:     id,
			net:    mn,
			frames: make(chan Frame, memChanDepth),
			fd:     make(chan proc.Set, 1),
		}
		mn.reach[id] = all
	}
	return mn
}

// Transport returns process id's endpoint.
func (mn *MemNetwork) Transport(id proc.ID) *MemTransport {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	return mn.nodes[id]
}

// SetComponents installs a new connectivity state: the given sets must
// partition the process space. Every node whose reachable set changed
// gets a failure-detector notification.
func (mn *MemNetwork) SetComponents(comps ...proc.Set) error {
	mn.mu.Lock()
	defer mn.mu.Unlock()

	newReach := make(map[proc.ID]proc.Set, len(mn.nodes))
	for _, c := range comps {
		c := c
		c.ForEach(func(id proc.ID) { newReach[id] = c })
	}
	if len(newReach) != len(mn.nodes) {
		return fmt.Errorf("gcs: components cover %d of %d processes", len(newReach), len(mn.nodes))
	}

	for id, c := range newReach {
		if mn.reach[id].Equal(c) {
			continue
		}
		mn.reach[id] = c
		mn.nodes[id].notifyFD(c)
	}
	return nil
}

// Dropped reports frames lost to inbox overflow, for tests.
func (mn *MemNetwork) Dropped() int {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	return mn.dropped
}

func (mn *MemNetwork) send(from, to proc.ID, data []byte) {
	mn.mu.Lock()
	reachable := mn.reach[from].Contains(to)
	dst := mn.nodes[to]
	mn.mu.Unlock()
	if !reachable || dst == nil {
		return
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	select {
	case dst.frames <- Frame{From: from, Data: buf}:
	default:
		mn.mu.Lock()
		mn.dropped++
		mn.mu.Unlock()
	}
}

// MemTransport is one node's endpoint on a MemNetwork.
type MemTransport struct {
	id     proc.ID
	net    *MemNetwork
	frames chan Frame
	fd     chan proc.Set

	closeOnce sync.Once
}

var _ Transport = (*MemTransport)(nil)

// Send implements Transport.
func (t *MemTransport) Send(to proc.ID, data []byte) error {
	t.net.send(t.id, to, data)
	return nil
}

// Frames implements Transport.
func (t *MemTransport) Frames() <-chan Frame { return t.frames }

// Reachability implements Transport.
func (t *MemTransport) Reachability() <-chan proc.Set { return t.fd }

// Close implements Transport. The network keeps routing to other
// nodes; this endpoint simply stops being readable.
func (t *MemTransport) Close() error {
	t.closeOnce.Do(func() {})
	return nil
}

// notifyFD publishes the latest reachable set, replacing any unread
// previous value (latest-wins semantics).
func (t *MemTransport) notifyFD(reach proc.Set) {
	for {
		select {
		case t.fd <- reach:
			return
		default:
			select {
			case <-t.fd: // discard the stale unread value
			default:
			}
		}
	}
}
