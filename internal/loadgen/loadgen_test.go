package loadgen

import (
	"testing"
	"time"

	"dynvote/internal/gcs"
	"dynvote/internal/metrics"
	"dynvote/internal/proc"
	"dynvote/internal/register"
	"dynvote/internal/ykd"
)

func eventually(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startCluster runs n replicas on a MemNetwork, each behind a Server.
func startCluster(t testing.TB, n int, tl *gcs.Timeline) (*gcs.MemNetwork, []*register.Store, []string) {
	t.Helper()
	net := gcs.NewMemNetwork(n)
	stores := make([]*register.Store, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		id := proc.ID(i)
		st, err := register.Open(register.Config{
			ID: id, N: n,
			Transport: net.Transport(id),
			Algorithm: ykd.Factory(ykd.VariantYKD),
			OnEvent:   tl.Hook(id),
		})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		srv, err := NewServer(st, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = srv.Addr()
		t.Cleanup(func() { _ = srv.Close(); st.Close() })
	}
	eventually(t, "cluster converges", func() bool {
		for _, st := range stores {
			if !st.InPrimary() {
				return false
			}
		}
		return true
	})
	return net, stores, addrs
}

func TestProtocolRoundTrip(t *testing.T) {
	_, stores, addrs := startCluster(t, 3, nil)
	cl, err := DialClient(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, found, err := cl.Get("missing"); err != nil || found {
		t.Fatalf("Get missing = (found=%v, err=%v)", found, err)
	}
	if notPrimary, err := cl.Set("k", "v1"); err != nil || notPrimary {
		t.Fatalf("Set = (notPrimary=%v, err=%v)", notPrimary, err)
	}
	eventually(t, "write replicates", func() bool {
		v, ok, _ := stores[2].Get("k")
		return ok && v == "v1"
	})
	if v, found, err := cl.Get("k"); err != nil || !found || v != "v1" {
		t.Fatalf("Get k = (%q, %v, %v)", v, found, err)
	}
}

func TestRunMeasuresThroughputAndLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run")
	}
	_, _, addrs := startCluster(t, 3, nil)
	reg := metrics.NewRegistry()
	res, err := Run(Config{
		Addrs:    addrs,
		Conns:    3,
		Duration: 600 * time.Millisecond,
		Keys:     16,
		Seed:     1,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.OK == 0 {
		t.Fatalf("no successful requests: %+v", res)
	}
	if res.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", res.ThroughputRPS)
	}
	l := res.Latency
	if l.P50Ms > l.P95Ms || l.P95Ms > l.P99Ms {
		t.Errorf("quantiles not monotone: %+v", l)
	}
	if l.MinMs <= 0 || l.MaxMs < l.MinMs {
		t.Errorf("extrema inconsistent: %+v", l)
	}
	s := reg.Snapshot()
	if s.Counters["loadgen_requests_total"] != res.Requests {
		t.Errorf("registry requests %d != result %d",
			s.Counters["loadgen_requests_total"], res.Requests)
	}
	if _, ok := s.Histograms["loadgen_request_seconds"]; !ok {
		t.Error("latency histogram missing from registry")
	}
}

func TestRunPacedHoldsTargetRate(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run")
	}
	_, _, addrs := startCluster(t, 3, nil)
	const rate = 200.0
	res, err := Run(Config{
		Addrs:    addrs,
		Conns:    2,
		Rate:     rate,
		Duration: 500 * time.Millisecond,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Closed-loop pacing can run under the target (never over by more
	// than scheduling slop): assert a sane band, not an exact figure.
	if res.ThroughputRPS > rate*1.5 {
		t.Errorf("throughput %.0f far above %v target", res.ThroughputRPS, rate)
	}
	if res.Requests == 0 {
		t.Error("paced run issued no requests")
	}
}

func TestRunWritesRefusedOutsidePrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run")
	}
	net, stores, addrs := startCluster(t, 3, nil)
	// Isolate node 2: its replica leaves the primary component, so
	// clients pinned to its server see NotPrimary on every write.
	if err := net.SetComponents(proc.NewSet(0, 1), proc.NewSet(2)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "minority leaves primary", func() bool { return !stores[2].InPrimary() })
	res, err := Run(Config{
		Addrs:         []string{addrs[2]},
		Conns:         1,
		Duration:      300 * time.Millisecond,
		WriteFraction: 1,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NotPrimary == 0 || res.OK != 0 {
		t.Errorf("minority writes: %+v (want all NotPrimary)", res)
	}
}

func TestRunNoAddrs(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run with no addresses must fail")
	}
}

func TestServerBindFailure(t *testing.T) {
	_, _, addrs := startCluster(t, 1, nil)
	// Second bind on the same concrete port must fail loudly.
	if srv, err := NewServer(nil, addrs[0]); err == nil {
		_ = srv.Close()
		t.Fatal("bind on an occupied port should fail")
	}
}
