package loadgen

import (
	"fmt"
	"testing"
	"time"

	"dynvote/internal/proc"
)

// TestPipelinedClientOrdering drives the windowed client API directly:
// a batch of Sets flushed in one syscall, then a batch of Gets, with
// every completion arriving in issue order and carrying the sequence
// number, value and write flag of its own request.
func TestPipelinedClientOrdering(t *testing.T) {
	_, stores, addrs := startCluster(t, 3, nil)
	cl, err := DialClient(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const window = 16
	for i := 0; i < window; i++ {
		if err := cl.StartSet(fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.InFlight(); got != window {
		t.Fatalf("InFlight = %d, want %d", got, window)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < window; i++ {
		comp, err := cl.Next()
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if comp.Status != statusOK || !comp.Write {
			t.Fatalf("set %d: status=%d write=%v", i, comp.Status, comp.Write)
		}
	}
	if got := cl.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}

	eventually(t, "writes applied locally", func() bool {
		v, ok, _ := stores[0].Get(fmt.Sprintf("k%02d", window-1))
		return ok && v == fmt.Sprintf("v%02d", window-1)
	})

	for i := 0; i < window; i++ {
		if err := cl.StartGet(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Next flushes on demand — no explicit Flush, same wire result.
	for i := 0; i < window; i++ {
		comp, err := cl.Next()
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if comp.Status != statusOK || comp.Write {
			t.Fatalf("get %d: status=%d write=%v", i, comp.Status, comp.Write)
		}
		if want := fmt.Sprintf("v%02d", i); string(comp.Value) != want {
			t.Fatalf("get %d = %q, want %q (responses out of order?)", i, comp.Value, want)
		}
	}
}

// TestPipelinedClientSeqMismatch: a response whose sequence number does
// not match the head of the in-flight queue must surface as an error,
// not as a silently misattributed completion.
func TestPipelinedClientSeqMismatch(t *testing.T) {
	_, _, addrs := startCluster(t, 1, nil)
	cl, err := DialClient(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.StartGet("k"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the client's expectation: pretend the in-flight request
	// carried a different sequence number.
	cl.q[cl.head].seq += 7
	if _, err := cl.Next(); err == nil {
		t.Fatal("sequence mismatch not detected")
	}
}

// TestPipelinedRunSurvivesPartition runs the full harness with a
// pipeline window across a mid-run partition and heal. The sequence
// check inside Client.Next makes any lost, duplicated or reordered
// response a protocol error, so asserting zero errors plus the
// accounting identity (every issued request counted exactly once)
// verifies pipelining integrity across the membership churn.
func TestPipelinedRunSurvivesPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run")
	}
	net, _, addrs := startCluster(t, 3, nil)
	go func() {
		time.Sleep(300 * time.Millisecond)
		_ = net.SetComponents(proc.NewSet(0, 1), proc.NewSet(2))
		time.Sleep(300 * time.Millisecond)
		_ = net.SetComponents(proc.NewSet(0, 1, 2))
	}()
	res, err := Run(Config{
		Addrs:    addrs,
		Conns:    3,
		Pipeline: 8,
		Duration: 1200 * time.Millisecond,
		Keys:     16,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK == 0 {
		t.Fatalf("no successful requests: %+v", res)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0 — a pipelined response was lost, duplicated or a connection died", res.Errors)
	}
	if sum := res.OK + res.NotFound + res.NotPrimary + res.Errors; sum != res.Requests {
		t.Errorf("accounting identity broken: %d issued != %d accounted", res.Requests, sum)
	}
}

// BenchmarkLoadgenServer measures the server's per-request cost with a
// pipelined client: window of 16, one flush per window, responses
// coalesced by the server's flush-on-idle policy.
func BenchmarkLoadgenServer(b *testing.B) {
	_, _, addrs := startCluster(b, 1, nil)
	cl, err := DialClient(addrs[0])
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Set("bench", "v"); err != nil {
		b.Fatal(err)
	}

	const window = 16
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := window
		if rest := b.N - done; rest < n {
			n = rest
		}
		for i := 0; i < n; i++ {
			var err error
			if i%2 == 0 {
				err = cl.StartGet("bench")
			} else {
				err = cl.StartSet("bench", "v")
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if err := cl.Flush(); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := cl.Next(); err != nil {
				b.Fatal(err)
			}
		}
		done += n
	}
}
