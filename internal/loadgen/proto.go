// Package loadgen is the closed-loop load harness for the live
// replicated-store path: a tiny TCP request/response protocol over
// register.Store, a concurrent client driver that holds a target
// aggregate rate, latency percentile accounting through
// internal/metrics, and a machine-readable run report. Together with
// the instrumented gcs transport and the failover timeline it turns
// "the algorithms also run over TCP" into measured throughput, tail
// latency and time-to-primary-recovery numbers — the live analogue of
// the thesis's availability metric.
package loadgen

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"dynvote/internal/wire"
)

// Request operations.
const (
	opGet byte = iota + 1
	opSet
)

// Response statuses.
const (
	statusOK byte = iota
	statusNotFound
	statusNotPrimary
	statusError
)

// maxFrame bounds request/response bodies; the store holds short
// strings, so anything larger is a corrupt stream.
const maxFrame = 1 << 20

// writeFrame sends one length-prefixed message.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("loadgen: frame too large (%d bytes)", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed message, reusing buf when it is
// large enough.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return nil, fmt.Errorf("loadgen: frame length %d exceeds cap", size)
	}
	if uint32(cap(buf)) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// encodeGet builds a Get request body.
func encodeGet(w *wire.Writer, key string) {
	w.Reset()
	w.Byte(opGet)
	w.RawBytes([]byte(key))
}

// encodeSet builds a Set request body.
func encodeSet(w *wire.Writer, key, value string) {
	w.Reset()
	w.Byte(opSet)
	w.RawBytes([]byte(key))
	w.RawBytes([]byte(value))
}

// Client is one synchronous connection to a Server — the closed-loop
// unit: one outstanding request at a time.
type Client struct {
	c    net.Conn
	w    wire.Writer
	rbuf []byte
}

// DialClient connects to a server.
func DialClient(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// roundTrip sends the encoded request and decodes status + value.
func (c *Client) roundTrip() (status byte, value string, err error) {
	if err := writeFrame(c.c, c.w.Bytes()); err != nil {
		return statusError, "", err
	}
	body, err := readFrame(c.c, c.rbuf)
	if err != nil {
		return statusError, "", err
	}
	c.rbuf = body[:0]
	r := wire.NewReader(body)
	status = r.Byte()
	value = string(r.RawBytes())
	if r.Err() != nil {
		return statusError, "", r.Err()
	}
	return status, value, nil
}

// Get fetches a key. found is false when the key does not exist.
func (c *Client) Get(key string) (value string, found bool, err error) {
	encodeGet(&c.w, key)
	status, v, err := c.roundTrip()
	if err != nil {
		return "", false, err
	}
	return v, status == statusOK, nil
}

// Set writes key=value. notPrimary is true when the replica refused
// the write because it is outside the primary component.
func (c *Client) Set(key, value string) (notPrimary bool, err error) {
	encodeSet(&c.w, key, value)
	status, _, err := c.roundTrip()
	if err != nil {
		return false, err
	}
	switch status {
	case statusOK:
		return false, nil
	case statusNotPrimary:
		return true, nil
	default:
		return false, fmt.Errorf("loadgen: set failed with status %d", status)
	}
}
