// Package loadgen is the closed-loop load harness for the live
// replicated-store path: a tiny TCP request/response protocol over
// register.Store, a concurrent client driver that holds a target
// aggregate rate, latency percentile accounting through
// internal/metrics, and a machine-readable run report. Together with
// the instrumented gcs transport and the failover timeline it turns
// "the algorithms also run over TCP" into measured throughput, tail
// latency and time-to-primary-recovery numbers — the live analogue of
// the thesis's availability metric.
//
// Every request and response carries a client-assigned sequence
// number, so clients can keep a window of requests in flight
// (pipelining) and still verify that no response was lost, duplicated
// or reordered: the server answers strictly in request order over the
// FIFO connection, and the client checks each response's sequence
// against the head of its in-flight queue.
package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"time"

	"dynvote/internal/wire"
)

// Request operations.
const (
	opGet byte = iota + 1
	opSet
)

// Response statuses.
const (
	statusOK byte = iota
	statusNotFound
	statusNotPrimary
	statusError
)

// maxFrame bounds request/response bodies; the store holds short
// strings, so anything larger is a corrupt stream.
const maxFrame = 1 << 20

// writeFrame, readFrame and frameBuffered delegate to the shared
// length-prefixed framing in internal/wire.
func writeFrame(w io.Writer, body []byte) error {
	return wire.WriteFrame(w, body, maxFrame)
}

func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	return wire.ReadFrame(r, buf, maxFrame)
}

// frameBuffered is the server's flush boundary: as long as whole
// requests are buffered, keep answering into the write buffer; flush
// only when the next read would block.
func frameBuffered(br *bufio.Reader) bool {
	return wire.FrameBuffered(br, maxFrame)
}

// encodeGet builds a Get request body.
func encodeGet(w *wire.Writer, seq uint64, key string) {
	w.Reset()
	w.Uvarint(seq)
	w.Byte(opGet)
	w.RawBytes([]byte(key))
}

// encodeSet builds a Set request body.
func encodeSet(w *wire.Writer, seq uint64, key, value string) {
	w.Reset()
	w.Uvarint(seq)
	w.Byte(opSet)
	w.RawBytes([]byte(key))
	w.RawBytes([]byte(value))
}

// pending is one in-flight request awaiting its response.
type pending struct {
	seq   uint64
	start time.Time
	write bool
}

// Completion is one answered request.
type Completion struct {
	Seq    uint64
	Status byte
	// Value aliases the client's read buffer — valid only until the
	// next Next/Get/Set call.
	Value []byte
	// Start is when the request was issued; Write whether it was a
	// Set. Both echo what the caller passed at issue time, so latency
	// and op accounting need no side table.
	Start time.Time
	Write bool
}

// Client is one connection to a Server. It supports both synchronous
// use (Get/Set: one outstanding request) and pipelined use
// (StartGet/StartSet queue requests into a buffered writer, Flush
// pushes them with one syscall, Next collects responses in order).
type Client struct {
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	w    wire.Writer
	rbuf []byte

	nextSeq uint64
	q       []pending // in-flight FIFO: q[head:]
	head    int
}

// DialClient connects to a server.
func DialClient(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		c:  c,
		br: bufio.NewReaderSize(c, 16<<10),
		bw: bufio.NewWriterSize(c, 16<<10),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// InFlight returns the number of requests issued but not yet answered.
func (c *Client) InFlight() int { return len(c.q) - c.head }

// push records one issued request.
func (c *Client) push(write bool) {
	if c.head == len(c.q) {
		c.q = c.q[:0]
		c.head = 0
	}
	c.q = append(c.q, pending{seq: c.nextSeq, start: time.Now(), write: write})
	c.nextSeq++
}

// StartGet queues a Get without waiting for the response. The request
// sits in the client's write buffer until Flush (or buffer overflow)
// pushes it to the wire.
func (c *Client) StartGet(key string) error {
	encodeGet(&c.w, c.nextSeq, key)
	if err := writeFrame(c.bw, c.w.Bytes()); err != nil {
		return err
	}
	c.push(false)
	return nil
}

// StartSet queues a Set without waiting for the response.
func (c *Client) StartSet(key, value string) error {
	encodeSet(&c.w, c.nextSeq, key, value)
	if err := writeFrame(c.bw, c.w.Bytes()); err != nil {
		return err
	}
	c.push(true)
	return nil
}

// Flush pushes every queued request to the wire in one syscall.
func (c *Client) Flush() error { return c.bw.Flush() }

// Next returns the next completion, flushing pending requests first.
// Responses arrive in issue order; a sequence mismatch means the
// stream lost, duplicated or reordered a response and the connection
// is unusable.
func (c *Client) Next() (Completion, error) {
	if c.InFlight() == 0 {
		return Completion{}, fmt.Errorf("loadgen: Next with no requests in flight")
	}
	if err := c.bw.Flush(); err != nil {
		return Completion{}, err
	}
	body, err := readFrame(c.br, c.rbuf)
	if err != nil {
		return Completion{}, err
	}
	c.rbuf = body[:0]
	r := wire.NewReader(body)
	seq := r.Uvarint()
	status := r.Byte()
	value := r.RawBytesRef()
	if r.Err() != nil {
		return Completion{}, r.Err()
	}
	want := c.q[c.head]
	if seq != want.seq {
		return Completion{}, fmt.Errorf("loadgen: response seq %d, want %d (lost or duplicated response)", seq, want.seq)
	}
	c.head++
	return Completion{Seq: seq, Status: status, Value: value, Start: want.start, Write: want.write}, nil
}

// Get fetches a key. found is false when the key does not exist.
func (c *Client) Get(key string) (value string, found bool, err error) {
	if err := c.StartGet(key); err != nil {
		return "", false, err
	}
	comp, err := c.Next()
	if err != nil {
		return "", false, err
	}
	return string(comp.Value), comp.Status == statusOK, nil
}

// Set writes key=value. notPrimary is true when the replica refused
// the write because it is outside the primary component.
func (c *Client) Set(key, value string) (notPrimary bool, err error) {
	if err := c.StartSet(key, value); err != nil {
		return false, err
	}
	comp, err := c.Next()
	if err != nil {
		return false, err
	}
	switch comp.Status {
	case statusOK:
		return false, nil
	case statusNotPrimary:
		return true, nil
	default:
		return false, fmt.Errorf("loadgen: set failed with status %d", comp.Status)
	}
}
