package loadgen

import (
	"encoding/json"
	"io"
)

// FailoverReport is the measured failover under one injected
// partition: wall-clock offsets of the injection and heal, and the
// timeline-derived loss/recovery intervals.
type FailoverReport struct {
	// InjectedAtSec is when the partition was injected, as an offset
	// from run start.
	InjectedAtSec float64 `json:"injected_at_sec"`
	// HealedAtSec is when the partition was healed (0 if never).
	HealedAtSec float64 `json:"healed_at_sec,omitempty"`
	// PrimaryLostMs is injection → first primary-loss event.
	PrimaryLostMs float64 `json:"primary_lost_ms"`
	// RecoveryMs is injection → first primary-regain after the loss:
	// the live analogue of the thesis's availability gap.
	RecoveryMs float64 `json:"recovery_ms"`
	// ViewsProposed and ViewsInstalled count reconfiguration traffic
	// over the whole run.
	ViewsProposed  int `json:"views_proposed"`
	ViewsInstalled int `json:"views_installed"`
	// Timeline is the rendered event timeline (one line per event).
	Timeline []string `json:"timeline,omitempty"`
}

// PeerWireReport is one node's wire-level view of one peer, flattened
// from gcs.PeerStats for JSON.
type PeerWireReport struct {
	Node       int     `json:"node"`
	Peer       int     `json:"peer"`
	MsgsOut    int64   `json:"msgs_out"`
	BytesOut   int64   `json:"bytes_out"`
	MsgsIn     int64   `json:"msgs_in"`
	BytesIn    int64   `json:"bytes_in"`
	Dropped    int64   `json:"dropped,omitempty"`
	SendMeanMs float64 `json:"send_mean_ms"`
	SendMaxMs  float64 `json:"send_max_ms"`
}

// Report is the machine-readable result of one cmd/loadgen run — what
// -json emits and what cmd/benchjson ingests with -loadgen.
type Report struct {
	Kind     string           `json:"kind"` // always "loadgen"
	Alg      string           `json:"alg"`
	Nodes    int              `json:"nodes"`
	Conns    int              `json:"conns"`
	Pipeline int              `json:"pipeline,omitempty"` // per-conn request window; 0/1 = closed loop
	RateRPS  float64          `json:"rate_rps,omitempty"` // target; 0 = unpaced
	Result   Result           `json:"result"`
	Failover *FailoverReport  `json:"failover,omitempty"`
	Peers    []PeerWireReport `json:"peers,omitempty"`
}

// WriteJSON emits the report, indented, with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadReport parses a Report written by WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
