package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dynvote/internal/campaign"
	"dynvote/internal/metrics"
)

// Config drives one closed-loop load run.
type Config struct {
	// Addrs are the server addresses; workers are spread round-robin
	// across them, so every replica sees client traffic.
	Addrs []string
	// Conns is the number of concurrent client connections (default 4).
	// Each connection is closed-loop: at most Pipeline outstanding
	// requests.
	Conns int
	// Pipeline is the per-connection request window (default 1 = one
	// request in flight, the classic closed loop). With Pipeline N a
	// connection issues up to N requests back-to-back, flushes them in
	// one syscall, and collects the N responses in order — sequence
	// numbers verify none were lost or duplicated.
	Pipeline int
	// Rate is the target aggregate request rate in req/s across all
	// connections. 0 means unpaced — every connection issues
	// back-to-back requests.
	Rate float64
	// Duration is the run length (default 5s).
	Duration time.Duration
	// Keys is the key-space size (default 64).
	Keys int
	// WriteFraction is the fraction of requests that are writes
	// (default 0.5).
	WriteFraction float64
	// Seed makes the op mix reproducible.
	Seed int64
	// Registry receives the run's counters and the request-latency
	// histogram. Nil creates a private registry.
	Registry *metrics.Registry
	// Progress, when non-nil, receives periodic one-line summaries.
	Progress *campaign.Reporter
	// ProgressEvery is the progress period (default 1s).
	ProgressEvery time.Duration
}

// LatencySummary is request latency in milliseconds.
type LatencySummary struct {
	MinMs  float64 `json:"min_ms"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Result is what one Run measured.
type Result struct {
	Duration      time.Duration  `json:"-"`
	DurationSec   float64        `json:"duration_sec"`
	Requests      int64          `json:"requests"`
	OK            int64          `json:"ok"`
	NotFound      int64          `json:"not_found"`
	NotPrimary    int64          `json:"not_primary"`
	Errors        int64          `json:"errors"`
	Redials       int64          `json:"redials"`
	ThroughputRPS float64        `json:"throughput_rps"`
	Latency       LatencySummary `json:"latency_ms"`
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Conns <= 0 {
		out.Conns = 4
	}
	if out.Pipeline <= 0 {
		out.Pipeline = 1
	}
	if out.Duration <= 0 {
		out.Duration = 5 * time.Second
	}
	if out.Keys <= 0 {
		out.Keys = 64
	}
	if out.WriteFraction < 0 {
		out.WriteFraction = 0
	}
	if out.WriteFraction == 0 {
		out.WriteFraction = 0.5
	}
	if out.WriteFraction > 1 {
		out.WriteFraction = 1
	}
	if out.Registry == nil {
		out.Registry = metrics.NewRegistry()
	}
	if out.ProgressEvery <= 0 {
		out.ProgressEvery = time.Second
	}
	return out
}

// runCounters groups the registry instruments one run writes into.
type runCounters struct {
	requests   *metrics.Counter
	ok         *metrics.Counter
	notFound   *metrics.Counter
	notPrimary *metrics.Counter
	errs       *metrics.Counter
	redials    *metrics.Counter
	latency    *metrics.Histogram
}

func newRunCounters(reg *metrics.Registry) runCounters {
	return runCounters{
		requests:   reg.Counter("loadgen_requests_total", "client requests issued"),
		ok:         reg.Counter("loadgen_ok_total", "requests answered OK"),
		notFound:   reg.Counter("loadgen_not_found_total", "reads of absent keys"),
		notPrimary: reg.Counter("loadgen_not_primary_total", "writes refused outside the primary"),
		errs:       reg.Counter("loadgen_errors_total", "transport/protocol request failures"),
		redials:    reg.Counter("loadgen_redials_total", "client reconnects after request failure"),
		latency:    reg.Histogram("loadgen_request_seconds", "client request round-trip latency", metrics.WireBuckets),
	}
}

// extrema is the worker-local min/max that the shared histogram's
// buckets cannot recover exactly.
type extrema struct {
	min, max time.Duration
	any      bool
}

func (e *extrema) observe(d time.Duration) {
	if !e.any || d < e.min {
		e.min = d
	}
	if d > e.max {
		e.max = d
	}
	e.any = true
}

func (e *extrema) merge(o extrema) {
	if !o.any {
		return
	}
	if !e.any || o.min < e.min {
		e.min = o.min
	}
	if o.max > e.max {
		e.max = o.max
	}
	e.any = true
}

// Run drives the cluster for cfg.Duration and reports what it
// measured. It returns an error only when the run could not start at
// all (no addresses, no connection ever established); request-level
// failures are data, not errors — a run across a partition is the
// whole point of the harness.
func Run(cfg Config) (Result, error) {
	if len(cfg.Addrs) == 0 {
		return Result{}, errors.New("loadgen: no server addresses")
	}
	c := cfg.withDefaults()
	rc := newRunCounters(c.Registry)

	// Per-connection pacing interval: the aggregate rate divided across
	// connections. Zero means unpaced.
	var interval time.Duration
	if c.Rate > 0 {
		interval = time.Duration(float64(c.Conns) / c.Rate * float64(time.Second))
	}

	start := time.Now()
	deadline := start.Add(c.Duration)
	ext := make([]extrema, c.Conns)
	var wg sync.WaitGroup
	for i := 0; i < c.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worker(&c, rc, c.Addrs[i%len(c.Addrs)], i, interval, deadline, &ext[i])
		}(i)
	}

	progressDone := make(chan struct{})
	go func() {
		defer close(progressDone)
		ticker := time.NewTicker(c.ProgressEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				el := time.Since(start).Seconds()
				reqs := rc.requests.Value()
				c.Progress.Printf("loadgen: t=%4.1fs reqs=%d ok=%d notPrimary=%d errs=%d rate=%.0f/s",
					el, reqs, rc.ok.Value(), rc.notPrimary.Value(), rc.errs.Value(), float64(reqs)/el)
			case <-time.After(time.Until(deadline)):
				return
			}
		}
	}()

	wg.Wait()
	<-progressDone
	elapsed := time.Since(start)

	var all extrema
	for i := range ext {
		all.merge(ext[i])
	}
	res := Result{
		Duration:    elapsed,
		DurationSec: elapsed.Seconds(),
		Requests:    rc.requests.Value(),
		OK:          rc.ok.Value(),
		NotFound:    rc.notFound.Value(),
		NotPrimary:  rc.notPrimary.Value(),
		Errors:      rc.errs.Value(),
		Redials:     rc.redials.Value(),
	}
	res.ThroughputRPS = float64(res.Requests) / elapsed.Seconds()
	q := rc.latency.Summary()
	res.Latency = LatencySummary{
		P50Ms: q.P50 * 1e3,
		P95Ms: q.P95 * 1e3,
		P99Ms: q.P99 * 1e3,
	}
	if n := rc.latency.Count(); n > 0 {
		res.Latency.MeanMs = rc.latency.Sum() / float64(n) * 1e3
	}
	if all.any {
		res.Latency.MinMs = float64(all.min) / float64(time.Millisecond)
		res.Latency.MaxMs = float64(all.max) / float64(time.Millisecond)
	}
	if res.Requests == 0 {
		return res, errors.New("loadgen: no requests completed or failed — could not reach any server")
	}
	return res, nil
}

// worker is one closed-loop connection driving a window of up to
// c.Pipeline requests: fill the window (pacing each issue when a rate
// is set), flush the batch in one syscall, collect every response,
// repeat. A failed batch costs the connection and every request still
// in flight on it — redial and keep going, like a real client would.
// Every issued request is counted exactly once: as ok/notFound/
// notPrimary when its response arrives, as an error when its
// connection dies first.
func worker(c *Config, rc runCounters, addr string, idx int, interval time.Duration, deadline time.Time, ext *extrema) {
	rng := rand.New(rand.NewSource(c.Seed + int64(idx)*1664525 + 1013904223))
	var cl *Client
	defer func() {
		if cl != nil {
			_ = cl.Close()
		}
	}()
	// fail charges every in-flight request on the dead connection as
	// an error and redials.
	fail := func() {
		rc.errs.Add(int64(cl.InFlight()))
		_ = cl.Close()
		cl = dialUntil(addr, deadline)
		if cl != nil {
			rc.redials.Inc()
		}
	}
	next := time.Now()
	for time.Now().Before(deadline) {
		if cl == nil {
			cl = dialUntil(addr, deadline)
			if cl == nil {
				return // server unreachable for the rest of the run
			}
		}
		// Fill the window.
		issueErr := false
		for cl.InFlight() < c.Pipeline && time.Now().Before(deadline) {
			if interval > 0 {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
				if now := time.Now(); next.Before(now) {
					next = now // behind schedule: no debt, resume the pace from here
				}
			}
			key := fmt.Sprintf("k%04d", rng.Intn(c.Keys))
			var err error
			if rng.Float64() < c.WriteFraction {
				err = cl.StartSet(key, fmt.Sprintf("v%d.%d", idx, rng.Int63()))
			} else {
				err = cl.StartGet(key)
			}
			rc.requests.Inc()
			if err != nil {
				rc.errs.Inc() // the request that failed to issue
				issueErr = true
				break
			}
		}
		if issueErr {
			fail()
			continue
		}
		if cl.InFlight() == 0 {
			continue // deadline hit before anything was issued
		}
		if err := cl.Flush(); err != nil {
			fail()
			continue
		}
		// Drain the window.
		for cl.InFlight() > 0 {
			comp, err := cl.Next()
			if err != nil {
				fail()
				break
			}
			el := time.Since(comp.Start)
			rc.latency.Observe(el.Seconds())
			ext.observe(el)
			switch comp.Status {
			case statusOK:
				rc.ok.Inc()
			case statusNotFound:
				rc.notFound.Inc()
			case statusNotPrimary:
				rc.notPrimary.Inc()
			default:
				rc.errs.Inc()
			}
		}
	}
}

// dialUntil connects with a small backoff until the deadline.
func dialUntil(addr string, deadline time.Time) *Client {
	for time.Now().Before(deadline) {
		cl, err := DialClient(addr)
		if err == nil {
			return cl
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}
