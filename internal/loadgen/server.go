package loadgen

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"dynvote/internal/register"
	"dynvote/internal/wire"
)

// Server exposes one register.Store replica to load-generator clients
// over TCP: accept, read length-prefixed requests, answer in request
// order. It is the "serve mode" client surface of
// examples/replicateddb and the target of cmd/loadgen.
//
// The per-connection handler is built for pipelined clients and
// thousands of connections: requests are decoded through a buffered
// reader, responses accumulate in a buffered writer, and the writer is
// flushed only when no complete request remains buffered — so a
// client pipelining a window of N requests costs the server roughly
// one read and one write syscall per window, not per request.
type Server struct {
	store *register.Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer starts serving store on addr (e.g. "127.0.0.1:0"). A bind
// failure is returned, not logged: a replica that cannot serve clients
// must exit non-zero, not hang.
func NewServer(store *register.Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("loadgen: listen %s: %w", addr, err)
	}
	s := &Server{store: store, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains the server: stop accepting, close every client
// connection, wait for the handlers to exit. The store stays open —
// the caller owns it.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient accept failure; keep serving
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 16<<10)
	bw := bufio.NewWriterSize(conn, 16<<10)
	var (
		rbuf []byte
		w    wire.Writer
	)
	for {
		body, err := readFrame(br, rbuf)
		if err != nil {
			return // client gone or corrupt stream
		}
		rbuf = body[:0]
		r := wire.NewReader(body)
		seq := r.Uvarint()
		op := r.Byte()
		key := r.RawString()
		w.Reset()
		w.Uvarint(seq)
		switch {
		case r.Err() != nil:
			return
		case op == opGet:
			v, ok, _ := s.store.Get(key)
			if ok {
				w.Byte(statusOK)
				w.RawBytes([]byte(v))
			} else {
				w.Byte(statusNotFound)
				w.RawBytes(nil)
			}
		case op == opSet:
			value := r.RawString()
			if r.Err() != nil {
				return
			}
			switch err := s.store.Set(key, value); {
			case err == nil:
				w.Byte(statusOK)
				w.RawBytes(nil)
			case errors.Is(err, register.ErrNotPrimary):
				w.Byte(statusNotPrimary)
				w.RawBytes(nil)
			default:
				w.Byte(statusError)
				w.RawBytes([]byte(err.Error()))
			}
		default:
			return // unknown op: corrupt stream
		}
		if err := writeFrame(bw, w.Bytes()); err != nil {
			return
		}
		// Flush only at the batch boundary: while complete requests
		// remain buffered, keep coalescing responses.
		if !frameBuffered(br) {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}
