// Package majority implements the simple, stateless baseline of thesis
// §3.3: declare a primary component whenever a majority of the
// original processes is present, breaking exact-half ties with the
// lexically smallest process of the original view (the same rule YKD
// uses).
//
// It exchanges no messages and keeps almost no state; the dynamic
// voting algorithms exist to improve on it, so it anchors every
// availability plot.
package majority

import (
	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/quorum"
	"dynvote/internal/view"
)

// Name is the algorithm identifier used in experiment output.
const Name = "simple-majority"

// Algorithm is the simple-majority primary component rule.
type Algorithm struct {
	self      proc.ID
	initial   proc.Set
	current   view.View
	inPrimary bool
}

var (
	_ core.Algorithm       = (*Algorithm)(nil)
	_ core.PrimaryReporter = (*Algorithm)(nil)
	_ core.Resetter        = (*Algorithm)(nil)
)

// New returns an instance for process self whose original process set
// is that of the initial view.
func New(self proc.ID, initial view.View) *Algorithm {
	return &Algorithm{
		self:      self,
		initial:   initial.Members,
		current:   initial,
		inPrimary: true, // everyone starts together: the full set is primary
	}
}

// Factory describes the algorithm to hosts. Codec is nil because the
// algorithm sends no messages.
func Factory() core.Factory {
	return core.Factory{
		Name: Name,
		New:  func(self proc.ID, initial view.View) core.Algorithm { return New(self, initial) },
	}
}

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return Name }

// Reset implements core.Resetter; the algorithm holds no heap state,
// so resetting is plain reassignment.
func (a *Algorithm) Reset(self proc.ID, initial view.View) {
	a.self = self
	a.initial = initial.Members
	a.current = initial
	a.inPrimary = true
}

// ViewChange re-evaluates the majority rule against the new view.
func (a *Algorithm) ViewChange(v view.View) {
	a.current = v
	a.inPrimary = quorum.SubQuorum(v.Members, a.initial)
}

// Deliver is a no-op: the algorithm sends and expects no messages.
func (a *Algorithm) Deliver(proc.ID, core.Message) {}

// Poll always returns nil: there is nothing to broadcast.
func (a *Algorithm) Poll() []core.Message { return nil }

// InPrimary reports whether the current view holds a majority of the
// original processes.
func (a *Algorithm) InPrimary() bool { return a.inPrimary }

// PrimaryMembers returns the current view's members while in primary.
func (a *Algorithm) PrimaryMembers() proc.Set { return a.current.Members }
