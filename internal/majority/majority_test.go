package majority

import (
	"testing"

	"dynvote/internal/proc"
	"dynvote/internal/view"
)

func initialView(n int) view.View {
	return view.View{ID: 0, Members: proc.Universe(n)}
}

func TestStartsInPrimary(t *testing.T) {
	a := New(0, initialView(5))
	if !a.InPrimary() {
		t.Error("initial view must be primary")
	}
	if !a.PrimaryMembers().Equal(proc.Universe(5)) {
		t.Error("primary members should be the initial view")
	}
}

func TestMajorityRule(t *testing.T) {
	tests := []struct {
		name    string
		members proc.Set
		want    bool
	}{
		{"majority 3/5", proc.NewSet(0, 1, 2), true},
		{"minority 2/5", proc.NewSet(3, 4), false},
		{"single process", proc.NewSet(2), false},
		{"all", proc.Universe(5), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := New(tt.members.Smallest(), initialView(5))
			a.ViewChange(view.View{ID: 1, Members: tt.members})
			if got := a.InPrimary(); got != tt.want {
				t.Errorf("InPrimary = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestExactHalfTieBreak(t *testing.T) {
	// 6 processes split exactly in half; the side with p0 wins.
	withSmallest := proc.NewSet(0, 4, 5)
	withoutSmallest := proc.NewSet(1, 2, 3)

	a := New(0, initialView(6))
	a.ViewChange(view.View{ID: 1, Members: withSmallest})
	if !a.InPrimary() {
		t.Error("half with lexically smallest should be primary")
	}

	b := New(1, initialView(6))
	b.ViewChange(view.View{ID: 1, Members: withoutSmallest})
	if b.InPrimary() {
		t.Error("half without lexically smallest should not be primary")
	}
}

func TestNoMessages(t *testing.T) {
	a := New(0, initialView(3))
	if got := a.Poll(); got != nil {
		t.Errorf("Poll = %v, want nil", got)
	}
	a.Deliver(1, nil) // must not panic
	a.ViewChange(view.View{ID: 1, Members: proc.NewSet(0, 1)})
	if got := a.Poll(); got != nil {
		t.Errorf("Poll after view change = %v, want nil", got)
	}
}

func TestRecoversOnMerge(t *testing.T) {
	a := New(0, initialView(5))
	a.ViewChange(view.View{ID: 1, Members: proc.NewSet(0, 1)})
	if a.InPrimary() {
		t.Fatal("minority should not be primary")
	}
	a.ViewChange(view.View{ID: 2, Members: proc.Universe(5)})
	if !a.InPrimary() {
		t.Error("full merge should restore primary")
	}
}
