// Package metrics is a dependency-free, concurrency-safe registry of
// atomic counters, gauges and fixed-bucket histograms — the
// observability substrate for the simulator, the experiment harness and
// the live group-communication nodes. It exposes its contents four
// ways: a structured Snapshot (JSON-serializable, with Delta for
// interval rates), an aligned text table for terminal output, the
// Prometheus text exposition format for scrape endpoints, and an
// http.Handler wrapping the latter.
//
// Every metric type is nil-safe: methods on a nil *Counter, *Gauge,
// *Histogram or *Registry are no-ops that allocate nothing, so
// instrumented hot paths (the simulator executes hundreds of millions
// of delivery steps per campaign) pay only a nil check when metrics
// are disabled. Enable by constructing a Registry and resolving the
// instruments once, outside the hot loop.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is
// usable; a nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is usable;
// a nil Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram tallies observations into fixed buckets chosen at
// registration. Buckets are upper bounds (inclusive, ascending); an
// implicit +Inf bucket catches the overflow. A nil Histogram is a
// no-op.
type Histogram struct {
	bounds  []float64      // ascending upper bounds, no +Inf
	buckets []atomic.Int64 // len(bounds)+1; last is the overflow
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot captures the histogram's state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.Sum()
	return s
}

// DefBuckets is a general-purpose latency scale (seconds).
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100}

// WireBuckets is a sub-millisecond-to-seconds latency scale (seconds)
// for localhost wire traffic and request/response latencies, where
// DefBuckets' 1ms floor would flatten every observation into the first
// bucket and quantile estimates with it.
var WireBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// RoundBuckets suits round-count observations such as re-formation
// latency (the simulator's unit of time is the message round).
var RoundBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128}

// Registry holds named metrics. The zero value is NOT usable; use
// NewRegistry. A nil *Registry hands out nil instruments, so a single
// code path serves both instrumented and uninstrumented runs.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.ensureFree(name)
	c := &Counter{}
	r.counters[name] = c
	r.help[name] = help
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns
// nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.ensureFree(name)
	g := &Gauge{}
	r.gauges[name] = g
	r.help[name] = help
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later registrations reuse the
// first buckets). Bounds must be ascending; an implicit +Inf bucket is
// added. Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.ensureFree(name)
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(b) {
		panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
	}
	h := &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	r.histograms[name] = h
	r.help[name] = help
	return h
}

// ensureFree panics if name is already registered as another type —
// a programming error, caught at startup rather than masked.
func (r *Registry) ensureFree(name string) {
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.histograms[name]
	if c || g || h {
		panic(fmt.Sprintf("metrics: %q already registered as a different type", name))
	}
}

// HistogramSnapshot is a histogram's state at a point in time.
// Buckets[i] counts observations ≤ Bounds[i] (exclusive of earlier
// buckets); the final element of Buckets is the +Inf overflow.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
}

// Mean returns the average observation, 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) from the bucket
// counts, interpolating linearly inside the bucket that holds the
// target rank — the same estimator Prometheus's histogram_quantile
// applies server-side. Observations landing in the +Inf overflow
// bucket are reported as the highest finite bound (a quantile cannot
// exceed what the buckets can resolve). Returns 0 on an empty
// histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Buckets {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: clamp to the highest finite bound.
			if len(h.Bounds) == 0 {
				return 0
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.Bounds[i-1]
		}
		upper := h.Bounds[i]
		return lower + (upper-lower)*(rank-float64(prev))/float64(c)
	}
	if len(h.Bounds) == 0 {
		return 0
	}
	return h.Bounds[len(h.Bounds)-1]
}

// QuantileSummary is the standard latency triple extracted from a
// histogram.
type QuantileSummary struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Summary returns the p50/p95/p99 quantile estimates.
func (h HistogramSnapshot) Summary() QuantileSummary {
	return QuantileSummary{
		P50: h.Quantile(0.50),
		P95: h.Quantile(0.95),
		P99: h.Quantile(0.99),
	}
}

// Quantile estimates the q-th quantile of the live histogram; see
// HistogramSnapshot.Quantile. A nil histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot().Quantile(q)
}

// Summary returns the live histogram's p50/p95/p99 estimates. A nil
// histogram reports zeros.
func (h *Histogram) Summary() QuantileSummary {
	if h == nil {
		return QuantileSummary{}
	}
	return h.snapshot().Summary()
}

// Snapshot is a registry's full state at a point in time. It
// round-trips through encoding/json (bucket +Inf is implicit, so no
// non-finite values appear).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Delta returns the change from prev to s: counters and histogram
// buckets are subtracted (new metrics appear whole), gauges keep their
// current value. Use for interval rates — e.g. changes/sec between two
// progress ticks.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p, ok := prev.Histograms[name]
		if !ok || len(p.Buckets) != len(h.Buckets) {
			d.Histograms[name] = h
			continue
		}
		dh := HistogramSnapshot{
			Bounds:  append([]float64(nil), h.Bounds...),
			Buckets: make([]int64, len(h.Buckets)),
			Count:   h.Count - p.Count,
			Sum:     h.Sum - p.Sum,
		}
		for i := range h.Buckets {
			dh.Buckets[i] = h.Buckets[i] - p.Buckets[i]
		}
		d.Histograms[name] = dh
	}
	return d
}

// Table renders the snapshot as an aligned, name-sorted text table.
func (s Snapshot) Table() string {
	type row struct{ name, value string }
	rows := make([]row, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		rows = append(rows, row{name, fmt.Sprintf("%d", v)})
	}
	for name, v := range s.Gauges {
		rows = append(rows, row{name, fmt.Sprintf("%d", v)})
	}
	for name, h := range s.Histograms {
		q := h.Summary()
		rows = append(rows, row{name, fmt.Sprintf("count=%d sum=%.6g mean=%.6g p50=%.6g p95=%.6g p99=%.6g",
			h.Count, h.Sum, h.Mean(), q.P50, q.P95, q.P99)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	width := 0
	for _, r := range rows {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", width, r.name, r.value)
	}
	return b.String()
}
