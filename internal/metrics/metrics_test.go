package metrics_test

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dynvote/internal/metrics"
)

func TestCounterSemantics(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up: ignored
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	if again := r.Counter("x_total", "help"); again != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := metrics.NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("Value = %d, want 6", got)
	}
}

func TestHistogramSemantics(t *testing.T) {
	r := metrics.NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-9 {
		t.Errorf("Sum = %g, want 106", got)
	}
	s := r.Snapshot().Histograms["h"]
	// Buckets: ≤1 (0.5, 1), ≤2 (1.5), ≤4 (3), +Inf (100).
	want := []int64{2, 1, 1, 1}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Errorf("Buckets = %v, want %v", s.Buckets, want)
	}
	if mean := s.Mean(); math.Abs(mean-106.0/5) > 1e-9 {
		t.Errorf("Mean = %g", mean)
	}
}

func TestMismatchedTypePanics(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("name", "")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter did not panic")
		}
	}()
	r.Gauge("name", "")
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *metrics.Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments retained values")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestNilInstrumentsAllocateNothing(t *testing.T) {
	var c *metrics.Counter
	var h *metrics.Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		h.Observe(1.5)
	})
	if allocs != 0 {
		t.Errorf("nil instrument ops allocated %.1f/op, want 0", allocs)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{10})
	c.Add(5)
	g.Set(1)
	h.Observe(3)
	before := r.Snapshot()
	c.Add(7)
	g.Set(9)
	h.Observe(30)
	d := r.Snapshot().Delta(before)
	if d.Counters["c"] != 7 {
		t.Errorf("counter delta = %d, want 7", d.Counters["c"])
	}
	if d.Gauges["g"] != 9 {
		t.Errorf("gauge delta keeps current value: %d, want 9", d.Gauges["g"])
	}
	dh := d.Histograms["h"]
	if dh.Count != 1 || dh.Sum != 30 || !reflect.DeepEqual(dh.Buckets, []int64{0, 1}) {
		t.Errorf("histogram delta = %+v", dh)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("c", "").Add(3)
	r.Gauge("g", "").Set(-2)
	r.Histogram("h", "", []float64{1, 5}).Observe(2)
	s := r.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back metrics.Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed the snapshot:\n%+v\n%+v", s, back)
	}
}

func TestTableSortedAndAligned(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("bbb", "").Add(2)
	r.Gauge("a", "").Set(1)
	tab := r.Snapshot().Table()
	if tab != "a    1\nbbb  2\n" {
		t.Errorf("Table = %q", tab)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := metrics.NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("lat", "", []float64{1, 2, 3})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 5))
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared_total"] != 8000 {
		t.Errorf("counter = %d, want 8000", s.Counters["shared_total"])
	}
	if s.Histograms["lat"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Histograms["lat"].Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := metrics.NewRegistry()
	h := r.Histogram("lat_s", "", []float64{0.01, 0.1, 1})
	// 90 fast, 8 medium, 2 slow: a classic long-tail latency shape.
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 8; i++ {
		h.Observe(0.05)
	}
	h.Observe(0.5)
	h.Observe(0.5)

	// p50 interpolates inside the first bucket (0, 0.01]: rank 50 of
	// the 90 observations there -> 0.01 * 50/90.
	if got, want := h.Quantile(0.50), 0.01*50.0/90.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("p50 = %v, want %v", got, want)
	}
	// p95 lands in the (0.01, 0.1] bucket: rank 95, 90 below, 8 in
	// bucket -> 0.01 + 0.09 * 5/8.
	if got, want := h.Quantile(0.95), 0.01+0.09*5.0/8.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("p95 = %v, want %v", got, want)
	}
	// p99 lands in the (0.1, 1] bucket: rank 99, 98 below, 2 in bucket
	// -> 0.1 + 0.9 * 1/2.
	if got, want := h.Quantile(0.99), 0.1+0.9*0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("p99 = %v, want %v", got, want)
	}
	sum := h.Summary()
	if sum.P50 != h.Quantile(0.50) || sum.P95 != h.Quantile(0.95) || sum.P99 != h.Quantile(0.99) {
		t.Errorf("Summary %+v disagrees with Quantile", sum)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var nilH *metrics.Histogram
	if nilH.Quantile(0.5) != 0 || (nilH.Summary() != metrics.QuantileSummary{}) {
		t.Error("nil histogram quantiles should be 0")
	}
	r := metrics.NewRegistry()
	empty := r.Histogram("empty", "", []float64{1, 2})
	if empty.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile should be 0")
	}

	over := r.Histogram("over", "", []float64{1, 2})
	over.Observe(50) // everything in the +Inf overflow bucket
	if got := over.Quantile(0.5); got != 2 {
		t.Errorf("overflow-only quantile = %v, want the top finite bound 2", got)
	}

	clamp := r.Histogram("clamp", "", []float64{1})
	clamp.Observe(0.5)
	if got := clamp.Quantile(-3); got < 0 {
		t.Errorf("q<0 not clamped: %v", got)
	}
	if got := clamp.Quantile(7); got > 1 {
		t.Errorf("q>1 not clamped: %v", got)
	}
}

func TestTableIncludesQuantiles(t *testing.T) {
	r := metrics.NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	tab := r.Snapshot().Table()
	if !strings.Contains(tab, "p50=3") || !strings.Contains(tab, "p95=4") || !strings.Contains(tab, "p99=4") {
		t.Errorf("Table missing quantiles: %q", tab)
	}
}
