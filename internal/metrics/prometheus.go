package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry's current state in the
// Prometheus text exposition format (version 0.0.4): HELP and TYPE
// headers, cumulative histogram buckets with an explicit +Inf bound,
// and _sum/_count series. Metric names are sanitized to the
// [a-zA-Z_:][a-zA-Z0-9_:]* charset. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	histograms := make(map[string]HistogramSnapshot, len(r.histograms))
	for name, h := range r.histograms {
		histograms[name] = h.snapshot()
	}
	help := make(map[string]string, len(r.help))
	for name, h := range r.help {
		help[name] = h
	}
	r.mu.RUnlock()
	return writePrometheus(w, Snapshot{Counters: counters, Gauges: gauges, Histograms: histograms}, help)
}

// WritePrometheus renders a snapshot in the Prometheus text format
// (no HELP lines — the snapshot does not carry help strings).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, s, nil)
}

func writePrometheus(w io.Writer, s Snapshot, help map[string]string) error {
	var b strings.Builder
	emitHeader := func(name, kind string) {
		if h := help[name]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", promName(name), escapeHelp(h))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", promName(name), kind)
	}

	for _, name := range sortedKeys(s.Counters) {
		emitHeader(name, "counter")
		fmt.Fprintf(&b, "%s %d\n", promName(name), s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		emitHeader(name, "gauge")
		fmt.Fprintf(&b, "%s %d\n", promName(name), s.Gauges[name])
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		emitHeader(name, "histogram")
		pn := promName(name)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, formatBound(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", pn, strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
		// Server-side quantile estimates as a companion gauge family:
		// native histograms carry no quantile series, so scrapers
		// without a PromQL evaluator (curl, the loadgen harness, CI
		// smoke checks) get p50/p95/p99 directly.
		q := h.Summary()
		fmt.Fprintf(&b, "# TYPE %s_quantile gauge\n", pn)
		for _, p := range [...]struct {
			label string
			v     float64
		}{{"0.5", q.P50}, {"0.95", q.P95}, {"0.99", q.P99}} {
			fmt.Fprintf(&b, "%s_quantile{q=%q} %s\n", pn, p.label, strconv.FormatFloat(p.v, 'g', -1, 64))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName maps an arbitrary metric name onto the Prometheus name
// charset, replacing invalid runes with underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
