package metrics_test

import (
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dynvote/internal/metrics"
)

// TestPrometheusGolden pins the full exposition output: HELP/TYPE
// headers, sorted names, cumulative buckets with +Inf, _sum and
// _count.
func TestPrometheusGolden(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("sim_rounds_total", "message rounds executed").Add(12)
	r.Gauge("workers", "active workers").Set(4)
	h := r.Histogram("reform_rounds", "re-formation latency", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP sim_rounds_total message rounds executed
# TYPE sim_rounds_total counter
sim_rounds_total 12
# HELP workers active workers
# TYPE workers gauge
workers 4
# HELP reform_rounds re-formation latency
# TYPE reform_rounds histogram
reform_rounds_bucket{le="1"} 1
reform_rounds_bucket{le="2"} 1
reform_rounds_bucket{le="4"} 2
reform_rounds_bucket{le="+Inf"} 3
reform_rounds_sum 13
reform_rounds_count 3
# TYPE reform_rounds_quantile gauge
reform_rounds_quantile{q="0.5"} 3
reform_rounds_quantile{q="0.95"} 4
reform_rounds_quantile{q="0.99"} 4
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestPrometheusFormatValid parses the output back with a conservative
// grammar: every line is a comment or `name[{le="x"}] value`, every
// histogram's +Inf bucket equals its _count, and buckets never
// decrease.
func TestPrometheusFormatValid(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("a_total", "with \"quotes\" and\nnewline").Inc()
	r.Gauge("temp-erature.now", "").Set(-3) // name needs sanitizing
	h := r.Histogram("h", "", []float64{0.5, 2.5})
	for i := 0; i < 7; i++ {
		h.Observe(float64(i))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(le|q)="([^"]+)"\})? (-?[0-9.eE+]+|\+Inf|NaN)$`)
	lastBucket := map[string]float64{}
	infBucket := map[string]float64{}
	counts := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line does not parse as a prometheus sample: %q", line)
		}
		v, err := strconv.ParseFloat(m[5], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		switch {
		case m[3] == "le" && m[4] == "+Inf":
			infBucket[m[1]] = v
		case m[3] == "le":
			if v < lastBucket[m[1]] {
				t.Errorf("bucket series %s not cumulative: %q", m[1], line)
			}
			lastBucket[m[1]] = v
		case strings.HasSuffix(m[1], "_count"):
			counts[strings.TrimSuffix(m[1], "_count")] = v
		}
	}
	for name, c := range counts {
		if infBucket[name+"_bucket"] != c {
			t.Errorf("%s: +Inf bucket %g != count %g", name, infBucket[name+"_bucket"], c)
		}
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("hits_total", "").Add(2)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "hits_total 2") {
		t.Errorf("body = %q", body)
	}
}

func TestPromNameSanitization(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("9bad name-with.dots", "").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "_bad_name_with_dots 1") {
		t.Errorf("sanitized output = %q", b.String())
	}
}

func ExampleRegistry_WritePrometheus() {
	r := metrics.NewRegistry()
	r.Counter("demo_total", "").Add(41)
	r.Counter("demo_total", "").Inc() // same instrument
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # TYPE demo_total counter
	// demo_total 42
}
