package mr1p

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
)

func roundTrip(t *testing.T, m core.Message) core.Message {
	t.Helper()
	b, err := Codec{}.Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Codec{}.Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestRoundTrips(t *testing.T) {
	v := view.View{ID: 12, Members: proc.NewSet(0, 2, 5)}

	q := roundTrip(t, &QueryMessage{ViewID: 20, Ambiguous: v, Num: 3, Status: 2}).(*QueryMessage)
	if q.ViewID != 20 || q.Ambiguous.ID != 12 || !q.Ambiguous.Members.Equal(v.Members) || q.Num != 3 || q.Status != 2 {
		t.Errorf("query mismatch: %+v", q)
	}

	r := roundTrip(t, &ReplyMessage{ViewID: 20, About: v, Info: InfoAborted}).(*ReplyMessage)
	if r.Info != InfoAborted || r.About.ID != 12 {
		t.Errorf("reply mismatch: %+v", r)
	}

	p := roundTrip(t, &ProposeMessage{ViewID: 20, Proposed: v}).(*ProposeMessage)
	if p.Proposed.ID != 12 {
		t.Errorf("propose mismatch: %+v", p)
	}

	a := roundTrip(t, &AttemptMessage{ViewID: 20, Target: v}).(*AttemptMessage)
	if a.Target.ID != 12 || !a.Target.Members.Equal(v.Members) {
		t.Errorf("attempt mismatch: %+v", a)
	}

	f := roundTrip(t, &TryFailMessage{ViewID: 20, Target: v}).(*TryFailMessage)
	if f.Target.ID != 12 {
		t.Errorf("tryfail mismatch: %+v", f)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{nil, {}, {42}, {tagQuery}, {tagPropose, 1}}
	for i, b := range cases {
		if _, err := (Codec{}).Decode(b); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b, err := Codec{}.Encode(&ProposeMessage{ViewID: 1, Proposed: view.View{ID: 1, Members: proc.NewSet(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Codec{}).Decode(append(b, 1, 2)); err == nil {
		t.Error("Decode accepted trailing bytes")
	}
}

func TestMessageKinds(t *testing.T) {
	kinds := map[string]core.Message{
		"mr1p/query":   &QueryMessage{},
		"mr1p/reply":   &ReplyMessage{},
		"mr1p/propose": &ProposeMessage{},
		"mr1p/attempt": &AttemptMessage{},
		"mr1p/tryfail": &TryFailMessage{},
	}
	for want, m := range kinds {
		if got := m.Kind(); got != want {
			t.Errorf("Kind = %q, want %q", got, want)
		}
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[status]string{
		statusNone: "none", statusSent: "sent", statusAttempt: "attempt", statusTryFail: "try-fail",
	} {
		if got := s.String(); got != want {
			t.Errorf("status(%d).String() = %q, want %q", s, got, want)
		}
	}
}
