package mr1p

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
)

// FuzzDecode hardens the codec: never panic, and accepted messages
// must round-trip.
func FuzzDecode(f *testing.F) {
	v := view.View{ID: 5, Members: proc.NewSet(0, 2, 9)}
	seeds := []core.Message{
		&QueryMessage{ViewID: 1, Ambiguous: v, Num: 2, Status: 1},
		&ReplyMessage{ViewID: 1, About: v, Info: InfoFormed},
		&ProposeMessage{ViewID: 1, Proposed: v},
		&AttemptMessage{ViewID: 1, Target: v},
		&TryFailMessage{ViewID: 1, Target: v},
	}
	for _, seed := range seeds {
		if b, err := (Codec{}).Encode(seed); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{tagQuery, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Codec{}.Decode(data)
		if err != nil {
			return
		}
		re, err := Codec{}.Encode(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		if _, err := (Codec{}).Decode(re); err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
	})
}

// FuzzRestore hardens the snapshot path.
func FuzzRestore(f *testing.F) {
	a := New(0, view.View{ID: 0, Members: proc.Universe(6)})
	if snap, err := a.Snapshot(); err == nil {
		f.Add(snap)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b := New(0, view.View{ID: 0, Members: proc.Universe(6)})
		if err := b.Restore(data); err != nil {
			return
		}
		if _, err := b.Snapshot(); err != nil {
			t.Fatalf("restored state does not snapshot: %v", err)
		}
	})
}
