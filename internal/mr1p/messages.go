package mr1p

import (
	"fmt"

	"dynvote/internal/core"
	"dynvote/internal/view"
	"dynvote/internal/wire"
)

// Info classifies a ReplyMessage: what the responder knows about the
// queried session.
type Info byte

const (
	// InfoFormed: the responder recorded the session as a formed
	// primary.
	InfoFormed Info = iota + 1
	// InfoAborted: the responder was a member and moved past the
	// session without forming it, so it can never have formed.
	InfoAborted
)

// QueryMessage is round 1: a holder's report of its pending ambiguous
// session — the thesis's ⟨ambiguousSession, num, status⟩.
type QueryMessage struct {
	ViewID    int64
	Ambiguous view.View
	Num       int64
	Status    byte
}

// Kind implements core.Message.
func (m *QueryMessage) Kind() string { return "mr1p/query" }

// ReplyMessage is round 2: what a non-holder knows about a queried
// session — the thesis's ⟨V, formed⟩ / ⟨V, aborted⟩.
type ReplyMessage struct {
	ViewID int64
	About  view.View
	Info   Info
}

// Kind implements core.Message.
func (m *ReplyMessage) Kind() string { return "mr1p/reply" }

// ProposeMessage is round 4: the thesis's ⟨V, 1⟩, requesting that the
// current view be declared a primary component.
type ProposeMessage struct {
	ViewID   int64
	Proposed view.View
}

// Kind implements core.Message.
func (m *ProposeMessage) Kind() string { return "mr1p/propose" }

// AttemptMessage is round 5 — and round 3 when it carries a resolution
// call: the thesis's ⟨attempt, V⟩. Attempts from a majority of the
// target's members form (or resolve as formed) the target.
type AttemptMessage struct {
	ViewID int64
	Target view.View
}

// Kind implements core.Message.
func (m *AttemptMessage) Kind() string { return "mr1p/attempt" }

// TryFailMessage is the round-3 failure call: the thesis's
// ⟨tryfail, V⟩. Calls from a majority of the target's members abandon
// the session.
type TryFailMessage struct {
	ViewID int64
	Target view.View
}

// Kind implements core.Message.
func (m *TryFailMessage) Kind() string { return "mr1p/tryfail" }

const (
	tagQuery byte = iota + 1
	tagReply
	tagPropose
	tagAttempt
	tagTryFail
)

// Codec encodes and decodes MR1p messages. It is stateless.
type Codec struct{}

var _ core.Codec = Codec{}

func encodeView(w *wire.Writer, v view.View) {
	w.Varint(v.ID)
	w.Set(v.Members)
}

func decodeView(r *wire.Reader) view.View {
	return view.View{ID: r.Varint(), Members: r.Set()}
}

// Encode implements core.Codec.
func (Codec) Encode(m core.Message) ([]byte, error) {
	var w wire.Writer
	switch msg := m.(type) {
	case *QueryMessage:
		w.Byte(tagQuery)
		w.Varint(msg.ViewID)
		encodeView(&w, msg.Ambiguous)
		w.Varint(msg.Num)
		w.Byte(msg.Status)
	case *ReplyMessage:
		w.Byte(tagReply)
		w.Varint(msg.ViewID)
		encodeView(&w, msg.About)
		w.Byte(byte(msg.Info))
	case *ProposeMessage:
		w.Byte(tagPropose)
		w.Varint(msg.ViewID)
		encodeView(&w, msg.Proposed)
	case *AttemptMessage:
		w.Byte(tagAttempt)
		w.Varint(msg.ViewID)
		encodeView(&w, msg.Target)
	case *TryFailMessage:
		w.Byte(tagTryFail)
		w.Varint(msg.ViewID)
		encodeView(&w, msg.Target)
	default:
		return nil, fmt.Errorf("mr1p: cannot encode %T", m)
	}
	return w.Bytes(), nil
}

// Decode implements core.Codec.
func (Codec) Decode(b []byte) (core.Message, error) {
	r := wire.NewReader(b)
	var m core.Message
	switch tag := r.Byte(); tag {
	case tagQuery:
		m = &QueryMessage{ViewID: r.Varint(), Ambiguous: decodeView(r), Num: r.Varint(), Status: r.Byte()}
	case tagReply:
		m = &ReplyMessage{ViewID: r.Varint(), About: decodeView(r), Info: Info(r.Byte())}
	case tagPropose:
		m = &ProposeMessage{ViewID: r.Varint(), Proposed: decodeView(r)}
	case tagAttempt:
		m = &AttemptMessage{ViewID: r.Varint(), Target: decodeView(r)}
	case tagTryFail:
		m = &TryFailMessage{ViewID: r.Varint(), Target: decodeView(r)}
	default:
		return nil, fmt.Errorf("mr1p: unknown message tag %d", tag)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("mr1p: decode: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("mr1p: decode: %d trailing bytes", r.Remaining())
	}
	return m, nil
}
