// Package mr1p implements Majority-Resilient 1-pending (thesis
// §3.2.4), a dynamic voting algorithm in the style of Lamport's Paxos
// and Malloth & Schiper: it retains at most one ambiguous session, like
// 1-pending, but can resolve it after hearing from only a majority of
// the session's members — at the price of a five-round protocol when a
// pending session exists (two rounds when none does).
//
// # Protocol
//
// On a view change, a process holding a pending ambiguous session A
// broadcasts what it knows — ⟨A, num, status⟩ (round 1). Members that
// moved past A answer formed or aborted (round 2); members still
// holding A have broadcast their own round-1 message, which doubles as
// their answer. Once reports from a majority of A's members are in,
// each holder computes a resolution call — the highest-num status,
// downgrading a bare "sent" to try-fail — and broadcasts it (round 3).
// A majority of attempt calls resolves A as formed; a majority of
// try-fail calls abandons it. Either way the process then runs
// try-new: if the current view is a subquorum of its current primary
// it proposes the view (round 4, ⟨V,1⟩); proposals from all members
// trigger attempt broadcasts (round 5), and attempts from a majority
// of V form the primary.
//
// Two clarifications of the thesis pseudocode, which this
// implementation documents rather than hides:
//
//   - The literal "upon ⟨V, formed⟩ … is-primary = true" would mark a
//     process primary while it sits in a different view, breaking the
//     thesis's own invariant that all members of a view agree on its
//     primacy. We set is-primary only when the formed view is the
//     current view; resolving an old session as formed updates
//     cur-primary and formedViews, then proceeds to try-new.
//   - The response rules are an else-if chain: a process never answers
//     "aborted" about the session it itself still holds pending.
package mr1p

import (
	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/quorum"
	"dynvote/internal/view"
)

// Name is the algorithm identifier used in experiment output.
const Name = "mr1p"

// status is the progress flag a process attaches to its pending
// ambiguous session (thesis §3.2.4).
type status byte

const (
	statusNone status = iota
	// statusSent: the view was proposed (round 4 sent).
	statusSent
	// statusAttempt: all proposals arrived and an attempt was sent.
	statusAttempt
	// statusTryFail: a resolution round concluded the attempt failed.
	statusTryFail
)

func (s status) String() string {
	switch s {
	case statusNone:
		return "none"
	case statusSent:
		return "sent"
	case statusAttempt:
		return "attempt"
	case statusTryFail:
		return "try-fail"
	default:
		return "status(?)"
	}
}

// Algorithm is one process's MR1p instance. It implements
// core.Algorithm; it is not safe for concurrent use.
type Algorithm struct {
	self    proc.ID
	initial view.View

	curPrimary  view.View
	ambiguous   *view.View
	num         int64
	status      status
	inPrimary   bool
	formedViews map[int64]view.View

	// Per-view protocol state, reset on every view change. The tallies
	// live in small sorted-slice tables (see tables.go) that truncate
	// in place, never reallocate: a sweep run triggers thousands of
	// view changes, and first the per-change map churn and then the
	// per-delivery map probes dominated the algorithm's profile.
	cur            view.View
	queryStatuses  queryTable // round-1 reports about our ambiguous session
	resolveFired   bool
	proposals      proc.Set
	attemptSenders senderTable
	tryFailSenders senderTable

	out []core.Message
	// outSpare is Poll's double buffer; see ykd.Algorithm.Poll.
	outSpare []core.Message
}

var (
	_ core.Algorithm         = (*Algorithm)(nil)
	_ core.AmbiguousReporter = (*Algorithm)(nil)
	_ core.PrimaryReporter   = (*Algorithm)(nil)
	_ core.Resetter          = (*Algorithm)(nil)
)

// New returns an MR1p instance for process self. The initial view must
// contain all participating processes; it is the primary everyone
// starts in.
func New(self proc.ID, initial view.View) *Algorithm {
	return &Algorithm{
		self:        self,
		initial:     initial,
		curPrimary:  initial,
		inPrimary:   true,
		formedViews: map[int64]view.View{initial.ID: initial},
		cur:         initial,
	}
}

// Factory returns the host-facing description of MR1p.
func Factory() core.Factory {
	return core.Factory{
		Name:  Name,
		New:   func(self proc.ID, initial view.View) core.Algorithm { return New(self, initial) },
		Codec: Codec{},
	}
}

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return Name }

// InPrimary implements core.Algorithm.
func (a *Algorithm) InPrimary() bool { return a.inPrimary }

// PrimaryMembers returns the membership of the primary this process
// believes current; meaningful while InPrimary is true.
func (a *Algorithm) PrimaryMembers() proc.Set { return a.curPrimary.Members }

// AmbiguousSessionCount reports 0 or 1: MR1p retains at most one
// pending session by construction.
func (a *Algorithm) AmbiguousSessionCount() int {
	if a.ambiguous != nil {
		return 1
	}
	return 0
}

// FormedViewCount reports the size of the formedViews log, for tests
// of the reset optimization.
func (a *Algorithm) FormedViewCount() int { return len(a.formedViews) }

// Poll implements core.Algorithm, draining the send queue. The two
// queue buffers alternate so the steady state allocates nothing; a
// returned slice is valid until the next Poll (the core contract).
func (a *Algorithm) Poll() []core.Message {
	if len(a.out) == 0 {
		return nil
	}
	out := a.out
	a.out, a.outSpare = a.outSpare[:0], out
	return out
}

// Reset implements core.Resetter: it restores the instance to the
// state New(self, initial) would produce, clearing the retained maps
// and truncating the send-queue buffers instead of reallocating them.
func (a *Algorithm) Reset(self proc.ID, initial view.View) {
	a.self = self
	a.initial = initial
	a.curPrimary = initial
	a.ambiguous = nil
	a.num = 0
	a.status = statusNone
	a.inPrimary = true
	clear(a.formedViews)
	a.formedViews[initial.ID] = initial

	a.cur = initial
	a.queryStatuses.reset()
	a.resolveFired = false
	a.proposals = proc.Set{}
	a.attemptSenders.reset()
	a.tryFailSenders.reset()
	a.out = clearMessages(a.out)
	a.outSpare = clearMessages(a.outSpare)
}

// clearMessages truncates a send-queue buffer, dropping the message
// pointers parked in its full backing array so they can be collected.
func clearMessages(out []core.Message) []core.Message {
	out = out[:cap(out)]
	clear(out)
	return out[:0]
}

// ViewChange implements core.Algorithm: reset per-view state, then
// either start resolving the pending session or try the new view.
func (a *Algorithm) ViewChange(v view.View) {
	a.cur = v
	a.inPrimary = false
	a.queryStatuses.reset()
	a.resolveFired = false
	a.proposals = proc.Set{}
	a.attemptSenders.reset()
	a.tryFailSenders.reset()

	if a.ambiguous != nil {
		amb := *a.ambiguous
		a.out = append(a.out, &QueryMessage{
			ViewID: v.ID, Ambiguous: amb, Num: a.num, Status: byte(a.status),
		})
		a.queryStatuses.set(a.self, a.num, a.status)
		a.checkResolveTally()
		return
	}
	a.tryNew()
}

// Deliver implements core.Algorithm.
func (a *Algorithm) Deliver(from proc.ID, m core.Message) {
	switch msg := m.(type) {
	case *QueryMessage:
		if msg.ViewID != a.cur.ID {
			return
		}
		a.onQuery(from, msg)
	case *ReplyMessage:
		if msg.ViewID != a.cur.ID || a.ambiguous == nil || msg.About.ID != a.ambiguous.ID {
			return
		}
		switch msg.Info {
		case InfoFormed:
			a.resolveFormed(msg.About)
		case InfoAborted:
			a.tryNew()
		}
	case *ProposeMessage:
		if msg.ViewID != a.cur.ID || msg.Proposed.ID != a.cur.ID {
			return
		}
		a.proposals = a.proposals.With(from)
		a.checkProposals()
	case *AttemptMessage:
		if msg.ViewID != a.cur.ID {
			return
		}
		a.recordAttempt(from, msg.Target)
	case *TryFailMessage:
		if msg.ViewID != a.cur.ID {
			return
		}
		a.recordTryFail(from, msg.Target)
	}
}

// onQuery answers a round-1 report about session A (thesis: "upon
// receipt of ⟨V, n, s⟩ from some process").
func (a *Algorithm) onQuery(from proc.ID, msg *QueryMessage) {
	about := msg.Ambiguous
	switch {
	case a.ambiguous != nil && about.ID == a.ambiguous.ID:
		// A fellow holder's report; its query doubles as its answer.
		a.queryStatuses.set(from, msg.Num, status(msg.Status))
		a.checkResolveTally()
	case about.Contains(a.self):
		if _, ok := a.formedViews[about.ID]; ok {
			a.out = append(a.out, &ReplyMessage{ViewID: a.cur.ID, About: about, Info: InfoFormed})
		} else {
			// We were a member and moved past it without forming it:
			// it can never have formed.
			a.out = append(a.out, &ReplyMessage{ViewID: a.cur.ID, About: about, Info: InfoAborted})
		}
	}
}

// checkResolveTally fires round 3 once reports from a majority of the
// pending session's members are in: compute the highest-num status,
// downgrade "sent" to try-fail, and broadcast the call.
func (a *Algorithm) checkResolveTally() {
	if a.resolveFired || a.ambiguous == nil {
		return
	}
	amb := *a.ambiguous
	if !quorum.MajorityCount(a.queryStatuses.len(), amb.Size()) {
		return
	}
	a.resolveFired = true

	// Deterministically pick the status of a maximum-num report:
	// smallest process ID among the maxima (bestQuery's ascending scan
	// realizes the tie-break).
	best, _ := a.queryStatuses.bestQuery(amb)
	call := best.status
	if call == statusSent {
		call = statusTryFail
	}
	a.num = best.num + 1
	a.status = call

	switch call {
	case statusAttempt:
		a.out = append(a.out, &AttemptMessage{ViewID: a.cur.ID, Target: amb})
		a.recordAttempt(a.self, amb)
	default: // statusTryFail
		a.out = append(a.out, &TryFailMessage{ViewID: a.cur.ID, Target: amb})
		a.recordTryFail(a.self, amb)
	}
}

func (a *Algorithm) recordAttempt(from proc.ID, target view.View) {
	if !target.Contains(from) {
		return
	}
	s := a.attemptSenders.add(target.ID, from)
	if !quorum.MajorityCount(s.IntersectCount(target.Members), target.Size()) {
		return
	}
	switch {
	case target.ID == a.cur.ID:
		a.resolveFormed(target)
	case a.ambiguous != nil && target.ID == a.ambiguous.ID:
		a.resolveFormed(target)
	}
}

func (a *Algorithm) recordTryFail(from proc.ID, target view.View) {
	if !target.Contains(from) {
		return
	}
	s := a.tryFailSenders.add(target.ID, from)
	if a.ambiguous == nil || target.ID != a.ambiguous.ID {
		return
	}
	if quorum.MajorityCount(s.IntersectCount(target.Members), target.Size()) {
		a.tryNew()
	}
}

// resolveFormed records that view f was formed as a primary. If f is
// the current view this is a formation; otherwise it resolves the
// pending session and moves on to try-new.
func (a *Algorithm) resolveFormed(f view.View) {
	if _, done := a.formedViews[f.ID]; done {
		return
	}
	a.formedViews[f.ID] = f
	a.curPrimary = f
	a.ambiguous = nil
	a.num = 0
	a.status = statusNone

	// The reset optimization of §3.2.4: a formed primary equal to the
	// original view supersedes the entire log. Clear in place; the map
	// is long-lived.
	if f.Members.Equal(a.initial.Members) {
		clear(a.formedViews)
		a.formedViews[f.ID] = f
	}

	if f.ID == a.cur.ID {
		a.inPrimary = true
		return
	}
	a.tryNew()
}

// tryNew proposes the current view as a primary if it is a subquorum
// of the current primary (thesis subroutine try-new).
func (a *Algorithm) tryNew() {
	if !quorum.SubQuorum(a.cur.Members, a.curPrimary.Members) {
		a.ambiguous = nil
		a.num = 0
		a.status = statusNone
		return
	}
	amb := a.cur
	a.ambiguous = &amb
	a.num = 1
	a.status = statusSent
	a.out = append(a.out, &ProposeMessage{ViewID: a.cur.ID, Proposed: a.cur})
	a.proposals = a.proposals.With(a.self)
	a.checkProposals()
}

// checkProposals fires round 5 once proposals from every member of the
// current view are in.
func (a *Algorithm) checkProposals() {
	if a.status != statusSent || a.ambiguous == nil || a.ambiguous.ID != a.cur.ID {
		return
	}
	if !a.cur.Members.SubsetOf(a.proposals) {
		return
	}
	a.status = statusAttempt
	a.num = 2
	a.out = append(a.out, &AttemptMessage{ViewID: a.cur.ID, Target: a.cur})
	a.recordAttempt(a.self, a.cur)
}
