package mr1p_test

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/mr1p"
	"dynvote/internal/onepending"
	"dynvote/internal/proc"
	"dynvote/internal/sim"
	"dynvote/internal/simtest"
)

func isAttempt(m core.Message) bool {
	_, ok := m.(*mr1p.AttemptMessage)
	return ok
}

func isPropose(m core.Message) bool {
	_, ok := m.(*mr1p.ProposeMessage)
	return ok
}

func TestInitialViewIsPrimary(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 5)
	for p := proc.ID(0); p < 5; p++ {
		h.WantPrimary(p, true)
	}
}

func TestMajorityPartitionForms(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 5)
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	for _, p := range []proc.ID{0, 1, 2} {
		h.WantPrimary(p, true)
	}
	for _, p := range []proc.ID{3, 4} {
		h.WantPrimary(p, false)
	}
}

func TestDynamicShrinking(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 8)
	h.Split([]proc.ID{0, 1, 2, 3, 4}, []proc.ID{5, 6, 7})
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4}, []proc.ID{5, 6, 7})
	h.WantPrimary(0, true) // 3 of the previous 5, only 3 of 8 overall
	h.WantPrimary(5, false)
}

// TestResolutionAsFormedWithMajority is the algorithm's namesake
// property: an interrupted attempt whose members reached the attempt
// stage resolves as formed once a MAJORITY of the session's members
// reconvene — where 1-pending would block waiting for all of them.
func TestResolutionAsFormedWithMajority(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 5)
	// {0,1,2} propose; everyone reaches the attempt stage, but all
	// attempt broadcasts are lost: nobody forms, session pending with
	// status=attempt at 0, 1 and 2.
	h.DropTo(isAttempt, 0, 1, 2)
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	h.ClearDrop()
	for _, p := range []proc.ID{0, 1, 2} {
		h.WantPrimary(p, false)
		if got := h.Ambiguous(p); got != 1 {
			t.Fatalf("process %v: ambiguous = %d, want 1", p, got)
		}
	}

	// Only 0 and 1 — a majority of {0,1,2} — reconvene. The resolution
	// rounds conclude "formed", and try-new then forms {0,1}.
	h.Split([]proc.ID{0, 1}, []proc.ID{2}, []proc.ID{3, 4})
	h.WantPrimary(0, true)
	h.WantPrimary(1, true)
	if got := h.Ambiguous(0); got != 0 {
		t.Errorf("ambiguous after resolution = %d, want 0", got)
	}

	// Contrast: 1-pending needs to hear from ALL members of the
	// pending session; with 2 absent it stays blocked.
	op := simtest.New(t, onepending.Factory(), 5)
	op.DropTo(func(m core.Message) bool { return m.Kind() == "ykd/attempt" }, 0, 1, 2)
	op.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	op.ClearDrop()
	op.Split([]proc.ID{0, 1}, []proc.ID{2}, []proc.ID{3, 4})
	op.WantPrimary(0, false)
	op.WantPrimary(1, false)
}

// TestResolutionAsTryFail: an attempt that never got past proposals
// resolves as failed, and progress resumes.
func TestResolutionAsTryFail(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 5)
	// All proposals lost: 0,1,2 hold the session with status=sent.
	h.DropTo(isPropose, 0, 1, 2)
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	h.ClearDrop()
	for _, p := range []proc.ID{0, 1, 2} {
		h.WantPrimary(p, false)
	}

	// A fresh view of the same three: queries reach a majority, the
	// highest status is "sent" → try-fail call → majority → try-new,
	// and this time the formation completes.
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	for _, p := range []proc.ID{0, 1, 2} {
		h.WantPrimary(p, true)
	}
}

// TestAbortedReply: members that moved past an unformed session answer
// "aborted", releasing a stale holder immediately.
func TestAbortedReply(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 5)
	h.DropTo(isPropose, 0, 1, 2)
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	h.ClearDrop()

	// 0 detaches alone (stuck: 1 of 3 is no majority); 1 and 2 resolve
	// the session as failed between themselves and move on.
	h.Split([]proc.ID{0}, []proc.ID{1, 2}, []proc.ID{3, 4})
	if got := h.Ambiguous(0); got != 1 {
		t.Fatalf("detached holder: ambiguous = %d, want 1", got)
	}
	if got := h.Ambiguous(1); got != 0 {
		t.Fatalf("resolved holder: ambiguous = %d, want 0", got)
	}

	// 0 rejoins; 1 and 2 answer its query with "aborted" and the view
	// forms.
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	for _, p := range []proc.ID{0, 1, 2} {
		h.WantPrimary(p, true)
	}
}

// TestFormedReply: a member that recorded the session as formed
// answers "formed"; the stale holder adopts it and catches up.
func TestFormedReply(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 5)
	h.DropTo(isAttempt, 0, 1, 2)
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	h.ClearDrop()

	// 0,1 resolve the session as formed and re-form {0,1}; 2 detaches
	// still holding it.
	h.Split([]proc.ID{0, 1}, []proc.ID{2}, []proc.ID{3, 4})
	h.WantPrimary(0, true)
	if got := h.Ambiguous(2); got != 1 {
		t.Fatalf("process 2: ambiguous = %d, want 1", got)
	}

	// 2 rejoins 0,1: they answer "formed", 2 adopts the session as its
	// primary, and the merged view forms.
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	for _, p := range []proc.ID{0, 1, 2} {
		h.WantPrimary(p, true)
	}
	if got := h.Ambiguous(2); got != 0 {
		t.Errorf("process 2: ambiguous = %d, want 0", got)
	}
}

// TestBlockedWithoutMajorityOfSession: fewer than a majority of the
// pending session's members cannot resolve it, whatever else is
// around.
func TestBlockedWithoutMajorityOfSession(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 5)
	// The full view re-forms... then an attempt over all five is
	// interrupted, leaving the session pending everywhere.
	h.DropTo(isAttempt, 0, 1, 2, 3, 4)
	h.Split([]proc.ID{0, 1, 2, 3, 4})
	h.ClearDrop()

	// {0,1} is only 2 of the pending session's 5 members: blocked,
	// even though it holds the lexically smallest process.
	h.Split([]proc.ID{0, 1}, []proc.ID{2, 3}, []proc.ID{4})
	for p := proc.ID(0); p < 5; p++ {
		h.WantPrimary(p, false)
	}

	// A majority of the session reconvening unblocks it.
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	h.WantPrimary(0, true)
}

// TestFormedViewsResetOptimization: forming a primary equal to the
// original view discards the formedViews log (§3.2.4).
func TestFormedViewsResetOptimization(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 4)
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3})
	h.Split([]proc.ID{0, 1}, []proc.ID{2, 3})
	h.Split([]proc.ID{0, 1, 2, 3})
	alg := h.Cluster.Algorithm(0).(*mr1p.Algorithm)
	if got := alg.FormedViewCount(); got != 1 {
		t.Errorf("FormedViewCount = %d, want 1 after full-view reset", got)
	}
	h.WantPrimary(0, true)
}

func TestStableAgreementAcrossScenarios(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 6)
	h.Split([]proc.ID{0, 1, 2, 3}, []proc.ID{4, 5})
	h.Split([]proc.ID{0, 1}, []proc.ID{2, 3}, []proc.ID{4, 5})
	h.Split([]proc.ID{0, 1, 2, 3, 4, 5})
	if err := sim.CheckStableAgreement(h.Cluster); err != nil {
		t.Error(err)
	}
	h.WantPrimary(0, true)
}

func TestSingletonFormsWhenEligible(t *testing.T) {
	h := simtest.New(t, mr1p.Factory(), 2)
	h.Split([]proc.ID{0}, []proc.ID{1})
	// {0} is half of {0,1} holding the smallest process: primary.
	h.WantPrimary(0, true)
	h.WantPrimary(1, false)
}
