package mr1p_test

import (
	"testing"
	"testing/quick"

	"dynvote/internal/core"
	"dynvote/internal/mr1p"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
)

// Property: MR1p never retains more than one ambiguous session, on any
// random schedule — the algorithm's defining structural invariant.
func TestAtMostOnePendingProperty(t *testing.T) {
	prop := func(seed int64, changes uint8, rateTenths uint8) bool {
		d := sim.NewDriver(mr1p.Factory(), sim.Config{
			Procs:      10,
			Changes:    int(changes%24) + 1,
			MeanRounds: float64(rateTenths%40) / 10,
		}, rng.New(seed))
		res, err := d.Run()
		if err != nil {
			return false
		}
		if res.AmbiguousAtEnd > 1 {
			return false
		}
		for _, n := range res.AmbiguousAtChanges {
			if n > 1 {
				return false
			}
		}
		// Spot-check every process, not just the stats process.
		for p := 0; p < 10; p++ {
			ar := d.Cluster().Algorithm(proc.ID(p)).(core.AmbiguousReporter)
			if ar.AmbiguousSessionCount() > 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if testing.Short() {
		cfg.MaxCount = 12
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the formedViews log stays bounded in long cascading
// executions thanks to the full-view reset optimization (§3.2.4 calls
// the unoptimized version "highly unsuited to continuous usage").
func TestFormedViewsBoundedUnderCascade(t *testing.T) {
	d := sim.NewDriver(mr1p.Factory(), sim.Config{
		Procs: 10, Changes: 6, MeanRounds: 2,
	}, rng.New(77))
	maxLog := 0
	for seg := 0; seg < 60; seg++ {
		d.Heal()
		if _, err := d.Run(); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 10; p++ {
			alg := d.Cluster().Algorithm(proc.ID(p)).(*mr1p.Algorithm)
			if n := alg.FormedViewCount(); n > maxLog {
				maxLog = n
			}
		}
	}
	// 360 changes and ~60 heal-reformations: without the reset the log
	// would hold hundreds of views.
	if maxLog > 40 {
		t.Errorf("formedViews grew to %d entries; reset optimization ineffective", maxLog)
	}
}
