package mr1p

import (
	"fmt"
	"sort"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
	"dynvote/internal/wire"
)

// snapshotVersion guards the durable-state encoding.
const snapshotVersion byte = 1

var _ core.Snapshotter = (*Algorithm)(nil)

// Snapshot implements core.Snapshotter: it encodes MR1p's durable
// state — cur-primary, the pending ambiguous session with its num and
// status, and the formedViews log (§3.2.4).
func (a *Algorithm) Snapshot() ([]byte, error) {
	var w wire.Writer
	w.Byte(snapshotVersion)
	w.Varint(int64(a.self))
	encodeView(&w, a.initial)
	encodeView(&w, a.curPrimary)
	if a.ambiguous != nil {
		w.Bool(true)
		encodeView(&w, *a.ambiguous)
		w.Varint(a.num)
		w.Byte(byte(a.status))
	} else {
		w.Bool(false)
	}
	ids := make([]int64, 0, len(a.formedViews))
	for id := range a.formedViews {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		encodeView(&w, a.formedViews[id])
	}
	return w.Bytes(), nil
}

// Restore implements core.Snapshotter. The receiver must have been
// created with New for the same process and initial view.
func (a *Algorithm) Restore(data []byte) error {
	r := wire.NewReader(data)
	if v := r.Byte(); v != snapshotVersion {
		return fmt.Errorf("mr1p: snapshot version %d not supported", v)
	}
	if got := proc.ID(r.Varint()); got != a.self {
		return fmt.Errorf("mr1p: snapshot belongs to %v, this instance is %v", got, a.self)
	}
	initial := decodeView(r)
	if initial.ID != a.initial.ID || !initial.Members.Equal(a.initial.Members) {
		return fmt.Errorf("mr1p: snapshot initial view %v does not match %v", initial, a.initial)
	}

	curPrimary := decodeView(r)
	var ambiguous *view.View
	var num int64
	var st status
	if r.Bool() {
		v := decodeView(r)
		ambiguous = &v
		num = r.Varint()
		st = status(r.Byte())
	}
	nf := r.Uvarint()
	if nf > 1<<16 {
		return fmt.Errorf("mr1p: snapshot formedViews count %d too large", nf)
	}
	formed := make(map[int64]view.View, nf)
	for i := uint64(0); i < nf && r.Err() == nil; i++ {
		v := decodeView(r)
		formed[v.ID] = v
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("mr1p: restore: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("mr1p: restore: %d trailing bytes", r.Remaining())
	}

	a.curPrimary = curPrimary
	a.ambiguous = ambiguous
	a.num = num
	a.status = st
	a.formedViews = formed
	a.inPrimary = false
	a.out = nil
	// Per-view tallies restart empty; the next view change re-queries.
	a.queryStatuses.reset()
	a.resolveFired = false
	a.proposals = proc.Set{}
	a.attemptSenders.reset()
	a.tryFailSenders.reset()
	return nil
}
