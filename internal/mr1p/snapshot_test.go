package mr1p_test

import (
	"testing"

	"dynvote/internal/mr1p"
	"dynvote/internal/proc"
	"dynvote/internal/view"
)

func initialView(n int) view.View { return view.View{ID: 0, Members: proc.Universe(n)} }

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	a := mr1p.New(1, initialView(4))
	// Leave a pending session behind: propose a view and crash before
	// it completes.
	a.ViewChange(view.View{ID: 1, Members: proc.NewSet(0, 1, 2)})
	a.Poll()
	if a.AmbiguousSessionCount() != 1 {
		t.Fatalf("setup: ambiguous = %d, want 1 (proposal pending)", a.AmbiguousSessionCount())
	}

	data, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := mr1p.New(1, initialView(4))
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	if b.InPrimary() {
		t.Error("restored instance must not be in primary")
	}
	if b.AmbiguousSessionCount() != 1 {
		t.Errorf("ambiguous = %d, want 1", b.AmbiguousSessionCount())
	}
	if b.FormedViewCount() != a.FormedViewCount() {
		t.Errorf("formedViews = %d, want %d", b.FormedViewCount(), a.FormedViewCount())
	}
}

func TestRestoreRejectsMismatches(t *testing.T) {
	a := mr1p.New(1, initialView(4))
	data, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wrongSelf := mr1p.New(2, initialView(4))
	if err := wrongSelf.Restore(data); err == nil {
		t.Error("restore of another process's snapshot accepted")
	}
	wrongWorld := mr1p.New(1, initialView(6))
	if err := wrongWorld.Restore(data); err == nil {
		t.Error("restore with different initial view accepted")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	a := mr1p.New(0, initialView(3))
	good, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{},
		{42},
		good[:len(good)-1],
		append(append([]byte{}, good...), 1),
	}
	for i, data := range cases {
		b := mr1p.New(0, initialView(3))
		if err := b.Restore(data); err == nil {
			t.Errorf("case %d: garbage snapshot accepted", i)
		}
	}
}
