package mr1p

import (
	"dynvote/internal/proc"
	"dynvote/internal/view"
)

// Per-view tally tables. The thesis's resolution protocol tallies
// round-1 reports by sender and attempt/try-fail calls by target view;
// both tallies previously lived in maps that were cleared on every view
// change. A soak triggers a view change per connectivity change, and
// the map probes (hash, bucket walk) on every delivery dominated MR1p's
// CPU profile once the allocation work was gone. The tables below are
// small sorted slices — a resolution round references one or two
// target views, and a view holds at most the system's process count of
// reporters — so a lookup is a binary search over a few cache lines,
// insertion keeps order with a memmove, and clearing is a length
// truncation that retains the backing array across view changes. The
// insertion points are found by binary search so the tables stay cheap
// at the scaling sweep's 128–256 reporters, not just the thesis's 64.

// queryEntry is one round-1 report: who sent it and what they knew.
type queryEntry struct {
	from   proc.ID
	num    int64
	status status
}

// queryTable records round-1 reports about the pending ambiguous
// session, sorted by sender ID.
type queryTable struct {
	entries []queryEntry
}

// reset empties the table, keeping capacity.
func (t *queryTable) reset() { t.entries = t.entries[:0] }

// len reports the number of distinct reporters.
func (t *queryTable) len() int { return len(t.entries) }

// set inserts or overwrites the report from the given sender,
// preserving ascending sender order.
func (t *queryTable) set(from proc.ID, num int64, s status) {
	// Binary search for the first entry with sender ≥ from.
	i, hi := 0, len(t.entries)
	for i < hi {
		mid := int(uint(i+hi) >> 1)
		if t.entries[mid].from < from {
			i = mid + 1
		} else {
			hi = mid
		}
	}
	if i < len(t.entries) && t.entries[i].from == from {
		t.entries[i].num, t.entries[i].status = num, s
		return
	}
	t.entries = append(t.entries, queryEntry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = queryEntry{from: from, num: num, status: s}
}

// senderEntry tallies the senders of attempt or try-fail calls that
// referenced one target view.
type senderEntry struct {
	id      int64
	senders proc.Set
}

// senderTable maps target-view IDs to the set of processes heard from,
// sorted by view ID.
type senderTable struct {
	entries []senderEntry
}

// reset empties the table, keeping capacity. Retained proc.Sets are
// plain values; truncation drops them without pinning anything.
func (t *senderTable) reset() { t.entries = t.entries[:0] }

// add records one sender for the target view and returns the updated
// sender set.
func (t *senderTable) add(id int64, p proc.ID) proc.Set {
	// Binary search for the first entry with view ID ≥ id.
	i, hi := 0, len(t.entries)
	for i < hi {
		mid := int(uint(i+hi) >> 1)
		if t.entries[mid].id < id {
			i = mid + 1
		} else {
			hi = mid
		}
	}
	if i < len(t.entries) && t.entries[i].id == id {
		t.entries[i].senders.Add(p)
		return t.entries[i].senders
	}
	t.entries = append(t.entries, senderEntry{})
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = senderEntry{id: id, senders: proc.NewSet(p)}
	return t.entries[i].senders
}

// bestQuery picks the resolution call deterministically: among the
// members of amb that reported, the status of the maximum-num report,
// breaking num ties toward the smallest process ID. Entries iterate in
// ascending sender order and only a strictly larger num displaces the
// pick, which realizes the tie-break without a second pass.
func (t *queryTable) bestQuery(amb view.View) (queryEntry, bool) {
	best := queryEntry{from: proc.None, num: -1}
	for _, e := range t.entries {
		if !amb.Contains(e.from) {
			continue
		}
		if e.num > best.num {
			best = e
		}
	}
	return best, best.from != proc.None
}
