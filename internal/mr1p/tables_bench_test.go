package mr1p

import (
	"testing"

	"dynvote/internal/proc"
	"dynvote/internal/view"
)

// The sorted-slice tables replaced per-view maps on MR1p's delivery
// hot path. These benchmarks keep the replacement honest: the slice
// variants must beat a map doing the same work at view-sized entry
// counts (≤ 64), including the per-view-change clear.

// mapQueryInfo mirrors the pre-conversion map-based tally, kept here
// as the benchmark baseline.
type mapQueryInfo struct {
	num    int64
	status status
}

func BenchmarkQueryTableSet(b *testing.B) {
	var t queryTable
	for i := 0; i < b.N; i++ {
		t.reset()
		for p := proc.ID(0); p < 24; p++ {
			t.set(p, int64(i), statusNone)
		}
	}
}

func BenchmarkQueryMapSet(b *testing.B) {
	m := make(map[proc.ID]mapQueryInfo, 24)
	for i := 0; i < b.N; i++ {
		clear(m)
		for p := proc.ID(0); p < 24; p++ {
			m[p] = mapQueryInfo{num: int64(i), status: statusNone}
		}
	}
}

func BenchmarkBestQuery(b *testing.B) {
	var t queryTable
	for p := proc.ID(0); p < 24; p++ {
		t.set(p, int64(p%7), statusNone)
	}
	amb := view.View{ID: 1, Members: proc.Universe(24)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.bestQuery(amb); !ok {
			b.Fatal("no best query")
		}
	}
}

func BenchmarkSenderTableAdd(b *testing.B) {
	var t senderTable
	for i := 0; i < b.N; i++ {
		t.reset()
		// Two target views in flight, 24 senders each — the shape a
		// resolution round actually produces.
		for p := proc.ID(0); p < 24; p++ {
			t.add(100, p)
			t.add(101, p)
		}
	}
}

func BenchmarkSenderMapAdd(b *testing.B) {
	m := make(map[int64]proc.Set, 2)
	for i := 0; i < b.N; i++ {
		clear(m)
		for p := proc.ID(0); p < 24; p++ {
			m[100] = m[100].With(p)
			m[101] = m[101].With(p)
		}
	}
}
