// Package naive implements dynamic voting WITHOUT agreement — the
// broken approach whose failure motivates the entire thesis (Figure
// 3-1). Each process exchanges one round of state and then unilaterally
// declares the view a primary if it holds a subquorum of the newest
// primary it knows. Without the second, attempt round, members can
// disagree about whether a primary was formed, and a later partition
// can yield two concurrent primaries.
//
// It exists so the simulator's safety checker has something real to
// catch (see the package tests and examples/partitiondemo); it must
// never be used for anything else.
package naive

import (
	"fmt"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/quorum"
	"dynvote/internal/view"
	"dynvote/internal/wire"
)

// Name is the algorithm identifier.
const Name = "naive-no-agreement"

// Algorithm is the naive dynamic voting rule of Figure 3-1.
type Algorithm struct {
	self proc.ID

	lastPrimary view.Session
	counter     int64
	inPrimary   bool

	cur       view.View
	states    map[proc.ID]view.Session
	statesGot int
	out       []core.Message
}

var (
	_ core.Algorithm       = (*Algorithm)(nil)
	_ core.PrimaryReporter = (*Algorithm)(nil)
	_ core.Resetter        = (*Algorithm)(nil)
)

// New returns an instance for process self.
func New(self proc.ID, initial view.View) *Algorithm {
	return &Algorithm{
		self:        self,
		lastPrimary: view.NewSession(0, initial),
		inPrimary:   true,
		cur:         initial,
		states:      make(map[proc.ID]view.Session),
	}
}

// Factory returns the host-facing description.
func Factory() core.Factory {
	return core.Factory{
		Name:  Name,
		New:   func(self proc.ID, initial view.View) core.Algorithm { return New(self, initial) },
		Codec: Codec{},
	}
}

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return Name }

// InPrimary implements core.Algorithm.
func (a *Algorithm) InPrimary() bool { return a.inPrimary }

// PrimaryMembers implements core.PrimaryReporter.
func (a *Algorithm) PrimaryMembers() proc.Set { return a.lastPrimary.Members }

// Reset implements core.Resetter: back to the just-constructed state,
// reusing the retained states map.
func (a *Algorithm) Reset(self proc.ID, initial view.View) {
	a.self = self
	a.lastPrimary = view.NewSession(0, initial)
	a.counter = 0
	a.inPrimary = true
	a.cur = initial
	clear(a.states)
	a.statesGot = 0
	a.out = a.out[:0]
}

// ViewChange broadcasts the single state round. The states map is
// cleared in place rather than reallocated per view.
func (a *Algorithm) ViewChange(v view.View) {
	a.cur = v
	a.inPrimary = false
	clear(a.states)
	a.states[a.self] = a.lastPrimary
	a.statesGot = 1
	a.out = append(a.out, &StateMessage{ViewID: v.ID, LastPrimary: a.lastPrimary})
	a.maybeDeclare()
}

// Deliver implements core.Algorithm.
func (a *Algorithm) Deliver(from proc.ID, m core.Message) {
	msg, ok := m.(*StateMessage)
	if !ok || msg.ViewID != a.cur.ID || !a.cur.Contains(from) {
		return
	}
	if _, dup := a.states[from]; dup {
		return
	}
	a.states[from] = msg.LastPrimary
	a.statesGot++
	a.maybeDeclare()
}

// maybeDeclare is the fatal shortcut: once all states are in, the
// process declares the primary immediately, ASSUMING everyone else
// will too — precisely the assumption Figure 3-1 breaks.
func (a *Algorithm) maybeDeclare() {
	if a.statesGot != a.cur.Size() {
		return
	}
	newest := a.lastPrimary
	for _, s := range a.states {
		if s.Number > newest.Number {
			newest = s
		}
	}
	if quorum.SubQuorum(a.cur.Members, newest.Members) {
		a.counter = newest.Number + 1
		a.lastPrimary = view.NewSession(a.counter, a.cur)
		a.inPrimary = true
	}
}

// Poll implements core.Algorithm.
func (a *Algorithm) Poll() []core.Message {
	if len(a.out) == 0 {
		return nil
	}
	out := a.out
	a.out = nil
	return out
}

// StateMessage is the naive algorithm's single-round exchange.
type StateMessage struct {
	ViewID      int64
	LastPrimary view.Session
}

// Kind implements core.Message.
func (m *StateMessage) Kind() string { return "naive/state" }

// Codec encodes and decodes naive messages.
type Codec struct{}

var _ core.Codec = Codec{}

// Encode implements core.Codec.
func (Codec) Encode(m core.Message) ([]byte, error) {
	msg, ok := m.(*StateMessage)
	if !ok {
		return nil, fmt.Errorf("naive: cannot encode %T", m)
	}
	var w wire.Writer
	w.Varint(msg.ViewID)
	w.Session(msg.LastPrimary)
	return w.Bytes(), nil
}

// Decode implements core.Codec.
func (Codec) Decode(b []byte) (core.Message, error) {
	r := wire.NewReader(b)
	m := &StateMessage{ViewID: r.Varint(), LastPrimary: r.Session()}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("naive: decode: %w", err)
	}
	return m, nil
}
