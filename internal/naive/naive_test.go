package naive_test

import (
	"errors"
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/naive"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
)

// TestFigure31SplitBrain proves the naive approach is actually broken:
// replaying the exact Figure 3-1 scenario yields two concurrent
// primary components, and the safety checker catches it. This is the
// failure the dynamic voting algorithms exist to prevent — compare
// TestFigure31Scenario in the ykd package, where all of them pass.
func TestFigure31SplitBrain(t *testing.T) {
	const a, b, c, d, e = 0, 1, 2, 3, 4
	cl := sim.NewCluster(naive.Factory(), 5)
	r := rng.New(3)

	// Partition into {a,b,c} and {d,e}; c misses one state message, so
	// a and b declare {a,b,c} while c does not.
	cl.Drop = func(from, to proc.ID, m core.Message) bool {
		return to == c && from == a // c never hears from a
	}
	cl.Collect(r)
	cl.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(a, b, c)},
		view.View{ID: 2, Members: proc.NewSet(d, e)})
	if _, err := cl.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}
	cl.Drop = nil
	if !cl.Algorithm(a).InPrimary() || cl.Algorithm(c).InPrimary() {
		t.Fatal("setup failed: a,b should have declared without c")
	}

	// c joins d,e. {c,d,e} holds a majority of c's newest known
	// primary (the original five) and declares — while {a,b} also
	// declares as a majority of {a,b,c}. Split brain.
	cl.Collect(r)
	cl.IssueViews(r, view.View{ID: 3, Members: proc.NewSet(a, b)},
		view.View{ID: 4, Members: proc.NewSet(c, d, e)})
	if _, err := cl.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}

	err := sim.CheckOnePrimary(cl)
	if err == nil {
		t.Fatal("the naive approach escaped the Figure 3-1 trap — it should not")
	}
	var se *sim.SafetyError
	if !errors.As(err, &se) {
		t.Fatalf("error type = %T", err)
	}
}

// TestNaiveWorksWithoutInterruptions: absent interruptions the naive
// rule behaves like dynamic voting — that is what makes it tempting.
func TestNaiveWorksWithoutInterruptions(t *testing.T) {
	cl := sim.NewCluster(naive.Factory(), 5)
	r := rng.New(1)
	cl.Collect(r)
	cl.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 1, 2)},
		view.View{ID: 2, Members: proc.NewSet(3, 4)})
	if _, err := cl.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckOnePrimary(cl); err != nil {
		t.Fatal(err)
	}
	if !cl.Algorithm(0).InPrimary() || cl.Algorithm(3).InPrimary() {
		t.Error("clean partition should behave like dynamic voting")
	}
	// Shrink further: {0,1} is a majority of {0,1,2}.
	cl.Collect(r)
	cl.IssueViews(r, view.View{ID: 3, Members: proc.NewSet(0, 1)},
		view.View{ID: 4, Members: proc.NewSet(2)})
	if _, err := cl.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}
	if !cl.Algorithm(0).InPrimary() {
		t.Error("shrinking should keep the primary")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := &naive.StateMessage{ViewID: 9, LastPrimary: view.Session{Number: 3, Members: proc.NewSet(0, 2)}}
	b, err := naive.Codec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.Codec{}.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	gm := got.(*naive.StateMessage)
	if gm.ViewID != 9 || !gm.LastPrimary.Equal(m.LastPrimary) {
		t.Errorf("round trip = %+v", gm)
	}
	if _, err := (naive.Codec{}).Decode([]byte{}); err == nil {
		t.Error("empty input accepted")
	}
	if m.Kind() != "naive/state" {
		t.Errorf("Kind = %q", m.Kind())
	}
}
