// Package netsim models network connectivity for the simulation study
// (thesis §2.2): the process set is partitioned into disjoint
// components, and a connectivity change is either a partition — one
// component splits into two, with the fraction moved chosen at random
// — or a merge of two components, each equally likely when possible.
package netsim

import (
	"fmt"

	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/view"
)

// ChangeKind distinguishes the two kinds of connectivity change.
type ChangeKind int

const (
	// Partition splits one component into two.
	Partition ChangeKind = iota + 1
	// Merge unifies two components into one.
	Merge
	// Crash permanently removes a process (thesis §5.1's "one of the
	// processes from the original view crashes" failure model).
	Crash
)

// String returns "partition", "merge" or "crash".
func (k ChangeKind) String() string {
	switch k {
	case Partition:
		return "partition"
	case Merge:
		return "merge"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// Change describes one applied connectivity change: its kind and the
// new views issued to the affected components. Every process in an
// affected component receives a new view, exactly as a group
// membership service would report.
type Change struct {
	Kind     ChangeKind
	NewViews []view.View
}

// Topology tracks the current partition of the process set into
// connected components and issues fresh view identifiers. Crashed
// processes stay in the model as permanently isolated singletons that
// no future change touches.
type Topology struct {
	universe   proc.Set
	comps      []proc.Set
	crashed    proc.Set
	nextViewID int64

	// Index scratch reused by liveComponents and randomPartition so the
	// per-change hot path stays allocation-free at any process count.
	// Both are consumed before the next topology call, never retained.
	liveScratch  []int
	splitScratch []int

	// Carve scratch for randomPartition: the member-by-member split
	// mutates Bits accumulators and freezes the results, so a partition
	// of a kilo-process component costs two Set allocations (the new
	// components) instead of one copy-on-write clone per moved process.
	partRemaining proc.Bits
	partMoved     proc.Bits
}

// New returns a topology over processes 0..n-1, fully connected, with
// the initial view carrying ID 0.
func New(n int) *Topology {
	u := proc.Universe(n)
	return &Topology{
		universe:   u,
		comps:      []proc.Set{u},
		nextViewID: 1,
	}
}

// Reset restores the topology to its just-constructed state — one
// fully connected component, no crashes, view IDs starting over at 1 —
// reusing the components slice. A reset topology issues exactly the
// same view IDs for the same change sequence as a fresh one, which the
// run-reuse lifecycle in package sim depends on.
func (t *Topology) Reset() {
	t.comps = append(t.comps[:0], t.universe)
	t.crashed = proc.Set{}
	t.nextViewID = 1
}

// InitialView returns the all-connected view every process starts in.
func (t *Topology) InitialView() view.View {
	return view.View{ID: 0, Members: t.universe}
}

// Universe returns the full process set.
func (t *Topology) Universe() proc.Set { return t.universe }

// Components returns the current components. The returned slice is a
// copy; the sets themselves are immutable.
func (t *Topology) Components() []proc.Set {
	out := make([]proc.Set, len(t.comps))
	copy(out, t.comps)
	return out
}

// NumComponents returns the current number of components.
func (t *Topology) NumComponents() int { return len(t.comps) }

// ComponentOf returns the component containing p.
func (t *Topology) ComponentOf(p proc.ID) proc.Set {
	for _, c := range t.comps {
		if c.Contains(p) {
			return c
		}
	}
	return proc.Set{}
}

// SameComponent reports whether a and b are currently connected.
func (t *Topology) SameComponent(a, b proc.ID) bool {
	return t.ComponentOf(a).Contains(b)
}

// CanPartition reports whether some component has at least two
// members.
func (t *Topology) CanPartition() bool {
	for _, c := range t.comps {
		if c.Count() >= 2 {
			return true
		}
	}
	return false
}

// CanMerge reports whether there are at least two live components.
func (t *Topology) CanMerge() bool { return len(t.liveComponents()) >= 2 }

// Crashed returns the set of crashed processes.
func (t *Topology) Crashed() proc.Set { return t.crashed }

// liveComponents returns indices of components containing at least
// one non-crashed process; only these participate in future changes.
// The returned slice aliases a scratch buffer valid until the next
// call.
func (t *Topology) liveComponents() []int {
	out := t.liveScratch[:0]
	for i, c := range t.comps {
		// Components are non-empty (CheckInvariant), so "not a subset
		// of the crashed set" is exactly "has a live member".
		if !c.SubsetOf(t.crashed) {
			out = append(out, i)
		}
	}
	t.liveScratch = out
	return out
}

// CrashProcess permanently removes p: it is isolated into its own
// component, which no later partition or merge will touch, and the
// survivors of its component receive a new view. The crashed process
// itself receives nothing — it is gone, which is precisely what makes
// this failure model interesting (thesis §4.1: "permanent absence of
// some member of the latest ambiguous session may cause eternal
// blocking"). It reports false if p is unknown or already crashed.
func (t *Topology) CrashProcess(p proc.ID) (Change, bool) {
	if !t.universe.Contains(p) || t.crashed.Contains(p) {
		return Change{}, false
	}
	t.crashed = t.crashed.With(p)
	for i, c := range t.comps {
		if !c.Contains(p) {
			continue
		}
		rest := c.Without(p)
		t.comps[i] = rest
		t.comps = append(t.comps, proc.NewSet(p))
		ch := Change{Kind: Crash}
		if !rest.Empty() {
			ch.NewViews = []view.View{{ID: t.issueID(), Members: rest}}
		}
		if rest.Empty() {
			// p was already alone; remove the now-duplicate empty slot.
			t.comps[i] = t.comps[len(t.comps)-1]
			t.comps = t.comps[:len(t.comps)-1]
		}
		return ch, true
	}
	return Change{}, false
}

// Recover returns a crashed process to service: it stays in its
// isolated singleton component but becomes eligible for merges again.
// It reports false if p was not crashed.
func (t *Topology) Recover(p proc.ID) (view.View, bool) {
	if !t.crashed.Contains(p) {
		return view.View{}, false
	}
	t.crashed = t.crashed.Without(p)
	return view.View{ID: t.issueID(), Members: proc.NewSet(p)}, true
}

// CrashRandomLive crashes a uniformly chosen non-crashed process.
func (t *Topology) CrashRandomLive(r *rng.Source) (Change, bool) {
	live := t.universe.Diff(t.crashed)
	if live.Empty() {
		return Change{}, false
	}
	return t.CrashProcess(live.Nth(r.Intn(live.Count())))
}

// RandomChange applies one connectivity change drawn from r: a
// partition or a merge with equal likelihood when both are possible,
// otherwise whichever is possible (thesis §2.2). It reports false if
// neither is possible (a single-process system).
func (t *Topology) RandomChange(r *rng.Source) (Change, bool) {
	canP, canM := t.CanPartition(), t.CanMerge()
	switch {
	case canP && canM:
		if r.Bool() {
			return t.randomPartition(r), true
		}
		return t.randomMerge(r), true
	case canP:
		return t.randomPartition(r), true
	case canM:
		return t.randomMerge(r), true
	default:
		return Change{}, false
	}
}

// randomPartition splits a uniformly chosen component with ≥2 members.
// The number of processes moved to the new component is uniform in
// [1, size-1] and the moved subset is uniform among subsets of that
// size ("partitions do not necessarily happen evenly — the percentage
// of processes which are moved ... is determined at random").
func (t *Topology) randomPartition(r *rng.Source) Change {
	// Choose uniformly among splittable components.
	splittable := t.splitScratch[:0]
	for i, c := range t.comps {
		if c.Count() >= 2 {
			splittable = append(splittable, i)
		}
	}
	t.splitScratch = splittable
	idx := splittable[r.Intn(len(splittable))]
	comp := t.comps[idx]
	size := comp.Count()

	// Carve on Bits accumulators: Bits.Nth selects exactly like
	// Set.Nth, so the rng draw sequence — one Intn per moved process,
	// bounded by the shrinking remainder — is identical to the historic
	// Set-based loop and the pinned golden streams.
	moveCount := 1 + r.Intn(size-1)
	rem, mov := &t.partRemaining, &t.partMoved
	rem.Load(comp)
	mov.Reset(int(t.universe.Max()) + 1)
	for i := 0; i < moveCount; i++ {
		pick := rem.Nth(r.Intn(rem.Count()))
		mov.Add(pick)
		rem.Remove(pick)
	}
	remaining, moved := rem.Freeze(), mov.Freeze()

	t.comps[idx] = remaining
	t.comps = append(t.comps, moved)

	return Change{
		Kind: Partition,
		NewViews: []view.View{
			{ID: t.issueID(), Members: remaining},
			{ID: t.issueID(), Members: moved},
		},
	}
}

// randomMerge unifies two distinct uniformly chosen live components.
func (t *Topology) randomMerge(r *rng.Source) Change {
	live := t.liveComponents()
	li := r.Intn(len(live))
	lj := r.Intn(len(live) - 1)
	if lj >= li {
		lj++
	}
	i, j := live[li], live[lj]
	merged := t.comps[i].Union(t.comps[j])

	// Remove the higher index first so the lower stays valid.
	if i < j {
		i, j = j, i
	}
	t.comps[i] = t.comps[len(t.comps)-1]
	t.comps = t.comps[:len(t.comps)-1]
	if j < len(t.comps) {
		t.comps[j] = merged
	} else {
		t.comps = append(t.comps, merged)
	}
	// j == len(t.comps) can only happen if j was the moved last slot;
	// since j < i ≤ len-1, j is always in range after the removal.

	return Change{
		Kind:     Merge,
		NewViews: []view.View{{ID: t.issueID(), Members: merged}},
	}
}

// MergeAll reconnects every live component into one, modeling the
// network healing after a burst of turbulence (a failed router
// returning to service). Crashed processes stay isolated. It reports
// false — issuing no view — when nothing needs merging.
func (t *Topology) MergeAll() (Change, bool) {
	live := t.liveComponents()
	if len(live) <= 1 {
		return Change{}, false
	}
	merged := t.universe.Diff(t.crashed)
	t.comps = append(t.comps[:0], merged)
	t.crashed.ForEach(func(p proc.ID) { t.comps = append(t.comps, proc.NewSet(p)) })
	return Change{
		Kind:     Merge,
		NewViews: []view.View{{ID: t.issueID(), Members: merged}},
	}, true
}

func (t *Topology) issueID() int64 {
	id := t.nextViewID
	t.nextViewID++
	return id
}

// CheckInvariant verifies that the components form a partition of the
// universe: disjoint, non-empty, covering. Used by tests and the
// simulation safety checker.
func (t *Topology) CheckInvariant() error {
	var union proc.Set
	for i, c := range t.comps {
		if c.Empty() {
			return fmt.Errorf("netsim: component %d is empty", i)
		}
		if !union.Disjoint(c) {
			return fmt.Errorf("netsim: component %d overlaps another", i)
		}
		union = union.Union(c)
	}
	if !union.Equal(t.universe) {
		return fmt.Errorf("netsim: components cover %v, want %v", union, t.universe)
	}
	return nil
}
