package netsim

import (
	"testing"

	"dynvote/internal/proc"
	"dynvote/internal/rng"
)

func TestNewTopology(t *testing.T) {
	topo := New(5)
	if topo.NumComponents() != 1 {
		t.Fatalf("NumComponents = %d, want 1", topo.NumComponents())
	}
	if got := topo.InitialView(); got.ID != 0 || got.Size() != 5 {
		t.Errorf("InitialView = %v", got)
	}
	if err := topo.CheckInvariant(); err != nil {
		t.Error(err)
	}
	if !topo.SameComponent(0, 4) {
		t.Error("all processes should start connected")
	}
}

func TestCanPartitionCanMerge(t *testing.T) {
	topo := New(2)
	if !topo.CanPartition() || topo.CanMerge() {
		t.Error("fresh 2-process topology: partition possible, merge not")
	}
	r := rng.New(1)
	ch, ok := topo.RandomChange(r)
	if !ok || ch.Kind != Partition {
		t.Fatalf("RandomChange = %v, %v; want forced partition", ch, ok)
	}
	if topo.CanPartition() || !topo.CanMerge() {
		t.Error("after full split: merge possible, partition not")
	}
	ch, ok = topo.RandomChange(r)
	if !ok || ch.Kind != Merge {
		t.Fatalf("RandomChange = %v, %v; want forced merge", ch, ok)
	}
}

func TestSingleProcessNoChanges(t *testing.T) {
	topo := New(1)
	if _, ok := topo.RandomChange(rng.New(1)); ok {
		t.Error("single-process topology admits no changes")
	}
}

func TestPartitionViews(t *testing.T) {
	topo := New(6)
	r := rng.New(42)
	ch, ok := topo.RandomChange(r)
	if !ok {
		t.Fatal("change failed")
	}
	if ch.Kind != Partition {
		// Forced: only one component exists.
		t.Fatalf("first change on connected topology must be partition, got %v", ch.Kind)
	}
	if len(ch.NewViews) != 2 {
		t.Fatalf("partition issued %d views, want 2", len(ch.NewViews))
	}
	a, b := ch.NewViews[0].Members, ch.NewViews[1].Members
	if !a.Disjoint(b) {
		t.Error("partition halves overlap")
	}
	if !a.Union(b).Equal(proc.Universe(6)) {
		t.Error("partition halves do not cover the component")
	}
	if a.Empty() || b.Empty() {
		t.Error("partition produced an empty side")
	}
	if ch.NewViews[0].ID == ch.NewViews[1].ID || ch.NewViews[0].ID == 0 {
		t.Error("views must carry fresh distinct IDs")
	}
}

func TestMergeViews(t *testing.T) {
	topo := New(4)
	r := rng.New(7)
	// Split first so a merge becomes possible.
	if _, ok := topo.RandomChange(r); !ok {
		t.Fatal("setup partition failed")
	}
	for {
		ch, ok := topo.RandomChange(r)
		if !ok {
			t.Fatal("change failed")
		}
		if ch.Kind != Merge {
			continue
		}
		if len(ch.NewViews) != 1 {
			t.Fatalf("merge issued %d views, want 1", len(ch.NewViews))
		}
		if err := topo.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
		return
	}
}

func TestInvariantUnderManyChanges(t *testing.T) {
	topo := New(16)
	r := rng.New(99)
	for i := 0; i < 5000; i++ {
		ch, ok := topo.RandomChange(r)
		if !ok {
			t.Fatalf("change %d failed", i)
		}
		if err := topo.CheckInvariant(); err != nil {
			t.Fatalf("change %d (%v): %v", i, ch.Kind, err)
		}
		// Views issued must exactly correspond to current components.
		for _, v := range ch.NewViews {
			if !topo.ComponentOf(v.Members.Smallest()).Equal(v.Members) {
				t.Fatalf("change %d: view %v does not match a component", i, v)
			}
		}
	}
}

func TestViewIDsStrictlyIncrease(t *testing.T) {
	topo := New(8)
	r := rng.New(3)
	last := int64(0)
	for i := 0; i < 200; i++ {
		ch, ok := topo.RandomChange(r)
		if !ok {
			t.Fatal("change failed")
		}
		for _, v := range ch.NewViews {
			if v.ID <= last {
				t.Fatalf("view ID %d not greater than previous %d", v.ID, last)
			}
			last = v.ID
		}
	}
}

func TestBothChangeKindsOccur(t *testing.T) {
	topo := New(8)
	r := rng.New(5)
	seen := map[ChangeKind]int{}
	for i := 0; i < 500; i++ {
		ch, ok := topo.RandomChange(r)
		if !ok {
			t.Fatal("change failed")
		}
		seen[ch.Kind]++
	}
	if seen[Partition] == 0 || seen[Merge] == 0 {
		t.Errorf("change kinds unbalanced: %v", seen)
	}
}

func TestPartitionSizesVary(t *testing.T) {
	// The thesis requires uneven partitions: over many splits of a
	// 16-process component, more than one moved-size must occur.
	sizes := map[int]bool{}
	for seed := int64(0); seed < 30; seed++ {
		topo := New(16)
		ch, ok := topo.RandomChange(rng.New(seed))
		if !ok || ch.Kind != Partition {
			t.Fatal("expected partition")
		}
		sizes[ch.NewViews[1].Members.Count()] = true
	}
	if len(sizes) < 3 {
		t.Errorf("partition sizes too uniform: %v", sizes)
	}
}

func TestMergeAll(t *testing.T) {
	topo := New(8)
	if _, ok := topo.MergeAll(); ok {
		t.Error("MergeAll on a connected topology should be a no-op")
	}
	r := rng.New(4)
	for topo.NumComponents() < 3 {
		if _, ok := topo.RandomChange(r); !ok {
			t.Fatal("change failed")
		}
	}
	ch, ok := topo.MergeAll()
	if !ok || ch.Kind != Merge {
		t.Fatalf("MergeAll = %+v, %v", ch, ok)
	}
	if len(ch.NewViews) != 1 || !ch.NewViews[0].Members.Equal(proc.Universe(8)) {
		t.Errorf("MergeAll view = %v", ch.NewViews)
	}
	if topo.NumComponents() != 1 {
		t.Errorf("NumComponents = %d after MergeAll", topo.NumComponents())
	}
	if err := topo.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestCrashProcess(t *testing.T) {
	topo := New(5)
	ch, ok := topo.CrashProcess(2)
	if !ok || ch.Kind != Crash {
		t.Fatalf("CrashProcess = %+v, %v", ch, ok)
	}
	if len(ch.NewViews) != 1 || !ch.NewViews[0].Members.Equal(proc.NewSet(0, 1, 3, 4)) {
		t.Errorf("survivor view = %v", ch.NewViews)
	}
	if !topo.Crashed().Equal(proc.NewSet(2)) {
		t.Errorf("Crashed = %v", topo.Crashed())
	}
	if err := topo.CheckInvariant(); err != nil {
		t.Error(err)
	}
	// Crashing twice is refused.
	if _, ok := topo.CrashProcess(2); ok {
		t.Error("double crash accepted")
	}
	if _, ok := topo.CrashProcess(99); ok {
		t.Error("crash of unknown process accepted")
	}
}

func TestCrashedNeverMergedBack(t *testing.T) {
	topo := New(6)
	if _, ok := topo.CrashProcess(5); !ok {
		t.Fatal("crash failed")
	}
	r := rng.New(8)
	for i := 0; i < 2000; i++ {
		ch, ok := topo.RandomChange(r)
		if !ok {
			t.Fatal("change failed")
		}
		for _, v := range ch.NewViews {
			if v.Contains(5) {
				t.Fatalf("change %d (%v) resurrected the crashed process: %v", i, ch.Kind, v)
			}
		}
		if err := topo.CheckInvariant(); err != nil {
			t.Fatal(err)
		}
	}
	// MergeAll reconnects everyone except the crashed process.
	for topo.NumComponents() < 3 {
		if _, ok := topo.RandomChange(r); !ok {
			t.Fatal("change failed")
		}
	}
	ch, ok := topo.MergeAll()
	if !ok {
		t.Fatal("MergeAll failed")
	}
	if !ch.NewViews[0].Members.Equal(proc.Universe(6).Without(5)) {
		t.Errorf("MergeAll view = %v", ch.NewViews[0])
	}
}

func TestCrashAlreadyIsolated(t *testing.T) {
	topo := New(3)
	r := rng.New(2)
	// Split until someone is alone, then crash them.
	for topo.NumComponents() != 3 {
		if _, ok := topo.RandomChange(r); !ok {
			t.Fatal("change failed")
		}
	}
	ch, ok := topo.CrashProcess(1)
	if !ok || len(ch.NewViews) != 0 {
		t.Errorf("crash of isolated process = %+v, %v (no survivor view expected)", ch, ok)
	}
	if err := topo.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestCrashRandomLive(t *testing.T) {
	topo := New(3)
	r := rng.New(6)
	for i := 0; i < 3; i++ {
		if _, ok := topo.CrashRandomLive(r); !ok {
			t.Fatalf("crash %d failed", i)
		}
	}
	if topo.Crashed().Count() != 3 {
		t.Errorf("Crashed = %v", topo.Crashed())
	}
	if _, ok := topo.CrashRandomLive(r); ok {
		t.Error("crash with nobody live accepted")
	}
	if _, ok := topo.RandomChange(r); ok {
		t.Error("changes possible with everyone crashed")
	}
}

func TestChangeKindString(t *testing.T) {
	if Partition.String() != "partition" || Merge.String() != "merge" || Crash.String() != "crash" {
		t.Error("String() wrong")
	}
	if ChangeKind(0).String() == "" {
		t.Error("unknown kind should still render")
	}
}
