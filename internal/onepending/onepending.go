// Package onepending exposes the 1-pending dynamic voting variant
// (thesis §3.2.3), similar to the algorithms of Jajodia & Mutchler and
// Amir: it never pipelines attempts, blocking whenever an ambiguous
// session is pending, and in the worst case must hear from all members
// of the pending session before it can make progress. The availability
// study shows it degrading drastically as connectivity changes become
// more numerous and frequent, and degrading further in long cascading
// executions.
//
// The state machine lives in package ykd (the variants share it); this
// package pins the 1-pending configuration.
package onepending

import (
	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

// Name is the algorithm identifier used in experiment output.
const Name = "1-pending"

// New returns a 1-pending instance for process self.
func New(self proc.ID, initial view.View) *ykd.Algorithm {
	return ykd.New(ykd.VariantOnePending, self, initial)
}

// Factory returns the host-facing description of 1-pending.
func Factory() core.Factory { return ykd.Factory(ykd.VariantOnePending) }
