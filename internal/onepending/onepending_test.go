package onepending_test

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/onepending"
	"dynvote/internal/proc"
	"dynvote/internal/simtest"
	"dynvote/internal/view"
)

func TestFactoryPinsOnePending(t *testing.T) {
	f := onepending.Factory()
	if f.Name != onepending.Name {
		t.Fatalf("factory name = %q", f.Name)
	}
	alg := f.New(0, view.View{ID: 0, Members: proc.Universe(3)})
	if alg.Name() != "1-pending" {
		t.Errorf("instance name = %q", alg.Name())
	}
}

func TestNewBehavesLikeOnePending(t *testing.T) {
	direct := onepending.New(1, view.View{ID: 0, Members: proc.Universe(4)})
	if direct.Name() != "1-pending" || !direct.InPrimary() {
		t.Errorf("New() instance wrong: %q, %v", direct.Name(), direct.InPrimary())
	}
}

// The defining behaviour through the factory: at most one pending
// ambiguous session, ever.
func TestAtMostOnePendingSession(t *testing.T) {
	h := simtest.New(t, onepending.Factory(), 6)
	// Churn through several partitions with message loss.
	h.DropTo(func(m core.Message) bool {
		return m.Kind() == "ykd/attempt"
	}, 0, 1, 2, 3, 4, 5)
	h.Split([]proc.ID{0, 1, 2}, []proc.ID{3, 4, 5})
	h.Split([]proc.ID{0, 1}, []proc.ID{2, 3}, []proc.ID{4, 5})
	h.ClearDrop()
	h.Split([]proc.ID{0, 3}, []proc.ID{1, 2}, []proc.ID{4, 5})
	for p := proc.ID(0); p < 6; p++ {
		if got := h.Ambiguous(p); got > 1 {
			t.Errorf("process %v retains %d sessions, 1-pending allows at most 1", p, got)
		}
	}
}
