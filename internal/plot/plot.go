// Package plot renders the study's figures as standalone SVG files —
// availability-vs-rate line charts (Figures 4-1 through 4-6) and
// ambiguous-session bar charts (Figures 4-7, 4-8) — replacing the
// thesis's Matlab plots with stdlib-only output.
//
// The visual system follows a validated palette and fixed mark specs:
// categorical hues assigned in fixed slot order (validated for
// colorblind separation as a set), 2px lines with ≥8px markers ringed
// in the surface color, bars ≤24px with rounded data-ends and square
// baselines, hairline one-step-off-surface gridlines, and text in ink
// tokens rather than series colors. Every chart carries a legend (the
// dependable identity channel) and native SVG <title> tooltips; the
// CSV emitted alongside each figure is the table view.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Palette: the validated categorical slots in fixed order (worst
// adjacent CVD ΔE 24.2 on the light surface), plus surface and ink
// tokens. Series colors go on marks only, never on text.
const (
	surface   = "#fcfcfb"
	gridline  = "#ececea" // one step off the surface, hairline
	inkText   = "#0b0b0b" // text-primary
	mutedText = "#52514e" // text-secondary
)

// seriesColors are categorical slots 1..5, assigned to series in fixed
// order, never cycled.
var seriesColors = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
}

// Series is one named line or bar group.
type Series struct {
	Name   string
	Values []float64 // aligned with the chart's X values
}

// LineChart describes an availability-vs-rate figure.
type LineChart struct {
	Title    string
	Subtitle string
	XLabel   string
	YLabel   string
	X        []float64
	Series   []Series // at most 5; slot colors are fixed
	// YMin/YMax bound the axis; ticks are drawn at clean steps.
	YMin, YMax float64
	// XLog2 positions points at log₂(x) instead of x, for series whose
	// X values span octaves (the N-scaling study's 32..1024 sizes would
	// pile the small sizes into the left tenth of a linear axis). Tick
	// labels still show the raw values. Requires every X > 0.
	XLog2 bool
}

const (
	chartW  = 760
	chartH  = 440
	marLeft = 64
	marTop  = 64
	marBot  = 56
	marRt   = 170 // room for the legend column
)

type svgBuilder struct {
	strings.Builder
}

func (b *svgBuilder) el(format string, args ...any) {
	fmt.Fprintf(b, format+"\n", args...)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func color(i int) string { return seriesColors[i%len(seriesColors)] }

// Render produces the chart as a standalone SVG document.
func (c LineChart) Render() (string, error) {
	if len(c.Series) == 0 || len(c.X) == 0 {
		return "", fmt.Errorf("plot: empty chart")
	}
	if len(c.Series) > len(seriesColors) {
		return "", fmt.Errorf("plot: at most %d series (fold extras into 'Other')", len(seriesColors))
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.X) {
			return "", fmt.Errorf("plot: series %q has %d values for %d x points", s.Name, len(s.Values), len(c.X))
		}
	}
	if c.YMax <= c.YMin {
		c.YMin, c.YMax = autoRange(c.Series)
	}

	xs := make([]float64, len(c.X))
	for i, x := range c.X {
		if c.XLog2 {
			if x <= 0 {
				return "", fmt.Errorf("plot: XLog2 requires positive X values, got %g", x)
			}
			xs[i] = math.Log2(x)
		} else {
			xs[i] = x
		}
	}

	plotW := float64(chartW - marLeft - marRt)
	plotH := float64(chartH - marTop - marBot)
	xmin, xmax := xs[0], xs[len(xs)-1]
	if xmax == xmin {
		xmax = xmin + 1
	}
	sx := func(i int) float64 { return marLeft + (xs[i]-xmin)/(xmax-xmin)*plotW }
	sy := func(y float64) float64 { return marTop + plotH - (y-c.YMin)/(c.YMax-c.YMin)*plotH }

	var b svgBuilder
	c.header(&b)

	// Gridlines + y ticks at clean steps.
	for _, tick := range cleanTicks(c.YMin, c.YMax) {
		y := sy(tick)
		b.el(`<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			marLeft, y, marLeft+plotW, y, gridline)
		b.el(`<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle" font-size="12" fill="%s">%g</text>`,
			marLeft-8, y, mutedText, tick)
	}
	// X ticks on the data points. A label is drawn only when it clears
	// the previous one by a readable gap, so uneven spacings (log-scale
	// octaves, dense linear sweeps) can never collide.
	const minLabelGap = 34
	lastLabelX := math.Inf(-1)
	for i := range c.X {
		x := sx(i)
		if x-lastLabelX < minLabelGap {
			continue
		}
		lastLabelX = x
		b.el(`<text x="%.1f" y="%.1f" text-anchor="middle" font-size="12" fill="%s">%g</text>`,
			x, marTop+plotH+20, mutedText, c.X[i])
	}
	// Axis lines (recessive).
	b.el(`<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
		marLeft, marTop+plotH, marLeft+plotW, marTop+plotH, gridline)

	// Series: 2px round-joined lines, then ≥8px markers with a 2px
	// surface ring, each with a native tooltip.
	for si, s := range c.Series {
		var path strings.Builder
		for i, v := range s.Values {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, sx(i), sy(v))
		}
		b.el(`<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>`,
			strings.TrimSpace(path.String()), color(si))
		for i, v := range s.Values {
			b.el(`<circle cx="%.1f" cy="%.1f" r="5" fill="%s" stroke="%s" stroke-width="2"><title>%s — rate %g: %.1f%%</title></circle>`,
				sx(i), sy(v), color(si), surface, esc(s.Name), c.X[i], v)
		}
	}

	c.legend(&b)
	c.axisLabels(&b, plotW, plotH)
	b.el(`</svg>`)
	return b.String(), nil
}

func (c LineChart) header(b *svgBuilder) {
	b.el(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`,
		chartW, chartH, chartW, chartH)
	b.el(`<rect width="%d" height="%d" fill="%s"/>`, chartW, chartH, surface)
	b.el(`<text x="%d" y="26" font-size="16" font-weight="600" fill="%s">%s</text>`, marLeft, inkText, esc(c.Title))
	if c.Subtitle != "" {
		b.el(`<text x="%d" y="44" font-size="12" fill="%s">%s</text>`, marLeft, mutedText, esc(c.Subtitle))
	}
}

func (c LineChart) legend(b *svgBuilder) {
	lx := chartW - marRt + 24
	for si, s := range c.Series {
		y := marTop + 10 + si*22
		b.el(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2" stroke-linecap="round"/>`,
			lx, y, lx+16, y, color(si))
		b.el(`<circle cx="%d" cy="%d" r="4" fill="%s"/>`, lx+8, y, color(si))
		b.el(`<text x="%d" y="%d" font-size="12" dominant-baseline="middle" fill="%s">%s</text>`,
			lx+24, y+1, inkText, esc(s.Name))
	}
}

func (c LineChart) axisLabels(b *svgBuilder, plotW, plotH float64) {
	if c.XLabel != "" {
		b.el(`<text x="%.1f" y="%d" text-anchor="middle" font-size="12" fill="%s">%s</text>`,
			marLeft+plotW/2, chartH-12, mutedText, esc(c.XLabel))
	}
	if c.YLabel != "" {
		b.el(`<text x="16" y="%.1f" text-anchor="middle" font-size="12" fill="%s" transform="rotate(-90 16 %.1f)">%s</text>`,
			marTop+plotH/2, mutedText, marTop+plotH/2, esc(c.YLabel))
	}
}

// BarChart describes a grouped bar figure: one group per X category,
// one bar per series within the group.
type BarChart struct {
	Title    string
	Subtitle string
	XLabel   string
	YLabel   string
	Groups   []string // category labels (e.g. rates)
	Series   []Series // Values aligned with Groups
	YMax     float64  // 0 = auto
}

// Render produces the chart as a standalone SVG document.
func (c BarChart) Render() (string, error) {
	if len(c.Series) == 0 || len(c.Groups) == 0 {
		return "", fmt.Errorf("plot: empty chart")
	}
	if len(c.Series) > len(seriesColors) {
		return "", fmt.Errorf("plot: at most %d series", len(seriesColors))
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Groups) {
			return "", fmt.Errorf("plot: series %q has %d values for %d groups", s.Name, len(s.Values), len(c.Groups))
		}
	}
	if c.YMax <= 0 {
		_, c.YMax = autoRange(c.Series)
		if c.YMax == 0 {
			c.YMax = 1
		}
	}

	plotW := float64(chartW - marLeft - marRt)
	plotH := float64(chartH - marTop - marBot)
	baseline := marTop + plotH
	groupW := plotW / float64(len(c.Groups))
	// Bars ≤24px thick with a 2px surface gap between neighbors.
	barW := math.Min(24, (groupW-8)/float64(len(c.Series))-2)
	if barW < 3 {
		barW = 3
	}
	sy := func(v float64) float64 { return baseline - v/c.YMax*plotH }

	var b svgBuilder
	lc := LineChart{Title: c.Title, Subtitle: c.Subtitle}
	lc.header(&b)

	for _, tick := range cleanTicks(0, c.YMax) {
		y := sy(tick)
		b.el(`<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			marLeft, y, marLeft+plotW, y, gridline)
		b.el(`<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle" font-size="12" fill="%s">%g</text>`,
			marLeft-8, y, mutedText, tick)
	}

	for gi, label := range c.Groups {
		groupLeft := marLeft + float64(gi)*groupW
		total := float64(len(c.Series))*(barW+2) - 2
		start := groupLeft + (groupW-total)/2
		for si, s := range c.Series {
			v := s.Values[gi]
			x := start + float64(si)*(barW+2)
			y := sy(v)
			h := baseline - y
			if h < 0.5 && v > 0 {
				h = 0.5
				y = baseline - h
			}
			// Rounded 4px data-end, square baseline.
			r := math.Min(4, math.Min(barW/2, h))
			b.el(`<path d="M%.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Z" fill="%s"><title>%s @ %s: %.2f</title></path>`,
				x, baseline, x, y+r, x, y, x+r, y,
				x+barW-r, y, x+barW, y, x+barW, y+r,
				x+barW, baseline, color(si), esc(s.Name), esc(label), v)
		}
		b.el(`<text x="%.1f" y="%.1f" text-anchor="middle" font-size="12" fill="%s">%s</text>`,
			groupLeft+groupW/2, baseline+20, mutedText, esc(label))
	}
	b.el(`<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
		marLeft, baseline, marLeft+plotW, baseline, gridline)

	lc.Series = c.Series
	lc.legend(&b)
	lc.XLabel, lc.YLabel = c.XLabel, c.YLabel
	lc.axisLabels(&b, plotW, plotH)
	b.el(`</svg>`)
	return b.String(), nil
}

// autoRange pads the data range to clean bounds.
func autoRange(series []Series) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	lo = math.Max(0, lo-span*0.1)
	hi = hi + span*0.05
	return lo, hi
}

// cleanTicks returns 4-6 round tick values covering [lo, hi].
func cleanTicks(lo, hi float64) []float64 {
	span := hi - lo
	if span <= 0 {
		return []float64{lo}
	}
	raw := span / 5
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	step := mag
	for _, m := range []float64{1, 2, 5, 10} {
		if mag*m >= raw {
			step = mag * m
			break
		}
	}
	var ticks []float64
	for t := math.Ceil(lo/step) * step; t <= hi+1e-9; t += step {
		ticks = append(ticks, math.Round(t*1e9)/1e9)
	}
	return ticks
}
