package plot

import (
	"encoding/xml"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(len(svg), 400)])
		}
	}
}

func sampleLine() LineChart {
	return LineChart{
		Title:    "Figure X",
		Subtitle: "availability %",
		XLabel:   "mean rounds",
		YLabel:   "availability",
		X:        []float64{0, 2, 4, 6},
		Series: []Series{
			{Name: "ykd", Values: []float64{77, 86, 92, 95}},
			{Name: "dfls", Values: []float64{77, 80, 90, 92}},
			{Name: "1-pending", Values: []float64{77, 61, 74, 79}},
		},
	}
}

func TestLineChartRenders(t *testing.T) {
	svg, err := sampleLine().Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	for _, want := range []string{
		"Figure X", "ykd", "dfls", "1-pending",
		seriesColors[0], seriesColors[1], seriesColors[2],
		"<title>", // native tooltips
		`stroke-width="2"`,
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Text must wear ink tokens, not series colors: no <text ... fill="#2a78d6">.
	if strings.Contains(svg, `font-size="12" fill="`+seriesColors[0]) {
		t.Error("text colored with a series hue")
	}
}

func TestLineChartValidation(t *testing.T) {
	if _, err := (LineChart{}).Render(); err == nil {
		t.Error("empty chart accepted")
	}
	c := sampleLine()
	c.Series[0].Values = c.Series[0].Values[:2]
	if _, err := c.Render(); err == nil {
		t.Error("misaligned series accepted")
	}
	c = sampleLine()
	for i := 0; i < 6; i++ {
		c.Series = append(c.Series, Series{Name: "extra", Values: []float64{1, 2, 3, 4}})
	}
	if _, err := c.Render(); err == nil {
		t.Error("more series than fixed palette slots accepted")
	}
}

func TestBarChartRenders(t *testing.T) {
	c := BarChart{
		Title:  "Ambiguous sessions",
		Groups: []string{"0", "2", "4"},
		Series: []Series{
			{Name: "ykd", Values: []float64{0, 6.9, 4.4}},
			{Name: "ykd-unopt", Values: []float64{0, 6.9, 4.4}},
			{Name: "dfls", Values: []float64{0, 10.6, 7.7}},
		},
		YLabel: "% of samples",
	}
	svg, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if !strings.Contains(svg, "<path") || !strings.Contains(svg, "dfls") {
		t.Error("bars or legend missing")
	}
	// Zero-valued bars must not render negative geometry.
	if strings.Contains(svg, "-") && strings.Contains(svg, `height="-`) {
		t.Error("negative bar height")
	}
}

func TestBarChartValidation(t *testing.T) {
	if _, err := (BarChart{}).Render(); err == nil {
		t.Error("empty chart accepted")
	}
}

func TestCleanTicks(t *testing.T) {
	ticks := cleanTicks(40, 100)
	if len(ticks) < 3 || len(ticks) > 8 {
		t.Fatalf("ticks = %v", ticks)
	}
	for _, tk := range ticks {
		if tk < 40 || tk > 100 {
			t.Errorf("tick %v out of range", tk)
		}
	}
	if got := cleanTicks(5, 5); len(got) != 1 {
		t.Errorf("degenerate range ticks = %v", got)
	}
}

func TestAutoRange(t *testing.T) {
	lo, hi := autoRange([]Series{{Values: []float64{50, 90}}})
	if lo < 0 || lo > 50 || hi < 90 {
		t.Errorf("autoRange = [%v, %v]", lo, hi)
	}
	if lo2, hi2 := autoRange(nil); lo2 != 0 || hi2 != 1 {
		t.Errorf("empty autoRange = [%v, %v]", lo2, hi2)
	}
}

func TestEscaping(t *testing.T) {
	c := sampleLine()
	c.Title = `<script>&"attack"`
	svg, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if strings.Contains(svg, "<script>") {
		t.Error("title not escaped")
	}
}

// TestGeometryWithinViewBox is the automated stand-in for eyeballing
// the render (no rasterizer in CI): every coordinate in the SVG must
// lie inside the viewBox, so nothing is clipped or overflowing.
func TestGeometryWithinViewBox(t *testing.T) {
	charts := []func() (string, error){
		func() (string, error) { return sampleLine().Render() },
		func() (string, error) {
			return BarChart{
				Title:  "bars",
				Groups: []string{"0", "1", "2", "4", "6", "8", "10", "12"},
				Series: []Series{
					{Name: "a", Values: []float64{0, 1, 2, 3, 4, 5, 6, 7}},
					{Name: "b", Values: []float64{7, 6, 5, 4, 3, 2, 1, 0}},
					{Name: "c", Values: []float64{1, 1, 1, 1, 1, 1, 1, 1}},
				},
			}.Render()
		},
	}
	coordRe := regexp.MustCompile(`(?:x|y|x1|x2|y1|y2|cx|cy)="(-?[0-9.]+)"`)
	for ci, build := range charts {
		svg, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range coordRe.FindAllStringSubmatch(svg, -1) {
			v, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				t.Fatalf("chart %d: bad coordinate %q", ci, m[1])
			}
			if v < 0 || v > chartW {
				t.Errorf("chart %d: coordinate %v outside the 0..%d viewBox", ci, v, chartW)
			}
		}
		// Path coordinates too.
		pathRe := regexp.MustCompile(`[ML](-?[0-9.]+) (-?[0-9.]+)`)
		for _, m := range pathRe.FindAllStringSubmatch(svg, -1) {
			for _, g := range m[1:] {
				v, _ := strconv.ParseFloat(g, 64)
				if v < 0 || v > chartW {
					t.Errorf("chart %d: path coordinate %v outside viewBox", ci, v)
				}
			}
		}
	}
}

// TestLegendClearOfPlotArea: the legend column must start right of the
// plot region so series text never collides with marks.
func TestLegendClearOfPlotArea(t *testing.T) {
	svg, err := sampleLine().Render()
	if err != nil {
		t.Fatal(err)
	}
	// Data marks may reach the plot's right edge exactly; the legend
	// swatches start 24px beyond it. Nothing may sit in the gutter
	// between them.
	plotRight := float64(chartW - marRt)
	gutterEnd := plotRight + 20
	re := regexp.MustCompile(`<circle cx="([0-9.]+)"`)
	legendSwatches := 0
	for _, m := range re.FindAllStringSubmatch(svg, -1) {
		v, _ := strconv.ParseFloat(m[1], 64)
		switch {
		case v >= gutterEnd:
			legendSwatches++
		case v > plotRight:
			t.Errorf("mark at x=%v inside the plot/legend gutter", v)
		}
	}
	if legendSwatches < 3 {
		t.Errorf("expected ≥3 legend swatches right of the plot, found %d", legendSwatches)
	}
}
