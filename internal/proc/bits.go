package proc

import "math/bits"

// Bits is a mutable, exclusively-owned bitset over a fixed-width
// universe: the accumulator behind hot paths that build membership one
// process at a time. Set is immutable by convention and copy-on-write
// past the inline words, so an Add loop over a kilo-process set
// allocates a fresh word slice per insertion; a Bits is never shared,
// so after one Reset to the universe width every mutation is an
// in-place word operation with zero allocations. Freeze converts the
// accumulated membership back into a Set at the boundary where the
// result is published.
//
// The zero value is an empty accumulator over an empty universe; Reset
// (or Load) establishes the width. Membership count is tracked
// incrementally so Count is O(1) — the per-delivery "have all states
// arrived?" checks pay no popcount.
type Bits struct {
	words []uint64
	count int
}

// Reset empties b and widens it to cover IDs 0..n-1, reusing the
// existing word storage when it is large enough. After Reset every
// Add/Remove of an ID below n is allocation-free.
func (b *Bits) Reset(n int) {
	nw := (n + wordBits - 1) / wordBits
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
	} else {
		b.words = b.words[:nw]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.count = 0
}

// Load replaces b's content with s, growing as needed. The subsequent
// width is s's trimmed word count, which suffices for any ID already a
// member — the partition carving in netsim loads a component and only
// ever removes.
func (b *Bits) Load(s Set) {
	sw := s.Bitmap()
	if cap(b.words) < len(sw) {
		b.words = make([]uint64, len(sw))
	} else {
		b.words = b.words[:len(sw)]
	}
	n := 0
	for i, w := range sw {
		b.words[i] = w
		n += bits.OnesCount64(w)
	}
	b.count = n
}

// Add inserts id. The id must lie within the width established by the
// last Reset/Load; out-of-range IDs panic like any slice index.
func (b *Bits) Add(id ID) {
	w := &b.words[uint(id)/wordBits]
	bit := uint64(1) << (uint(id) % wordBits)
	if *w&bit == 0 {
		*w |= bit
		b.count++
	}
}

// Remove deletes id if present; IDs beyond the width are no-ops (they
// cannot be members).
func (b *Bits) Remove(id ID) {
	wi := uint(id) / wordBits
	if id < 0 || int(wi) >= len(b.words) {
		return
	}
	bit := uint64(1) << (uint(id) % wordBits)
	if b.words[wi]&bit != 0 {
		b.words[wi] &^= bit
		b.count--
	}
}

// Contains reports whether id is a member.
func (b *Bits) Contains(id ID) bool {
	wi := uint(id) / wordBits
	return id >= 0 && int(wi) < len(b.words) &&
		b.words[wi]&(1<<(uint(id)%wordBits)) != 0
}

// Count returns |b| in constant time.
func (b *Bits) Count() int { return b.count }

// Empty reports whether b has no members.
func (b *Bits) Empty() bool { return b.count == 0 }

// AddSet inserts every member of s. One word-parallel pass; s must fit
// within b's current width.
func (b *Bits) AddSet(s Set) {
	sw := s.Bitmap()
	n := b.count
	for i, w := range sw {
		if w == 0 {
			continue
		}
		old := b.words[i]
		b.words[i] = old | w
		n += bits.OnesCount64(w &^ old)
	}
	b.count = n
}

// ContainsSet reports s ⊆ b in one word-parallel pass, with no
// allocation at any width.
func (b *Bits) ContainsSet(s Set) bool {
	sw := s.Bitmap()
	for i, w := range sw {
		if w == 0 {
			continue
		}
		if i >= len(b.words) || w&^b.words[i] != 0 {
			return false
		}
	}
	return true
}

// Nth returns the n-th smallest member (0-based), or None if n is out
// of range — the same selection contract as Set.Nth, so uniform random
// picks draw identically from a Bits and its frozen Set.
func (b *Bits) Nth(n int) ID {
	if n < 0 {
		return None
	}
	for i, w := range b.words {
		c := bits.OnesCount64(w)
		if n < c {
			return nthInWord(w, n, i*wordBits)
		}
		n -= c
	}
	return None
}

// Freeze returns b's accumulated membership as an immutable Set. The
// Set copies the words (allocating only past InlineProcs), so b may be
// reused immediately.
func (b *Bits) Freeze() Set { return SetFromWords(b.words) }
