package proc

import (
	"math/rand"
	"testing"
)

// TestBitsModel drives the mutable Bits accumulator against the same
// map model as the Set tests, across the full boundary-size matrix.
// Every few steps the accumulated membership is frozen and compared to
// a Set built by the same script, pinning Freeze/Load equivalence.
func TestBitsModel(t *testing.T) {
	for _, maxID := range boundarySizes {
		maxID := maxID
		t.Run(ID(maxID).String(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(1000 + maxID)))
			var b Bits
			b.Reset(maxID + 1)
			m := setModel{}
			var mirror Set
			for step := 0; step < 300; step++ {
				id := ID(r.Intn(maxID + 1))
				switch r.Intn(3) {
				case 0:
					b.Add(id)
					mirror.Add(id)
					m[id] = true
				case 1:
					b.Remove(id)
					mirror.Remove(id)
					delete(m, id)
				case 2:
					other := NewSet(id, ID(r.Intn(maxID+1)))
					b.AddSet(other)
					mirror = mirror.Union(other)
					other.ForEach(func(q ID) { m[q] = true })
				}
				want := m.members()
				if b.Count() != len(want) {
					t.Fatalf("step %d: Count = %d, model has %d", step, b.Count(), len(want))
				}
				if b.Empty() != (len(want) == 0) {
					t.Fatalf("step %d: Empty = %v with %d members", step, b.Empty(), len(want))
				}
				for i, id := range want {
					if b.Nth(i) != id {
						t.Fatalf("step %d: Nth(%d) = %v, model = %v", step, i, b.Nth(i), id)
					}
				}
				if b.Nth(len(want)) != None || b.Nth(-1) != None {
					t.Fatalf("step %d: Nth out of range not None", step)
				}
				if !b.ContainsSet(mirror) {
					t.Fatalf("step %d: ContainsSet(mirror) = false", step)
				}
				if step%10 == 0 {
					for id := ID(0); id <= ID(maxID); id++ {
						if b.Contains(id) != m[id] {
							t.Fatalf("step %d: Contains(%v) = %v, model = %v",
								step, id, b.Contains(id), m[id])
						}
					}
					if f := b.Freeze(); !f.Equal(mirror) {
						t.Fatalf("step %d: Freeze = %v, mirror = %v", step, f, mirror)
					}
				}
			}
			// ContainsSet must reject strict supersets and accept after AddSet.
			super := mirror.With(ID(maxID)).With(0)
			if !mirror.SubsetOf(super) {
				t.Fatal("test bug: super not a superset")
			}
			if b.ContainsSet(super) != super.SubsetOf(mirror) {
				t.Fatalf("ContainsSet(super) = %v, want %v",
					b.ContainsSet(super), super.SubsetOf(mirror))
			}
			b.AddSet(super)
			if !b.ContainsSet(super) || b.Count() != super.Count() {
				t.Fatal("AddSet(super) did not cover super")
			}
		})
	}
}

// TestBitsResetWidths checks that Reset both widens and narrows
// correctly and clears stale words on storage reuse.
func TestBitsResetWidths(t *testing.T) {
	var b Bits
	b.Reset(1024)
	b.Add(1023)
	b.Add(3)
	b.Reset(64)
	if b.Count() != 0 || b.Contains(3) || b.Contains(1023) {
		t.Fatalf("Reset(64) left members behind: count=%d", b.Count())
	}
	b.Add(63)
	b.Reset(1024)
	if b.Contains(63) || b.Count() != 0 {
		t.Fatal("Reset(1024) resurrected a cleared member")
	}
	b.Add(1023)
	if got := b.Freeze(); got.Count() != 1 || !got.Contains(1023) {
		t.Fatalf("Freeze = %v, want {p1023}", got)
	}
}

// TestBitsSteadyStateAllocFree pins the whole point of the type: after
// one Reset at the universe width, the mutation and query surface is
// allocation-free even at 1024 processes.
func TestBitsSteadyStateAllocFree(t *testing.T) {
	var b Bits
	b.Reset(1024)
	u := Universe(1024)
	half := Universe(512)
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset(1024)
		for id := ID(0); id < 1024; id += 3 {
			b.Add(id)
		}
		b.AddSet(half)
		if b.ContainsSet(u) {
			t.Fatal("ContainsSet(universe) should be false")
		}
		b.Remove(0)
		if b.Nth(0) != 1 || !b.Contains(1) || b.Empty() {
			t.Fatal("unexpected membership")
		}
		b.Load(half)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Bits ops allocated %.1f times per run", allocs)
	}
}
