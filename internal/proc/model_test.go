package proc

import (
	"math/rand"
	"sort"
	"testing"
)

// This file checks the multi-word Set against a map-based reference
// model at the word-boundary sizes where the inline representation
// changes shape: 63/64/65 (one word vs two) and 255/256/257 (the last
// inline ID vs the overflow slice). Every exported query is compared
// after every mutation, so a bit dropped by a word-parallel fast path
// or a stale mirror between the inline array and the overflow slice
// shows up as a model divergence, not a downstream simulation bug.

// setModel is the reference: membership as a plain map.
type setModel map[ID]bool

func (m setModel) members() []ID {
	out := make([]ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkAgainstModel compares every observable of s with the model.
func checkAgainstModel(t *testing.T, s Set, m setModel, maxID int) {
	t.Helper()
	want := m.members()
	if got := s.Count(); got != len(want) {
		t.Fatalf("Count = %d, model has %d members", got, len(want))
	}
	got := s.Members()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, model = %v", got, want)
		}
	}
	wantSmallest, wantMax := None, None
	if len(want) > 0 {
		wantSmallest, wantMax = want[0], want[len(want)-1]
	}
	if s.Smallest() != wantSmallest || s.Max() != wantMax {
		t.Fatalf("Smallest/Max = %v/%v, model = %v/%v",
			s.Smallest(), s.Max(), wantSmallest, wantMax)
	}
	// Probe membership a little beyond the domain to catch phantom bits.
	for id := ID(0); id <= ID(maxID)+2; id++ {
		if s.Contains(id) != m[id] {
			t.Fatalf("Contains(%v) = %v, model = %v", id, s.Contains(id), m[id])
		}
	}
	for i, id := range want {
		if s.Nth(i) != id {
			t.Fatalf("Nth(%d) = %v, model = %v", i, s.Nth(i), id)
		}
	}
	if rt := SetFromWords(s.Words()); !rt.Equal(s) {
		t.Fatalf("Words round trip diverged: %v vs %v", rt, s)
	}
	if rt := NewSet(s.Members()...); !rt.Equal(s) || rt.Key() != s.Key() {
		t.Fatalf("Members round trip diverged: %v vs %v", rt, s)
	}
	walked := 0
	s.EachWhile(func(id ID) bool {
		if id != want[walked] {
			t.Fatalf("EachWhile visited %v at %d, model = %v", id, walked, want[walked])
		}
		walked++
		return true
	})
	if walked != len(want) {
		t.Fatalf("EachWhile visited %d members, model has %d", walked, len(want))
	}
	if len(want) > 1 {
		stopped := 0
		s.EachWhile(func(ID) bool { stopped++; return stopped < 2 })
		if stopped != 2 {
			t.Fatalf("EachWhile early exit walked %d members, want 2", stopped)
		}
	}
	var bs Bits
	bs.Load(s)
	if bs.Count() != len(want) || !bs.ContainsSet(s) || !bs.Freeze().Equal(s) {
		t.Fatalf("Bits.Load round trip diverged for %v", s)
	}
}

// boundarySizes are the domains under test: one ID below, at, and
// above each representation boundary — the inline word boundaries
// 63/64/65 and 255/256/257, and the kilo-process overflow boundaries
// 511/512/513 and 1023/1024/1025 where every operation runs on the
// variable-length word loops.
var boundarySizes = []int{63, 64, 65, 255, 256, 257, 511, 512, 513, 1023, 1024, 1025}

func TestSetModelMutations(t *testing.T) {
	for _, maxID := range boundarySizes {
		maxID := maxID
		t.Run(ID(maxID).String(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(maxID)))
			var s Set
			m := setModel{}
			for step := 0; step < 400; step++ {
				id := ID(r.Intn(maxID + 1))
				switch r.Intn(4) {
				case 0:
					s = s.With(id)
					m[id] = true
				case 1:
					s = s.Without(id)
					delete(m, id)
				case 2:
					s.Add(id)
					m[id] = true
				case 3:
					s.Remove(id)
					delete(m, id)
				}
				checkAgainstModel(t, s, m, maxID)
			}
		})
	}
}

// TestSetModelAlgebra drives Union/Intersect/Diff/IntersectCount/
// SubsetOf against the model on random pairs in each boundary domain.
func TestSetModelAlgebra(t *testing.T) {
	for _, maxID := range boundarySizes {
		maxID := maxID
		t.Run(ID(maxID).String(), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(100 + maxID)))
			for round := 0; round < 60; round++ {
				ma, mb := setModel{}, setModel{}
				var a, b Set
				for i := 0; i < r.Intn(maxID+1); i++ {
					id := ID(r.Intn(maxID + 1))
					a.Add(id)
					ma[id] = true
				}
				for i := 0; i < r.Intn(maxID+1); i++ {
					id := ID(r.Intn(maxID + 1))
					b.Add(id)
					mb[id] = true
				}
				mu, mi, md := setModel{}, setModel{}, setModel{}
				subset := true
				for id := range ma {
					mu[id] = true
					if mb[id] {
						mi[id] = true
					} else {
						md[id] = true
						subset = false
					}
				}
				for id := range mb {
					mu[id] = true
				}
				checkAgainstModel(t, a.Union(b), mu, maxID)
				checkAgainstModel(t, a.Intersect(b), mi, maxID)
				checkAgainstModel(t, a.Diff(b), md, maxID)
				if got := a.IntersectCount(b); got != len(mi) {
					t.Fatalf("IntersectCount = %d, model = %d", got, len(mi))
				}
				if got := a.SubsetOf(b); got != subset {
					t.Fatalf("SubsetOf = %v, model = %v", got, subset)
				}
				if got := a.Disjoint(b); got != (len(mi) == 0) {
					t.Fatalf("Disjoint = %v, model = %v", got, len(mi) == 0)
				}
			}
		})
	}
}

// FuzzSetModel feeds arbitrary byte strings as mutation scripts: each
// byte pair is (op, id). The fuzzer explores interleavings the random
// tests cannot, especially around the 255/256 inline boundary where id
// bytes saturate.
func FuzzSetModel(f *testing.F) {
	f.Add([]byte{0, 63, 0, 64, 0, 65, 1, 64})
	f.Add([]byte{0, 255, 2, 0, 3, 255})
	f.Add([]byte{2, 254, 2, 255, 3, 254, 1, 255, 0, 7})
	f.Fuzz(func(t *testing.T, script []byte) {
		var s Set
		m := setModel{}
		for i := 0; i+1 < len(script); i += 2 {
			op, id := script[i]%4, ID(script[i+1])
			switch op {
			case 0:
				s = s.With(id)
				m[id] = true
			case 1:
				s = s.Without(id)
				delete(m, id)
			case 2:
				s.Add(id)
				m[id] = true
			case 3:
				s.Remove(id)
				delete(m, id)
			}
		}
		checkAgainstModel(t, s, m, 257)
	})
}

// FuzzSetModelWide is FuzzSetModel's kilo-process counterpart: each
// byte triple is (op, idHi, idLo) with the 16-bit id reduced into the
// 0..1025 domain, so scripts cross the 512- and 1024-process word
// boundaries that single-byte ids can never reach.
func FuzzSetModelWide(f *testing.F) {
	f.Add([]byte{0, 1, 255, 0, 2, 0, 0, 2, 1, 1, 2, 0})   // 511, 512, 513, del 512
	f.Add([]byte{2, 3, 255, 2, 4, 0, 3, 3, 255, 0, 4, 1}) // 1023, 1024, del 1023, 1025
	f.Add([]byte{0, 0, 255, 2, 4, 1, 1, 4, 1, 0, 0, 0})   // 255, 1025, del 1025, 0
	f.Fuzz(func(t *testing.T, script []byte) {
		var s Set
		m := setModel{}
		for i := 0; i+2 < len(script); i += 3 {
			op := script[i] % 4
			id := ID(int(script[i+1])<<8|int(script[i+2])) % 1026
			switch op {
			case 0:
				s = s.With(id)
				m[id] = true
			case 1:
				s = s.Without(id)
				delete(m, id)
			case 2:
				s.Add(id)
				m[id] = true
			case 3:
				s.Remove(id)
				delete(m, id)
			}
		}
		checkAgainstModel(t, s, m, 1025)
	})
}
