// Package proc defines process identities and ordered process sets.
//
// Every quorum rule in the dynamic voting algorithms is expressed over
// sets of processes, and the "lexically smallest" tie-breaking rule of
// dynamic linear voting needs a deterministic total order on processes.
// IDs are small dense integers (the simulator numbers processes
// 0..n-1); Set is a bitset whose first word is stored inline, so the
// common 64-process configuration of the thesis performs every set
// operation without touching the heap.
package proc

import (
	"math/bits"
	"strconv"
	"strings"
)

// ID identifies a single process. The total order on IDs defines the
// "lexically smallest" process used to break exact-half ties in
// dynamic linear voting (thesis §3.1): the thesis suggests sorting by
// numeric IP address and process id; here the integer value plays that
// role directly.
type ID int

// None is a sentinel returned when an operation over an empty set has
// no process to report.
const None ID = -1

// String returns a short printable form, e.g. "p7".
func (id ID) String() string { return "p" + strconv.Itoa(int(id)) }

const wordBits = 64

// Set is an immutable-by-convention set of process IDs backed by a
// bitset. The zero value is the empty set. Mutating methods are
// value-receiver and return new sets; nothing in this package mutates
// a word slice after it is published, so sets may share overflow
// storage freely.
//
// Representation: word0 holds members 0..63 inline; rest holds words
// for members 64 and up, kept trimmed of trailing zero words so that
// Equal and Key are structural. Sets over at most 64 processes — every
// configuration the thesis measures — therefore never allocate.
type Set struct {
	word0 uint64
	rest  []uint64
}

// NewSet returns a set containing exactly the given IDs. Negative IDs
// are rejected by panicking, since they indicate a programming error
// (IDs are assigned by the caller as dense non-negative integers).
func NewSet(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s = s.With(id)
	}
	return s
}

// Universe returns the set {0, 1, ..., n-1}.
func Universe(n int) Set {
	if n <= 0 {
		return Set{}
	}
	if n <= wordBits {
		if n == wordBits {
			return Set{word0: ^uint64(0)}
		}
		return Set{word0: (uint64(1) << n) - 1}
	}
	rest := make([]uint64, (n-1)/wordBits)
	for i := range rest {
		rest[i] = ^uint64(0)
	}
	if rem := n % wordBits; rem != 0 {
		rest[len(rest)-1] = (uint64(1) << rem) - 1
	}
	return Set{word0: ^uint64(0), rest: rest}
}

// With returns s ∪ {id}.
func (s Set) With(id ID) Set {
	if id < 0 {
		panic("proc: negative ID")
	}
	if id < wordBits {
		s.word0 |= 1 << uint(id)
		return s
	}
	w := int(id)/wordBits - 1
	rest := make([]uint64, max(len(s.rest), w+1))
	copy(rest, s.rest)
	rest[w] |= 1 << uint(int(id)%wordBits)
	s.rest = rest
	return s
}

// Without returns s \ {id}.
func (s Set) Without(id ID) Set {
	if !s.Contains(id) {
		return s
	}
	if id < wordBits {
		s.word0 &^= 1 << uint(id)
		return s
	}
	rest := make([]uint64, len(s.rest))
	copy(rest, s.rest)
	rest[int(id)/wordBits-1] &^= 1 << uint(int(id)%wordBits)
	s.rest = trimmed(rest)
	return s
}

// Contains reports whether id is a member of s.
func (s Set) Contains(id ID) bool {
	if id < 0 {
		return false
	}
	if id < wordBits {
		return s.word0&(1<<uint(id)) != 0
	}
	w := int(id)/wordBits - 1
	return w < len(s.rest) && s.rest[w]&(1<<uint(int(id)%wordBits)) != 0
}

// Count returns |s|.
func (s Set) Count() int {
	n := bits.OnesCount64(s.word0)
	for _, w := range s.rest {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether s has no members.
func (s Set) Empty() bool {
	return s.word0 == 0 && len(s.rest) == 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	s.word0 |= t.word0
	switch {
	case len(t.rest) == 0:
		return s
	case len(s.rest) == 0:
		s.rest = t.rest // sharing is safe: words are never mutated in place
		return s
	}
	a, b := s.rest, t.rest
	if len(b) > len(a) {
		a, b = b, a
	}
	rest := make([]uint64, len(a))
	copy(rest, a)
	for i, w := range b {
		rest[i] |= w
	}
	s.rest = rest
	return s
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	out := Set{word0: s.word0 & t.word0}
	if n := min(len(s.rest), len(t.rest)); n > 0 {
		rest := make([]uint64, n)
		for i := 0; i < n; i++ {
			rest[i] = s.rest[i] & t.rest[i]
		}
		out.rest = trimmed(rest)
	}
	return out
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	s.word0 &^= t.word0
	if len(s.rest) == 0 {
		return s
	}
	if len(t.rest) == 0 {
		return s
	}
	rest := make([]uint64, len(s.rest))
	copy(rest, s.rest)
	for i := 0; i < len(rest) && i < len(t.rest); i++ {
		rest[i] &^= t.rest[i]
	}
	s.rest = trimmed(rest)
	return s
}

// IntersectCount returns |s ∩ t| without allocating.
func (s Set) IntersectCount(t Set) int {
	c := bits.OnesCount64(s.word0 & t.word0)
	n := min(len(s.rest), len(t.rest))
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.rest[i] & t.rest[i])
	}
	return c
}

// InlineWord returns the inline first word of s and whether the set
// fits entirely in it (no overflow words). Every configuration the
// thesis measures is at most 64 processes, so callers like package
// quorum use this as the precondition for single-word popcount
// arithmetic that avoids the general per-word loops.
func (s Set) InlineWord() (uint64, bool) { return s.word0, len(s.rest) == 0 }

// Equal reports whether s and t have identical membership.
func (s Set) Equal(t Set) bool {
	if s.word0 != t.word0 || len(s.rest) != len(t.rest) {
		return false
	}
	for i, w := range s.rest {
		if w != t.rest[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is in t.
func (s Set) SubsetOf(t Set) bool {
	if s.word0&^t.word0 != 0 {
		return false
	}
	for i, w := range s.rest {
		var tw uint64
		if i < len(t.rest) {
			tw = t.rest[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Disjoint reports whether s ∩ t = ∅.
func (s Set) Disjoint(t Set) bool { return s.IntersectCount(t) == 0 }

// Smallest returns the lexically smallest member of s, or None if s is
// empty. This is the designated tie-breaker process of dynamic linear
// voting.
func (s Set) Smallest() ID {
	if s.word0 != 0 {
		return ID(bits.TrailingZeros64(s.word0))
	}
	for i, w := range s.rest {
		if w != 0 {
			return ID((i+1)*wordBits + bits.TrailingZeros64(w))
		}
	}
	return None
}

// Members returns the IDs in ascending order.
func (s Set) Members() []ID {
	return s.AppendMembers(make([]ID, 0, s.Count()))
}

// AppendMembers appends the IDs in ascending order to dst and returns
// the extended slice, letting hot paths reuse a caller-owned buffer.
func (s Set) AppendMembers(dst []ID) []ID {
	for w := s.word0; w != 0; {
		b := bits.TrailingZeros64(w)
		dst = append(dst, ID(b))
		w &^= 1 << uint(b)
	}
	for i, w := range s.rest {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, ID((i+1)*wordBits+b))
			w &^= 1 << uint(b)
		}
	}
	return dst
}

// ForEach calls fn for each member in ascending order. The body is
// deliberately kept within the compiler's inlining budget: the
// simulator calls ForEach with closures on its hottest paths, and
// inlining both the loop and the closure is worth ~20% of a run
// (w &= w-1 clears the lowest set bit with fewer IR nodes than the
// shift-and-clear form).
func (s Set) ForEach(fn func(ID)) {
	w, base := s.word0, 0
	for i := 0; ; i++ {
		for ; w != 0; w &= w - 1 {
			fn(ID(base + bits.TrailingZeros64(w)))
		}
		if i >= len(s.rest) {
			return
		}
		w = s.rest[i]
		base += wordBits
	}
}

// Nth returns the n-th smallest member (0-based), or None if n is out
// of range. Used by the simulator to pick uniform random members.
func (s Set) Nth(n int) ID {
	if n < 0 {
		return None
	}
	if c := bits.OnesCount64(s.word0); n < c {
		return nthInWord(s.word0, n, 0)
	} else {
		n -= c
	}
	for i, w := range s.rest {
		c := bits.OnesCount64(w)
		if n < c {
			return nthInWord(w, n, (i+1)*wordBits)
		}
		n -= c
	}
	return None
}

// nthInWord returns base + the position of the n-th set bit of w; the
// caller guarantees w has more than n bits set.
func nthInWord(w uint64, n, base int) ID {
	for ; ; n-- {
		b := bits.TrailingZeros64(w)
		if n == 0 {
			return ID(base + b)
		}
		w &^= 1 << uint(b)
	}
}

// Key returns a comparable representation of s, usable as a map key.
// Sets over at most 192 processes fit without allocation beyond the
// struct itself; the thesis simulates at most 64.
func (s Set) Key() Key {
	k := Key{w: [3]uint64{s.word0}}
	for i, w := range s.rest {
		switch {
		case i < 2:
			k.w[i+1] = w
		case w != 0:
			k.overflow += "," + strconv.FormatUint(w, 16)
		}
	}
	return k
}

// Key is a comparable digest of a Set; see Set.Key.
type Key struct {
	w        [3]uint64
	overflow string
}

// Words exposes the raw bitset words (a copy) for wire encoding. The
// result is trimmed of trailing zero words; the empty set yields an
// empty slice.
func (s Set) Words() []uint64 {
	if s.Empty() {
		return nil
	}
	out := make([]uint64, 1+len(s.rest))
	out[0] = s.word0
	copy(out[1:], s.rest)
	return out
}

// SetFromWords builds a Set from raw bitset words, copying them.
func SetFromWords(words []uint64) Set {
	if len(words) == 0 {
		return Set{}
	}
	s := Set{word0: words[0]}
	if len(words) > 1 {
		rest := make([]uint64, len(words)-1)
		copy(rest, words[1:])
		s.rest = trimmed(rest)
	}
	return s
}

// String renders the set as "{p0,p3,p5}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id ID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(id.String())
	})
	b.WriteByte('}')
	return b.String()
}

// trimmed drops trailing zero words so Equal/Key behave uniformly;
// a fully zero slice becomes nil.
func trimmed(rest []uint64) []uint64 {
	n := len(rest)
	for n > 0 && rest[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	return rest[:n]
}
