// Package proc defines process identities and ordered process sets.
//
// Every quorum rule in the dynamic voting algorithms is expressed over
// sets of processes, and the "lexically smallest" tie-breaking rule of
// dynamic linear voting needs a deterministic total order on processes.
// IDs are small dense integers (the simulator numbers processes
// 0..n-1); Set is a bitset whose first InlineProcs bits live in a fixed
// inline word array, so every configuration up to 256 processes — the
// thesis's 64 and the scaling sweep's 128/256 — performs every set
// operation without touching the heap.
package proc

import (
	"math/bits"
	"strconv"
	"strings"
)

// ID identifies a single process. The total order on IDs defines the
// "lexically smallest" process used to break exact-half ties in
// dynamic linear voting (thesis §3.1): the thesis suggests sorting by
// numeric IP address and process id; here the integer value plays that
// role directly.
type ID int

// None is a sentinel returned when an operation over an empty set has
// no process to report.
const None ID = -1

// String returns a short printable form, e.g. "p7".
func (id ID) String() string { return "p" + strconv.Itoa(int(id)) }

const wordBits = 64

// inlineWords is the number of bitset words stored directly in the Set
// struct. Four words cover 256 processes, comfortably past the scaling
// sweep's largest configuration, before any operation allocates.
const inlineWords = 4

// InlineProcs is the largest process count whose sets live entirely in
// a Set's fixed inline storage: sets over IDs below InlineProcs never
// touch the heap.
const InlineProcs = inlineWords * wordBits

// Set is an immutable-by-convention set of process IDs backed by a
// bitset. The zero value is the empty set. Mutating methods are
// value-receiver and return new sets; the in-place Add/Remove/Clear
// variants mutate only the receiver's inline array and copy-on-write
// any overflow storage, so published overflow words are never written
// and sets may share them freely.
//
// Representation: w holds members 0..InlineProcs-1. While the set has
// no larger member, rest is nil. The moment a member ≥ InlineProcs
// appears, rest holds the ENTIRE word list — word i covers IDs
// [64i, 64i+63], rest[:inlineWords] mirrors w — trimmed of trailing
// zero words (so rest is either nil or longer than inlineWords with a
// nonzero last word, making Equal and Key structural). The mirror lets
// the iteration hot paths (ForEach above all, which must stay within
// the compiler's inlining budget) range over a single word slice with
// no per-word source switching.
type Set struct {
	w    [inlineWords]uint64
	rest []uint64
}

// NewSet returns a set containing exactly the given IDs. Negative IDs
// are rejected by panicking, since they indicate a programming error
// (IDs are assigned by the caller as dense non-negative integers).
func NewSet(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Universe returns the set {0, 1, ..., n-1}.
func Universe(n int) Set {
	if n <= 0 {
		return Set{}
	}
	var s Set
	nw := (n + wordBits - 1) / wordBits
	words := s.w[:]
	if nw > inlineWords {
		s.rest = make([]uint64, nw)
		words = s.rest
	}
	for i := 0; i < nw; i++ {
		words[i] = ^uint64(0)
	}
	if rem := n % wordBits; rem != 0 {
		words[nw-1] = (uint64(1) << rem) - 1
	}
	copy(s.w[:], s.rest)
	return s
}

// setFromFull builds a Set from a full absolute word list, taking
// ownership of the slice. Trailing zero words are trimmed; lists that
// fit the inline array shed their overflow storage.
func setFromFull(words []uint64) Set {
	words = trimmed(words)
	var s Set
	copy(s.w[:], words)
	if len(words) > inlineWords {
		s.rest = words
	}
	return s
}

// With returns s ∪ {id}.
func (s Set) With(id ID) Set {
	if uint(id) < InlineProcs && len(s.rest) == 0 {
		s.w[int(id)/wordBits] |= 1 << uint(int(id)%wordBits)
		return s
	}
	return s.withSlow(id)
}

// withSlow is With's overflow path: the set already has overflow words
// to mirror, or id itself lies beyond the inline bound. Kept out of
// With so the inline fast path stays within the inlining budget.
func (s Set) withSlow(id ID) Set {
	if id < 0 {
		panic("proc: negative ID")
	}
	wi := int(id) / wordBits
	rest := make([]uint64, max(len(s.rest), wi+1))
	if len(s.rest) == 0 {
		copy(rest, s.w[:])
	} else {
		copy(rest, s.rest)
	}
	rest[wi] |= 1 << uint(int(id)%wordBits)
	return setFromFull(rest)
}

// Without returns s \ {id}.
func (s Set) Without(id ID) Set {
	if uint(id) < InlineProcs && len(s.rest) == 0 {
		s.w[int(id)/wordBits] &^= 1 << uint(int(id)%wordBits)
		return s
	}
	return s.withoutSlow(id)
}

// withoutSlow is Without's overflow path; see withSlow.
func (s Set) withoutSlow(id ID) Set {
	if !s.Contains(id) {
		return s
	}
	rest := make([]uint64, len(s.rest))
	copy(rest, s.rest)
	rest[int(id)/wordBits] &^= 1 << uint(int(id)%wordBits)
	return setFromFull(rest)
}

// Add inserts id into s in place. On sets confined to the inline array
// — every configuration up to InlineProcs processes — this mutates the
// receiver's fixed storage with no allocation; sets with overflow
// words copy-on-write them, so storage shared with other sets (value
// copies, Union aliasing) is never written through.
func (s *Set) Add(id ID) {
	if uint(id) < InlineProcs && len(s.rest) == 0 {
		s.w[int(id)/wordBits] |= 1 << uint(int(id)%wordBits)
		return
	}
	*s = s.withSlow(id)
}

// Remove deletes id from s in place, under the same aliasing contract
// as Add: inline-only sets are allocation-free, overflow sets
// copy-on-write.
func (s *Set) Remove(id ID) {
	if uint(id) < InlineProcs && len(s.rest) == 0 {
		s.w[int(id)/wordBits] &^= 1 << uint(int(id)%wordBits)
		return
	}
	*s = s.withoutSlow(id)
}

// Clear empties s in place, dropping any overflow storage.
func (s *Set) Clear() { *s = Set{} }

// Contains reports whether id is a member of s.
func (s Set) Contains(id ID) bool {
	if id < 0 {
		return false
	}
	wi := int(id) / wordBits
	if len(s.rest) != 0 {
		return wi < len(s.rest) && s.rest[wi]&(1<<uint(int(id)%wordBits)) != 0
	}
	return wi < inlineWords && s.w[wi]&(1<<uint(int(id)%wordBits)) != 0
}

// Count returns |s|.
func (s Set) Count() int {
	if len(s.rest) != 0 {
		n := 0
		for _, w := range s.rest {
			n += bits.OnesCount64(w)
		}
		return n
	}
	return bits.OnesCount64(s.w[0]) + bits.OnesCount64(s.w[1]) +
		bits.OnesCount64(s.w[2]) + bits.OnesCount64(s.w[3])
}

// Empty reports whether s has no members.
func (s Set) Empty() bool {
	return s.w[0]|s.w[1]|s.w[2]|s.w[3] == 0 && len(s.rest) == 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	if len(s.rest) == 0 && len(t.rest) == 0 {
		for i := range s.w {
			s.w[i] |= t.w[i]
		}
		return s
	}
	return s.unionSlow(t)
}

// unionSlow handles unions where at least one side has overflow words.
func (s Set) unionSlow(t Set) Set {
	if len(s.rest) == 0 {
		s, t = t, s
	}
	if len(t.rest) == 0 {
		// t fits inline; if it adds nothing to s's mirrored low words,
		// the union IS s (sharing s.rest is safe — published words are
		// never mutated).
		add := false
		for i := range t.w {
			if t.w[i]&^s.w[i] != 0 {
				add = true
				break
			}
		}
		if !add {
			return s
		}
		rest := make([]uint64, len(s.rest))
		copy(rest, s.rest)
		for i := range t.w {
			rest[i] |= t.w[i]
		}
		return setFromFull(rest)
	}
	a, b := s.rest, t.rest
	if len(b) > len(a) {
		a, b = b, a
	}
	share := true
	for i, w := range b {
		if w&^a[i] != 0 {
			share = false
			break
		}
	}
	if share {
		out := Set{rest: a}
		copy(out.w[:], a)
		return out
	}
	rest := make([]uint64, len(a))
	copy(rest, a)
	for i, w := range b {
		rest[i] |= w
	}
	return setFromFull(rest)
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	if len(s.rest) == 0 || len(t.rest) == 0 {
		// At least one side has no members ≥ InlineProcs, so neither
		// does the intersection; both inline arrays are authoritative
		// for everything below the bound.
		var out Set
		for i := range out.w {
			out.w[i] = s.w[i] & t.w[i]
		}
		return out
	}
	n := min(len(s.rest), len(t.rest))
	rest := make([]uint64, n)
	for i := 0; i < n; i++ {
		rest[i] = s.rest[i] & t.rest[i]
	}
	return setFromFull(rest)
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	if len(s.rest) == 0 {
		for i := range s.w {
			s.w[i] &^= t.w[i]
		}
		return s
	}
	b := t.rest
	if len(b) == 0 {
		b = t.w[:]
	}
	rest := make([]uint64, len(s.rest))
	copy(rest, s.rest)
	for i := 0; i < len(rest) && i < len(b); i++ {
		rest[i] &^= b[i]
	}
	return setFromFull(rest)
}

// IntersectCount returns |s ∩ t| without allocating.
func (s Set) IntersectCount(t Set) int {
	if len(s.rest) == 0 || len(t.rest) == 0 {
		return bits.OnesCount64(s.w[0]&t.w[0]) + bits.OnesCount64(s.w[1]&t.w[1]) +
			bits.OnesCount64(s.w[2]&t.w[2]) + bits.OnesCount64(s.w[3]&t.w[3])
	}
	c := 0
	n := min(len(s.rest), len(t.rest))
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.rest[i] & t.rest[i])
	}
	return c
}

// InlineWords returns the fixed inline word array of s and whether the
// set fits entirely in it (no overflow words). Every configuration up
// to InlineProcs processes qualifies, so callers like package quorum
// use this as the precondition for straight-line popcount arithmetic
// that avoids the general variable-length word loops.
func (s Set) InlineWords() ([inlineWords]uint64, bool) {
	return s.w, len(s.rest) == 0
}

// Bitmap returns the set's complete word list without copying: the
// overflow slice when one exists, otherwise the inline array. Word i
// covers IDs [64i, 64i+63]; inline sets always yield inlineWords words
// (trailing zeros included), overflow sets yield their trimmed list.
// The slice aliases the receiver's storage — callers must treat it as
// read-only and not hold it across a mutation of *s. This is the entry
// point for word-parallel consumers (quorum's fused popcount loops,
// Bits.AddSet/ContainsSet) that want one loop for every universe width
// instead of an inline/overflow case split.
func (s *Set) Bitmap() []uint64 {
	if len(s.rest) != 0 {
		return s.rest
	}
	return s.w[:]
}

// EachWhile calls fn for each member in ascending order until fn
// returns false. The early exit is what separates it from ForEach:
// witness scans ("does any member satisfy P?") over kilo-process sets
// stop at the first hit instead of walking the remaining words.
func (s Set) EachWhile(fn func(ID) bool) {
	words := s.w[:]
	if len(s.rest) != 0 {
		words = s.rest
	}
	for i, w := range words {
		for ; w != 0; w &= w - 1 {
			if !fn(ID(i*wordBits + bits.TrailingZeros64(w))) {
				return
			}
		}
	}
}

// Equal reports whether s and t have identical membership.
func (s Set) Equal(t Set) bool {
	if s.w != t.w || len(s.rest) != len(t.rest) {
		return false
	}
	for i, w := range s.rest {
		if w != t.rest[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is in t.
func (s Set) SubsetOf(t Set) bool {
	if len(s.rest) == 0 {
		// s has no members ≥ InlineProcs; t's inline mirror covers
		// everything that matters.
		for i := range s.w {
			if s.w[i]&^t.w[i] != 0 {
				return false
			}
		}
		return true
	}
	b := t.rest
	if len(b) == 0 {
		b = t.w[:]
	}
	for i, w := range s.rest {
		var tw uint64
		if i < len(b) {
			tw = b[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Disjoint reports whether s ∩ t = ∅.
func (s Set) Disjoint(t Set) bool { return s.IntersectCount(t) == 0 }

// Smallest returns the lexically smallest member of s, or None if s is
// empty. This is the designated tie-breaker process of dynamic linear
// voting.
func (s Set) Smallest() ID {
	words := s.w[:]
	if len(s.rest) != 0 {
		words = s.rest
	}
	for i, w := range words {
		if w != 0 {
			return ID(i*wordBits + bits.TrailingZeros64(w))
		}
	}
	return None
}

// Max returns the largest member of s, or None if s is empty. The
// simulator sizes its per-process tables from the universe's Max.
func (s Set) Max() ID {
	words := s.w[:]
	if len(s.rest) != 0 {
		words = s.rest
	}
	for i := len(words) - 1; i >= 0; i-- {
		if w := words[i]; w != 0 {
			return ID(i*wordBits + wordBits - 1 - bits.LeadingZeros64(w))
		}
	}
	return None
}

// Members returns the IDs in ascending order.
func (s Set) Members() []ID {
	return s.AppendMembers(make([]ID, 0, s.Count()))
}

// AppendMembers appends the IDs in ascending order to dst and returns
// the extended slice, letting hot paths reuse a caller-owned buffer.
func (s Set) AppendMembers(dst []ID) []ID {
	words := s.w[:]
	if len(s.rest) != 0 {
		words = s.rest
	}
	for i, rw := range words {
		for w := rw; w != 0; w &= w - 1 {
			dst = append(dst, ID(i*wordBits+bits.TrailingZeros64(w)))
		}
	}
	return dst
}

// ForEach calls fn for each member in ascending order. The body is
// deliberately kept within the compiler's inlining budget: the
// simulator calls ForEach with closures on its hottest paths, and
// inlining both the loop and the closure is worth ~20% of a run. The
// full-list mirror invariant exists for exactly this function — one
// range loop over one slice, no per-word source switching (w &= w-1
// clears the lowest set bit with fewer IR nodes than shift-and-clear).
func (s Set) ForEach(fn func(ID)) {
	words := s.w[:]
	if len(s.rest) != 0 {
		words = s.rest
	}
	for i, w := range words {
		for ; w != 0; w &= w - 1 {
			fn(ID(i*wordBits + bits.TrailingZeros64(w)))
		}
	}
}

// Nth returns the n-th smallest member (0-based), or None if n is out
// of range. Used by the simulator to pick uniform random members.
func (s Set) Nth(n int) ID {
	if n < 0 {
		return None
	}
	words := s.w[:]
	if len(s.rest) != 0 {
		words = s.rest
	}
	for i, w := range words {
		c := bits.OnesCount64(w)
		if n < c {
			return nthInWord(w, n, i*wordBits)
		}
		n -= c
	}
	return None
}

// nthInWord returns base + the position of the n-th set bit of w; the
// caller guarantees w has more than n bits set.
func nthInWord(w uint64, n, base int) ID {
	for ; ; n-- {
		b := bits.TrailingZeros64(w)
		if n == 0 {
			return ID(base + b)
		}
		w &^= 1 << uint(b)
	}
}

// Key returns a comparable representation of s, usable as a map key.
// Sets over at most InlineProcs processes fit in the fixed array with
// no string building; larger sets encode every overflow word — zeros
// included, so word position is unambiguous — into the overflow
// string.
func (s Set) Key() Key {
	k := Key{w: s.w}
	if len(s.rest) > inlineWords {
		for _, w := range s.rest[inlineWords:] {
			k.overflow += "," + strconv.FormatUint(w, 16)
		}
	}
	return k
}

// Key is a comparable digest of a Set; see Set.Key.
type Key struct {
	w        [inlineWords]uint64
	overflow string
}

// Words exposes the raw bitset words (a copy) for wire encoding. The
// result is trimmed of trailing zero words; the empty set yields an
// empty slice. The layout — word i covers IDs [64i, 64i+63] — is
// independent of the inline/overflow split, so encodings are stable
// across representation changes.
func (s Set) Words() []uint64 {
	if len(s.rest) != 0 {
		out := make([]uint64, len(s.rest))
		copy(out, s.rest)
		return out
	}
	nw := inlineWords
	for nw > 0 && s.w[nw-1] == 0 {
		nw--
	}
	if nw == 0 {
		return nil
	}
	out := make([]uint64, nw)
	copy(out, s.w[:nw])
	return out
}

// SetFromWords builds a Set from raw bitset words, copying them.
func SetFromWords(words []uint64) Set {
	words = trimmed(words)
	var s Set
	if len(words) <= inlineWords {
		copy(s.w[:], words)
		return s
	}
	rest := make([]uint64, len(words))
	copy(rest, words)
	copy(s.w[:], rest)
	s.rest = rest
	return s
}

// String renders the set as "{p0,p3,p5}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id ID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(id.String())
	})
	b.WriteByte('}')
	return b.String()
}

// trimmed drops trailing zero words so Equal/Key behave uniformly;
// a fully zero slice becomes nil.
func trimmed(rest []uint64) []uint64 {
	n := len(rest)
	for n > 0 && rest[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	return rest[:n]
}
