// Package proc defines process identities and ordered process sets.
//
// Every quorum rule in the dynamic voting algorithms is expressed over
// sets of processes, and the "lexically smallest" tie-breaking rule of
// dynamic linear voting needs a deterministic total order on processes.
// IDs are small dense integers (the simulator numbers processes
// 0..n-1); Set is a bitset, so the common 64-process configuration of
// the thesis fits in a single word.
package proc

import (
	"math/bits"
	"strconv"
	"strings"
)

// ID identifies a single process. The total order on IDs defines the
// "lexically smallest" process used to break exact-half ties in
// dynamic linear voting (thesis §3.1): the thesis suggests sorting by
// numeric IP address and process id; here the integer value plays that
// role directly.
type ID int

// None is a sentinel returned when an operation over an empty set has
// no process to report.
const None ID = -1

// String returns a short printable form, e.g. "p7".
func (id ID) String() string { return "p" + strconv.Itoa(int(id)) }

const wordBits = 64

// Set is an immutable-by-convention set of process IDs backed by a
// bitset. The zero value is the empty set. Mutating methods are
// value-receiver and return new sets; nothing in this package aliases
// a caller's words.
type Set struct {
	words []uint64
}

// NewSet returns a set containing exactly the given IDs. Negative IDs
// are rejected by panicking, since they indicate a programming error
// (IDs are assigned by the caller as dense non-negative integers).
func NewSet(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s = s.With(id)
	}
	return s
}

// Universe returns the set {0, 1, ..., n-1}.
func Universe(n int) Set {
	if n <= 0 {
		return Set{}
	}
	words := make([]uint64, (n+wordBits-1)/wordBits)
	for i := range words {
		words[i] = ^uint64(0)
	}
	if rem := n % wordBits; rem != 0 {
		words[len(words)-1] = (uint64(1) << rem) - 1
	}
	return Set{words: words}
}

// With returns s ∪ {id}.
func (s Set) With(id ID) Set {
	if id < 0 {
		panic("proc: negative ID")
	}
	w, b := int(id)/wordBits, uint(int(id)%wordBits)
	words := make([]uint64, max(len(s.words), w+1))
	copy(words, s.words)
	words[w] |= 1 << b
	return Set{words: words}
}

// Without returns s \ {id}.
func (s Set) Without(id ID) Set {
	if !s.Contains(id) {
		return s
	}
	w, b := int(id)/wordBits, uint(int(id)%wordBits)
	words := make([]uint64, len(s.words))
	copy(words, s.words)
	words[w] &^= 1 << b
	return Set{words: words}.normalize()
}

// Contains reports whether id is a member of s.
func (s Set) Contains(id ID) bool {
	if id < 0 {
		return false
	}
	w, b := int(id)/wordBits, uint(int(id)%wordBits)
	return w < len(s.words) && s.words[w]&(1<<b) != 0
}

// Count returns |s|.
func (s Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether s has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	if len(t.words) > len(s.words) {
		s, t = t, s
	}
	words := make([]uint64, len(s.words))
	copy(words, s.words)
	for i, w := range t.words {
		words[i] |= w
	}
	return Set{words: words}
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	n := min(len(s.words), len(t.words))
	words := make([]uint64, n)
	for i := 0; i < n; i++ {
		words[i] = s.words[i] & t.words[i]
	}
	return Set{words: words}.normalize()
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	words := make([]uint64, len(s.words))
	copy(words, s.words)
	for i := 0; i < len(words) && i < len(t.words); i++ {
		words[i] &^= t.words[i]
	}
	return Set{words: words}.normalize()
}

// IntersectCount returns |s ∩ t| without allocating.
func (s Set) IntersectCount(t Set) int {
	n := min(len(s.words), len(t.words))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// Equal reports whether s and t have identical membership.
func (s Set) Equal(t Set) bool {
	a, b := s.words, t.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	for i := len(b); i < len(a); i++ {
		if a[i] != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is in t.
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Disjoint reports whether s ∩ t = ∅.
func (s Set) Disjoint(t Set) bool { return s.IntersectCount(t) == 0 }

// Smallest returns the lexically smallest member of s, or None if s is
// empty. This is the designated tie-breaker process of dynamic linear
// voting.
func (s Set) Smallest() ID {
	for i, w := range s.words {
		if w != 0 {
			return ID(i*wordBits + bits.TrailingZeros64(w))
		}
	}
	return None
}

// Members returns the IDs in ascending order.
func (s Set) Members() []ID {
	out := make([]ID, 0, s.Count())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, ID(i*wordBits+b))
			w &^= 1 << uint(b)
		}
	}
	return out
}

// ForEach calls fn for each member in ascending order.
func (s Set) ForEach(fn func(ID)) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(ID(i*wordBits + b))
			w &^= 1 << uint(b)
		}
	}
}

// Nth returns the n-th smallest member (0-based), or None if n is out
// of range. Used by the simulator to pick uniform random members.
func (s Set) Nth(n int) ID {
	if n < 0 {
		return None
	}
	for i, w := range s.words {
		c := bits.OnesCount64(w)
		if n < c {
			for ; ; n-- {
				b := bits.TrailingZeros64(w)
				if n == 0 {
					return ID(i*wordBits + b)
				}
				w &^= 1 << uint(b)
			}
		}
		n -= c
	}
	return None
}

// Key returns a comparable representation of s, usable as a map key.
// Sets over at most 192 processes fit without allocation beyond the
// struct itself; the thesis simulates at most 64.
func (s Set) Key() Key {
	var k Key
	for i, w := range s.words {
		switch {
		case i < len(k.w):
			k.w[i] = w
		case w != 0:
			k.overflow += "," + strconv.FormatUint(w, 16)
		}
	}
	return k
}

// Key is a comparable digest of a Set; see Set.Key.
type Key struct {
	w        [3]uint64
	overflow string
}

// Words exposes the raw bitset words (a copy) for wire encoding.
func (s Set) Words() []uint64 {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	return out
}

// SetFromWords builds a Set from raw bitset words, copying them.
func SetFromWords(words []uint64) Set {
	out := make([]uint64, len(words))
	copy(out, words)
	return Set{words: out}.normalize()
}

// String renders the set as "{p0,p3,p5}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id ID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(id.String())
	})
	b.WriteByte('}')
	return b.String()
}

// normalize trims trailing zero words so Equal/Key behave uniformly.
func (s Set) normalize() Set {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	return Set{words: s.words[:n]}
}
