package proc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSetBasics(t *testing.T) {
	s := NewSet(0, 3, 5)
	if got := s.Count(); got != 3 {
		t.Fatalf("Count() = %d, want 3", got)
	}
	for _, id := range []ID{0, 3, 5} {
		if !s.Contains(id) {
			t.Errorf("Contains(%v) = false, want true", id)
		}
	}
	for _, id := range []ID{1, 2, 4, 6, 100} {
		if s.Contains(id) {
			t.Errorf("Contains(%v) = true, want false", id)
		}
	}
	if s.Contains(-1) {
		t.Error("Contains(-1) = true, want false")
	}
}

func TestUniverse(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{0, 0}, {1, 1}, {5, 5}, {63, 63}, {64, 64}, {65, 65}, {128, 128}, {130, 130},
	}
	for _, tt := range tests {
		u := Universe(tt.n)
		if got := u.Count(); got != tt.want {
			t.Errorf("Universe(%d).Count() = %d, want %d", tt.n, got, tt.want)
		}
		if tt.n > 0 && !u.Contains(ID(tt.n-1)) {
			t.Errorf("Universe(%d) missing last member", tt.n)
		}
		if u.Contains(ID(tt.n)) {
			t.Errorf("Universe(%d) contains %d", tt.n, tt.n)
		}
	}
	if !Universe(-3).Empty() {
		t.Error("Universe(-3) not empty")
	}
}

func TestWithWithout(t *testing.T) {
	s := NewSet(1, 2)
	s2 := s.With(7)
	if s.Contains(7) {
		t.Error("With mutated the receiver")
	}
	if !s2.Contains(7) || s2.Count() != 3 {
		t.Errorf("With(7) wrong: %v", s2)
	}
	s3 := s2.Without(2)
	if s2.Count() != 3 {
		t.Error("Without mutated the receiver")
	}
	if s3.Contains(2) || s3.Count() != 2 {
		t.Errorf("Without(2) wrong: %v", s3)
	}
	if got := s3.Without(99); !got.Equal(s3) {
		t.Errorf("Without(absent) changed the set: %v", got)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(0, 1, 2, 64, 65)
	b := NewSet(2, 3, 65, 130)

	if got := a.Union(b); got.Count() != 7 || !NewSet(0, 1, 2, 3, 64, 65, 130).Equal(got) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewSet(2, 65)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(NewSet(0, 1, 64)) {
		t.Errorf("Diff = %v", got)
	}
	if got := a.IntersectCount(b); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}
	if a.Disjoint(b) {
		t.Error("Disjoint = true, want false")
	}
	if !a.Disjoint(NewSet(9, 10)) {
		t.Error("Disjoint = false, want true")
	}
}

func TestEqualAcrossWordLengths(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(1, 2, 200).Without(200) // longer backing array, same membership
	if !a.Equal(b) || !b.Equal(a) {
		t.Errorf("Equal across word lengths failed: %v vs %v", a, b)
	}
	if a.Key() != b.Key() {
		t.Errorf("Key mismatch for equal sets")
	}
}

func TestSubsetOf(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(1, 2, 3)
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊆ a unexpected")
	}
	if !(Set{}).SubsetOf(a) {
		t.Error("∅ ⊆ a expected")
	}
	if !a.SubsetOf(a) {
		t.Error("a ⊆ a expected")
	}
}

func TestSmallest(t *testing.T) {
	if got := (Set{}).Smallest(); got != None {
		t.Errorf("empty Smallest = %v, want None", got)
	}
	if got := NewSet(5, 3, 70).Smallest(); got != 3 {
		t.Errorf("Smallest = %v, want p3", got)
	}
	if got := NewSet(70, 100).Smallest(); got != 70 {
		t.Errorf("Smallest = %v, want p70", got)
	}
}

func TestMembersAndForEach(t *testing.T) {
	s := NewSet(9, 0, 64, 3)
	want := []ID{0, 3, 9, 64}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	var walked []ID
	s.ForEach(func(id ID) { walked = append(walked, id) })
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("ForEach order = %v, want %v", walked, want)
		}
	}
}

func TestNth(t *testing.T) {
	s := NewSet(2, 5, 64, 100)
	wants := []ID{2, 5, 64, 100}
	for i, want := range wants {
		if got := s.Nth(i); got != want {
			t.Errorf("Nth(%d) = %v, want %v", i, got, want)
		}
	}
	if got := s.Nth(4); got != None {
		t.Errorf("Nth(4) = %v, want None", got)
	}
	if got := s.Nth(-1); got != None {
		t.Errorf("Nth(-1) = %v, want None", got)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	s := NewSet(0, 63, 64, 127, 129)
	got := SetFromWords(s.Words())
	if !got.Equal(s) {
		t.Errorf("round trip = %v, want %v", got, s)
	}
	// Mutating the returned words must not affect the set.
	w := s.Words()
	w[0] = 0
	if !s.Contains(0) {
		t.Error("Words() aliases internal storage")
	}
}

func TestString(t *testing.T) {
	if got := NewSet(1, 3).String(); got != "{p1,p3}" {
		t.Errorf("String = %q", got)
	}
	if got := (Set{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func randomSet(r *rand.Rand, maxID int) Set {
	var s Set
	for i := 0; i < maxID; i++ {
		if r.Intn(2) == 0 {
			s = s.With(ID(i))
		}
	}
	return s
}

// Property: standard set-algebra laws hold on random sets.
func TestSetAlgebraProperties(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomSet(rr, 130), randomSet(rr, 130)
		u, i := a.Union(b), a.Intersect(b)
		// |A∪B| + |A∩B| = |A| + |B|
		if u.Count()+i.Count() != a.Count()+b.Count() {
			return false
		}
		// A\B ∪ A∩B = A
		if !a.Diff(b).Union(i).Equal(a) {
			return false
		}
		// A∩B ⊆ A ⊆ A∪B
		if !i.SubsetOf(a) || !a.SubsetOf(u) {
			return false
		}
		// De Morgan on a finite universe.
		univ := Universe(130)
		if !univ.Diff(u).Equal(univ.Diff(a).Intersect(univ.Diff(b))) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Members / NewSet round-trips, and Smallest is min(Members).
func TestMembersRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		s := randomSet(rr, 200)
		rt := NewSet(s.Members()...)
		if !rt.Equal(s) {
			return false
		}
		m := s.Members()
		if len(m) == 0 {
			return s.Smallest() == None
		}
		return s.Smallest() == m[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersectCount64(b *testing.B) {
	x := Universe(64)
	y := NewSet(0, 5, 9, 33, 63)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectCount(y)
	}
}

// The 256-process benchmarks pin the multi-word inline path at the
// scaling sweep's largest system size: word-parallel loops over the
// full inline array, still zero heap traffic.

func BenchmarkIntersectCount256(b *testing.B) {
	x := Universe(256)
	y := NewSet(0, 5, 9, 33, 63, 64, 127, 128, 200, 255)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectCount(y)
	}
}

var benchSink int

func BenchmarkForEach256(b *testing.B) {
	s := Universe(256)
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ForEach(func(id ID) { n += int(id) })
	}
	benchSink = n
}

var benchSinkSet Set

func BenchmarkUnion256(b *testing.B) {
	x := Universe(128)
	y := Universe(256).Diff(Universe(100))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSinkSet = x.Union(y)
	}
}

// The 1024-process benchmarks pin the overflow-word paths at the
// kilo-process sweep size: one variable-length word loop each, with
// IntersectCount/ForEach allocation-free and Bits absorbing the
// mutation traffic that Set's copy-on-write overflow would multiply.

func BenchmarkIntersectCount1024(b *testing.B) {
	x := Universe(1024)
	y := NewSet(0, 5, 63, 64, 255, 256, 511, 512, 700, 1023)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectCount(y)
	}
}

func BenchmarkForEach1024(b *testing.B) {
	s := Universe(1024)
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ForEach(func(id ID) { n += int(id) })
	}
	benchSink = n
}

func BenchmarkUnion1024(b *testing.B) {
	x := Universe(512)
	y := Universe(1024).Diff(Universe(400))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSinkSet = x.Union(y)
	}
}

func BenchmarkBitsAccumulate1024(b *testing.B) {
	var acc Bits
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc.Reset(1024)
		for id := ID(0); id < 1024; id++ {
			acc.Add(id)
		}
		n += acc.Count()
	}
	benchSink = n
}

// TestSmallSetOpsAllocationFree pins the inline fast path: every set
// operation on sets of ≤64 processes must stay off the heap. This is
// the perf contract the simulator's hot loop depends on.
func TestSmallSetOpsAllocationFree(t *testing.T) {
	a := NewSet(0, 3, 17, 42, 63)
	b := NewSet(3, 5, 42, 60)
	var sink Set
	var n int
	allocs := testing.AllocsPerRun(100, func() {
		sink = a.With(7).Without(3).Union(b).Intersect(a).Diff(b)
		n += sink.Count()
		if a.Contains(5) || !a.SubsetOf(a) {
			t.Fatal("wrong set algebra")
		}
		a.ForEach(func(id ID) { n += int(id) })
	})
	if allocs != 0 {
		t.Errorf("small-set ops allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}
