// Package profile provides offline pprof file capture for the
// experiment CLIs. examples/livecluster serves live profiles over
// HTTP; batch tools like cmd/figures and cmd/availsim have no server,
// so they write profile files instead — the standard workflow for
// profiling a full-resolution sweep.
package profile

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for an allocation
// profile at memPath; either path may be empty to skip that profile.
// It returns a stop function that must be called exactly once
// (typically deferred) to finish the CPU profile and write the heap
// profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profile: %w", err)
			}
		}
		return nil
	}, nil
}
