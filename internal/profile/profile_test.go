package profile

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")

	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a little work so the profiles are non-trivial.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartEmptyPathsIsNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join("no", "such", "dir", "x.prof"), ""); err == nil {
		t.Fatal("expected error for unwritable cpu profile path")
	}
}
