package quorum_test

import (
	"fmt"

	"dynvote/internal/proc"
	"dynvote/internal/quorum"
)

// The dynamic linear voting rule: a majority of the previous primary
// suffices, and an exact half wins if it holds the lexically smallest
// member.
func ExampleSubQuorum() {
	previousPrimary := proc.NewSet(0, 1, 2, 3)

	fmt.Println(quorum.SubQuorum(proc.NewSet(1, 2, 3), previousPrimary)) // majority
	fmt.Println(quorum.SubQuorum(proc.NewSet(0, 3), previousPrimary))    // half + smallest
	fmt.Println(quorum.SubQuorum(proc.NewSet(2, 3), previousPrimary))    // half, no smallest
	// Output:
	// true
	// true
	// false
}

// Two disjoint groups can never both be subquorums of the same
// previous group — the property that prevents two primaries.
func ExampleSubQuorum_disjoint() {
	previous := proc.NewSet(0, 1, 2, 3, 4)
	left := proc.NewSet(0, 1)
	right := proc.NewSet(2, 3, 4)

	fmt.Println(quorum.SubQuorum(left, previous), quorum.SubQuorum(right, previous))
	// Output: false true
}
