// Package quorum implements the voting rules of the thesis.
//
// Dynamic linear voting (Jajodia & Mutchler, thesis §3) admits a group
// X as the successor of a group Y if X holds more than half of Y's
// members, or exactly half including the lexically smallest member of
// Y. The same SUBQUORUM primitive is shared by YKD, its variants, and
// MR1p (thesis Fig 3-4); the simple-majority baseline uses the plain
// majority rule against the original process set.
//
// Both predicates sit on the simulator's hottest path — every DECIDE,
// every resolution tally — so the ≤64-process case (every configuration
// the thesis measures) is special-cased to a couple of inline popcounts
// over the sets' single inline words, skipping the general multi-word
// loops entirely.
package quorum

import (
	"math/bits"

	"dynvote/internal/proc"
)

// SubQuorum reports whether x is a subquorum of y under dynamic linear
// voting:
//
//   - more than half the processes in y are also in x, or
//   - exactly half of y is in x and the lexically smallest process of
//     y is in x.
//
// An empty y has no subquorums: with no previous membership to anchor
// to, no group may claim succession.
func SubQuorum(x, y proc.Set) bool {
	if yw, ok := y.InlineWord(); ok {
		if xw, ok := x.InlineWord(); ok {
			total := bits.OnesCount64(yw)
			if total == 0 {
				return false
			}
			common := bits.OnesCount64(xw & yw)
			if 2*common > total {
				return true
			}
			// yw & -yw isolates y's lowest set bit — its lexically
			// smallest member, the dynamic linear voting tie-breaker.
			return 2*common == total && xw&(yw&-yw) != 0
		}
	}
	total := y.Count()
	if total == 0 {
		return false
	}
	common := x.IntersectCount(y)
	if 2*common > total {
		return true
	}
	return 2*common == total && x.Contains(y.Smallest())
}

// Majority reports whether x holds a strict majority of y.
func Majority(x, y proc.Set) bool {
	if yw, ok := y.InlineWord(); ok {
		if xw, ok := x.InlineWord(); ok {
			total := bits.OnesCount64(yw)
			return total > 0 && 2*bits.OnesCount64(xw&yw) > total
		}
	}
	total := y.Count()
	return total > 0 && 2*x.IntersectCount(y) > total
}

// MajorityCount reports whether have out of total constitutes a strict
// majority. Used when counting messages rather than comparing sets.
func MajorityCount(have, total int) bool {
	return total > 0 && 2*have > total
}
