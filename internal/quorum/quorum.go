// Package quorum implements the voting rules of the thesis.
//
// Dynamic linear voting (Jajodia & Mutchler, thesis §3) admits a group
// X as the successor of a group Y if X holds more than half of Y's
// members, or exactly half including the lexically smallest member of
// Y. The same SUBQUORUM primitive is shared by YKD, its variants, and
// MR1p (thesis Fig 3-4); the simple-majority baseline uses the plain
// majority rule against the original process set.
//
// Both predicates sit on the simulator's hottest path — every DECIDE,
// every resolution tally — so the ≤256-process case (every thesis
// configuration plus the scaling sweep) is special-cased to
// straight-line popcounts over the sets' fixed inline word arrays.
// Beyond that, the general path runs one fused word-parallel loop over
// the sets' full word lists (proc.Set.Bitmap), computing |y|, |x ∩ y|,
// and the tie-breaker membership in a single pass; quorum evaluation
// never iterates set elements one by one at any width.
package quorum

import (
	"math/bits"

	"dynvote/internal/proc"
)

// SubQuorum reports whether x is a subquorum of y under dynamic linear
// voting:
//
//   - more than half the processes in y are also in x, or
//   - exactly half of y is in x and the lexically smallest process of
//     y is in x.
//
// An empty y has no subquorums: with no previous membership to anchor
// to, no group may claim succession.
func SubQuorum(x, y proc.Set) bool {
	if yw, ok := y.InlineWords(); ok {
		if xw, ok := x.InlineWords(); ok {
			total := bits.OnesCount64(yw[0]) + bits.OnesCount64(yw[1]) +
				bits.OnesCount64(yw[2]) + bits.OnesCount64(yw[3])
			if total == 0 {
				return false
			}
			common := bits.OnesCount64(xw[0]&yw[0]) + bits.OnesCount64(xw[1]&yw[1]) +
				bits.OnesCount64(xw[2]&yw[2]) + bits.OnesCount64(xw[3]&yw[3])
			if 2*common > total {
				return true
			}
			if 2*common != total {
				return false
			}
			// The first nonzero word of y holds its lexically smallest
			// member; w & -w isolates that lowest set bit — the dynamic
			// linear voting tie-breaker — which must also be in x.
			for i, w := range yw {
				if w != 0 {
					return xw[i]&(w&-w) != 0
				}
			}
			return false
		}
	}
	return subQuorumWide(&x, &y)
}

// subQuorumWide is the arbitrary-width path: one pass over y's word
// list accumulating |y| and |x ∩ y|, capturing the tie-breaker test on
// the first nonzero word (whose lowest set bit is y's lexically
// smallest member) along the way. No allocation at any universe size.
func subQuorumWide(x, y *proc.Set) bool {
	xw, yw := x.Bitmap(), y.Bitmap()
	total, common := 0, 0
	tie, seen := false, false
	for i, w := range yw {
		if w == 0 {
			continue
		}
		var xv uint64
		if i < len(xw) {
			xv = xw[i]
		}
		total += bits.OnesCount64(w)
		common += bits.OnesCount64(xv & w)
		if !seen {
			seen = true
			tie = xv&(w&-w) != 0
		}
	}
	if total == 0 {
		return false
	}
	if 2*common > total {
		return true
	}
	return 2*common == total && tie
}

// Majority reports whether x holds a strict majority of y.
func Majority(x, y proc.Set) bool {
	if yw, ok := y.InlineWords(); ok {
		if xw, ok := x.InlineWords(); ok {
			total := bits.OnesCount64(yw[0]) + bits.OnesCount64(yw[1]) +
				bits.OnesCount64(yw[2]) + bits.OnesCount64(yw[3])
			common := bits.OnesCount64(xw[0]&yw[0]) + bits.OnesCount64(xw[1]&yw[1]) +
				bits.OnesCount64(xw[2]&yw[2]) + bits.OnesCount64(xw[3]&yw[3])
			return total > 0 && 2*common > total
		}
	}
	return majorityWide(&x, &y)
}

// majorityWide fuses |y| and |x ∩ y| into one word-parallel pass, the
// tie-free counterpart of subQuorumWide.
func majorityWide(x, y *proc.Set) bool {
	xw, yw := x.Bitmap(), y.Bitmap()
	total, common := 0, 0
	for i, w := range yw {
		if w == 0 {
			continue
		}
		total += bits.OnesCount64(w)
		if i < len(xw) {
			common += bits.OnesCount64(xw[i] & w)
		}
	}
	return total > 0 && 2*common > total
}

// MajorityCount reports whether have out of total constitutes a strict
// majority. Used when counting messages rather than comparing sets.
func MajorityCount(have, total int) bool {
	return total > 0 && 2*have > total
}
