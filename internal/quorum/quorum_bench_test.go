package quorum_test

import (
	"testing"

	"dynvote/internal/proc"
	"dynvote/internal/quorum"
)

// SubQuorum and Majority sit on every algorithm's view-change path; the
// inline popcount fast path must stay a handful of instructions. The
// multi-word variants exercise membership spanning several of the four
// inline words; the overflow variants (>256 procs) exercise the general
// word-walk fallback.

var sink bool

func BenchmarkSubQuorumSingleWord(b *testing.B) {
	old := proc.Universe(48)
	new_ := proc.NewSet(0, 1, 2, 3, 5, 8, 13, 21, 34, 40, 41, 42, 43, 44, 45, 46, 47, 30, 31, 32, 33, 20, 21, 22, 23, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = quorum.SubQuorum(new_, old)
	}
}

func BenchmarkMajoritySingleWord(b *testing.B) {
	old := proc.Universe(48)
	new_ := proc.Universe(25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = quorum.Majority(new_, old)
	}
}

func BenchmarkSubQuorumMultiWord(b *testing.B) {
	old := proc.Universe(130)
	new_ := proc.Universe(66)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = quorum.SubQuorum(new_, old)
	}
}

func BenchmarkMajorityMultiWord(b *testing.B) {
	old := proc.Universe(130)
	new_ := proc.Universe(70)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = quorum.Majority(new_, old)
	}
}

func BenchmarkSubQuorumOverflow(b *testing.B) {
	old := proc.Universe(300)
	new_ := proc.Universe(160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = quorum.SubQuorum(new_, old)
	}
}

func BenchmarkMajorityOverflow(b *testing.B) {
	old := proc.Universe(300)
	new_ := proc.Universe(160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = quorum.Majority(new_, old)
	}
}

// The kilo-process variants pin the fused wide path at 16 words: one
// pass, zero allocations.

func BenchmarkSubQuorumKilo(b *testing.B) {
	old := proc.Universe(1024)
	new_ := proc.Universe(520)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = quorum.SubQuorum(new_, old)
	}
}

func BenchmarkMajorityKilo(b *testing.B) {
	old := proc.Universe(1024)
	new_ := proc.Universe(520)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = quorum.Majority(new_, old)
	}
}
