package quorum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynvote/internal/proc"
)

func TestSubQuorum(t *testing.T) {
	y := proc.NewSet(0, 1, 2, 3, 4)
	tests := []struct {
		name string
		x    proc.Set
		want bool
	}{
		{"strict majority 3/5", proc.NewSet(0, 1, 2), true},
		{"strict majority with outsiders", proc.NewSet(2, 3, 4, 9), true},
		{"minority 2/5", proc.NewSet(0, 1), false},
		{"empty x", proc.NewSet(), false},
		{"all of y", y, true},
		{"disjoint", proc.NewSet(7, 8, 9), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SubQuorum(tt.x, y); got != tt.want {
				t.Errorf("SubQuorum(%v, %v) = %v, want %v", tt.x, y, got, tt.want)
			}
		})
	}
}

func TestSubQuorumHalfTieBreak(t *testing.T) {
	y := proc.NewSet(0, 1, 2, 3) // smallest is p0
	withSmallest := proc.NewSet(0, 3)
	withoutSmallest := proc.NewSet(1, 2)
	if !SubQuorum(withSmallest, y) {
		t.Error("half containing the smallest process must be a subquorum")
	}
	if SubQuorum(withoutSmallest, y) {
		t.Error("half lacking the smallest process must not be a subquorum")
	}
}

func TestSubQuorumEmptyY(t *testing.T) {
	if SubQuorum(proc.NewSet(0), proc.Set{}) {
		t.Error("no set is a subquorum of the empty set")
	}
}

func TestMajority(t *testing.T) {
	y := proc.NewSet(0, 1, 2, 3)
	if Majority(proc.NewSet(0, 1), y) {
		t.Error("exactly half is not a majority")
	}
	if !Majority(proc.NewSet(0, 1, 2), y) {
		t.Error("3/4 is a majority")
	}
	if Majority(proc.NewSet(0), proc.Set{}) {
		t.Error("nothing is a majority of the empty set")
	}
}

func TestMajorityCount(t *testing.T) {
	tests := []struct {
		have, total int
		want        bool
	}{
		{0, 0, false}, {1, 1, true}, {1, 2, false}, {2, 3, true}, {2, 4, false}, {3, 4, true},
	}
	for _, tt := range tests {
		if got := MajorityCount(tt.have, tt.total); got != tt.want {
			t.Errorf("MajorityCount(%d, %d) = %v, want %v", tt.have, tt.total, got, tt.want)
		}
	}
}

// The safety-critical property of dynamic linear voting: two disjoint
// groups can never both be subquorums of the same previous group. This
// is exactly what prevents two concurrent primary components.
func TestDisjointSubQuorumsImpossible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		y := randomNonEmpty(r, n)
		// Random partition of the universe into two disjoint halves.
		var a, b proc.Set
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				a = a.With(proc.ID(i))
			} else {
				b = b.With(proc.ID(i))
			}
		}
		return !(SubQuorum(a, y) && SubQuorum(b, y))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// A strict majority is always a subquorum; a subquorum always holds at
// least half.
func TestSubQuorumMajorityRelation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		x, y := randomNonEmpty(r, n), randomNonEmpty(r, n)
		if Majority(x, y) && !SubQuorum(x, y) {
			return false
		}
		if SubQuorum(x, y) && 2*x.IntersectCount(y) < y.Count() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestWideAgainstReference cross-checks the fused kilo-process word
// loop against the definitional three-pass evaluation (Count,
// IntersectCount, Smallest) on random pairs spanning the overflow
// boundaries, including mismatched widths where x is much narrower
// than y.
func TestWideAgainstReference(t *testing.T) {
	for _, n := range []int{257, 511, 512, 513, 1023, 1024, 1025} {
		r := rand.New(rand.NewSource(int64(n)))
		for round := 0; round < 200; round++ {
			y := randomNonEmpty(r, n)
			x := randomNonEmpty(r, 1+r.Intn(n))
			total, common := y.Count(), x.IntersectCount(y)
			wantSub := 2*common > total || (2*common == total && x.Contains(y.Smallest()))
			wantMaj := 2*common > total
			if got := SubQuorum(x, y); got != wantSub {
				t.Fatalf("n=%d round=%d: SubQuorum = %v, reference = %v", n, round, got, wantSub)
			}
			if got := Majority(x, y); got != wantMaj {
				t.Fatalf("n=%d round=%d: Majority = %v, reference = %v", n, round, got, wantMaj)
			}
		}
	}
}

// TestWideTieBreak pins the exact-half tie-breaker on overflow sets:
// x holding exactly half of y wins iff it holds y's smallest member —
// including when that member sits past the inline words.
func TestWideTieBreak(t *testing.T) {
	// y = {300..555}: 256 members, entirely in overflow words.
	y := proc.Universe(556).Diff(proc.Universe(300))
	lowHalf := proc.Universe(428).Diff(proc.Universe(300))  // 128 members incl. smallest (300)
	highHalf := proc.Universe(556).Diff(proc.Universe(428)) // 128 members, no smallest
	if !SubQuorum(lowHalf, y) {
		t.Error("half including smallest overflow member must be a subquorum")
	}
	if SubQuorum(highHalf, y) {
		t.Error("half excluding smallest overflow member must not be a subquorum")
	}
	if Majority(lowHalf, y) || Majority(highHalf, y) {
		t.Error("exactly half is never a majority")
	}
	if SubQuorum(proc.Set{}, proc.Universe(1024).Diff(proc.Universe(1023))) {
		t.Error("empty x cannot be a subquorum of a nonempty wide y")
	}
	if SubQuorum(proc.Universe(1024), proc.Set{}) {
		t.Error("empty y has no subquorums at any width")
	}
}

// TestWideQuorumAllocFree pins the fused path's allocation contract at
// 1024 processes.
func TestWideQuorumAllocFree(t *testing.T) {
	y := proc.Universe(1024)
	x := proc.Universe(700)
	allocs := testing.AllocsPerRun(100, func() {
		if !SubQuorum(x, y) || !Majority(x, y) {
			t.Fatal("700 of 1024 must be both subquorum and majority")
		}
	})
	if allocs != 0 {
		t.Errorf("wide quorum evaluation allocated %.1f times per run, want 0", allocs)
	}
}

func randomNonEmpty(r *rand.Rand, n int) proc.Set {
	var s proc.Set
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s = s.With(proc.ID(i))
		}
	}
	if s.Empty() {
		s = s.With(proc.ID(r.Intn(n)))
	}
	return s
}
