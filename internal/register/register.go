// Package register is the motivating application of the primary
// component paradigm (thesis Chapter 1): a replicated key-value store
// in the style of partitioned replicated databases (El Abbadi &
// Toueg). Writes are accepted only inside the primary component, so
// two sides of a partition can never both mutate state; reads are
// served anywhere but flagged with primacy so callers can distinguish
// authoritative from possibly-stale data.
//
// Replication rides the gcs substrate's application payloads — the
// same frames that carry the dynamic voting algorithm's own messages,
// via the thesis's piggybacking interface. Replicas converge by
// last-writer-wins over a (view, sequence, writer) tag, and every view
// change triggers an anti-entropy exchange so members that merge back
// after a partition catch up on what the primary did without them.
package register

import (
	"errors"
	"fmt"
	"sync"

	"dynvote/internal/core"
	"dynvote/internal/gcs"
	"dynvote/internal/proc"
	"dynvote/internal/wire"
)

// ErrNotPrimary is returned by Set when this replica is not in the
// primary component and must refuse writes.
var ErrNotPrimary = errors.New("register: not in the primary component")

// Tag orders writes: higher views win, then higher sequence numbers,
// then higher writer IDs. Comparing tags is how replicas converge
// deterministically.
type Tag struct {
	ViewID int64
	Seq    uint64
	Writer proc.ID
}

// Less reports whether t orders before o.
func (t Tag) Less(o Tag) bool {
	if t.ViewID != o.ViewID {
		return t.ViewID < o.ViewID
	}
	if t.Seq != o.Seq {
		return t.Seq < o.Seq
	}
	return t.Writer < o.Writer
}

// Entry is one stored value with its write tag.
type Entry struct {
	Value string
	Tag   Tag
}

// Store is one replica of the register.
type Store struct {
	id      proc.ID
	node    *gcs.Node
	onEvent func(gcs.Event)

	mu   sync.Mutex
	data map[string]Entry
	seq  uint64

	// OnApply, when non-nil, observes applied writes (testing hook).
	OnApply func(key string, e Entry)
}

// Config assembles a replica.
type Config struct {
	// ID is this replica's process identity.
	ID proc.ID
	// N is the total number of replicas.
	N int
	// Transport carries the group communication traffic.
	Transport gcs.Transport
	// Algorithm selects the primary component algorithm (e.g.
	// ykd.Factory(ykd.VariantYKD)).
	Algorithm core.Factory
	// OnEvent, when non-nil, observes the underlying node's events
	// after the store has applied them — how a harness hooks a
	// failover timeline (gcs.Timeline.Hook) onto a running replica.
	// Runs on the node's loop goroutine and must not block.
	OnEvent func(gcs.Event)
}

// Open starts a replica. Close stops it.
func Open(cfg Config) (*Store, error) {
	s := &Store{id: cfg.ID, data: make(map[string]Entry), onEvent: cfg.OnEvent}
	node, err := gcs.NewNode(gcs.Config{
		ID:        cfg.ID,
		N:         cfg.N,
		Transport: cfg.Transport,
		Algorithm: cfg.Algorithm,
		OnEvent:   s.handleEvent,
	})
	if err != nil {
		return nil, fmt.Errorf("register: %w", err)
	}
	s.node = node
	node.Run()
	return s, nil
}

// Close stops the replica.
func (s *Store) Close() { s.node.Stop() }

// InPrimary reports whether this replica can accept writes.
func (s *Store) InPrimary() bool { return s.node.InPrimary() }

// Node exposes the underlying gcs node (for demos that inspect views).
func (s *Store) Node() *gcs.Node { return s.node }

// Set writes key=value through the primary component. It fails with
// ErrNotPrimary when this replica is outside the primary.
func (s *Store) Set(key, value string) error {
	if !s.node.InPrimary() {
		return ErrNotPrimary
	}
	s.mu.Lock()
	s.seq++
	tag := Tag{ViewID: s.node.CurrentView().ID, Seq: s.seq, Writer: s.id}
	s.mu.Unlock()

	var w wire.Writer
	w.Byte(opSet)
	w.Uvarint(1)
	encodeWrite(&w, key, Entry{Value: value, Tag: tag})
	return s.node.Broadcast(w.Bytes())
}

// Get reads a key from this replica. authoritative is true when the
// replica is currently inside the primary component.
func (s *Store) Get(key string) (value string, ok, authoritative bool) {
	s.mu.Lock()
	e, ok := s.data[key]
	s.mu.Unlock()
	return e.Value, ok, s.node.InPrimary()
}

// Len returns the number of keys stored at this replica.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Snapshot returns a copy of the replica's contents.
func (s *Store) Snapshot() map[string]Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Entry, len(s.data))
	for k, v := range s.data {
		out[k] = v
	}
	return out
}

// Operation codes on the application payload.
const (
	opSet byte = iota + 1
	opSync
)

func encodeWrite(w *wire.Writer, key string, e Entry) {
	w.RawBytes([]byte(key))
	w.RawBytes([]byte(e.Value))
	w.Varint(e.Tag.ViewID)
	w.Uvarint(e.Tag.Seq)
	w.Varint(int64(e.Tag.Writer))
}

func decodeWrite(r *wire.Reader) (string, Entry) {
	key := string(r.RawBytes())
	val := string(r.RawBytes())
	return key, Entry{Value: val, Tag: Tag{
		ViewID: r.Varint(),
		Seq:    r.Uvarint(),
		Writer: proc.ID(r.Varint()),
	}}
}

// handleEvent runs on the gcs node's loop goroutine.
func (s *Store) handleEvent(ev gcs.Event) {
	switch ev.Kind {
	case gcs.EventApp:
		s.applyPayload(ev.Payload)
	case gcs.EventView:
		// Anti-entropy: offer our contents to the new view so merged
		// members catch up. Queued asynchronously — we are on the
		// loop goroutine and must not block.
		go s.broadcastSync()
	}
	if s.onEvent != nil {
		s.onEvent(ev)
	}
}

// broadcastSync ships the full store; small by design (the examples
// store tens of keys). A production store would ship digests and
// deltas instead.
func (s *Store) broadcastSync() {
	s.mu.Lock()
	var w wire.Writer
	w.Byte(opSync)
	w.Uvarint(uint64(len(s.data)))
	for k, e := range s.data {
		encodeWrite(&w, k, e)
	}
	s.mu.Unlock()
	_ = s.node.Broadcast(w.Bytes())
}

func (s *Store) applyPayload(data []byte) {
	r := wire.NewReader(data)
	op := r.Byte()
	n := r.Uvarint()
	if r.Err() != nil || n > 1<<20 {
		return
	}
	switch op {
	case opSet, opSync:
		for i := uint64(0); i < n; i++ {
			key, e := decodeWrite(r)
			if r.Err() != nil {
				return
			}
			s.apply(key, e)
		}
	}
}

// apply merges one write by tag order.
func (s *Store) apply(key string, e Entry) {
	s.mu.Lock()
	cur, ok := s.data[key]
	newer := !ok || cur.Tag.Less(e.Tag)
	if newer {
		s.data[key] = e
	}
	cb := s.OnApply
	s.mu.Unlock()
	if newer && cb != nil {
		cb(key, e)
	}
}
