package register_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"dynvote/internal/gcs"
	"dynvote/internal/proc"
	"dynvote/internal/register"
	"dynvote/internal/ykd"
)

// waitLong polls like eventually but with a generous deadline: the
// TCP stack's heartbeat timing is at the mercy of CI scheduling.
func waitLong(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

func dumpGoroutines(t *testing.T) {
	t.Helper()
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Logf("goroutines:\n%s", buf[:n])
}

func dumpStores(t *testing.T, stores []*register.Store, transports []*gcs.TCPTransport) {
	t.Helper()
	for i, s := range stores {
		v, ok, auth := s.Get("k")
		t.Logf("store %d: inPrimary=%v view=%v k=%q ok=%v auth=%v reach=%v",
			i, s.InPrimary(), s.Node().CurrentView(), v, ok, auth, transports[i].Reach())
	}
}

// TestReplicatedStoreOverTCP runs the full stack on real sockets:
// dynamic voting, group communication, heartbeat failure detection and
// the primary-gated store, through a partition and a heal.
func TestReplicatedStoreOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration test")
	}
	const n = 3
	transports := make([]*gcs.TCPTransport, n)
	addrs := make(map[proc.ID]string, n)
	for i := 0; i < n; i++ {
		tr, err := gcs.NewTCPTransport(gcs.TCPConfig{
			ID:             proc.ID(i),
			OwnAddr:        "127.0.0.1:0",
			HeartbeatEvery: 40 * time.Millisecond,
			FailAfter:      250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		addrs[proc.ID(i)] = tr.Addr()
	}
	for _, tr := range transports {
		tr.SetPeers(addrs)
	}

	stores := make([]*register.Store, n)
	for i := 0; i < n; i++ {
		s, err := register.Open(register.Config{
			ID: proc.ID(i), N: n,
			Transport: transports[i],
			Algorithm: ykd.Factory(ykd.VariantYKD),
		})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	t.Cleanup(func() {
		for _, s := range stores {
			s.Close()
		}
	})

	waitLong(t, "tcp cluster converges", func() bool {
		for _, s := range stores {
			if !s.InPrimary() {
				return false
			}
		}
		return true
	})
	if err := stores[0].Set("k", "v1"); err != nil {
		t.Fatal(err)
	}
	waitLong(t, "write replicates over tcp", func() bool {
		v, ok, _ := stores[2].Get("k")
		return ok && v == "v1"
	})

	// Partition {0,1} | {2} at the transport layer.
	transports[0].Block(2)
	transports[1].Block(2)
	transports[2].Block(0, 1)
	defer func() {
		if t.Failed() {
			dumpStores(t, stores, transports)
			dumpGoroutines(t)
		}
	}()
	waitLong(t, "partition settles", func() bool {
		return stores[0].InPrimary() && !stores[2].InPrimary()
	})
	if err := stores[2].Set("k", "rogue"); !errors.Is(err, register.ErrNotPrimary) {
		t.Fatalf("minority write err = %v, want ErrNotPrimary", err)
	}
	if err := stores[0].Set("k", "v2"); err != nil {
		t.Fatal(err)
	}

	// Heal; anti-entropy catches 2 up.
	for _, tr := range transports {
		tr.Block()
	}
	waitLong(t, "heal + catch-up over tcp", func() bool {
		for _, s := range stores {
			v, ok, auth := s.Get("k")
			if !ok || v != "v2" || !auth {
				return false
			}
		}
		return true
	})
}
