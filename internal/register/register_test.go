package register_test

import (
	"errors"
	"testing"
	"time"

	"dynvote/internal/gcs"
	"dynvote/internal/proc"
	"dynvote/internal/register"
	"dynvote/internal/ykd"
)

func startReplicas(t *testing.T, n int) (*gcs.MemNetwork, []*register.Store) {
	t.Helper()
	net := gcs.NewMemNetwork(n)
	stores := make([]*register.Store, n)
	for i := 0; i < n; i++ {
		s, err := register.Open(register.Config{
			ID: proc.ID(i), N: n,
			Transport: net.Transport(proc.ID(i)),
			Algorithm: ykd.Factory(ykd.VariantYKD),
		})
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	t.Cleanup(func() {
		for _, s := range stores {
			s.Close()
		}
	})
	return net, stores
}

func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

func TestWriteReplicatesEverywhere(t *testing.T) {
	_, stores := startReplicas(t, 3)
	eventually(t, "cluster primary", func() bool { return stores[0].InPrimary() })

	if err := stores[0].Set("color", "blue"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "write visible on all replicas", func() bool {
		for _, s := range stores {
			if v, ok, _ := s.Get("color"); !ok || v != "blue" {
				return false
			}
		}
		return true
	})
}

func TestMinoritySideRefusesWrites(t *testing.T) {
	net, stores := startReplicas(t, 5)
	eventually(t, "cluster primary", func() bool { return stores[4].InPrimary() })

	if err := net.SetComponents(proc.NewSet(0, 1, 2), proc.NewSet(3, 4)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "partition settles", func() bool {
		return stores[0].InPrimary() && !stores[4].InPrimary()
	})

	if err := stores[4].Set("x", "rogue"); !errors.Is(err, register.ErrNotPrimary) {
		t.Fatalf("minority Set err = %v, want ErrNotPrimary", err)
	}
	if err := stores[0].Set("x", "legit"); err != nil {
		t.Fatalf("primary Set err = %v", err)
	}
	eventually(t, "primary write replicated within the primary", func() bool {
		v, ok, auth := stores[2].Get("x")
		return ok && v == "legit" && auth
	})
	// The detached side must not see the write and must report
	// non-authoritative reads.
	if _, ok, auth := stores[4].Get("x"); ok || auth {
		t.Error("minority replica sees primary-side write or claims authority")
	}
}

func TestMergeCatchesUpViaAntiEntropy(t *testing.T) {
	net, stores := startReplicas(t, 5)
	eventually(t, "cluster primary", func() bool { return stores[0].InPrimary() })

	if err := net.SetComponents(proc.NewSet(0, 1, 2), proc.NewSet(3, 4)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "partition settles", func() bool {
		return stores[0].InPrimary() && !stores[3].InPrimary()
	})

	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		if err := stores[0].Set(kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}
	eventually(t, "writes inside primary", func() bool { return stores[2].Len() == 3 })

	if err := net.SetComponents(proc.Universe(5)); err != nil {
		t.Fatal(err)
	}
	eventually(t, "merged members catch up", func() bool {
		for _, s := range stores {
			if s.Len() != 3 {
				return false
			}
			if v, ok, _ := s.Get("b"); !ok || v != "2" {
				return false
			}
		}
		return true
	})
}

func TestLastWriterWinsConvergence(t *testing.T) {
	_, stores := startReplicas(t, 3)
	eventually(t, "cluster primary", func() bool { return stores[0].InPrimary() })

	// Concurrent writers to the same key inside the primary: all
	// replicas must converge to a single value.
	if err := stores[0].Set("k", "from-zero"); err != nil {
		t.Fatal(err)
	}
	if err := stores[1].Set("k", "from-one"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "replicas converge on one value", func() bool {
		v0, ok0, _ := stores[0].Get("k")
		v1, ok1, _ := stores[1].Get("k")
		v2, ok2, _ := stores[2].Get("k")
		return ok0 && ok1 && ok2 && v0 == v1 && v1 == v2
	})
}

func TestTagOrdering(t *testing.T) {
	a := register.Tag{ViewID: 1, Seq: 5, Writer: 2}
	cases := []struct {
		b    register.Tag
		less bool // a < b
	}{
		{register.Tag{ViewID: 2, Seq: 0, Writer: 0}, true},
		{register.Tag{ViewID: 1, Seq: 6, Writer: 0}, true},
		{register.Tag{ViewID: 1, Seq: 5, Writer: 3}, true},
		{register.Tag{ViewID: 1, Seq: 5, Writer: 2}, false},
		{register.Tag{ViewID: 0, Seq: 9, Writer: 9}, false},
	}
	for i, c := range cases {
		if got := a.Less(c.b); got != c.less {
			t.Errorf("case %d: Less = %v, want %v", i, got, c.less)
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	_, stores := startReplicas(t, 3)
	eventually(t, "cluster primary", func() bool { return stores[0].InPrimary() })
	if err := stores[0].Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "applied locally", func() bool { return stores[0].Len() == 1 })
	snap := stores[0].Snapshot()
	snap["k"] = register.Entry{Value: "mutated"}
	if v, _, _ := stores[0].Get("k"); v != "v" {
		t.Error("Snapshot aliases internal state")
	}
}
