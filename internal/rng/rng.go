// Package rng provides the deterministic, splittable randomness used
// throughout the simulation study.
//
// Every figure in the thesis is a statistic over 1000 randomized runs,
// and "the same random sequence was used to test each of the
// algorithms" (§4.1) — so reproducibility is part of the experiment
// design, not a convenience. A Source derives independent child
// sources from string/integer labels with a SplitMix64 hash, so the
// run (figure, case, run-index) always sees the same draws no matter
// how work is scheduled.
package rng

import "math/rand"

// Source is a deterministic random source. It is not safe for
// concurrent use; derive one source per goroutine with Child.
type Source struct {
	r *rand.Rand
}

// New returns a source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(int64(mix(uint64(seed)))))}
}

// Child derives an independent source labelled by the given parts.
// Equal labels on equal parents yield identical child streams.
func (s *Source) Child(parts ...int64) *Source {
	h := uint64(s.r.Int63()) // advance parent deterministically
	for _, p := range parts {
		h = mix(h ^ uint64(p))
	}
	return &Source{r: rand.New(rand.NewSource(int64(h)))}
}

// ChildLabel derives an independent source from a string label without
// advancing the parent, so named children are order-independent.
func (s *Source) ChildLabel(label string, parts ...int64) *Source {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < len(label); i++ {
		h = mix(h ^ uint64(label[i]))
	}
	for _, p := range parts {
		h = mix(h ^ uint64(p))
	}
	return &Source{r: rand.New(rand.NewSource(int64(h)))}
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Bool returns a fair coin flip.
func (s *Source) Bool() bool { return s.r.Intn(2) == 0 }

// Perm returns a uniform permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle permutes n elements via the given swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// mix is the SplitMix64 finalizer: a cheap bijective hash with good
// avalanche, used to decorrelate derived seeds.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
