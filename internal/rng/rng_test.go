package rng

import "testing"

func drain(s *Source, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = s.Int63()
	}
	return out
}

func equalSeq(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	if !equalSeq(drain(a, 50), drain(b, 50)) {
		t.Error("equal seeds produced different streams")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	if equalSeq(drain(New(1), 20), drain(New(2), 20)) {
		t.Error("different seeds produced identical streams")
	}
}

func TestChildDeterminism(t *testing.T) {
	a := New(9).Child(3, 4)
	b := New(9).Child(3, 4)
	if !equalSeq(drain(a, 20), drain(b, 20)) {
		t.Error("equal child labels produced different streams")
	}
	c := New(9).Child(3, 5)
	if equalSeq(drain(New(9).Child(3, 4), 20), drain(c, 20)) {
		t.Error("different child labels produced identical streams")
	}
}

func TestChildLabelOrderIndependent(t *testing.T) {
	p := New(11)
	a := p.ChildLabel("x", 1)
	b := p.ChildLabel("y", 1)
	p2 := New(11)
	b2 := p2.ChildLabel("y", 1)
	a2 := p2.ChildLabel("x", 1)
	if !equalSeq(drain(a, 10), drain(a2, 10)) || !equalSeq(drain(b, 10), drain(b2, 10)) {
		t.Error("ChildLabel depends on derivation order")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(6)
	for i := 0; i < 1000; i++ {
		if v := s.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of range", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm(10) = %v not a permutation", p)
		}
		seen[v] = true
	}
}

func TestBoolRoughlyFair(t *testing.T) {
	s := New(10)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < n/3 || trues > 2*n/3 {
		t.Errorf("Bool badly biased: %d/%d", trues, n)
	}
}
