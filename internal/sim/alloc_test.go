package sim_test

import (
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

// Allocation guards for the hot paths the perf work flattened: the
// collect/deliver loop (PR 2's envelope and recipient-cache recycling)
// and the reset lifecycle (this PR). A regression that reintroduces a
// per-delivery or per-reset allocation fails here long before anyone
// reads a benchmark diff.

// chatterMsg is a preallocated payload; chatter reuses one instance so
// the stub adds no allocations of its own to the measurement.
type chatterMsg struct{}

func (chatterMsg) Kind() string { return "test/chatter" }

// chatter broadcasts the same message every round, forever: the
// maximum-traffic algorithm, exercising Collect and DeliverOne without
// any algorithm-side work.
type chatter struct {
	out []core.Message
}

func (c *chatter) Name() string                  { return "chatter" }
func (c *chatter) ViewChange(view.View)          {}
func (c *chatter) Deliver(proc.ID, core.Message) {}
func (c *chatter) InPrimary() bool               { return true }
func (c *chatter) Poll() []core.Message          { return c.out }

func chatterFactory() core.Factory {
	return core.Factory{
		Name: "chatter",
		New: func(proc.ID, view.View) core.Algorithm {
			return &chatter{out: []core.Message{chatterMsg{}}}
		},
	}
}

// TestDeliveryLoopAllocFree pins the steady-state collect/deliver loop
// at zero allocations per round: after warm-up, every envelope comes
// from the pool and every recipient list from the per-sender cache.
func TestDeliveryLoopAllocFree(t *testing.T) {
	c := sim.NewCluster(chatterFactory(), 8)
	r := rng.New(17)
	c.Round(r) // grow pools and caches to steady-state capacity

	allocs := testing.AllocsPerRun(50, func() {
		c.Collect(r)
		c.DeliverAll(r)
	})
	if allocs != 0 {
		t.Errorf("collect/deliver round allocates %.1f times, want 0", allocs)
	}
}

// TestDeliveryLoopAllocFree256 is the same pin at the scaling sweep's
// largest system size: 256 processes stay within proc.Set's inline
// words, so the steady-state loop must stay allocation-free there too.
func TestDeliveryLoopAllocFree256(t *testing.T) {
	c := sim.NewCluster(chatterFactory(), 256)
	r := rng.New(17)
	c.Round(r)

	allocs := testing.AllocsPerRun(20, func() {
		c.Collect(r)
		c.DeliverAll(r)
	})
	if allocs != 0 {
		t.Errorf("256-proc collect/deliver round allocates %.1f times, want 0", allocs)
	}
}

// TestDeliveryLoopAllocFree1024 pins the loop past the inline-word
// boundary: at 1024 processes every membership set spills to wide
// words and the batched delivery path, recipient-ID arena, and Bits
// scratch must all run without a single steady-state allocation.
func TestDeliveryLoopAllocFree1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-proc rounds are slow")
	}
	c := sim.NewCluster(chatterFactory(), 1024)
	r := rng.New(17)
	c.Round(r)

	allocs := testing.AllocsPerRun(3, func() {
		c.Collect(r)
		c.DeliverAll(r)
	})
	if allocs != 0 {
		t.Errorf("1024-proc collect/deliver round allocates %.1f times, want 0", allocs)
	}
}

// TestDriverResetAllocFree pins Driver.Reset — cluster, topology and
// all algorithm instances — at zero allocations for every algorithm in
// the study. The first reset after a run drains queues and clears the
// dirtied maps (covered by AllocsPerRun's warm-up call); the measured
// iterations keep exercising the full reset path on the settled
// driver.
func TestDriverResetAllocFree(t *testing.T) {
	const runs = 20
	for _, f := range algset.All() {
		t.Run(f.Name, func(t *testing.T) {
			cfg := sim.Config{Procs: 16, Changes: 4, MeanRounds: 2}
			// Derive every source up front: reset itself must not be
			// charged for the caller's seed bookkeeping.
			root := rng.New(53)
			srcs := make([]*rng.Source, runs+2)
			for i := range srcs {
				srcs[i] = root.ChildLabel("alloc", int64(i))
			}
			d := sim.NewDriver(f, cfg, srcs[0])
			if _, err := d.Run(); err != nil {
				t.Fatalf("warm-up run: %v", err)
			}
			i := 1
			allocs := testing.AllocsPerRun(runs, func() {
				d.Reset(srcs[i])
				i++
			})
			if allocs != 0 {
				t.Errorf("%s: Driver.Reset allocates %.1f times, want 0", f.Name, allocs)
			}
		})
	}
}

// TestDriverResetAllocFree256 repeats the reset pin at 256 processes,
// where every membership set spans all four inline words. Changes is
// kept small — the property under test is the reset path, not the run.
func TestDriverResetAllocFree256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-proc warm-up runs are slow")
	}
	const runs = 5
	for _, f := range algset.All() {
		t.Run(f.Name, func(t *testing.T) {
			cfg := sim.Config{Procs: 256, Changes: 2, MeanRounds: 1}
			root := rng.New(59)
			srcs := make([]*rng.Source, runs+2)
			for i := range srcs {
				srcs[i] = root.ChildLabel("alloc256", int64(i))
			}
			d := sim.NewDriver(f, cfg, srcs[0])
			if _, err := d.Run(); err != nil {
				t.Fatalf("warm-up run: %v", err)
			}
			i := 1
			allocs := testing.AllocsPerRun(runs, func() {
				d.Reset(srcs[i])
				i++
			})
			if allocs != 0 {
				t.Errorf("%s: 256-proc Driver.Reset allocates %.1f times, want 0", f.Name, allocs)
			}
		})
	}
}

// TestDriverResetAllocFree1024 repeats the reset pin at kilo-process
// width, where the arena rewind must reclaim every envelope chunk and
// recipient block without touching the allocator. One algorithm
// suffices — the reset path is algorithm-independent past the
// per-process Reset calls, which the 16- and 256-proc variants already
// cover for the full set.
func TestDriverResetAllocFree1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-proc warm-up runs are slow")
	}
	const runs = 3
	f := ykd.Factory(ykd.VariantYKD)
	cfg := sim.Config{Procs: 1024, Changes: 1, MeanRounds: 1}
	root := rng.New(61)
	srcs := make([]*rng.Source, runs+2)
	for i := range srcs {
		srcs[i] = root.ChildLabel("alloc1024", int64(i))
	}
	d := sim.NewDriver(f, cfg, srcs[0])
	if _, err := d.Run(); err != nil {
		t.Fatalf("warm-up run: %v", err)
	}
	i := 1
	allocs := testing.AllocsPerRun(runs, func() {
		d.Reset(srcs[i])
		i++
	})
	if allocs != 0 {
		t.Errorf("1024-proc Driver.Reset allocates %.1f times, want 0", allocs)
	}
}
