package sim

import (
	"fmt"
	"strings"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/trace"
)

// SafetyError reports a violated invariant, the thesis's trial-by-fire
// failure condition (§2.2: "at all times there was at most one primary
// component declared. Every process in a view agreed on whether or not
// that view was a primary").
type SafetyError struct {
	// Reason describes the violation.
	Reason string
}

// Error implements error.
func (e *SafetyError) Error() string { return "sim: safety violation: " + e.Reason }

// ViolationError is a checker failure with the trace recorder's
// retained history attached — what the driver returns when a run with
// Config.Trace set trips an invariant. The history is the ring
// buffer's contents at the moment of the violation, already captured;
// Error renders it so that any printer of the error chain dumps the
// run's last recorded moments.
type ViolationError struct {
	// Err is the underlying checker error (typically *SafetyError).
	Err error
	// History is the retained trace, oldest first.
	History []trace.Event
}

// Error renders the violation followed by the retained trace.
func (e *ViolationError) Error() string {
	var b strings.Builder
	b.WriteString(e.Err.Error())
	fmt.Fprintf(&b, "\n--- trace: last %d events before the violation ---\n", len(e.History))
	for _, ev := range e.History {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	b.WriteString("--- end trace ---")
	return b.String()
}

// Unwrap exposes the underlying checker error to errors.Is/As.
func (e *ViolationError) Unwrap() error { return e.Err }

// CheckOnePrimary verifies that at most one component is a declared
// primary. A component — identified by its members' shared current
// view — counts as a declared primary when every one of its members
// reports InPrimary.
func CheckOnePrimary(c *Cluster) error {
	primaries := 0
	var first string
	for _, v := range c.CurrentViews() {
		if allInPrimary(c, v.Members) {
			primaries++
			if primaries == 1 {
				first = v.String()
				continue
			}
			return &SafetyError{Reason: fmt.Sprintf(
				"two primary components declared: %s and %s", first, v)}
		}
	}
	return nil
}

// CheckStableAgreement verifies the quiescent-state invariant: within
// each view, all members agree on whether the view is a primary, and
// members that claim primacy agree on its membership. Only valid when
// the cluster is quiescent.
func CheckStableAgreement(c *Cluster) error {
	if !c.Quiescent() {
		return fmt.Errorf("sim: agreement check requires a quiescent cluster")
	}
	for _, v := range c.CurrentViews() {
		inP, outP := 0, 0
		var primarySet proc.Set
		havePrimarySet := false
		var disagree bool
		v.Members.Diff(c.Crashed()).ForEach(func(p proc.ID) {
			alg := c.Algorithm(p)
			if !alg.InPrimary() {
				outP++
				return
			}
			inP++
			if pr, ok := alg.(core.PrimaryReporter); ok {
				if !havePrimarySet {
					primarySet = pr.PrimaryMembers()
					havePrimarySet = true
				} else if !primarySet.Equal(pr.PrimaryMembers()) {
					disagree = true
				}
			}
		})
		if inP > 0 && outP > 0 {
			return &SafetyError{Reason: fmt.Sprintf(
				"members of %s disagree on primacy (%d in, %d out)", v, inP, outP)}
		}
		if disagree {
			return &SafetyError{Reason: fmt.Sprintf(
				"members of %s disagree on the primary's membership", v)}
		}
	}
	return nil
}

// allInPrimary reports whether every live member is in the primary;
// crashed members' frozen state is ignored, and a view with no live
// members never counts.
func allInPrimary(c *Cluster, members proc.Set) bool {
	live := members.Diff(c.Crashed())
	if live.Empty() {
		return false
	}
	all := true
	live.ForEach(func(p proc.ID) {
		if !c.Algorithm(p).InPrimary() {
			all = false
		}
	})
	return all
}

// HasPrimary reports whether some component is a declared primary —
// the availability criterion of every figure in Chapter 4.
func HasPrimary(c *Cluster) bool {
	for _, v := range c.CurrentViews() {
		if allInPrimary(c, v.Members) {
			return true
		}
	}
	return false
}
