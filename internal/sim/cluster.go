// Package sim is the testing and simulation system of thesis Chapter
// 2.2: a driver loop that routes messages among algorithm instances
// without any network, injects connectivity changes, checks safety
// invariants, and gathers the statistics behind every figure in the
// availability study.
//
// The package has two layers. Cluster is the routing engine: it owns
// one algorithm instance per process, enforces view-synchronous
// FIFO-broadcast delivery, and exposes single-delivery granularity so
// a connectivity change can strike between any two deliveries — the
// mid-protocol interruptions whose effect the thesis measures. Driver
// adds the experiment semantics: message rounds, randomized change
// injection, quiescence detection and statistics.
package sim

import (
	"fmt"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/trace"
	"dynvote/internal/view"
)

// envelope is one broadcast in flight: a message, the view it was sent
// in, and the recipients it has not yet reached (in randomized order).
type envelope struct {
	viewID     int64
	msg        core.Message
	recipients []proc.ID
	next       int // index of the next recipient to deliver to
}

func (e *envelope) done() bool { return e.next >= len(e.recipients) }

// DropFilter lets tests script message loss: returning true drops the
// single delivery of msg from sender to recipient.
type DropFilter func(from, to proc.ID, msg core.Message) bool

// Cluster hosts n algorithm instances and routes their broadcasts with
// view-synchronous, per-sender-FIFO semantics. It performs no
// randomness of its own beyond delivery-order shuffling driven by the
// caller's source.
type Cluster struct {
	factory core.Factory
	n       int
	initial view.View // the all-connected view 0, built once (Universe allocates past InlineProcs)
	algs    []core.Algorithm
	cur     []view.View // current view per process

	// Structure-of-arrays mirrors of the per-process state the delivery
	// inner loop reads: one int64/bool load per delivery instead of
	// dragging a 40-byte view.View or a bitset probe through the cache.
	// curID[p] mirrors cur[p].ID; crashedFlag[p] mirrors crashed.
	curID       []int64
	crashedFlag []bool

	queues    [][]*envelope      // per-sender FIFO of in-flight broadcasts
	active    []int              // senders with pending deliveries (unordered)
	pending   int                // total undelivered (envelope, recipient) pairs
	crashed   proc.Set           // fail-stopped processes: no polls, no deliveries
	snapshots map[proc.ID][]byte // durable state captured at crash time

	// Per-run arena. Envelopes are handed out from grow-only chunks
	// (stable pointers) tracked by a single cursor, so Reset rewinds
	// every envelope ever issued with one index store instead of
	// walking a free list; each envelope keeps the recipient slice it
	// carved from the grow-only ID blocks across runs, so the
	// steady-state fan-out path never touches the heap. free recycles
	// envelopes within a run (the cursor only moves at high-water).
	envChunks [][]envelope
	envUsed   int         // envelopes issued from the arena since the last Reset
	idBlocks  []proc.ID   // current recipient-ID block being carved
	free      []*envelope // recycled envelopes with reusable recipient slices

	recipBase     [][]proc.ID        // per-sender members-minus-sender, ascending order
	recipView     []int64            // view ID each recipBase entry was built for (-1: none)
	memberScratch []proc.ID          // IssueViews shuffle buffer
	viewsOut      []view.View        // CurrentViews result, reused per call
	viewSeen      map[int64]struct{} // CurrentViews dedup fallback, reused

	// Drop, when non-nil, filters individual deliveries (tests only).
	Drop DropFilter

	// Bytes, when non-nil, is called with the encoded size of every
	// collected broadcast, enabling the §3.4 message-size statistics.
	Bytes func(msgBytes int)

	// Trace, when non-nil, records view installations, deliveries and
	// drops for debugging.
	Trace *trace.Recorder

	// TraceSampleEvery thins the high-volume delivery/drop events to
	// one in N when > 1, keeping long soaks cheap to trace; view
	// installations are always recorded (they are rare and
	// structural). ≤ 1 records everything.
	TraceSampleEvery int
	traceSeq         uint64

	// Metrics, when non-nil, receives the cluster's instrumentation
	// (deliveries, drops, view installations). Nil costs one branch
	// per delivery step.
	Metrics *Metrics
}

// NewCluster creates n algorithm instances, all starting in the
// initial all-connected view with ID 0.
func NewCluster(factory core.Factory, n int) *Cluster {
	initial := view.View{ID: 0, Members: proc.Universe(n)}
	c := &Cluster{
		factory:     factory,
		n:           n,
		initial:     initial,
		algs:        make([]core.Algorithm, n),
		cur:         make([]view.View, n),
		curID:       make([]int64, n),
		crashedFlag: make([]bool, n),
		queues:      make([][]*envelope, n),
		recipBase:   make([][]proc.ID, n),
		recipView:   make([]int64, n),
	}
	// All n recipient caches are carved from one block: at kilo-process
	// sizes the per-sender make calls were n allocations of n-1 IDs
	// each, dominating construction.
	block := make([]proc.ID, n*(n-1))
	for i := 0; i < n; i++ {
		c.algs[i] = factory.New(proc.ID(i), initial)
		c.cur[i] = initial
		c.recipBase[i] = block[i*(n-1) : i*(n-1) : (i+1)*(n-1)]
		c.recipView[i] = -1
	}
	return c
}

// Reset restores the cluster to its just-constructed state without
// rebuilding it: in-flight envelopes drain into the free pool, views
// and crash state roll back to the initial all-connected view, the
// per-sender recipient caches invalidate, and every algorithm is reset
// in place when it implements core.Resetter (all the study's
// algorithms do) or rebuilt through the factory otherwise. Scratch
// capacity — envelope pool, queues, recipient slices — is retained;
// that retention is the point: a fresh-start sweep executes thousands
// of independent runs, and after the first one the whole simulation
// stack is reused instead of reallocated.
//
// Reset is exact: a run on a reset cluster is bit-identical to the
// same run on a fresh one (the reset-vs-fresh golden tests prove it).
func (c *Cluster) Reset() {
	initial := c.initial
	// Drop the message references held by in-flight envelopes (only
	// active senders have any) so the rewound arena pins no payloads;
	// the envelopes themselves — and the recipient slices they carved —
	// are reclaimed wholesale by rewinding the arena cursor below.
	for _, s := range c.active {
		q := c.queues[s]
		for i, env := range q {
			env.msg = nil
			q[i] = nil
		}
		c.queues[s] = q[:0]
	}
	c.active = c.active[:0]
	c.free = c.free[:0]
	c.envUsed = 0 // the one-store arena rewind: every envelope is fresh again
	for p := 0; p < c.n; p++ {
		c.cur[p] = initial
		c.curID[p] = 0
		c.recipView[p] = -1
		if res, ok := c.algs[p].(core.Resetter); ok {
			res.Reset(proc.ID(p), initial)
		} else {
			c.algs[p] = c.factory.New(proc.ID(p), initial)
		}
	}
	c.pending = 0
	c.crashed = proc.Set{}
	clear(c.crashedFlag)
	clear(c.snapshots) // crash-time durable state must not leak across runs
	c.traceSeq = 0
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.n }

// Algorithm returns process p's instance.
func (c *Cluster) Algorithm(p proc.ID) core.Algorithm { return c.algs[p] }

// View returns process p's current view.
func (c *Cluster) View(p proc.ID) view.View { return c.cur[p] }

// Crash fail-stops process p: it is never polled again, receives no
// further deliveries or views, and its in-flight broadcasts are
// discarded. If the algorithm supports snapshots, its durable state is
// captured as stable storage would hold it, enabling Recover.
func (c *Cluster) Crash(p proc.ID) {
	if c.crashed.Contains(p) || int(p) >= c.n {
		return
	}
	c.crashed = c.crashed.With(p)
	c.crashedFlag[p] = true
	if snap, ok := c.algs[p].(core.Snapshotter); ok {
		if data, err := snap.Snapshot(); err == nil {
			if c.snapshots == nil {
				c.snapshots = make(map[proc.ID][]byte)
			}
			c.snapshots[p] = data
		}
	}
	// Discard the crashed process's undelivered broadcasts, nilling
	// the queue slots so the backing array does not pin the discarded
	// envelopes (and their messages) for the rest of the run.
	for i, env := range c.queues[p] {
		c.pending -= len(env.recipients) - env.next
		c.releaseEnvelope(env)
		c.queues[p][i] = nil
	}
	c.queues[p] = c.queues[p][:0]
	for i, s := range c.active {
		if s == int(p) {
			c.active[i] = c.active[len(c.active)-1]
			c.active = c.active[:len(c.active)-1]
			break
		}
	}
}

// Crashed returns the set of fail-stopped processes.
func (c *Cluster) Crashed() proc.Set { return c.crashed }

// Recover brings a crashed process back: a fresh algorithm instance is
// built and its durable state restored from the snapshot taken at
// crash time (stable storage); algorithms without snapshot support
// resume with their frozen in-memory state, which is equivalent for
// the stateless baseline. The caller must issue the recovered
// process's current (singleton) view immediately afterwards.
func (c *Cluster) Recover(p proc.ID) error {
	if !c.crashed.Contains(p) {
		return fmt.Errorf("sim: process %v is not crashed", p)
	}
	if data, ok := c.snapshots[p]; ok {
		fresh := c.factory.New(p, c.initial)
		snap, ok := fresh.(core.Snapshotter)
		if !ok {
			return fmt.Errorf("sim: %s snapshot exists but instance cannot restore", c.factory.Name)
		}
		if err := snap.Restore(data); err != nil {
			return fmt.Errorf("sim: recover %v: %w", p, err)
		}
		c.algs[p] = fresh
		delete(c.snapshots, p)
	}
	c.crashed = c.crashed.Without(p)
	c.crashedFlag[p] = false
	return nil
}

// IssueViews reports new views to their members, exactly as a group
// membership service would. Callers must Collect first so that
// messages sent in the old views are tagged correctly.
func (c *Cluster) IssueViews(r *rng.Source, views ...view.View) {
	installed := 0
	members := c.memberScratch
	for _, v := range views {
		// Deliver the view to members in random order: the relative
		// timing of view callbacks is not part of the model.
		members = v.Members.AppendMembers(members[:0])
		r.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		for _, p := range members {
			if c.crashedFlag[p] {
				continue
			}
			c.cur[p] = v
			c.curID[p] = v.ID
			c.algs[p].ViewChange(v)
			installed++
			if c.Trace != nil {
				c.Trace.Record(trace.Event{Kind: trace.KindView, Process: p, View: v})
			}
		}
	}
	c.memberScratch = members
	c.Metrics.observeViews(installed)
}

// Collect polls every process and enqueues its broadcasts, tagged with
// the sender's current view. It returns the number of new (envelope,
// recipient) deliveries enqueued.
func (c *Cluster) Collect(r *rng.Source) int {
	added := 0
	for p := 0; p < c.n; p++ {
		if c.crashedFlag[p] {
			continue
		}
		msgs := c.algs[p].Poll()
		if len(msgs) == 0 {
			continue
		}
		v := c.cur[p]
		for _, m := range msgs {
			if c.Bytes != nil && c.factory.Codec != nil {
				if b, err := c.factory.Codec.Encode(m); err == nil {
					c.Bytes(len(b))
				}
			}
			base := c.recipientsOf(v, proc.ID(p))
			if len(base) == 0 {
				continue // broadcast in a singleton view reaches nobody
			}
			env := c.newEnvelope()
			env.viewID = v.ID
			env.msg = m
			recipients := env.recipients[:0]
			if cap(recipients) < len(base) {
				recipients = c.carveIDs(len(base))
			}
			recipients = recipients[:len(base)]
			copy(recipients, base)
			r.Shuffle(len(recipients), func(i, j int) {
				recipients[i], recipients[j] = recipients[j], recipients[i]
			})
			env.recipients = recipients
			if len(c.queues[p]) == 0 {
				c.active = append(c.active, p)
			}
			c.queues[p] = append(c.queues[p], env)
			added += len(recipients)
		}
	}
	c.pending += added
	return added
}

// recipientsOf returns sender's current broadcast recipient list
// (view members minus the sender, ascending). The list is cached per
// sender and rebuilt only when the sender's view changes — view IDs
// are unique, so an ID match guarantees identical membership. The
// returned slice is owned by the cache; callers must copy before
// reordering it.
func (c *Cluster) recipientsOf(v view.View, sender proc.ID) []proc.ID {
	s := int(sender)
	if c.recipView[s] == v.ID {
		return c.recipBase[s]
	}
	buf := c.recipBase[s][:0]
	v.Members.ForEach(func(q proc.ID) {
		if q != sender {
			buf = append(buf, q)
		}
	})
	c.recipBase[s] = buf
	c.recipView[s] = v.ID
	return buf
}

// envChunkSize is the envelope arena's chunk granularity. Chunks are
// never freed or moved, so envelope pointers stay stable for the life
// of the cluster.
const envChunkSize = 128

// newEnvelope takes an envelope off the free list, or issues the next
// one from the arena (growing it by a chunk at the high-water mark).
func (c *Cluster) newEnvelope() *envelope {
	if n := len(c.free); n > 0 {
		env := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		env.next = 0
		return env
	}
	if chunk := c.envUsed / envChunkSize; chunk == len(c.envChunks) {
		c.envChunks = append(c.envChunks, make([]envelope, envChunkSize))
	}
	env := &c.envChunks[c.envUsed/envChunkSize][c.envUsed%envChunkSize]
	c.envUsed++
	env.next = 0
	return env
}

// carveIDs cuts an n-ID slice out of the grow-only recipient arena.
// Full blocks are simply abandoned to the envelopes already holding
// slices into them; envelope recycling keeps each envelope's carved
// slice across runs, so the carve rate falls to zero at steady state.
func (c *Cluster) carveIDs(n int) []proc.ID {
	if len(c.idBlocks)+n > cap(c.idBlocks) {
		size := 4096
		if size < n {
			size = n
		}
		c.idBlocks = make([]proc.ID, 0, size)
	}
	s := len(c.idBlocks)
	c.idBlocks = c.idBlocks[:s+n]
	return c.idBlocks[s : s+n : s+n]
}

// releaseEnvelope recycles a fully delivered (or discarded) envelope,
// dropping its message reference so the pool pins no payloads.
func (c *Cluster) releaseEnvelope(env *envelope) {
	env.msg = nil
	c.free = append(c.free, env)
}

// PendingDeliveries returns the number of undelivered (envelope,
// recipient) pairs.
func (c *Cluster) PendingDeliveries() int { return c.pending }

// DeliverOne performs a single delivery step: it picks a uniformly
// random sender with pending traffic and delivers that sender's next
// (message, recipient) pair, preserving per-sender FIFO order. The
// delivery is dropped — silently consumed — if the recipient has moved
// to a different view than the one the message was sent in
// (view-synchronous semantics: a process that detaches before
// receiving a message never receives it). It returns false if nothing
// was pending.
func (c *Cluster) DeliverOne(r *rng.Source) bool {
	if c.pending == 0 {
		return false
	}
	c.DeliverBatch(r, 1)
	return true
}

// DeliverBatch performs up to n single delivery steps in one call —
// the strike-free stretch between two connectivity changes, delivered
// with the per-step bookkeeping (trace/drop/metrics nil checks, slice
// header loads) hoisted out of the loop. Each step is identical to a
// DeliverOne call: same rng draw, same FIFO pop, same drop rules, in
// the same order, so a run built from batches is bit-identical to one
// built from single steps; the driver relies on this to keep the
// golden streams stable while the checker contract (changes may land
// between any two deliveries) caps each batch at the next strike.
func (c *Cluster) DeliverBatch(r *rng.Source, n int) {
	if n > c.pending {
		n = c.pending
	}
	if n <= 0 {
		return
	}
	c.pending -= n
	active := c.active
	queues := c.queues
	curID := c.curID
	crashed := c.crashedFlag
	algs := c.algs
	drop := c.Drop
	tracing := c.Trace != nil
	var delivered, dropped int64
	for ; n > 0; n-- {
		ai := r.Intn(len(active))
		sender := active[ai]
		q := queues[sender]
		env := q[0]

		to := env.recipients[env.next]
		env.next++

		done := env.done()
		if done {
			copy(q, q[1:])
			q[len(q)-1] = nil
			q = q[:len(q)-1]
			queues[sender] = q
			if len(q) == 0 {
				active[ai] = active[len(active)-1]
				active = active[:len(active)-1]
			}
		}

		switch {
		case crashed[to]:
			// Dropped: recipient is gone.
			dropped++
			if tracing {
				c.traceDelivery(trace.KindDrop, sender, to, env, "crashed")
			}
		case curID[to] != env.viewID:
			// Dropped: recipient left the view (view-synchronous semantics).
			dropped++
			if tracing {
				c.traceDelivery(trace.KindDrop, sender, to, env, "view changed")
			}
		case drop != nil && drop(proc.ID(sender), to, env.msg):
			// Dropped by the test's filter.
			dropped++
			if tracing {
				c.traceDelivery(trace.KindDrop, sender, to, env, "filtered")
			}
		default:
			algs[to].Deliver(proc.ID(sender), env.msg)
			delivered++
			if tracing {
				c.traceDelivery(trace.KindDeliver, sender, to, env, "")
			}
		}
		if done {
			c.releaseEnvelope(env)
		}
	}
	c.active = active
	c.Metrics.observeDeliveries(delivered, dropped)
}

func (c *Cluster) traceDelivery(kind trace.Kind, sender int, to proc.ID, env *envelope, why string) {
	if c.Trace == nil {
		return
	}
	if c.TraceSampleEvery > 1 {
		c.traceSeq++
		if c.traceSeq%uint64(c.TraceSampleEvery) != 0 {
			return
		}
	}
	detail := env.msg.Kind()
	if why != "" {
		detail += " (" + why + ")"
	}
	c.Trace.Record(trace.Event{Kind: kind, Process: to, From: proc.ID(sender), Detail: detail})
}

// DeliverAll drains every pending delivery in randomized order.
// Deliveries never enqueue new traffic (sends wait in algorithm
// out-queues for the next Collect), so the whole drain is one batch.
func (c *Cluster) DeliverAll(r *rng.Source) {
	for c.pending > 0 {
		c.DeliverBatch(r, c.pending)
	}
}

// Round runs one message round: collect all broadcasts, then deliver
// them all. It returns the number of deliveries scheduled.
func (c *Cluster) Round(r *rng.Source) int {
	n := c.Collect(r)
	c.DeliverAll(r)
	return n
}

// RunToQuiescence runs rounds until no process has anything to send
// and no delivery is pending. It returns the number of rounds
// executed and an error if maxRounds is exceeded (indicating a
// livelock in the algorithm under test).
func (c *Cluster) RunToQuiescence(r *rng.Source, maxRounds int) (int, error) {
	for rounds := 0; ; rounds++ {
		if rounds > maxRounds {
			return rounds, fmt.Errorf("sim: no quiescence after %d rounds", maxRounds)
		}
		if c.Round(r) == 0 && c.pending == 0 {
			return rounds, nil
		}
	}
}

// Quiescent reports whether no deliveries are pending. It does not
// poll; call after Round or RunToQuiescence.
func (c *Cluster) Quiescent() bool { return c.pending == 0 }

// CurrentViews returns the distinct current views, i.e. the network
// components as the processes perceive them. The returned slice is
// reused by the next CurrentViews call: it is valid until then, which
// covers every checker-style caller that iterates it immediately.
//
// Dedup runs over the accumulating result itself instead of a hash
// set: the checker calls this after every message round, views are
// issued to members in contiguous ID ranges so consecutive processes
// usually share a view (the recent-ID check catches them in one
// compare), and the distinct-view count is bounded by the component
// count — usually a handful — so the linear scan stays a few word
// compares. The old map probe per process dominated the checker's
// profile in long soaks. Only when a run shatters into many components
// (large-N topologies can hold dozens of singletons) does the dedup
// switch to a reused hash set, keeping the call linear in the process
// count rather than quadratic in the component count.
func (c *Cluster) CurrentViews() []view.View {
	// Past this many distinct views, linear rescans cost more than
	// hashing; build the map fallback once and use it from there on.
	const linearScanMax = 16
	out := c.viewsOut[:0]
	var seen map[int64]struct{}
	last := int64(-1) // view IDs issued by netsim are non-negative
	for p := 0; p < c.n; p++ {
		if c.crashedFlag[p] {
			continue
		}
		v := &c.cur[p]
		if v.ID == last {
			continue
		}
		last = v.ID
		if seen == nil && len(out) > linearScanMax {
			if c.viewSeen == nil {
				c.viewSeen = make(map[int64]struct{}, 2*linearScanMax)
			} else {
				clear(c.viewSeen)
			}
			seen = c.viewSeen
			for i := range out {
				seen[out[i].ID] = struct{}{}
			}
		}
		if seen != nil {
			if _, dup := seen[v.ID]; !dup {
				seen[v.ID] = struct{}{}
				out = append(out, *v)
			}
			continue
		}
		dup := false
		for i := range out {
			if out[i].ID == v.ID {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, *v)
		}
	}
	c.viewsOut = out
	return out
}
