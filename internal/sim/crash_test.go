package sim_test

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

func TestClusterCrashStopsParticipation(t *testing.T) {
	c := sim.NewCluster(ykd.Factory(ykd.VariantYKD), 4)
	r := rng.New(3)
	c.Crash(1)
	if !c.Crashed().Equal(proc.NewSet(1)) {
		t.Fatalf("Crashed = %v", c.Crashed())
	}
	// Views exclude the crashed process; issuing one anyway must not
	// reach it.
	c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 2, 3)})
	if _, err := c.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}
	// {0,2,3} is 3 of 4: primary forms among the survivors.
	if !c.Algorithm(0).InPrimary() {
		t.Error("survivors should form a primary")
	}
	if err := sim.CheckOnePrimary(c); err != nil {
		t.Error(err)
	}
	if err := sim.CheckStableAgreement(c); err != nil {
		t.Error(err)
	}
}

func TestCheckerIgnoresCrashedStaleState(t *testing.T) {
	// A process that crashes while in a primary keeps stale
	// inPrimary=true; the checker must not count it.
	c := sim.NewCluster(ykd.Factory(ykd.VariantYKD), 3)
	r := rng.New(5)
	c.Crash(0) // still believes it is in the initial primary
	c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(1, 2)})
	if _, err := c.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}
	// {1,2} is a majority of 3 and forms; the crashed 0's frozen state
	// must not register as a second primary.
	if err := sim.CheckOnePrimary(c); err != nil {
		t.Errorf("checker counted a crashed process's stale primary: %v", err)
	}
	if !sim.HasPrimary(c) {
		t.Error("survivor primary not detected")
	}
}

func TestDriverCrashPlanSpecificVictim(t *testing.T) {
	d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs: 16, Changes: 6, MeanRounds: 2, CheckSafety: true,
		Crash: &sim.CrashPlan{AfterChanges: 2, Process: 0},
	}, rng.New(11))
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Cluster().Crashed().Contains(0) {
		t.Error("process 0 was not crashed")
	}
	if !d.Topology().Crashed().Contains(0) {
		t.Error("topology does not record the crash")
	}
	// The crash counts as one of the injected changes.
	if res.ChangesInjected != 6 {
		t.Errorf("ChangesInjected = %d, want 6", res.ChangesInjected)
	}
	if err := d.Topology().CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestDriverCrashPlanRandomVictim(t *testing.T) {
	d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs: 16, Changes: 6, MeanRounds: 2, CheckSafety: true,
		Crash: &sim.CrashPlan{AfterChanges: 0, Process: proc.None},
	}, rng.New(13))
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if got := d.Cluster().Crashed().Count(); got != 1 {
		t.Errorf("crashed %d processes, want exactly 1", got)
	}
}

func TestCrashIsPermanentAcrossCascade(t *testing.T) {
	d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs: 8, Changes: 4, MeanRounds: 2, CheckSafety: true,
		Crash: &sim.CrashPlan{AfterChanges: 1, Process: 3},
	}, rng.New(17))
	for i := 0; i < 5; i++ {
		d.Heal()
		if _, err := d.Run(); err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if !d.Cluster().Crashed().Contains(3) {
			t.Fatal("crash did not persist")
		}
		// Heal must never resurrect the crashed process into a view.
		if d.Cluster().View(0).Contains(3) && d.Cluster().View(0).ID != 0 {
			t.Fatal("crashed process reappeared in a live view")
		}
	}
}

// TestEternalBlockingOfOnePending reproduces the thesis §4.1 claim
// verbatim: "permanent absence of some member of the latest ambiguous
// session may cause eternal blocking" — for 1-pending, while YKD makes
// progress in the same situation.
func TestEternalBlockingOfOnePending(t *testing.T) {
	run := func(variant ykd.Variant) *sim.Cluster {
		c := sim.NewCluster(ykd.Factory(variant), 5)
		r := rng.New(1)
		// {0,1,2} attempt a primary; nobody completes it (all attempt
		// messages to the members are lost), leaving session {0,1,2}
		// pending.
		c.Drop = func(_, to proc.ID, m core.Message) bool {
			_, isAttempt := m.(*ykd.AttemptMessage)
			return isAttempt && to <= 2
		}
		c.Collect(r)
		c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 1, 2)},
			view.View{ID: 2, Members: proc.NewSet(3, 4)})
		if _, err := c.RunToQuiescence(r, 1000); err != nil {
			t.Fatal(err)
		}
		c.Drop = nil

		// Process 2 crashes forever. The remaining members can never
		// hear from all of {0,1,2} again.
		c.Crash(2)
		c.Collect(r)
		c.IssueViews(r, view.View{ID: 3, Members: proc.NewSet(0, 1, 3, 4)})
		if _, err := c.RunToQuiescence(r, 1000); err != nil {
			t.Fatal(err)
		}
		if err := sim.CheckOnePrimary(c); err != nil {
			t.Fatal(err)
		}
		return c
	}

	// YKD pipelines past the pending session ({0,1,3,4} holds 2 of 3
	// of it and a majority of W) and forms.
	cy := run(ykd.VariantYKD)
	if !cy.Algorithm(0).InPrimary() {
		t.Error("ykd should make progress despite the crashed member")
	}

	// 1-pending blocks eternally: the session can never be resolved.
	cp := run(ykd.VariantOnePending)
	if cp.Algorithm(0).InPrimary() {
		t.Error("1-pending formed a primary despite an unresolvable pending session")
	}
}
