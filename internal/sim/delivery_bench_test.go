package sim_test

import (
	"fmt"
	"testing"

	"dynvote/internal/rng"
	"dynvote/internal/sim"
)

// BenchmarkCollectDeliver measures one steady-state collect/deliver
// round of the maximum-traffic chatter workload. The 64-process point
// is the thesis's system size; 256 is the widest membership the inline
// proc.Set representation covers; 1024 exercises the wide-word spill,
// the batched delivery path, and the recipient-ID arena. All sizes
// must report 0 allocs/op — the benchmarked counterpart of the
// TestDeliveryLoopAllocFree* pins.
func BenchmarkCollectDeliver(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			c := sim.NewCluster(chatterFactory(), n)
			r := rng.New(17)
			c.Round(r) // grow pools and caches to steady-state capacity
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Collect(r)
				c.DeliverAll(r)
			}
		})
	}
}
