package sim

import (
	"fmt"

	"dynvote/internal/core"
	"dynvote/internal/metrics"
	"dynvote/internal/netsim"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/trace"
)

// Config parameterizes a simulation run, mirroring the two user-chosen
// parameters of thesis §2.2 — the number of connectivity changes per
// run and their frequency — plus instrumentation switches.
type Config struct {
	// Procs is the number of simulated processes (the thesis uses 64,
	// with 32 and 48 as scaling checks).
	Procs int
	// Changes is the number of connectivity changes injected per run.
	Changes int
	// MeanRounds is the mean number of message rounds successfully
	// executed between two subsequent connectivity changes. With
	// p = 1/(1+MeanRounds), a geometric number of changes (success
	// probability p per draw) is injected per round, which makes the
	// mean number of rounds between changes exactly MeanRounds. A
	// mean of zero therefore injects the whole change budget
	// back-to-back, leaving the algorithms no chance to exchange
	// information — the extreme left of the thesis's figures.
	MeanRounds float64
	// CheckSafety enables the invariant checker after every round and
	// at stabilization.
	CheckSafety bool
	// MeasureSizes enables encoding every broadcast to gather the
	// §3.4 message-size statistics (slower; off for availability
	// sweeps).
	MeasureSizes bool
	// Schedule overrides the change-timing model. Nil uses
	// GeometricSchedule{MeanRounds} — the thesis's model.
	Schedule Schedule
	// Crash, when non-nil, fail-stops one process partway through the
	// run — the §5.1 crash failure model.
	Crash *CrashPlan
	// StatsProc designates the process whose ambiguous-session counts
	// are sampled (the thesis collects them "by one of the
	// processes"). Defaults to process 0.
	StatsProc proc.ID
	// MaxRounds bounds a single run as a livelock guard. Defaults to
	// 100000.
	MaxRounds int
	// Metrics, when non-nil, receives the driver's instrumentation:
	// rounds, delivery steps, drops, views, changes, settling rounds,
	// checker assertions and the re-formation latency histogram. Nil
	// (the default) adds no allocations to the delivery hot path.
	Metrics *metrics.Registry
	// Trace, when non-nil, records view installations, deliveries,
	// drops and connectivity changes into a bounded ring buffer. On a
	// checker violation the retained history is attached to the error
	// (see ViolationError), turning a failed soak into a debuggable
	// artifact.
	Trace *trace.Recorder
	// TraceSampleEvery thins delivery/drop trace events to one in N
	// when > 1 so long soaks can keep a recorder attached cheaply;
	// views and changes are always recorded.
	TraceSampleEvery int
}

func (c Config) withDefaults() Config {
	if c.MaxRounds == 0 {
		c.MaxRounds = 100000
	}
	return c
}

// RunResult reports what one run produced: the availability outcome
// and the per-run statistics behind Figures 4-7 and 4-8 and §3.4.
type RunResult struct {
	// PrimaryFormed reports whether a primary component existed once
	// the network stabilized — the availability criterion.
	PrimaryFormed bool
	// Rounds is the number of message rounds executed.
	Rounds int
	// ChangesInjected is the number of connectivity changes applied
	// (always Config.Changes unless the topology admitted none).
	ChangesInjected int
	// AmbiguousAtEnd is the designated process's retained ambiguous
	// sessions at stabilization (Figure 4-7).
	AmbiguousAtEnd int
	// AmbiguousAtChanges samples the designated process's retained
	// ambiguous sessions at each connectivity change (Figure 4-8).
	AmbiguousAtChanges []int
	// MaxMessageBytes is the largest single encoded broadcast, when
	// size measurement is enabled.
	MaxMessageBytes int
	// MaxRoundBytes is the largest per-round total of encoded
	// broadcast bytes, when size measurement is enabled — the
	// "total amount of information transmitted" of §3.4.
	MaxRoundBytes int
	// ReformRounds counts the message rounds from the run's last
	// connectivity change until a primary component existed again —
	// the re-formation latency that availability percentages hide
	// (an algorithm can be 100%-available at stabilization yet slow
	// to get there). -1 when no primary ever formed.
	ReformRounds int
}

// CrashPlan schedules a single process crash, optionally followed by
// recovery from stable storage.
type CrashPlan struct {
	// AfterChanges crashes the process once this many connectivity
	// changes have been applied (0 = before any).
	AfterChanges int
	// Process selects the victim; proc.None picks a random live one.
	Process proc.ID
	// RecoverAfter, when positive, recovers the victim once this many
	// further changes have been applied: a fresh instance restored
	// from the snapshot taken at crash time. Zero means the crash is
	// permanent. Recovery itself does not consume change budget.
	RecoverAfter int
}

// Driver runs the simulation protocol of §2.2 over a Cluster: rounds
// of collect-and-deliver with connectivity changes injected at random
// positions inside a round, so that changes can interrupt attempts
// mid-protocol. A Driver retains all state between runs, which is what
// the "cascading" experiments rely on; fresh-start experiments build a
// new Driver per run.
type Driver struct {
	cfg     Config
	cluster *Cluster
	topo    *netsim.Topology
	rng     *rng.Source

	schedule       Schedule
	metrics        *Metrics
	strikes        []int // per-round change positions, reused across rounds
	crashDone      bool
	recoverDone    bool
	victim         proc.ID
	crashedAt      int
	changesApplied int
	roundBytes     int
	maxMsgBytes    int
}

// NewDriver builds a driver for the given algorithm over a fresh,
// fully connected topology.
func NewDriver(factory core.Factory, cfg Config, r *rng.Source) *Driver {
	cfg = cfg.withDefaults()
	d := &Driver{
		cfg:     cfg,
		cluster: NewCluster(factory, cfg.Procs),
		topo:    netsim.New(cfg.Procs),
		rng:     r,
	}
	d.schedule = cfg.Schedule
	if d.schedule == nil {
		d.schedule = GeometricSchedule{MeanRounds: cfg.MeanRounds}
	}
	d.metrics = NewMetrics(cfg.Metrics)
	d.cluster.Metrics = d.metrics
	d.cluster.Trace = cfg.Trace
	d.cluster.TraceSampleEvery = cfg.TraceSampleEvery
	if cfg.MeasureSizes {
		d.cluster.Bytes = func(n int) {
			d.roundBytes += n
			if n > d.maxMsgBytes {
				d.maxMsgBytes = n
			}
		}
	}
	return d
}

// Reset rewinds the driver to the state NewDriver would produce,
// reusing the cluster, topology and algorithm instances in place, and
// installs r as the new random source. A reset driver's next Run is
// bit-identical to the first Run of a fresh driver built with the same
// factory, config and source — fresh-start experiments exploit this to
// build one driver per worker and reset it between runs instead of
// rebuilding the world every run. Config (including metrics and trace
// sinks) is retained.
func (d *Driver) Reset(r *rng.Source) {
	d.cluster.Reset()
	d.topo.Reset()
	d.rng = r
	d.crashDone = false
	d.recoverDone = false
	d.victim = 0
	d.crashedAt = 0
	d.changesApplied = 0
	d.roundBytes = 0
	d.maxMsgBytes = 0
}

// Cluster exposes the underlying cluster for inspection.
func (d *Driver) Cluster() *Cluster { return d.cluster }

// Topology exposes the connectivity model for inspection.
func (d *Driver) Topology() *netsim.Topology { return d.topo }

// Run executes one run: inject cfg.Changes connectivity changes at the
// configured rate while routing messages, then let the system run to
// quiescence, and report the outcome. Calling Run again continues from
// the current state (a cascading run); use a fresh Driver for
// fresh-start semantics.
func (d *Driver) Run() (RunResult, error) {
	res := RunResult{AmbiguousAtChanges: make([]int, 0, d.cfg.Changes), ReformRounds: -1}
	remaining := d.cfg.Changes
	lastChangeRound := 0

	for {
		if res.Rounds > d.cfg.MaxRounds {
			return res, fmt.Errorf("sim: run exceeded %d rounds", d.cfg.MaxRounds)
		}

		d.roundBytes = 0
		scheduled := d.cluster.Collect(d.rng)
		quiet := scheduled == 0 && d.cluster.PendingDeliveries() == 0

		// Draw this round's burst of connectivity changes from the
		// schedule (the thesis's model: geometric with mean rounds
		// between changes = cfg.MeanRounds). Each change strikes at a
		// uniformly random delivery step, possibly interrupting an
		// attempt mid-protocol.
		burst := d.schedule.Burst(d.rng, res.Rounds, remaining)
		strikes := d.strikes[:0]
		total := d.cluster.PendingDeliveries()
		for i := 0; i < burst; i++ {
			strikes = append(strikes, d.rng.Intn(total+1))
		}
		// Bursts are tiny (geometric, almost always 0-3 entries):
		// insertion sort beats sort.Ints and allocates nothing.
		insertionSort(strikes)
		d.strikes = strikes

		injected := false
		next := 0
		for next < len(strikes) && strikes[next] == 0 {
			lastChangeRound = res.Rounds
			d.applyChange(&res)
			remaining--
			injected = true
			next++
		}
		// Deliver in strike-free stretches: each batch runs up to the
		// next change position, then the change lands — the same
		// single-delivery granularity as a DeliverOne-per-step loop
		// (bit-identical rng consumption), minus the per-step strike
		// scan. A stretch never undershoots a strike: step+pending only
		// grows (Collect at strikes), so pending ≥ strikes[next]-step.
		step := 0
		for d.cluster.PendingDeliveries() > 0 {
			stretch := d.cluster.PendingDeliveries()
			if next < len(strikes) && strikes[next]-step < stretch {
				stretch = strikes[next] - step
			}
			d.cluster.DeliverBatch(d.rng, stretch)
			step += stretch
			for next < len(strikes) && strikes[next] == step {
				lastChangeRound = res.Rounds
				d.applyChange(&res)
				remaining--
				injected = true
				next++
			}
		}
		res.Rounds++
		d.metrics.observeRound(remaining == 0)
		if d.cfg.MeasureSizes && d.roundBytes > res.MaxRoundBytes {
			res.MaxRoundBytes = d.roundBytes
		}
		if remaining == 0 && res.ReformRounds < 0 && HasPrimary(d.cluster) {
			res.ReformRounds = res.Rounds - 1 - lastChangeRound
		}

		if d.cfg.CheckSafety {
			d.metrics.observeAssertion()
			if err := CheckOnePrimary(d.cluster); err != nil {
				return res, d.violation(err)
			}
		}

		if remaining == 0 && quiet && !injected {
			break
		}
	}

	if d.cfg.CheckSafety {
		d.metrics.observeAssertion()
		if err := CheckStableAgreement(d.cluster); err != nil {
			return res, d.violation(err)
		}
	}

	res.PrimaryFormed = HasPrimary(d.cluster)
	res.AmbiguousAtEnd = d.ambiguousAt(d.cfg.StatsProc)
	res.MaxMessageBytes = d.maxMsgBytes
	d.metrics.observeRun(res)
	return res, nil
}

// violation flushes the interrupted run's metric tallies (the work up
// to the failure still counts) and annotates a checker error with the
// retained history, when one is attached: the soak's last moments are
// exactly what a post-mortem needs, and they would otherwise be gone
// by the time the error surfaces.
func (d *Driver) violation(err error) error {
	d.metrics.flush()
	if d.cfg.Trace == nil {
		return err
	}
	return &ViolationError{Err: err, History: d.cfg.Trace.Events()}
}

// Heal reconnects the whole network with a single merge view, without
// running any message rounds: the healing exchange begins in the next
// Run and can be interrupted by its connectivity changes. Cascading
// experiments call Heal between runs — the network's turbulence is
// transient, but the algorithms carry their state (pending ambiguous
// sessions, shrunken primaries) into the next run, which is what the
// thesis's cascading tests measure.
func (d *Driver) Heal() {
	ch, ok := d.topo.MergeAll()
	if !ok {
		return
	}
	d.cluster.Collect(d.rng)
	d.cluster.IssueViews(d.rng, ch.NewViews...)
}

// applyChange injects one connectivity change, sampling the
// ambiguous-session statistic at the moment of the change as the
// thesis does, then issuing the new views. When a crash plan is due,
// the change is the crash itself.
func (d *Driver) applyChange(res *RunResult) {
	res.AmbiguousAtChanges = append(res.AmbiguousAtChanges, d.ambiguousAt(d.cfg.StatsProc))

	if cp := d.cfg.Crash; cp != nil && d.crashDone && !d.recoverDone && cp.RecoverAfter > 0 &&
		d.changesApplied >= d.crashedAt+cp.RecoverAfter {
		d.recoverDone = true
		if v, ok := d.topo.Recover(d.victim); ok {
			if err := d.cluster.Recover(d.victim); err == nil {
				d.cluster.Collect(d.rng)
				d.cluster.IssueViews(d.rng, v)
			}
		}
	}

	if cp := d.cfg.Crash; cp != nil && !d.crashDone && d.changesApplied >= cp.AfterChanges {
		d.crashDone = true
		var ch netsim.Change
		var ok bool
		if cp.Process == proc.None {
			ch, ok = d.topo.CrashRandomLive(d.rng)
		} else {
			ch, ok = d.topo.CrashProcess(cp.Process)
		}
		if ok {
			victims := d.topo.Crashed()
			res.ChangesInjected++
			d.changesApplied++
			d.metrics.observeChange()
			d.traceChange("crash", ch)
			d.crashedAt = d.changesApplied
			d.cluster.Collect(d.rng)
			// The victim stops before the survivors learn anything.
			victims.ForEach(func(p proc.ID) {
				if !d.cluster.Crashed().Contains(p) {
					d.victim = p
					d.cluster.Crash(p)
				}
			})
			d.cluster.IssueViews(d.rng, ch.NewViews...)
			return
		}
	}

	ch, ok := d.topo.RandomChange(d.rng)
	if !ok {
		return
	}
	res.ChangesInjected++
	d.changesApplied++
	d.metrics.observeChange()
	d.traceChange("connectivity", ch)
	// Collect before issuing so in-flight sends keep their old view
	// tags (see Cluster.IssueViews).
	d.cluster.Collect(d.rng)
	d.cluster.IssueViews(d.rng, ch.NewViews...)
}

// traceChange records an injected change as a structural trace event
// (never sampled away).
func (d *Driver) traceChange(what string, ch netsim.Change) {
	if d.cfg.Trace == nil {
		return
	}
	d.cfg.Trace.Record(trace.Event{
		Kind:   trace.KindChange,
		Detail: fmt.Sprintf("%s #%d: %d new views", what, d.changesApplied, len(ch.NewViews)),
	})
}

// insertionSort sorts a (tiny) int slice in place ascending.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func (d *Driver) ambiguousAt(p proc.ID) int {
	if ar, ok := d.cluster.Algorithm(p).(core.AmbiguousReporter); ok {
		return ar.AmbiguousSessionCount()
	}
	return 0
}
