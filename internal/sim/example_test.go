package sim_test

import (
	"fmt"

	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/ykd"
)

// A complete experiment in a few lines: 16 processes, six connectivity
// changes at a mean of two message rounds apart, safety checked after
// every round.
func ExampleDriver() {
	driver := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs:       16,
		Changes:     6,
		MeanRounds:  2,
		CheckSafety: true,
	}, rng.New(42))

	res, err := driver.Run()
	if err != nil {
		fmt.Println("safety violation:", err)
		return
	}
	fmt.Println("changes injected:", res.ChangesInjected)
	fmt.Println("primary at stabilization:", res.PrimaryFormed)
	// Output:
	// changes injected: 6
	// primary at stabilization: true
}
