package sim

import (
	"dynvote/internal/metrics"
)

// Metrics bundles the simulator's instrumentation, resolved once from
// a registry so the hot loop never touches a map. A nil *Metrics (the
// uninstrumented default) makes every observation a no-op nil check —
// the delivery path adds no allocations and no atomic traffic when
// metrics are disabled (see BenchmarkDriverMetricsOverhead).
//
// A Metrics value belongs to one Driver and is not goroutine-safe: the
// high-frequency observations accumulate in plain local tallies (the
// driver loop is single-threaded) and flush() pushes them into the
// shared atomic counters once per run. Registry readers therefore see
// run-granular totals — exact between runs, slightly stale during one.
type Metrics struct {
	// Runs counts completed Driver.Run invocations.
	Runs *metrics.Counter
	// Rounds counts message rounds executed.
	Rounds *metrics.Counter
	// Deliveries counts delivery steps (one (message, recipient)
	// pair each) — the simulator's innermost unit of work.
	Deliveries *metrics.Counter
	// Delivered counts deliveries that reached the recipient's
	// algorithm.
	Delivered *metrics.Counter
	// Dropped counts deliveries lost to crashes, view-synchronous
	// filtering, or test drop filters.
	Dropped *metrics.Counter
	// Views counts per-process view installations.
	Views *metrics.Counter
	// Changes counts connectivity changes injected.
	Changes *metrics.Counter
	// SettleRounds counts rounds run after a run's change budget was
	// exhausted — the quiescence-settling tail whose length the
	// availability percentages hide.
	SettleRounds *metrics.Counter
	// Assertions counts safety-checker invariant evaluations.
	Assertions *metrics.Counter
	// Reform histograms per-run re-formation latency in rounds
	// (successful runs only).
	Reform *metrics.Histogram

	// Local tallies for the hot-path observations, flushed per run.
	rounds, settleRounds int64
	delivered, dropped   int64
	views, changes       int64
	assertions           int64
}

// NewMetrics resolves the simulator's instruments from reg. A nil
// registry yields nil — the zero-overhead disabled path.
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Runs:         reg.Counter("sim_runs_total", "completed simulation runs"),
		Rounds:       reg.Counter("sim_rounds_total", "message rounds executed"),
		Deliveries:   reg.Counter("sim_delivery_steps_total", "single-delivery steps executed"),
		Delivered:    reg.Counter("sim_messages_delivered_total", "deliveries that reached an algorithm"),
		Dropped:      reg.Counter("sim_messages_dropped_total", "deliveries dropped (crash, view change, filter)"),
		Views:        reg.Counter("sim_views_installed_total", "per-process view installations"),
		Changes:      reg.Counter("sim_changes_injected_total", "connectivity changes injected"),
		SettleRounds: reg.Counter("sim_settle_rounds_total", "rounds run after the change budget was spent"),
		Assertions:   reg.Counter("sim_checker_assertions_total", "safety-checker invariant evaluations"),
		Reform:       reg.Histogram("sim_reform_rounds", "rounds from last change to a primary re-forming", metrics.RoundBuckets),
	}
}

// The nil-receiver-safe observation helpers below keep the Cluster and
// Driver call sites to one line with a single branch on the disabled
// path.

// observeDeliveries absorbs one DeliverBatch's local tallies. Batching
// is observable-equivalent to per-step observation: the tallies are
// plain local accumulators either way, flushed per run.
func (m *Metrics) observeDeliveries(delivered, dropped int64) {
	if m == nil {
		return
	}
	m.delivered += delivered
	m.dropped += dropped
}

func (m *Metrics) observeViews(n int) {
	if m == nil {
		return
	}
	m.views += int64(n)
}

func (m *Metrics) observeRound(settling bool) {
	if m == nil {
		return
	}
	m.rounds++
	if settling {
		m.settleRounds++
	}
}

func (m *Metrics) observeChange() {
	if m == nil {
		return
	}
	m.changes++
}

func (m *Metrics) observeAssertion() {
	if m == nil {
		return
	}
	m.assertions++
}

func (m *Metrics) observeRun(res RunResult) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	if res.ReformRounds >= 0 {
		m.Reform.Observe(float64(res.ReformRounds))
	}
	m.flush()
}

// flush pushes the run's local tallies into the shared counters and
// zeroes them. Also called when a run aborts on a checker violation so
// the work done up to the failure is still accounted for.
func (m *Metrics) flush() {
	if m == nil {
		return
	}
	m.Rounds.Add(m.rounds)
	m.SettleRounds.Add(m.settleRounds)
	m.Deliveries.Add(m.delivered + m.dropped)
	m.Delivered.Add(m.delivered)
	m.Dropped.Add(m.dropped)
	m.Views.Add(m.views)
	m.Changes.Add(m.changes)
	m.Assertions.Add(m.assertions)
	m.rounds, m.settleRounds = 0, 0
	m.delivered, m.dropped = 0, 0
	m.views, m.changes, m.assertions = 0, 0, 0
}
