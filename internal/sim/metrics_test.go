package sim_test

import (
	"errors"
	"strings"
	"testing"

	"dynvote/internal/metrics"
	"dynvote/internal/naive"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/trace"
	"dynvote/internal/ykd"
)

// TestDriverMetrics runs an instrumented case and checks the counters
// tell a consistent story: every delivery step is either delivered or
// dropped, the injected-change counter matches the run result, and the
// re-formation histogram saw the successful run.
func TestDriverMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs: 8, Changes: 4, MeanRounds: 2, CheckSafety: true, Metrics: reg,
	}, rng.New(7))
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	c := s.Counters
	if c["sim_runs_total"] != 1 {
		t.Errorf("runs = %d, want 1", c["sim_runs_total"])
	}
	if c["sim_rounds_total"] != int64(res.Rounds) {
		t.Errorf("rounds counter %d != result rounds %d", c["sim_rounds_total"], res.Rounds)
	}
	if c["sim_changes_injected_total"] != int64(res.ChangesInjected) {
		t.Errorf("changes counter %d != result changes %d",
			c["sim_changes_injected_total"], res.ChangesInjected)
	}
	steps := c["sim_delivery_steps_total"]
	if steps == 0 {
		t.Error("no delivery steps counted")
	}
	if got := c["sim_messages_delivered_total"] + c["sim_messages_dropped_total"]; got != steps {
		t.Errorf("delivered %d + dropped %d != steps %d",
			c["sim_messages_delivered_total"], c["sim_messages_dropped_total"], steps)
	}
	if c["sim_views_installed_total"] == 0 {
		t.Error("no view installations counted")
	}
	if c["sim_checker_assertions_total"] == 0 {
		t.Error("no checker assertions counted despite CheckSafety")
	}
	if c["sim_settle_rounds_total"] == 0 || c["sim_settle_rounds_total"] >= c["sim_rounds_total"] {
		t.Errorf("settle rounds = %d of %d total: implausible",
			c["sim_settle_rounds_total"], c["sim_rounds_total"])
	}
	if res.PrimaryFormed {
		if h := s.Histograms["sim_reform_rounds"]; h.Count != 1 {
			t.Errorf("reform histogram count = %d, want 1", h.Count)
		}
	}
}

// TestDriverMetricsSharedAcrossRuns: a campaign aggregates many runs
// into one registry.
func TestDriverMetricsSharedAcrossRuns(t *testing.T) {
	reg := metrics.NewRegistry()
	for run := 0; run < 3; run++ {
		d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
			Procs: 8, Changes: 2, MeanRounds: 1, Metrics: reg,
		}, rng.New(int64(run)))
		if _, err := d.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Snapshot().Counters["sim_runs_total"]; got != 3 {
		t.Errorf("runs = %d, want 3", got)
	}
}

// TestViolationCarriesTrace: a checker violation in a traced run
// returns a ViolationError holding the ring buffer's history, and the
// underlying SafetyError stays reachable through errors.As.
func TestViolationCarriesTrace(t *testing.T) {
	rec := trace.NewRecorder(512)
	d := sim.NewDriver(naive.Factory(), sim.Config{
		Procs: 8, Changes: 10, MeanRounds: 1, CheckSafety: true, Trace: rec,
	}, rng.New(29)) // seed 29 trips the naive algorithm within a few cascading runs
	var err error
	for run := 0; run < 10 && err == nil; run++ {
		d.Heal()
		_, err = d.Run()
	}
	if err == nil {
		t.Fatal("naive algorithm never violated safety under the soak")
	}
	var ve *sim.ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("error type = %T, want *sim.ViolationError", err)
	}
	if len(ve.History) == 0 {
		t.Error("violation carries no trace history")
	}
	var se *sim.SafetyError
	if !errors.As(err, &se) {
		t.Error("SafetyError not reachable through the violation")
	}
	msg := err.Error()
	if !strings.Contains(msg, "safety violation") || !strings.Contains(msg, "--- trace") {
		t.Errorf("Error() should render the violation and the trace, got:\n%.200s", msg)
	}
	// The history must include structural events: the changes that led
	// to the violation.
	var changes int
	for _, ev := range ve.History {
		if ev.Kind == trace.KindChange {
			changes++
		}
	}
	if changes == 0 {
		t.Error("no connectivity-change events in the violation history")
	}
}

// TestTraceSampling: delivery events are thinned by the sampling
// factor while structural view events are always kept.
func TestTraceSampling(t *testing.T) {
	full := trace.NewRecorder(1 << 16)
	d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs: 8, Changes: 4, MeanRounds: 2, Trace: full,
	}, rng.New(5))
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}

	sampled := trace.NewRecorder(1 << 16)
	d = sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs: 8, Changes: 4, MeanRounds: 2, Trace: sampled, TraceSampleEvery: 8,
	}, rng.New(5))
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}

	count := func(r *trace.Recorder, k trace.Kind) int {
		n := 0
		for _, e := range r.Events() {
			if e.Kind == k {
				n++
			}
		}
		return n
	}
	fullDeliver, sampledDeliver := count(full, trace.KindDeliver), count(sampled, trace.KindDeliver)
	if sampledDeliver == 0 || sampledDeliver*4 > fullDeliver {
		t.Errorf("sampling 1-in-8 kept %d of %d deliveries", sampledDeliver, fullDeliver)
	}
	if fv, sv := count(full, trace.KindView), count(sampled, trace.KindView); fv != sv {
		t.Errorf("view events must not be sampled: full %d, sampled %d", fv, sv)
	}
	if fc, sc := count(full, trace.KindChange), count(sampled, trace.KindChange); fc != sc {
		t.Errorf("change events must not be sampled: full %d, sampled %d", fc, sc)
	}
}
