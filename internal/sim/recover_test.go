package sim_test

import (
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/core"
	"dynvote/internal/mr1p"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

func TestRecoverRestoresFromSnapshot(t *testing.T) {
	c := sim.NewCluster(ykd.Factory(ykd.VariantYKD), 5)
	r := rng.New(3)
	// Form a smaller primary so the durable state is non-trivial.
	c.Collect(r)
	c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 1, 2)},
		view.View{ID: 2, Members: proc.NewSet(3, 4)})
	if _, err := c.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}
	before := c.Algorithm(1).(*ykd.Algorithm).LastPrimary()

	c.Crash(1)
	if err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	alg := c.Algorithm(1).(*ykd.Algorithm)
	if alg.InPrimary() {
		t.Error("recovered process must not claim primacy before rejoining")
	}
	if !alg.LastPrimary().Equal(before) {
		t.Errorf("durable state lost: lastPrimary = %v, want %v", alg.LastPrimary(), before)
	}

	// Rejoining works: 1's memory of the {0,1,2} primary lets the
	// group re-form.
	c.Collect(r)
	c.IssueViews(r, view.View{ID: 3, Members: proc.NewSet(1)})
	c.Collect(r)
	c.IssueViews(r, view.View{ID: 4, Members: proc.NewSet(0, 1, 2)})
	if _, err := c.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}
	if !alg.InPrimary() {
		t.Error("recovered process failed to rejoin the primary")
	}
	if err := sim.CheckOnePrimary(c); err != nil {
		t.Error(err)
	}
}

func TestRecoverNotCrashed(t *testing.T) {
	c := sim.NewCluster(ykd.Factory(ykd.VariantYKD), 3)
	if err := c.Recover(0); err == nil {
		t.Error("Recover of a live process accepted")
	}
}

// TestRecoveryCuresEternalBlocking completes the eternal-blocking
// story: the crashed member of 1-pending's unresolvable session
// recovers with its durable state, reconnects, and the session finally
// resolves — the only cure short of switching algorithms.
func TestRecoveryCuresEternalBlocking(t *testing.T) {
	c := sim.NewCluster(ykd.Factory(ykd.VariantOnePending), 5)
	r := rng.New(1)
	// Pending session {0,1,2} that nobody formed.
	c.Drop = func(_, to proc.ID, m core.Message) bool {
		_, isAttempt := m.(*ykd.AttemptMessage)
		return isAttempt && to <= 2
	}
	c.Collect(r)
	c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 1, 2)},
		view.View{ID: 2, Members: proc.NewSet(3, 4)})
	if _, err := c.RunToQuiescence(r, 1000); err != nil {
		t.Fatal(err)
	}
	c.Drop = nil

	// 2 crashes; the others block forever (see
	// TestEternalBlockingOfOnePending).
	c.Crash(2)
	c.Collect(r)
	c.IssueViews(r, view.View{ID: 3, Members: proc.NewSet(0, 1, 3, 4)})
	if _, err := c.RunToQuiescence(r, 1000); err != nil {
		t.Fatal(err)
	}
	if c.Algorithm(0).InPrimary() {
		t.Fatal("setup broken: 1-pending should be blocked")
	}

	// 2 recovers from stable storage and rejoins: all members of the
	// pending session are reachable again, it resolves, and the full
	// view forms.
	if err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	c.Collect(r)
	c.IssueViews(r, view.View{ID: 4, Members: proc.NewSet(2)})
	c.Collect(r)
	c.IssueViews(r, view.View{ID: 5, Members: proc.Universe(5)})
	if _, err := c.RunToQuiescence(r, 1000); err != nil {
		t.Fatal(err)
	}
	if !c.Algorithm(0).InPrimary() {
		t.Error("recovery should unblock 1-pending")
	}
	if err := sim.CheckStableAgreement(c); err != nil {
		t.Error(err)
	}
}

func TestDriverCrashRecoverPlan(t *testing.T) {
	for _, f := range algset.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			d := sim.NewDriver(f, sim.Config{
				Procs: 12, Changes: 10, MeanRounds: 2, CheckSafety: true,
				Crash: &sim.CrashPlan{AfterChanges: 2, Process: 3, RecoverAfter: 4},
			}, rng.New(21))
			if _, err := d.Run(); err != nil {
				t.Fatal(err)
			}
			if d.Cluster().Crashed().Contains(3) {
				t.Error("process 3 should have recovered")
			}
			if d.Topology().Crashed().Contains(3) {
				t.Error("topology still records the crash")
			}
		})
	}
}

// TestSnapshotRoundTripBehaviour: a restored instance behaves exactly
// like the original on the same subsequent inputs.
func TestSnapshotRoundTripBehaviour(t *testing.T) {
	factories := []core.Factory{
		ykd.Factory(ykd.VariantYKD),
		ykd.Factory(ykd.VariantDFLS),
		mr1p.Factory(),
	}
	for _, f := range factories {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			// Drive two identical clusters through churn; snapshot and
			// restore one instance mid-way; outcomes must match.
			run := func(restore bool) bool {
				c := sim.NewCluster(f, 6)
				r := rng.New(9)
				c.Collect(r)
				c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 1, 2, 3)},
					view.View{ID: 2, Members: proc.NewSet(4, 5)})
				if _, err := c.RunToQuiescence(r, 200); err != nil {
					t.Fatal(err)
				}
				if restore {
					c.Crash(2)
					if err := c.Recover(2); err != nil {
						t.Fatal(err)
					}
				}
				c.Collect(r)
				c.IssueViews(r, view.View{ID: 3, Members: proc.NewSet(0, 1, 2)},
					view.View{ID: 4, Members: proc.NewSet(3, 4, 5)})
				if _, err := c.RunToQuiescence(r, 200); err != nil {
					t.Fatal(err)
				}
				return c.Algorithm(2).InPrimary()
			}
			if run(false) != run(true) {
				t.Error("restored instance diverged from the original")
			}
		})
	}
}
