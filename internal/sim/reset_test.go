package sim_test

import (
	"reflect"
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
)

// The reset lifecycle contract: Driver.Reset rewinds a driver to the
// state NewDriver would produce, so a run on a reset driver is
// bit-identical to the same run on a fresh one. These tests execute
// the same seed sequence three ways — fresh driver per run, one driver
// reset between runs, and alternating fresh/reset — and require the
// RunResult streams to match exactly, for every algorithm in the
// study. The crash/recover variant additionally proves that snapshot
// state captured at crash time cannot leak across a reset.

// resetSeeds derives n per-run sources. Sources are stateful, so each
// stream (fresh, reused, alternating) derives its own instances; the
// identical labels guarantee identical draw sequences.
func resetSeeds(n int) []*rng.Source {
	root := rng.New(977)
	out := make([]*rng.Source, n)
	for i := range out {
		out[i] = root.ChildLabel("reset-test", int64(i))
	}
	return out
}

// runFresh executes one run per seed, each on a brand-new driver.
func runFresh(t *testing.T, f core.Factory, cfg sim.Config, n int) []sim.RunResult {
	t.Helper()
	seeds := resetSeeds(n)
	out := make([]sim.RunResult, len(seeds))
	for i, s := range seeds {
		r, err := sim.NewDriver(f, cfg, s).Run()
		if err != nil {
			t.Fatalf("%s fresh run %d: %v", f.Name, i, err)
		}
		out[i] = r
	}
	return out
}

// runReused executes one run per seed on a single driver, reset
// between runs.
func runReused(t *testing.T, f core.Factory, cfg sim.Config, n int) []sim.RunResult {
	t.Helper()
	seeds := resetSeeds(n)
	out := make([]sim.RunResult, len(seeds))
	var d *sim.Driver
	for i, s := range seeds {
		if d == nil {
			d = sim.NewDriver(f, cfg, s)
		} else {
			d.Reset(s)
		}
		r, err := d.Run()
		if err != nil {
			t.Fatalf("%s reused run %d: %v", f.Name, i, err)
		}
		out[i] = r
	}
	return out
}

// runAlternating interleaves the two lifecycles: even runs construct a
// fresh driver, odd runs reset the previous one. Any state a reset
// failed to clear would desynchronize the stream from the first odd
// run onward.
func runAlternating(t *testing.T, f core.Factory, cfg sim.Config, n int) []sim.RunResult {
	t.Helper()
	seeds := resetSeeds(n)
	out := make([]sim.RunResult, len(seeds))
	var d *sim.Driver
	for i, s := range seeds {
		if i%2 == 0 {
			d = sim.NewDriver(f, cfg, s)
		} else {
			d.Reset(s)
		}
		r, err := d.Run()
		if err != nil {
			t.Fatalf("%s alternating run %d: %v", f.Name, i, err)
		}
		out[i] = r
	}
	return out
}

func checkStreams(t *testing.T, f core.Factory, cfg sim.Config, n int) {
	t.Helper()
	fresh := runFresh(t, f, cfg, n)
	for mode, results := range map[string][]sim.RunResult{
		"reused":      runReused(t, f, cfg, n),
		"alternating": runAlternating(t, f, cfg, n),
	} {
		for i := range fresh {
			if !reflect.DeepEqual(fresh[i], results[i]) {
				t.Errorf("%s run %d: %s driver diverges from fresh\nfresh:  %+v\n%s: %+v",
					f.Name, i, mode, fresh[i], mode, results[i])
			}
		}
	}
}

// TestResetVsFreshGolden proves reset-vs-fresh equivalence for every
// registered algorithm under the plain fresh-start configuration.
func TestResetVsFreshGolden(t *testing.T) {
	cfg := sim.Config{Procs: 16, Changes: 5, MeanRounds: 2, CheckSafety: true}
	for _, f := range algset.All() {
		checkStreams(t, f, cfg, 8)
	}
}

// TestResetVsFreshGoldenCrashRecover repeats the equivalence check
// with a crash-and-recover plan in every run. This is the test that
// keeps Cluster.Reset honest about snapshots: crashing captures the
// victim's durable state, and a reset that failed to discard it would
// let one run's stable storage resurface in the next.
func TestResetVsFreshGoldenCrashRecover(t *testing.T) {
	cfg := sim.Config{
		Procs:      16,
		Changes:    6,
		MeanRounds: 2,
		Crash:      &sim.CrashPlan{AfterChanges: 2, Process: proc.None, RecoverAfter: 2},
	}
	for _, f := range algset.All() {
		checkStreams(t, f, cfg, 6)
	}
}

// TestResetVsFreshGoldenPermanentCrash covers the permanent-crash arm:
// the run ends with a process still crashed and a snapshot still held,
// so the subsequent reset must roll back crash state it would never
// otherwise revisit.
func TestResetVsFreshGoldenPermanentCrash(t *testing.T) {
	cfg := sim.Config{
		Procs:      16,
		Changes:    5,
		MeanRounds: 2,
		Crash:      &sim.CrashPlan{AfterChanges: 1, Process: 3},
	}
	for _, f := range algset.All() {
		checkStreams(t, f, cfg, 6)
	}
}
