package sim_test

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/dfls"
	"dynvote/internal/majority"
	"dynvote/internal/mr1p"
	"dynvote/internal/onepending"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

// roundsToQuiesce measures the message rounds one uninterrupted view
// change costs an algorithm — the §3.4 comparison: YKD, unoptimized
// YKD and 1-pending need two rounds, DFLS three, MR1p two without a
// pending session (and five with one, measured separately).
func roundsToQuiesce(t *testing.T, f core.Factory) int {
	t.Helper()
	c := sim.NewCluster(f, 5)
	r := rng.New(4)
	c.Collect(r)
	c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 1, 2)},
		view.View{ID: 2, Members: proc.NewSet(3, 4)})
	rounds, err := c.RunToQuiescence(r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Algorithm(0).InPrimary() {
		t.Fatalf("%s: majority side did not form", f.Name)
	}
	// RunToQuiescence's return value counts exactly the non-empty
	// rounds: the terminating empty round is detected at index
	// `rounds` and not included.
	return rounds
}

func TestMessageRoundCounts(t *testing.T) {
	want := map[string]int{
		ykd.VariantYKD.String():         2,
		ykd.VariantUnoptimized.String(): 2,
		onepending.Name:                 2,
		dfls.Name:                       3,
		mr1p.Name:                       2, // no pending session: rounds 4 and 5 only
		majority.Name:                   0,
	}
	factories := []core.Factory{
		ykd.Factory(ykd.VariantYKD),
		ykd.Factory(ykd.VariantUnoptimized),
		onepending.Factory(),
		dfls.Factory(),
		mr1p.Factory(),
		majority.Factory(),
	}
	for _, f := range factories {
		got := roundsToQuiesce(t, f)
		if got != want[f.Name] {
			t.Errorf("%s: %d message rounds per formation, thesis §3.4 says %d",
				f.Name, got, want[f.Name])
		}
	}
}

// TestMR1pFiveRoundsWithPending verifies the other half of the §3.4
// claim: resolving a pending ambiguous session costs MR1p five rounds.
func TestMR1pFiveRoundsWithPending(t *testing.T) {
	c := sim.NewCluster(mr1p.Factory(), 5)
	r := rng.New(4)
	// Leave {0,1,2} with a pending session at the attempt stage.
	c.Drop = func(_, to proc.ID, m core.Message) bool {
		_, ok := m.(*mr1p.AttemptMessage)
		return ok && to <= 2
	}
	c.Collect(r)
	c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 1, 2)},
		view.View{ID: 2, Members: proc.NewSet(3, 4)})
	if _, err := c.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}
	c.Drop = nil

	// Fresh view of the same three: resolution (3 rounds) + formation
	// (2 rounds).
	c.Collect(r)
	c.IssueViews(r, view.View{ID: 3, Members: proc.NewSet(0, 1, 2)})
	rounds, err := c.RunToQuiescence(r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Algorithm(0).InPrimary() {
		t.Fatal("resolution did not complete")
	}
	// The thesis counts five rounds; this implementation documents a
	// deliberate merge of the thesis's rounds 1 and 2 (a holder's
	// report doubles as its relay — see the mr1p package comment), so
	// resolution + formation costs four.
	if rounds != 4 {
		t.Errorf("MR1p with pending session took %d rounds, want 4 (5 in the thesis, minus the merged relay round)", rounds)
	}
}
