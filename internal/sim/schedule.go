package sim

import "dynvote/internal/rng"

// Schedule decides how many connectivity changes strike in each
// message round. The thesis uses a single uniform-probability model
// and explicitly invites other probability functions (§5.1); the
// implementations below are stateless so one value can drive any
// number of drivers.
type Schedule interface {
	// Burst returns how many changes to inject in the given round
	// (0-based), at most remaining.
	Burst(r *rng.Source, round, remaining int) int
}

// GeometricSchedule is the thesis's model: each round injects a
// geometric number of changes with success probability
// p = 1/(1+MeanRounds), making the mean number of rounds between
// changes exactly MeanRounds. MeanRounds zero floods the full budget
// at once.
type GeometricSchedule struct {
	// MeanRounds is the mean number of message rounds between
	// consecutive changes.
	MeanRounds float64
}

// Burst implements Schedule.
func (s GeometricSchedule) Burst(r *rng.Source, _, remaining int) int {
	p := 1 / (1 + s.MeanRounds)
	burst := 0
	for burst < remaining && r.Float64() < p {
		burst++
	}
	return burst
}

// PeriodicSchedule injects exactly one change every Every rounds — a
// deterministic clock, the least bursty timing possible.
type PeriodicSchedule struct {
	// Every is the period in rounds; values below 1 mean every round.
	Every int
}

// Burst implements Schedule.
func (s PeriodicSchedule) Burst(_ *rng.Source, round, remaining int) int {
	every := s.Every
	if every < 1 {
		every = 1
	}
	if remaining > 0 && round%every == 0 {
		return 1
	}
	return 0
}

// ClusteredSchedule models heavily correlated turbulence: change
// events arrive with the geometric rate of MeanRounds, but each event
// is a cluster of BurstSize back-to-back changes — a router flapping
// rather than failing once.
type ClusteredSchedule struct {
	// MeanRounds is the mean number of rounds between clusters.
	MeanRounds float64
	// BurstSize is the number of changes per cluster (minimum 1).
	BurstSize int
}

// Burst implements Schedule.
func (s ClusteredSchedule) Burst(r *rng.Source, _, remaining int) int {
	p := 1 / (1 + s.MeanRounds)
	size := s.BurstSize
	if size < 1 {
		size = 1
	}
	total := 0
	for total < remaining && r.Float64() < p {
		total += size
	}
	if total > remaining {
		total = remaining
	}
	return total
}
