package sim

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/rng"
	"dynvote/internal/ykd"
)

func testFactory() core.Factory { return ykd.Factory(ykd.VariantYKD) }

func TestGeometricScheduleMean(t *testing.T) {
	// Empirical mean rounds between changes must track MeanRounds.
	for _, mean := range []float64{0.5, 2, 6} {
		s := GeometricSchedule{MeanRounds: mean}
		r := rng.New(42)
		changes, rounds := 0, 0
		for rounds < 200000 {
			changes += s.Burst(r, rounds, 1<<30)
			rounds++
		}
		// E[burst/round] = p/(1-p), so rounds per change = (1-p)/p =
		// MeanRounds.
		got := float64(rounds) / float64(changes)
		if got < mean*0.9-0.1 || got > mean*1.1+0.1 {
			t.Errorf("mean %v: empirical rounds-between = %.2f", mean, got)
		}
	}
}

func TestGeometricScheduleZeroFloods(t *testing.T) {
	s := GeometricSchedule{MeanRounds: 0}
	if got := s.Burst(rng.New(1), 0, 12); got != 12 {
		t.Errorf("Burst at mean 0 = %d, want whole budget 12", got)
	}
}

func TestGeometricScheduleRespectsRemaining(t *testing.T) {
	s := GeometricSchedule{MeanRounds: 0}
	if got := s.Burst(rng.New(1), 0, 3); got != 3 {
		t.Errorf("Burst = %d, want 3", got)
	}
	if got := s.Burst(rng.New(1), 0, 0); got != 0 {
		t.Errorf("Burst with empty budget = %d", got)
	}
}

func TestPeriodicSchedule(t *testing.T) {
	s := PeriodicSchedule{Every: 3}
	r := rng.New(1)
	var got []int
	for round := 0; round < 7; round++ {
		got = append(got, s.Burst(r, round, 10))
	}
	want := []int{1, 0, 0, 1, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("periodic bursts = %v, want %v", got, want)
		}
	}
	// Every < 1 clamps to every round.
	every0 := PeriodicSchedule{}
	if every0.Burst(r, 5, 10) != 1 {
		t.Error("Every=0 should fire every round")
	}
	if s.Burst(r, 0, 0) != 0 {
		t.Error("empty budget must yield 0")
	}
}

func TestClusteredSchedule(t *testing.T) {
	s := ClusteredSchedule{MeanRounds: 1, BurstSize: 4}
	r := rng.New(9)
	sawMultiple := false
	for round := 0; round < 1000; round++ {
		b := s.Burst(r, round, 100)
		if b%4 != 0 {
			t.Fatalf("burst %d not a multiple of cluster size", b)
		}
		if b >= 4 {
			sawMultiple = true
		}
	}
	if !sawMultiple {
		t.Error("clustered schedule never fired")
	}
	// Remaining caps the cluster.
	capped := ClusteredSchedule{MeanRounds: 0, BurstSize: 10}
	if got := capped.Burst(rng.New(1), 0, 7); got != 7 {
		t.Errorf("capped burst = %d, want 7", got)
	}
}

func TestDriverWithAlternativeSchedules(t *testing.T) {
	// The driver accepts any schedule and still injects the requested
	// number of changes.
	for name, s := range map[string]Schedule{
		"periodic":  PeriodicSchedule{Every: 2},
		"clustered": ClusteredSchedule{MeanRounds: 2, BurstSize: 3},
	} {
		t.Run(name, func(t *testing.T) {
			d := NewDriver(testFactory(), Config{
				Procs: 12, Changes: 9, Schedule: s, CheckSafety: true,
			}, rng.New(5))
			res, err := d.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.ChangesInjected != 9 {
				t.Errorf("injected %d, want 9", res.ChangesInjected)
			}
		})
	}
}
