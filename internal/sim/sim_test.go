package sim_test

import (
	"testing"

	"dynvote/internal/algset"
	"dynvote/internal/core"
	"dynvote/internal/majority"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

func TestClusterInitialState(t *testing.T) {
	c := sim.NewCluster(majority.Factory(), 4)
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.View(2); got.ID != 0 || got.Size() != 4 {
		t.Errorf("initial view = %v", got)
	}
	if !sim.HasPrimary(c) {
		t.Error("initial cluster must have a primary")
	}
	if err := sim.CheckOnePrimary(c); err != nil {
		t.Error(err)
	}
	if err := sim.CheckStableAgreement(c); err != nil {
		t.Error(err)
	}
	if !c.Quiescent() {
		t.Error("fresh cluster should be quiescent")
	}
}

func TestClusterRoundDeliversAll(t *testing.T) {
	c := sim.NewCluster(ykd.Factory(ykd.VariantYKD), 5)
	r := rng.New(3)
	c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 1, 2)},
		view.View{ID: 2, Members: proc.NewSet(3, 4)})
	// Round 1: state messages. 3 senders × 2 recipients + 2 × 1.
	if got := c.Round(r); got != 3*2+2*1 {
		t.Errorf("round 1 scheduled %d deliveries, want 8", got)
	}
	if c.PendingDeliveries() != 0 {
		t.Error("round must drain")
	}
	rounds, err := c.RunToQuiescence(r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Error("attempt round expected after state round")
	}
	if !c.Algorithm(0).InPrimary() {
		t.Error("majority component should form")
	}
}

func TestViewSynchronousDrop(t *testing.T) {
	// Messages sent in an old view must not reach a process that moved
	// to a new view.
	c := sim.NewCluster(ykd.Factory(ykd.VariantYKD), 3)
	r := rng.New(5)
	c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 1, 2)})
	c.Collect(r) // state messages for view 1 now in flight
	// Before delivering, split the view.
	c.IssueViews(r, view.View{ID: 2, Members: proc.NewSet(0, 1)},
		view.View{ID: 3, Members: proc.NewSet(2)})
	c.DeliverAll(r) // all view-1 messages must be dropped silently
	if _, err := c.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckStableAgreement(c); err != nil {
		t.Error(err)
	}
	// {0,1} is a majority of the initial 3 and forms.
	if !c.Algorithm(0).InPrimary() || c.Algorithm(2).InPrimary() {
		t.Error("unexpected primacy after mid-flight view change")
	}
}

func TestDriverFreshRunStableTopology(t *testing.T) {
	// Zero changes: the run stabilizes immediately with the initial
	// primary intact.
	d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs: 8, Changes: 0, MeanRounds: 1, CheckSafety: true,
	}, rng.New(7))
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.PrimaryFormed {
		t.Error("unchanged topology must keep its primary")
	}
	if res.ChangesInjected != 0 {
		t.Errorf("ChangesInjected = %d", res.ChangesInjected)
	}
}

func TestDriverInjectsRequestedChanges(t *testing.T) {
	d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs: 16, Changes: 6, MeanRounds: 2, CheckSafety: true,
	}, rng.New(11))
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ChangesInjected != 6 {
		t.Errorf("ChangesInjected = %d, want 6", res.ChangesInjected)
	}
	if len(res.AmbiguousAtChanges) != 6 {
		t.Errorf("AmbiguousAtChanges has %d samples, want 6", len(res.AmbiguousAtChanges))
	}
	if res.Rounds == 0 {
		t.Error("rounds not counted")
	}
}

func TestDriverDeterminism(t *testing.T) {
	run := func() []bool {
		d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
			Procs: 12, Changes: 4, MeanRounds: 1,
		}, rng.New(99))
		var out []bool
		for i := 0; i < 5; i++ {
			res, err := d.Run()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.PrimaryFormed)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at segment %d: %v vs %v", i, a, b)
		}
	}
}

func TestDriverMeasuresSizes(t *testing.T) {
	d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs: 16, Changes: 4, MeanRounds: 2, MeasureSizes: true,
	}, rng.New(13))
	res, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMessageBytes == 0 || res.MaxRoundBytes == 0 {
		t.Errorf("size stats missing: %+v", res)
	}
	if res.MaxMessageBytes > 2048 {
		t.Errorf("single message of %d bytes exceeds the §3.4 ballpark", res.MaxMessageBytes)
	}
}

// TestTrialByFire is a scaled-down version of the thesis's §2.2 soak:
// every algorithm endures randomized cascading connectivity changes
// with the safety checker enabled after every round.
func TestTrialByFire(t *testing.T) {
	changes := 400
	if testing.Short() {
		changes = 80
	}
	for _, f := range algset.All() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			d := sim.NewDriver(f, sim.Config{
				Procs: 16, Changes: changes, MeanRounds: 1.5, CheckSafety: true,
			}, rng.New(2026))
			res, err := d.Run()
			if err != nil {
				t.Fatalf("after %d changes: %v", res.ChangesInjected, err)
			}
			if res.ChangesInjected != changes {
				t.Errorf("injected %d changes, want %d", res.ChangesInjected, changes)
			}
		})
	}
}

// TestCascadingRunsKeepState verifies the cascading-mode contract: the
// second run continues from the first run's topology.
func TestCascadingRunsKeepState(t *testing.T) {
	d := sim.NewDriver(ykd.Factory(ykd.VariantYKD), sim.Config{
		Procs: 8, Changes: 3, MeanRounds: 1,
	}, rng.New(21))
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	comps := d.Topology().NumComponents()
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// With only partitions/merges from a retained topology, seeing the
	// exact same fresh single component every time would be suspect;
	// just verify the topology object persisted and stayed coherent.
	if err := d.Topology().CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	_ = comps
}

// TestAvailabilityOrderingSmoke runs a small sweep and checks the
// headline qualitative result on aggregate: YKD is at least as
// available as 1-pending, which blocks on pending sessions.
func TestAvailabilityOrderingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate smoke test")
	}
	count := func(f core.Factory) int {
		formed := 0
		for seed := int64(0); seed < 60; seed++ {
			d := sim.NewDriver(f, sim.Config{Procs: 16, Changes: 8, MeanRounds: 2}, rng.New(seed))
			res, err := d.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.PrimaryFormed {
				formed++
			}
		}
		return formed
	}
	ykdFormed := count(ykd.Factory(ykd.VariantYKD))
	opFormed := count(ykd.Factory(ykd.VariantOnePending))
	if ykdFormed < opFormed {
		t.Errorf("YKD formed %d primaries, 1-pending %d; expected YKD ≥ 1-pending", ykdFormed, opFormed)
	}
}

func TestCheckOnePrimaryDetectsViolation(t *testing.T) {
	// Simple-majority with a doctored "two primaries" situation cannot
	// be produced by the algorithms, so build the condition directly:
	// two singleton views each believing it is primary requires a
	// broken algorithm. Use a stub factory.
	c := sim.NewCluster(stubFactory(), 2)
	r := rng.New(1)
	c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0)},
		view.View{ID: 2, Members: proc.NewSet(1)})
	if err := sim.CheckOnePrimary(c); err == nil {
		t.Error("checker missed two concurrent primaries")
	} else if _, ok := err.(*sim.SafetyError); !ok {
		t.Errorf("error type = %T, want *sim.SafetyError", err)
	}
}

// stub is an intentionally broken algorithm that always claims to be
// in a primary component, used to prove the checker can fail.
type stub struct{ self proc.ID }

func stubFactory() core.Factory {
	return core.Factory{
		Name: "stub-always-primary",
		New:  func(self proc.ID, _ view.View) core.Algorithm { return &stub{self: self} },
	}
}

func (s *stub) Name() string                  { return "stub-always-primary" }
func (s *stub) ViewChange(view.View)          {}
func (s *stub) Deliver(proc.ID, core.Message) {}
func (s *stub) Poll() []core.Message          { return nil }
func (s *stub) InPrimary() bool               { return true }
