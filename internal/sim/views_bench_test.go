package sim_test

import (
	"testing"

	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

// BenchmarkCurrentViews measures the checker's per-round view scan on a
// partitioned 64-process cluster: four components, so the dedup must
// mix the consecutive-ID fast path (members of one component are
// contiguous) with the short linear fallback.
func BenchmarkCurrentViews(b *testing.B) {
	c := sim.NewCluster(ykd.Factory(ykd.VariantYKD), 64)
	r := rng.New(3)
	var members [4]proc.Set
	for p := 0; p < 64; p++ {
		members[p/16] = members[p/16].With(proc.ID(p))
	}
	c.IssueViews(r,
		view.View{ID: 10, Members: members[0]},
		view.View{ID: 11, Members: members[1]},
		view.View{ID: 12, Members: members[2]},
		view.View{ID: 13, Members: members[3]},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := c.CurrentViews(); len(vs) != 4 {
			b.Fatalf("got %d views, want 4", len(vs))
		}
	}
}
