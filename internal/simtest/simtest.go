// Package simtest provides a scripted-scenario harness over
// sim.Cluster for algorithm tests: issue exact view sequences, drop
// selected messages, run to quiescence, and assert on primacy and
// retained state. It is test-support code, used by the algorithm
// packages' tests and the integration tests.
package simtest

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
)

// Harness drives a cluster through scripted view sequences.
type Harness struct {
	TB      testing.TB
	Cluster *sim.Cluster
	Rng     *rng.Source
	nextID  int64
}

// New builds a harness over n processes running the given algorithm.
func New(tb testing.TB, factory core.Factory, n int) *Harness {
	tb.Helper()
	return &Harness{
		TB:      tb,
		Cluster: sim.NewCluster(factory, n),
		Rng:     rng.New(1),
		nextID:  1,
	}
}

// Split issues one view per member list, then runs to quiescence and
// checks the one-primary invariant.
func (h *Harness) Split(memberLists ...[]proc.ID) {
	h.TB.Helper()
	h.SplitNoSettle(memberLists...)
	h.Settle()
}

// SplitNoSettle issues views without running the protocol.
func (h *Harness) SplitNoSettle(memberLists ...[]proc.ID) {
	h.TB.Helper()
	views := make([]view.View, len(memberLists))
	for i, ids := range memberLists {
		views[i] = view.View{ID: h.nextID, Members: proc.NewSet(ids...)}
		h.nextID++
	}
	h.Cluster.Collect(h.Rng)
	h.Cluster.IssueViews(h.Rng, views...)
}

// Settle runs the protocol to quiescence and checks the one-primary
// invariant.
func (h *Harness) Settle() {
	h.TB.Helper()
	if _, err := h.Cluster.RunToQuiescence(h.Rng, 1000); err != nil {
		h.TB.Fatal(err)
	}
	if err := sim.CheckOnePrimary(h.Cluster); err != nil {
		h.TB.Fatal(err)
	}
}

// InPrimary reports process p's primacy.
func (h *Harness) InPrimary(p proc.ID) bool { return h.Cluster.Algorithm(p).InPrimary() }

// WantPrimary asserts process p's primacy.
func (h *Harness) WantPrimary(p proc.ID, want bool) {
	h.TB.Helper()
	if got := h.InPrimary(p); got != want {
		h.TB.Errorf("process %v: InPrimary = %v, want %v", p, got, want)
	}
}

// Ambiguous returns process p's retained ambiguous-session count.
func (h *Harness) Ambiguous(p proc.ID) int {
	return h.Cluster.Algorithm(p).(core.AmbiguousReporter).AmbiguousSessionCount()
}

// DropTo drops messages matching pred that are addressed to any of the
// given processes.
func (h *Harness) DropTo(pred func(core.Message) bool, ids ...proc.ID) {
	blocked := proc.NewSet(ids...)
	h.Cluster.Drop = func(_, to proc.ID, m core.Message) bool {
		return blocked.Contains(to) && pred(m)
	}
}

// ClearDrop removes any drop filter.
func (h *Harness) ClearDrop() { h.Cluster.Drop = nil }
