// Package stats aggregates per-run simulation results into the
// quantities the thesis reports: availability percentages (Figures 4-1
// through 4-6), ambiguous-session histograms (Figures 4-7 and 4-8) and
// message-size maxima (§3.4). It replaces the Perl tabulation scripts
// of the original study.
package stats

import (
	"fmt"
	"math"
)

// Availability counts how many runs of a case ended with a primary
// component formed.
type Availability struct {
	Formed int
	Runs   int
}

// Record adds one run's outcome.
func (a *Availability) Record(formed bool) {
	a.Runs++
	if formed {
		a.Formed++
	}
}

// Percent returns the availability percentage, the y-axis of Figures
// 4-1 through 4-6. It reports 0 for an empty cell.
func (a Availability) Percent() float64 {
	if a.Runs == 0 {
		return 0
	}
	return 100 * float64(a.Formed) / float64(a.Runs)
}

// String renders e.g. "87.3% (873/1000)".
func (a Availability) String() string {
	return fmt.Sprintf("%.1f%% (%d/%d)", a.Percent(), a.Formed, a.Runs)
}

// WilsonInterval returns the 95% Wilson score confidence interval for
// the availability percentage — the honest error bars for a
// 500-or-1000-run case, well-behaved even at 0% and 100%.
func (a Availability) WilsonInterval() (lo, hi float64) {
	if a.Runs == 0 {
		return 0, 0
	}
	const z = 1.959964 // 97.5th normal percentile
	n := float64(a.Runs)
	p := float64(a.Formed) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return 100 * lo, 100 * hi
}

// Histogram tallies ambiguous-session counts across samples. Buckets
// are exact counts; callers that want the thesis's "4+" bucket combine
// tails with PercentAtLeast.
type Histogram struct {
	counts []int
	total  int
	max    int
}

// Add records one sample with the given session count.
func (h *Histogram) Add(n int) {
	if n < 0 {
		n = 0
	}
	for len(h.counts) <= n {
		h.counts = append(h.counts, 0)
	}
	h.counts[n]++
	h.total++
	if n > h.max {
		h.max = n
	}
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	for n, c := range o.counts {
		for len(h.counts) <= n {
			h.counts = append(h.counts, 0)
		}
		h.counts[n] += c
	}
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// Max returns the largest count observed — the thesis's headline
// "never exceeded 4 (YKD) / 9 (DFLS)" statistic.
func (h *Histogram) Max() int { return h.max }

// Count returns how many samples had exactly n sessions.
func (h *Histogram) Count(n int) int {
	if n < 0 || n >= len(h.counts) {
		return 0
	}
	return h.counts[n]
}

// Percent returns the percentage of samples with exactly n sessions.
func (h *Histogram) Percent(n int) float64 {
	if h.total == 0 {
		return 0
	}
	return 100 * float64(h.Count(n)) / float64(h.total)
}

// PercentAtLeast returns the percentage of samples with ≥ n sessions —
// the bar heights of Figures 4-7 and 4-8 use PercentAtLeast(1), and
// the "4+" block is PercentAtLeast(4).
func (h *Histogram) PercentAtLeast(n int) float64 {
	if h.total == 0 {
		return 0
	}
	c := 0
	for i := n; i < len(h.counts); i++ {
		if i >= 0 {
			c += h.counts[i]
		}
	}
	return 100 * float64(c) / float64(h.total)
}

// Mean returns the average session count across samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0
	for n, c := range h.counts {
		sum += n * c
	}
	return float64(sum) / float64(h.total)
}

// MaxTracker keeps running maxima of message-size observations.
type MaxTracker struct {
	MaxMessageBytes int
	MaxRoundBytes   int
}

// Record folds one run's maxima in.
func (m *MaxTracker) Record(msgBytes, roundBytes int) {
	if msgBytes > m.MaxMessageBytes {
		m.MaxMessageBytes = msgBytes
	}
	if roundBytes > m.MaxRoundBytes {
		m.MaxRoundBytes = roundBytes
	}
}
