package stats

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAvailability(t *testing.T) {
	var a Availability
	if !approx(a.Percent(), 0) {
		t.Error("empty availability should be 0")
	}
	for i := 0; i < 7; i++ {
		a.Record(true)
	}
	for i := 0; i < 3; i++ {
		a.Record(false)
	}
	if !approx(a.Percent(), 70) {
		t.Errorf("Percent = %v, want 70", a.Percent())
	}
	if got := a.String(); got != "70.0% (7/10)" {
		t.Errorf("String = %q", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, n := range []int{0, 0, 0, 1, 1, 2, 4} {
		h.Add(n)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Max() != 4 {
		t.Errorf("Max = %d", h.Max())
	}
	if h.Count(0) != 3 || h.Count(1) != 2 || h.Count(3) != 0 || h.Count(4) != 1 {
		t.Error("Count wrong")
	}
	if h.Count(-1) != 0 || h.Count(99) != 0 {
		t.Error("out-of-range Count should be 0")
	}
	if !approx(h.Percent(1), 100*2.0/7) {
		t.Errorf("Percent(1) = %v", h.Percent(1))
	}
	if !approx(h.PercentAtLeast(1), 100*4.0/7) {
		t.Errorf("PercentAtLeast(1) = %v", h.PercentAtLeast(1))
	}
	if !approx(h.PercentAtLeast(4), 100*1.0/7) {
		t.Errorf("PercentAtLeast(4) = %v", h.PercentAtLeast(4))
	}
	if !approx(h.Mean(), (0*3+1*2+2+4)/7.0) {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percent(0) != 0 || h.PercentAtLeast(0) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Count(0) != 1 {
		t.Error("negative samples clamp to 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(0)
	a.Add(2)
	b.Add(2)
	b.Add(5)
	a.Merge(&b)
	if a.Total() != 4 || a.Count(2) != 2 || a.Count(5) != 1 || a.Max() != 5 {
		t.Errorf("merge wrong: %+v", a)
	}
}

func TestMaxTracker(t *testing.T) {
	var m MaxTracker
	m.Record(10, 100)
	m.Record(5, 200)
	m.Record(20, 50)
	if m.MaxMessageBytes != 20 || m.MaxRoundBytes != 200 {
		t.Errorf("tracker = %+v", m)
	}
}

func TestWilsonInterval(t *testing.T) {
	var empty Availability
	if lo, hi := empty.WilsonInterval(); lo != 0 || hi != 0 {
		t.Errorf("empty interval = [%v, %v]", lo, hi)
	}

	a := Availability{Formed: 500, Runs: 1000}
	lo, hi := a.WilsonInterval()
	if lo >= 50 || hi <= 50 {
		t.Errorf("interval [%v, %v] should bracket 50%%", lo, hi)
	}
	if hi-lo > 7 || hi-lo < 5 {
		t.Errorf("95%% interval width at n=1000, p=0.5 should be ≈6.2 points, got %v", hi-lo)
	}

	// Degenerate proportions stay in [0, 100].
	full := Availability{Formed: 20, Runs: 20}
	lo, hi = full.WilsonInterval()
	if hi != 100 || lo < 80 || lo > 100 {
		t.Errorf("all-success interval = [%v, %v]", lo, hi)
	}
	none := Availability{Formed: 0, Runs: 20}
	lo, hi = none.WilsonInterval()
	if lo != 0 || hi <= 0 || hi > 20 {
		t.Errorf("all-failure interval = [%v, %v]", lo, hi)
	}

	// More runs, tighter interval.
	small := Availability{Formed: 50, Runs: 100}
	big := Availability{Formed: 500, Runs: 1000}
	slo, shi := small.WilsonInterval()
	blo, bhi := big.WilsonInterval()
	if shi-slo <= bhi-blo {
		t.Error("interval should shrink with more runs")
	}
}
