// Package trace records structured simulation events for debugging
// and for the demo binaries: view installations, message deliveries
// and drops, primary formations. A Recorder is a bounded ring buffer —
// cheap enough to leave attached during long soaks, with the most
// recent history available when an invariant trips.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"dynvote/internal/proc"
	"dynvote/internal/view"
)

// Kind classifies an event.
type Kind int

const (
	// KindView: a process installed a view.
	KindView Kind = iota + 1
	// KindDeliver: a message was delivered.
	KindDeliver
	// KindDrop: a delivery was dropped (view-synchronous or filtered).
	KindDrop
	// KindChange: a connectivity change was injected.
	KindChange
	// KindNote: free-form annotation.
	KindNote
)

func (k Kind) String() string {
	switch k {
	case KindView:
		return "view"
	case KindDeliver:
		return "deliver"
	case KindDrop:
		return "drop"
	case KindChange:
		return "change"
	case KindNote:
		return "note"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Seq     uint64
	Kind    Kind
	Process proc.ID
	From    proc.ID
	View    view.View
	Detail  string
}

// String renders the event on one line.
func (e Event) String() string {
	switch e.Kind {
	case KindView:
		return fmt.Sprintf("#%d %s %v installs %v", e.Seq, e.Kind, e.Process, e.View)
	case KindDeliver, KindDrop:
		return fmt.Sprintf("#%d %s %v→%v %s", e.Seq, e.Kind, e.From, e.Process, e.Detail)
	default:
		return fmt.Sprintf("#%d %s %s", e.Seq, e.Kind, e.Detail)
	}
}

// Recorder is a bounded event log. The zero value is unusable; use
// NewRecorder. Safe for concurrent use.
type Recorder struct {
	mu   sync.Mutex
	buf  []Event
	next uint64
	cap  int
}

// NewRecorder keeps the most recent capacity events (minimum 16).
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{buf: make([]Event, 0, capacity), cap: capacity}
}

// Record appends an event, evicting the oldest beyond capacity.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.Seq = r.next
	r.next++
	if len(r.buf) == r.cap {
		copy(r.buf, r.buf[1:])
		r.buf = r.buf[:len(r.buf)-1]
	}
	r.buf = append(r.buf, e)
}

// Notef records a formatted free-form annotation.
func (r *Recorder) Notef(format string, args ...any) {
	r.Record(Event{Kind: KindNote, Detail: fmt.Sprintf(format, args...)})
}

// Events returns a copy of the retained history, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.buf))
	copy(out, r.buf)
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever recorded.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dump renders the retained history, one event per line.
func (r *Recorder) Dump() string {
	evs := r.Events()
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
