package trace_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/trace"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

func TestRecorderBasics(t *testing.T) {
	r := trace.NewRecorder(32)
	r.Notef("hello %d", 7)
	r.Record(trace.Event{Kind: trace.KindDeliver, Process: 1, From: 0, Detail: "m"})
	if r.Len() != 2 || r.Total() != 2 {
		t.Fatalf("Len=%d Total=%d", r.Len(), r.Total())
	}
	evs := r.Events()
	if evs[0].Kind != trace.KindNote || evs[0].Detail != "hello 7" {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Errorf("sequence numbers wrong: %v %v", evs[0].Seq, evs[1].Seq)
	}
	dump := r.Dump()
	if !strings.Contains(dump, "hello 7") || !strings.Contains(dump, "deliver") {
		t.Errorf("Dump = %q", dump)
	}
}

func TestRecorderEviction(t *testing.T) {
	r := trace.NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.Notef("n%d", i)
	}
	if r.Len() != 16 {
		t.Fatalf("Len = %d, want 16", r.Len())
	}
	if r.Total() != 40 {
		t.Fatalf("Total = %d, want 40", r.Total())
	}
	evs := r.Events()
	if evs[0].Detail != "n24" || evs[15].Detail != "n39" {
		t.Errorf("eviction kept wrong window: %s .. %s", evs[0].Detail, evs[15].Detail)
	}
}

// TestEvictionBoundary walks the exact capacity edge: at cap the
// buffer is full but nothing is evicted; one more record evicts
// exactly the oldest event.
func TestEvictionBoundary(t *testing.T) {
	const cap = 16
	r := trace.NewRecorder(cap)
	for i := 0; i < cap; i++ {
		r.Notef("n%d", i)
	}
	if r.Len() != cap || r.Events()[0].Detail != "n0" {
		t.Fatalf("at capacity: Len=%d first=%q, want %d/n0", r.Len(), r.Events()[0].Detail, cap)
	}

	r.Notef("n%d", cap) // one past capacity: n0 alone must go
	evs := r.Events()
	if r.Len() != cap {
		t.Fatalf("after overflow: Len=%d, want %d", r.Len(), cap)
	}
	if evs[0].Detail != "n1" || evs[cap-1].Detail != fmt.Sprintf("n%d", cap) {
		t.Errorf("window = %s .. %s, want n1 .. n%d", evs[0].Detail, evs[cap-1].Detail, cap)
	}
}

// TestSeqMonotonicAcrossEviction: Seq numbers keep counting from the
// start of the recording, not from the start of the retained window.
func TestSeqMonotonicAcrossEviction(t *testing.T) {
	r := trace.NewRecorder(16)
	for i := 0; i < 100; i++ {
		r.Notef("x")
	}
	evs := r.Events()
	for i, e := range evs {
		if want := uint64(100 - 16 + i); e.Seq != want {
			t.Fatalf("event %d: Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if last := evs[len(evs)-1].Seq; last != uint64(r.Total()-1) {
		t.Errorf("last Seq = %d, want Total-1 = %d", last, r.Total()-1)
	}
}

// TestConcurrentRecordAndEvents hammers the recorder from writer and
// reader goroutines at once; run under -race this is the concurrency
// contract's enforcement. Every snapshot must be internally consistent:
// contiguous, ascending Seq.
func TestConcurrentRecordAndEvents(t *testing.T) {
	r := trace.NewRecorder(64)
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(trace.Event{Kind: trace.KindNote, Process: proc.ID(w), Detail: "c"})
			}
		}(w)
	}
	readErr := make(chan string, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			evs := r.Events()
			for j := 1; j < len(evs); j++ {
				if evs[j].Seq != evs[j-1].Seq+1 {
					select {
					case readErr <- fmt.Sprintf("snapshot not contiguous: %d then %d",
						evs[j-1].Seq, evs[j].Seq):
					default:
					}
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	select {
	case msg := <-readErr:
		t.Fatal(msg)
	default:
	}
	if r.Total() != writers*perWriter {
		t.Errorf("Total = %d, want %d", r.Total(), writers*perWriter)
	}
}

func TestMinimumCapacity(t *testing.T) {
	r := trace.NewRecorder(1)
	for i := 0; i < 20; i++ {
		r.Notef("x")
	}
	if r.Len() != 16 {
		t.Errorf("minimum capacity not applied: %d", r.Len())
	}
}

func TestEventStrings(t *testing.T) {
	v := view.View{ID: 2, Members: proc.NewSet(0, 1)}
	cases := []struct {
		e    trace.Event
		want string
	}{
		{trace.Event{Kind: trace.KindView, Process: 1, View: v}, "installs"},
		{trace.Event{Kind: trace.KindDrop, Process: 1, From: 0, Detail: "m"}, "drop"},
		{trace.Event{Kind: trace.KindChange, Detail: "partition"}, "change"},
	}
	for _, c := range cases {
		if got := c.e.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want substring %q", got, c.want)
		}
	}
}

// TestClusterTracing exercises the sim integration: views, deliveries
// and view-synchronous drops all show up in the trace.
func TestClusterTracing(t *testing.T) {
	c := sim.NewCluster(ykd.Factory(ykd.VariantYKD), 3)
	rec := trace.NewRecorder(4096)
	c.Trace = rec
	r := rng.New(2)

	c.IssueViews(r, view.View{ID: 1, Members: proc.NewSet(0, 1, 2)})
	c.Collect(r)
	// Split before delivering: everything in flight must be dropped.
	c.IssueViews(r, view.View{ID: 2, Members: proc.NewSet(0, 1)},
		view.View{ID: 3, Members: proc.NewSet(2)})
	c.DeliverAll(r)
	if _, err := c.RunToQuiescence(r, 100); err != nil {
		t.Fatal(err)
	}

	var views, delivers, drops int
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindView:
			views++
		case trace.KindDeliver:
			delivers++
		case trace.KindDrop:
			drops++
		}
	}
	if views < 6 { // 3 installs of view 1 + 3 installs of views 2/3
		t.Errorf("views traced = %d, want ≥ 6", views)
	}
	if drops == 0 {
		t.Error("expected view-synchronous drops in the trace")
	}
	if delivers == 0 {
		t.Error("expected deliveries in the trace")
	}
}
