// Package view defines the two structures every dynamic voting
// algorithm in this repository is built on:
//
//   - View: a membership report from the group communication service —
//     "a list of all of the processes which are currently connected"
//     (thesis §2.1), plus an identifier so stale messages can be
//     discarded.
//   - Session: "nothing more than a view with a number attached to it,
//     corresponding to a session to form a primary component" (thesis
//     §3.1). Session numbers order attempts to form primaries.
package view

import (
	"fmt"

	"dynvote/internal/proc"
)

// View is a connectivity report: the set of mutually connected
// processes, tagged with a unique identifier assigned by the
// membership service (the simulator or the live gcs substrate).
//
// IDs are globally unique and monotonically increasing at each issuer;
// algorithms only ever compare them for equality, to recognise which
// view a message belongs to.
type View struct {
	// ID uniquely identifies this view.
	ID int64
	// Members is the set of currently connected processes.
	Members proc.Set
}

// Contains reports whether p is a member of the view.
func (v View) Contains(p proc.ID) bool { return v.Members.Contains(p) }

// Size returns the number of members.
func (v View) Size() int { return v.Members.Count() }

// String renders the view for logs, e.g. "V3{p0,p1}".
func (v View) String() string { return fmt.Sprintf("V%d%s", v.ID, v.Members) }

// Session is an attempt — successful or not — to form a primary
// component: a member set plus the session number the attempt was made
// under.
//
// Two sessions are the same attempt iff both the number and the member
// set match: disconnected components can hand out equal numbers to
// different attempts, so the number alone does not identify a session
// (though for any single process, the sessions it participates in have
// strictly increasing numbers).
type Session struct {
	// Number orders this session relative to other attempts.
	Number int64
	// Members is the membership of the view the attempt was made in.
	Members proc.Set
}

// NewSession builds a session for an attempt in view v under number n.
func NewSession(n int64, v View) Session {
	return Session{Number: n, Members: v.Members}
}

// Equal reports whether s and t denote the same attempt.
func (s Session) Equal(t Session) bool {
	return s.Number == t.Number && s.Members.Equal(t.Members)
}

// Contains reports whether p participated in the session's view.
func (s Session) Contains(p proc.ID) bool { return s.Members.Contains(p) }

// Key returns a comparable digest of the session, usable as a map key.
func (s Session) Key() SessionKey {
	return SessionKey{Number: s.Number, Members: s.Members.Key()}
}

// SessionKey is a comparable identity for a Session; see Session.Key.
type SessionKey struct {
	Number  int64
	Members proc.Key
}

// String renders the session for logs, e.g. "S4{p0,p1}".
func (s Session) String() string { return fmt.Sprintf("S%d%s", s.Number, s.Members) }
