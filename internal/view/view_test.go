package view

import (
	"testing"

	"dynvote/internal/proc"
)

func TestViewBasics(t *testing.T) {
	v := View{ID: 3, Members: proc.NewSet(0, 1, 4)}
	if !v.Contains(4) || v.Contains(2) {
		t.Error("Contains wrong")
	}
	if v.Size() != 3 {
		t.Errorf("Size = %d, want 3", v.Size())
	}
	if got := v.String(); got != "V3{p0,p1,p4}" {
		t.Errorf("String = %q", got)
	}
}

func TestSessionEqual(t *testing.T) {
	a := Session{Number: 2, Members: proc.NewSet(0, 1)}
	b := Session{Number: 2, Members: proc.NewSet(0, 1)}
	c := Session{Number: 2, Members: proc.NewSet(0, 2)} // same number, different members
	d := Session{Number: 3, Members: proc.NewSet(0, 1)} // same members, different number

	if !a.Equal(b) {
		t.Error("a != b")
	}
	if a.Equal(c) {
		t.Error("a == c despite different members")
	}
	if a.Equal(d) {
		t.Error("a == d despite different numbers")
	}
}

func TestSessionKey(t *testing.T) {
	a := Session{Number: 2, Members: proc.NewSet(0, 1)}
	b := Session{Number: 2, Members: proc.NewSet(0, 1)}
	c := Session{Number: 2, Members: proc.NewSet(0, 2)}
	if a.Key() != b.Key() {
		t.Error("equal sessions, different keys")
	}
	if a.Key() == c.Key() {
		t.Error("different sessions, same key")
	}
	m := map[SessionKey]bool{a.Key(): true}
	if !m[b.Key()] {
		t.Error("key not usable as map key")
	}
}

func TestNewSession(t *testing.T) {
	v := View{ID: 9, Members: proc.NewSet(3, 7)}
	s := NewSession(5, v)
	if s.Number != 5 || !s.Members.Equal(v.Members) {
		t.Errorf("NewSession = %v", s)
	}
	if !s.Contains(3) || s.Contains(4) {
		t.Error("Contains wrong")
	}
	if got := s.String(); got != "S5{p3,p7}" {
		t.Errorf("String = %q", got)
	}
}
