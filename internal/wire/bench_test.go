package wire

import (
	"testing"

	"dynvote/internal/proc"
	"dynvote/internal/view"
)

func BenchmarkEncodeSession64(b *testing.B) {
	s := view.Session{Number: 1000, Members: proc.Universe(64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var w Writer
		w.Session(s)
		_ = w.Bytes()
	}
}

func BenchmarkDecodeSession64(b *testing.B) {
	var w Writer
	w.Session(view.Session{Number: 1000, Members: proc.Universe(64)})
	buf := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		_ = r.Session()
		if r.Err() != nil {
			b.Fatal(r.Err())
		}
	}
}

func BenchmarkUvarintRoundTrip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var w Writer
		w.Uvarint(uint64(i))
		r := NewReader(w.Bytes())
		if r.Uvarint() != uint64(i) {
			b.Fatal("mismatch")
		}
	}
}
