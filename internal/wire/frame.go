package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Stream framing: a 4-byte big-endian length prefix followed by the
// body. This is the one framing layer shared by every length-prefixed
// protocol in the repository — the loadgen client protocol and the
// distributed sweep farm both speak it — so frame-boundary handling
// (length caps against corrupt streams, reuse of the caller's read
// buffer, the "is a whole frame already buffered?" flush heuristic)
// lives in exactly one place.

// FrameHeader is the length-prefix size in bytes.
const FrameHeader = 4

// WriteFrame writes one length-prefixed frame. max bounds the body
// size; oversize bodies are refused before anything hits the wire.
func WriteFrame(w io.Writer, body []byte, max uint32) error {
	if uint64(len(body)) > uint64(max) {
		return fmt.Errorf("wire: frame too large (%d bytes, cap %d)", len(body), max)
	}
	var hdr [FrameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing buf when it is
// large enough. A length prefix above max means the stream is corrupt
// (or hostile) and the connection should be dropped.
func ReadFrame(r io.Reader, buf []byte, max uint32) ([]byte, error) {
	var hdr [FrameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > max {
		return nil, fmt.Errorf("wire: frame length %d exceeds cap %d", size, max)
	}
	if uint32(cap(buf)) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// FrameBuffered reports whether a complete frame is already sitting in
// the reader's buffer — the flush boundary for pipelined servers: as
// long as whole frames are buffered, keep answering into the write
// buffer; flush only when the next read would block.
func FrameBuffered(br *bufio.Reader, max uint32) bool {
	if br.Buffered() < FrameHeader {
		return false
	}
	hdr, err := br.Peek(FrameHeader)
	if err != nil {
		return false
	}
	size := binary.BigEndian.Uint32(hdr)
	return size <= max && br.Buffered() >= FrameHeader+int(size)
}
