package wire

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 500)}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b, 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range bodies {
		got, err := ReadFrame(&buf, scratch, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) && len(want) > 0 {
			t.Errorf("frame body = %q, want %q", got, want)
		}
		scratch = got[:0]
	}
}

func TestWriteFrameRefusesOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100), 64); err == nil {
		t.Fatal("oversize body accepted")
	}
	if buf.Len() != 0 {
		t.Errorf("oversize write left %d bytes on the wire", buf.Len())
	}
}

func TestReadFrameRejectsOversizeAndTruncated(t *testing.T) {
	// Length prefix above the cap: corrupt stream.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100), 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, nil, 64); err == nil || !strings.Contains(err.Error(), "exceeds cap") {
		t.Errorf("oversize prefix error = %v", err)
	}

	// Header promising more bytes than the stream holds.
	buf.Reset()
	if err := WriteFrame(&buf, make([]byte, 100), 1<<20); err != nil {
		t.Fatal(err)
	}
	short := bytes.NewReader(buf.Bytes()[:FrameHeader+10])
	if _, err := ReadFrame(short, nil, 1<<20); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated body error = %v, want %v", err, io.ErrUnexpectedEOF)
	}

	// Stream dying mid-header.
	short = bytes.NewReader(buf.Bytes()[:2])
	if _, err := ReadFrame(short, nil, 1<<20); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated header error = %v, want %v", err, io.ErrUnexpectedEOF)
	}
}

func TestFrameBuffered(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello"), 1<<20); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	br := bufio.NewReader(bytes.NewReader(full))
	if FrameBuffered(br, 1<<20) {
		t.Error("frame reported buffered before any read primed the buffer")
	}
	if _, err := br.Peek(1); err != nil {
		t.Fatal(err)
	}
	if !FrameBuffered(br, 1<<20) {
		t.Error("complete buffered frame not detected")
	}
	if FrameBuffered(br, 2) {
		t.Error("frame above cap reported buffered")
	}

	// Only part of the frame available: not buffered.
	br = bufio.NewReader(bytes.NewReader(full[:FrameHeader+2]))
	if _, err := br.Peek(1); err != nil {
		t.Fatal(err)
	}
	if FrameBuffered(br, 1<<20) {
		t.Error("partial frame reported buffered")
	}
}
