package wire

import "testing"

// FuzzReader drives every Reader method over arbitrary input: no
// sequence of reads may panic, and the sticky error must keep
// subsequent reads harmless.
func FuzzReader(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, byte(3))
	var w Writer
	w.Uvarint(300)
	w.Varint(-5)
	f.Add(w.Bytes(), byte(2))
	f.Fuzz(func(t *testing.T, data []byte, ops byte) {
		r := NewReader(data)
		for i := 0; i < 16; i++ {
			switch (int(ops) + i) % 6 {
			case 0:
				r.Byte()
			case 1:
				r.Bool()
			case 2:
				r.Uvarint()
			case 3:
				r.Varint()
			case 4:
				r.Set()
			case 5:
				r.Session()
			}
		}
		_ = r.RawBytes()
		_ = r.Err()
		_ = r.Remaining()
	})
}
