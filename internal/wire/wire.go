// Package wire is the compact binary codec shared by every algorithm's
// message encoding.
//
// The thesis measures message sizes (§3.4: an ambiguous session is
// roughly 2n bits; total exchanged information stays under two
// kilobytes with 64 processes), so the representation matters: process
// sets are encoded as raw bitset words, so a 64-process session costs
// 1 varint (number) + 1 length byte + 8 bytes of membership — within a
// small constant of the thesis's 2n-bit figure.
//
// Writer accumulates; Reader decodes with sticky error handling so
// call sites stay linear and a single Err check suffices.
package wire

import (
	"encoding/binary"
	"errors"

	"dynvote/internal/proc"
	"dynvote/internal/view"
)

// ErrTruncated is reported when a Reader runs out of input.
var ErrTruncated = errors.New("wire: truncated message")

// ErrMalformed is reported for structurally invalid input, such as an
// unreasonable length prefix.
var ErrMalformed = errors.New("wire: malformed message")

// maxSetWords bounds decoded set sizes (64 × 64 = 4096 process IDs),
// guarding against corrupt length prefixes.
const maxSetWords = 64

// Writer builds an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(u uint64) {
	w.buf = binary.AppendUvarint(w.buf, u)
}

// Varint appends a signed varint (zig-zag).
func (w *Writer) Varint(i int64) {
	w.buf = binary.AppendVarint(w.buf, i)
}

// Set appends a process set as a word count followed by raw 64-bit
// words.
func (w *Writer) Set(s proc.Set) {
	words := s.Words()
	w.Uvarint(uint64(len(words)))
	for _, word := range words {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, word)
	}
}

// Session appends a session as its number followed by its member set.
func (w *Writer) Session(s view.Session) {
	w.Varint(s.Number)
	w.Set(s.Members)
}

// RawBytes appends a length-prefixed byte string.
func (w *Writer) RawBytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Bytes returns the encoded message. The returned slice aliases the
// writer's buffer; the writer must not be reused after Bytes except
// through Reset, which invalidates the returned slice.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer for reuse, keeping its capacity. Any
// slice previously returned by Bytes is invalidated: the next writes
// overwrite it in place.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reader decodes a message produced by Writer. Errors are sticky: once
// a decode fails, all further reads return zero values and Err reports
// the first failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads one boolean byte.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Set reads a process set.
func (r *Reader) Set() proc.Set {
	n := r.Uvarint()
	if r.err != nil {
		return proc.Set{}
	}
	if n > maxSetWords {
		r.fail(ErrMalformed)
		return proc.Set{}
	}
	words := make([]uint64, n)
	for i := range words {
		if r.off+8 > len(r.buf) {
			r.fail(ErrTruncated)
			return proc.Set{}
		}
		words[i] = binary.LittleEndian.Uint64(r.buf[r.off:])
		r.off += 8
	}
	return proc.SetFromWords(words)
}

// Session reads a session.
func (r *Reader) Session() view.Session {
	n := r.Varint()
	return view.Session{Number: n, Members: r.Set()}
}

// RawBytes reads a length-prefixed byte string, copying it out of the
// reader's buffer.
func (r *Reader) RawBytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrTruncated)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += int(n)
	return out
}

// RawBytesRef reads a length-prefixed byte string without copying: the
// result aliases the reader's buffer and is valid only while that
// buffer is. The zero-allocation twin of RawBytes for hot decode
// paths that consume the bytes before the buffer is reused.
func (r *Reader) RawBytesRef() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrTruncated)
		return nil
	}
	out := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return out
}

// RawString reads a length-prefixed byte string as a string in one
// copy (RawBytes followed by a string conversion costs two).
func (r *Reader) RawString() string {
	return string(r.RawBytesRef())
}
