package wire

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dynvote/internal/proc"
	"dynvote/internal/view"
)

func TestScalarRoundTrip(t *testing.T) {
	var w Writer
	w.Byte(7)
	w.Bool(true)
	w.Bool(false)
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Varint(-12345)
	w.Varint(98765)
	w.RawBytes([]byte("hello"))

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Errorf("Byte = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.Varint(); got != 98765 {
		t.Errorf("Varint = %d", got)
	}
	if got := string(r.RawBytes()); got != "hello" {
		t.Errorf("RawBytes = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Errorf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestSetRoundTrip(t *testing.T) {
	sets := []proc.Set{
		{},
		proc.NewSet(0),
		proc.NewSet(63),
		proc.NewSet(64),
		proc.NewSet(0, 5, 63, 64, 127, 128),
		proc.Universe(64),
	}
	for _, s := range sets {
		var w Writer
		w.Set(s)
		got := NewReader(w.Bytes()).Set()
		if !got.Equal(s) {
			t.Errorf("Set round trip: got %v, want %v", got, s)
		}
	}
}

func TestSessionRoundTrip(t *testing.T) {
	s := view.Session{Number: 42, Members: proc.NewSet(1, 2, 60)}
	var w Writer
	w.Session(s)
	got := NewReader(w.Bytes()).Session()
	if !got.Equal(s) {
		t.Errorf("Session round trip: got %v, want %v", got, s)
	}
}

func TestSessionSizeMatchesThesisClaim(t *testing.T) {
	// Thesis §3.4: an ambiguous session is roughly 2n bits. For n=64
	// that is 16 bytes; our encoding must be in that ballpark.
	s := view.Session{Number: 1000, Members: proc.Universe(64)}
	var w Writer
	w.Session(s)
	if got := w.Len(); got > 16 {
		t.Errorf("64-process session costs %d bytes, want ≤ 16", got)
	}
}

func TestTruncated(t *testing.T) {
	var w Writer
	w.Uvarint(300)
	w.Set(proc.Universe(64))
	full := w.Bytes()

	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uvarint()
		r.Set()
		if cut < len(full) && r.Err() == nil {
			// A prefix that still decodes fully is only OK if it is
			// the whole message.
			t.Errorf("cut=%d decoded without error", cut)
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	_ = r.Byte()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", r.Err())
	}
	// Further reads return zero values without panicking.
	if r.Uvarint() != 0 || !r.Set().Empty() || r.RawBytes() != nil {
		t.Error("reads after error returned non-zero values")
	}
}

func TestMalformedSetLength(t *testing.T) {
	var w Writer
	w.Uvarint(1 << 20) // absurd word count
	r := NewReader(w.Bytes())
	_ = r.Set()
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Errorf("Err = %v, want ErrMalformed", r.Err())
	}
}

func TestRawBytesTruncated(t *testing.T) {
	var w Writer
	w.Uvarint(100) // claims 100 bytes, provides none
	r := NewReader(w.Bytes())
	_ = r.RawBytes()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("Err = %v, want ErrTruncated", r.Err())
	}
}

// Property: any sequence of writes decodes to the same values.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		type op struct {
			kind int
			i    int64
			u    uint64
			s    proc.Set
		}
		ops := make([]op, n)
		var w Writer
		for i := range ops {
			o := op{kind: r.Intn(3)}
			switch o.kind {
			case 0:
				o.u = uint64(r.Int63())
				w.Uvarint(o.u)
			case 1:
				o.i = r.Int63() - (1 << 62)
				w.Varint(o.i)
			case 2:
				var s proc.Set
				for j := 0; j < 70; j++ {
					if r.Intn(3) == 0 {
						s = s.With(proc.ID(j))
					}
				}
				o.s = s
				w.Set(s)
			}
			ops[i] = o
		}
		rd := NewReader(w.Bytes())
		for _, o := range ops {
			switch o.kind {
			case 0:
				if rd.Uvarint() != o.u {
					return false
				}
			case 1:
				if rd.Varint() != o.i {
					return false
				}
			case 2:
				if !rd.Set().Equal(o.s) {
					return false
				}
			}
		}
		return rd.Err() == nil && rd.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
