package ykd

import (
	"testing"

	"dynvote/internal/proc"
	"dynvote/internal/view"
)

// benchExchange drives one full two-round exchange over n processes
// directly (no simulator), isolating the algorithm's own cost.
func benchExchange(b *testing.B, n int) {
	initial := view.View{ID: 0, Members: proc.Universe(n)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		algs := make([]*Algorithm, n)
		for p := range algs {
			algs[p] = New(VariantYKD, proc.ID(p), initial)
		}
		v := view.View{ID: 1, Members: proc.Universe(n)}
		for _, a := range algs {
			a.ViewChange(v)
		}
		// Round 1: state messages.
		for p, a := range algs {
			for _, m := range a.Poll() {
				for q, other := range algs {
					if q != p {
						other.Deliver(proc.ID(p), m)
					}
				}
			}
		}
		// Round 2: attempts.
		for p, a := range algs {
			for _, m := range a.Poll() {
				for q, other := range algs {
					if q != p {
						other.Deliver(proc.ID(p), m)
					}
				}
			}
		}
		if !algs[0].InPrimary() {
			b.Fatal("exchange did not form")
		}
	}
}

func BenchmarkExchange8(b *testing.B)  { benchExchange(b, 8) }
func BenchmarkExchange64(b *testing.B) { benchExchange(b, 64) }

func BenchmarkStateMessageEncode(b *testing.B) {
	a := New(VariantYKD, 0, view.View{ID: 0, Members: proc.Universe(64)})
	a.ViewChange(view.View{ID: 1, Members: proc.Universe(64)})
	msgs := a.Poll()
	if len(msgs) == 0 {
		b.Fatal("no state message")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Codec{}).Encode(msgs[0]); err != nil {
			b.Fatal(err)
		}
	}
}
