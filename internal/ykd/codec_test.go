package ykd

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
)

func roundTrip(t *testing.T, m core.Message) core.Message {
	t.Helper()
	b, err := Codec{}.Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Codec{}.Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestStateMessageRoundTrip(t *testing.T) {
	s1 := view.Session{Number: 3, Members: proc.NewSet(0, 1, 2)}
	s2 := view.Session{Number: 5, Members: proc.NewSet(0, 1)}
	m := &StateMessage{
		ViewID:        7,
		SessionNumber: 5,
		LastPrimary:   s2,
		Formed: []FormedEntry{
			{Session: s2, Who: proc.NewSet(0, 1)},
			{Session: s1, Who: proc.NewSet(2)},
		},
		Ambiguous: []view.Session{s1},
	}
	got, ok := roundTrip(t, m).(*StateMessage)
	if !ok {
		t.Fatal("wrong type")
	}
	if got.ViewID != 7 || got.SessionNumber != 5 || !got.LastPrimary.Equal(s2) {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Formed) != 2 || !got.Formed[1].Session.Equal(s1) || !got.Formed[1].Who.Equal(proc.NewSet(2)) {
		t.Errorf("formed mismatch: %+v", got.Formed)
	}
	if len(got.Ambiguous) != 1 || !got.Ambiguous[0].Equal(s1) {
		t.Errorf("ambiguous mismatch: %+v", got.Ambiguous)
	}
}

func TestStateMessageEmptyLists(t *testing.T) {
	m := &StateMessage{ViewID: 1, LastPrimary: view.Session{Members: proc.NewSet(0)}}
	got := roundTrip(t, m).(*StateMessage)
	if len(got.Formed) != 0 || len(got.Ambiguous) != 0 {
		t.Errorf("lists should round-trip empty: %+v", got)
	}
}

func TestAttemptFlushRoundTrip(t *testing.T) {
	s := view.Session{Number: 9, Members: proc.NewSet(3, 4)}
	a := roundTrip(t, &AttemptMessage{ViewID: 2, Session: s}).(*AttemptMessage)
	if a.ViewID != 2 || !a.Session.Equal(s) {
		t.Errorf("attempt mismatch: %+v", a)
	}
	f := roundTrip(t, &FlushMessage{ViewID: 3, Session: s}).(*FlushMessage)
	if f.ViewID != 3 || !f.Session.Equal(s) {
		t.Errorf("flush mismatch: %+v", f)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},                // unknown tag
		{tagState},          // truncated
		{tagAttempt, 1},     // truncated session
		{tagState, 0, 0, 0}, // truncated body
	}
	for i, b := range cases {
		if _, err := (Codec{}).Decode(b); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b, err := Codec{}.Encode(&AttemptMessage{ViewID: 1, Session: view.Session{Members: proc.NewSet(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Codec{}).Decode(append(b, 0xFF)); err == nil {
		t.Error("Decode accepted trailing bytes")
	}
}

func TestDecodeRejectsAbsurdLengths(t *testing.T) {
	// A state message claiming 2^30 formed entries must be rejected
	// before allocation.
	b, err := Codec{}.Encode(&StateMessage{ViewID: 1, LastPrimary: view.Session{Members: proc.NewSet(0)}})
	if err != nil {
		t.Fatal(err)
	}
	// The encoding ends with [formedLen=0][ambiguousLen=0]; patch the
	// formed length to a huge varint by rebuilding manually is
	// fragile, so simply check the guard with a crafted prefix:
	// tag + viewID(1) + sessionNumber(0) + session(num 0, empty set)
	// + formed count huge.
	crafted := []byte{tagState, 2, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := (Codec{}).Decode(crafted); err == nil {
		t.Error("Decode accepted absurd list length")
	}
	_ = b
}

func TestStateMessageSizeWithinThesisBound(t *testing.T) {
	// §3.4: total state exchanged by a 64-process system stays within
	// ~2KB; a single state message with a realistic number of sessions
	// must therefore stay small.
	u := proc.Universe(64)
	m := &StateMessage{
		ViewID:        100,
		SessionNumber: 40,
		LastPrimary:   view.Session{Number: 40, Members: u},
		Formed: []FormedEntry{
			{Session: view.Session{Number: 40, Members: u}, Who: u},
		},
		Ambiguous: []view.Session{
			{Number: 41, Members: proc.NewSet(0, 1, 2)},
			{Number: 42, Members: proc.NewSet(0, 1)},
		},
	}
	b, err := Codec{}.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > 128 {
		t.Errorf("state message is %d bytes; want well under 128", len(b))
	}
}

func TestFormedFor(t *testing.T) {
	s1 := view.Session{Number: 3, Members: proc.NewSet(0, 1, 2)}
	m := &StateMessage{Formed: []FormedEntry{{Session: s1, Who: proc.NewSet(0, 2)}}}
	if f, ok := m.FormedFor(2); !ok || !f.Equal(s1) {
		t.Errorf("FormedFor(2) = %v, %v", f, ok)
	}
	if _, ok := m.FormedFor(1); ok {
		t.Error("FormedFor(1) should be unknown")
	}
}

func TestMessageKinds(t *testing.T) {
	kinds := map[string]core.Message{
		"ykd/state":   &StateMessage{},
		"ykd/attempt": &AttemptMessage{},
		"ykd/flush":   &FlushMessage{},
	}
	for want, m := range kinds {
		if got := m.Kind(); got != want {
			t.Errorf("Kind = %q, want %q", got, want)
		}
	}
}
