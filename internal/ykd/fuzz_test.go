package ykd

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
)

// FuzzDecode hardens the codec against hostile input: Decode must
// never panic, and anything it accepts must re-encode and re-decode to
// an equivalent message.
func FuzzDecode(f *testing.F) {
	// Seed with real encodings of each message type.
	s := view.Session{Number: 7, Members: proc.NewSet(0, 3, 63)}
	seeds := []core.Message{
		&StateMessage{ViewID: 1, SessionNumber: 2, LastPrimary: s,
			Formed:    []FormedEntry{{Session: s, Who: proc.NewSet(0, 3)}},
			Ambiguous: []view.Session{s}},
		&AttemptMessage{ViewID: 3, Session: s},
		&FlushMessage{ViewID: 4, Session: s},
	}
	for _, seed := range seeds {
		if b, err := (Codec{}).Encode(seed); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{tagState, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Codec{}.Decode(data)
		if err != nil {
			return
		}
		re, err := Codec{}.Encode(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		m2, err := Codec{}.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if m.Kind() != m2.Kind() {
			t.Fatalf("round trip changed kind: %q vs %q", m.Kind(), m2.Kind())
		}
	})
}

// FuzzRestore hardens the snapshot path similarly.
func FuzzRestore(f *testing.F) {
	a := New(VariantYKD, 0, view.View{ID: 0, Members: proc.Universe(8)})
	if snap, err := a.Snapshot(); err == nil {
		f.Add(snap)
	}
	f.Add([]byte{snapshotVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := New(VariantYKD, 0, view.View{ID: 0, Members: proc.Universe(8)})
		if err := b.Restore(data); err != nil {
			return
		}
		// Accepted snapshots must round-trip.
		again, err := b.Snapshot()
		if err != nil {
			t.Fatalf("restored state does not snapshot: %v", err)
		}
		c := New(VariantYKD, 0, view.View{ID: 0, Members: proc.Universe(8)})
		if err := c.Restore(again); err != nil {
			t.Fatalf("snapshot of restored state does not restore: %v", err)
		}
	})
}
