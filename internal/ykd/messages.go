package ykd

import (
	"fmt"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
	"dynvote/internal/wire"
)

// StateMessage is the round-one broadcast: the sender's full durable
// state, from which every member deterministically computes the same
// decision (thesis §3.1: "each process receives the information of all
// of the other processes").
type StateMessage struct {
	// ViewID tags the view the state was sent in.
	ViewID int64
	// SessionNumber is the sender's session counter.
	SessionNumber int64
	// LastPrimary is the last primary the sender formed or accepted.
	LastPrimary view.Session
	// Formed is the sender's lastFormed table grouped by session:
	// entry (S, Who) means lastFormed(q) = S for every q in Who.
	Formed []FormedEntry
	// Ambiguous lists the sender's pending ambiguous sessions.
	Ambiguous []view.Session
}

// FormedEntry groups a run of the lastFormed table that shares one
// session, keeping the common case (everyone maps to one or two
// sessions) compact on the wire.
type FormedEntry struct {
	Session view.Session
	Who     proc.Set
}

// FormedFor returns the sender's lastFormed(q): the last primary the
// sender formed that included q. The second result is false if q is
// unknown to the sender.
func (m *StateMessage) FormedFor(q proc.ID) (view.Session, bool) {
	for _, fe := range m.Formed {
		if fe.Who.Contains(q) {
			return fe.Session, true
		}
	}
	return view.Session{}, false
}

// Kind implements core.Message.
func (m *StateMessage) Kind() string { return "ykd/state" }

// AttemptMessage is the round-two broadcast: the sender agrees to form
// Session as the new primary component. A process that collects
// attempts from every view member has formed it.
type AttemptMessage struct {
	ViewID  int64
	Session view.Session
}

// Kind implements core.Message.
func (m *AttemptMessage) Kind() string { return "ykd/attempt" }

// FlushMessage is DFLS's third round: sent in a newly formed primary;
// once received from every member, retained ambiguous sessions are
// deleted (thesis §3.2.2).
type FlushMessage struct {
	ViewID  int64
	Session view.Session
}

// Kind implements core.Message.
func (m *FlushMessage) Kind() string { return "ykd/flush" }

const (
	tagState byte = iota + 1
	tagAttempt
	tagFlush
)

// maxListLen bounds decoded list lengths, guarding against corrupt
// length prefixes (4096 processes is far beyond any configuration).
const maxListLen = 4096

// Codec encodes and decodes YKD-family messages. It is stateless.
type Codec struct{}

var _ core.Codec = Codec{}

// Encode implements core.Codec.
func (Codec) Encode(m core.Message) ([]byte, error) {
	var w wire.Writer
	switch msg := m.(type) {
	case *StateMessage:
		w.Byte(tagState)
		w.Varint(msg.ViewID)
		w.Varint(msg.SessionNumber)
		w.Session(msg.LastPrimary)
		w.Uvarint(uint64(len(msg.Formed)))
		for _, fe := range msg.Formed {
			w.Session(fe.Session)
			w.Set(fe.Who)
		}
		w.Uvarint(uint64(len(msg.Ambiguous)))
		for _, s := range msg.Ambiguous {
			w.Session(s)
		}
	case *AttemptMessage:
		w.Byte(tagAttempt)
		w.Varint(msg.ViewID)
		w.Session(msg.Session)
	case *FlushMessage:
		w.Byte(tagFlush)
		w.Varint(msg.ViewID)
		w.Session(msg.Session)
	default:
		return nil, fmt.Errorf("ykd: cannot encode %T", m)
	}
	return w.Bytes(), nil
}

// Decode implements core.Codec.
func (Codec) Decode(b []byte) (core.Message, error) {
	r := wire.NewReader(b)
	tag := r.Byte()
	var m core.Message
	switch tag {
	case tagState:
		msg := &StateMessage{
			ViewID:        r.Varint(),
			SessionNumber: r.Varint(),
			LastPrimary:   r.Session(),
		}
		nf := r.Uvarint()
		if nf > maxListLen {
			return nil, fmt.Errorf("ykd: decode: formed list length %d too large", nf)
		}
		if r.Err() == nil && nf > 0 {
			msg.Formed = make([]FormedEntry, 0, nf)
			for i := uint64(0); i < nf && r.Err() == nil; i++ {
				msg.Formed = append(msg.Formed, FormedEntry{Session: r.Session(), Who: r.Set()})
			}
		}
		na := r.Uvarint()
		if na > maxListLen {
			return nil, fmt.Errorf("ykd: decode: ambiguous list length %d too large", na)
		}
		if r.Err() == nil && na > 0 {
			msg.Ambiguous = make([]view.Session, 0, na)
			for i := uint64(0); i < na && r.Err() == nil; i++ {
				msg.Ambiguous = append(msg.Ambiguous, r.Session())
			}
		}
		m = msg
	case tagAttempt:
		m = &AttemptMessage{ViewID: r.Varint(), Session: r.Session()}
	case tagFlush:
		m = &FlushMessage{ViewID: r.Varint(), Session: r.Session()}
	default:
		return nil, fmt.Errorf("ykd: unknown message tag %d", tag)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ykd: decode: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("ykd: decode: %d trailing bytes", r.Remaining())
	}
	return m, nil
}
