package ykd_test

import (
	"testing"
	"testing/quick"

	"dynvote/internal/core"
	"dynvote/internal/mr1p"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/ykd"
)

// Property: under arbitrary random change schedules, every algorithm
// preserves the one-primary invariant and reaches stable agreement —
// the thesis's trial-by-fire conditions, driven by testing/quick.
func TestSafetyUnderRandomScheduleProperty(t *testing.T) {
	factories := []core.Factory{
		ykd.Factory(ykd.VariantYKD),
		ykd.Factory(ykd.VariantUnoptimized),
		ykd.Factory(ykd.VariantDFLS),
		ykd.Factory(ykd.VariantOnePending),
		mr1p.Factory(),
	}
	for _, f := range factories {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			prop := func(seed int64, changes uint8, rateTenths uint8) bool {
				d := sim.NewDriver(f, sim.Config{
					Procs:       10,
					Changes:     int(changes%24) + 1,
					MeanRounds:  float64(rateTenths%50) / 10,
					CheckSafety: true, // one-primary after every round + stable agreement
				}, rng.New(seed))
				_, err := d.Run()
				return err == nil
			}
			cfg := &quick.Config{MaxCount: 40}
			if testing.Short() {
				cfg.MaxCount = 10
			}
			if err := quick.Check(prop, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: the ambiguous-session count at a YKD process never exceeds
// the linear worst case, and unoptimized YKD always retains at least
// as many sessions as YKD on the same schedule.
func TestRetentionOrderingProperty(t *testing.T) {
	prop := func(seed int64, changes uint8) bool {
		run := func(f core.Factory) ([]int, bool) {
			d := sim.NewDriver(f, sim.Config{
				Procs:      10,
				Changes:    int(changes%20) + 2,
				MeanRounds: 2,
			}, rng.New(seed))
			res, err := d.Run()
			if err != nil {
				return nil, false
			}
			return append(res.AmbiguousAtChanges, res.AmbiguousAtEnd), true
		}
		ykdCounts, ok1 := run(ykd.Factory(ykd.VariantYKD))
		unoptCounts, ok2 := run(ykd.Factory(ykd.VariantUnoptimized))
		if !ok1 || !ok2 || len(ykdCounts) != len(unoptCounts) {
			return false
		}
		for i := range ykdCounts {
			if ykdCounts[i] > 10 { // linear bound, n = 10
				return false
			}
			if ykdCounts[i] > unoptCounts[i] {
				return false // pruning may only reduce retention
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds give identical outcomes for every variant
// (the determinism the thesis's same-random-sequence methodology
// relies on).
func TestRunDeterminismProperty(t *testing.T) {
	prop := func(seed int64) bool {
		for _, f := range []core.Factory{ykd.Factory(ykd.VariantYKD), mr1p.Factory()} {
			one := func() (bool, int) {
				d := sim.NewDriver(f, sim.Config{Procs: 8, Changes: 6, MeanRounds: 1}, rng.New(seed))
				res, err := d.Run()
				if err != nil {
					return false, -1
				}
				return res.PrimaryFormed, res.Rounds
			}
			f1, r1 := one()
			f2, r2 := one()
			if f1 != f2 || r1 != r2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
