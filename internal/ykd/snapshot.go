package ykd

import (
	"fmt"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
	"dynvote/internal/wire"
)

// snapshotVersion guards the durable-state encoding.
const snapshotVersion byte = 1

var _ core.Snapshotter = (*Algorithm)(nil)

// Snapshot implements core.Snapshotter: it encodes the durable state
// of §3.1 — the initial view, last primary, lastFormed table,
// ambiguous sessions and session number. Per-view protocol state is
// deliberately not persisted: a crash aborts any exchange in progress,
// exactly like a view change.
func (a *Algorithm) Snapshot() ([]byte, error) {
	var w wire.Writer
	w.Byte(snapshotVersion)
	w.Byte(byte(a.variant))
	w.Varint(int64(a.self))
	w.Session(a.initial)
	w.Session(a.lastPrimary)
	w.Varint(a.sessionNumber)

	// lastFormed, grouped by session like the wire state message.
	st := a.snapshotState(0)
	w.Uvarint(uint64(len(st.Formed)))
	for _, fe := range st.Formed {
		w.Session(fe.Session)
		w.Set(fe.Who)
	}
	w.Uvarint(uint64(len(a.ambiguous)))
	for _, s := range a.ambiguous {
		w.Session(s)
	}
	return w.Bytes(), nil
}

// Restore implements core.Snapshotter. The receiver must have been
// created with New for the same variant, process and initial view; the
// snapshot's identity fields are verified against it.
func (a *Algorithm) Restore(data []byte) error {
	r := wire.NewReader(data)
	if v := r.Byte(); v != snapshotVersion {
		return fmt.Errorf("ykd: snapshot version %d not supported", v)
	}
	if got := Variant(r.Byte()); got != a.variant {
		return fmt.Errorf("ykd: snapshot is for variant %v, this instance runs %v", got, a.variant)
	}
	if got := proc.ID(r.Varint()); got != a.self {
		return fmt.Errorf("ykd: snapshot belongs to %v, this instance is %v", got, a.self)
	}
	initial := r.Session()
	if !initial.Equal(a.initial) {
		return fmt.Errorf("ykd: snapshot initial view %v does not match %v", initial, a.initial)
	}

	lastPrimary := r.Session()
	sessionNumber := r.Varint()

	nf := r.Uvarint()
	if nf > maxListLen {
		return fmt.Errorf("ykd: snapshot formed-group count %d too large", nf)
	}
	// Rebuild the interned table: one dictionary entry per wire group,
	// index rows pointing at it. Entry 0 stays the zero Session for
	// processes no group mentions.
	formedIdx := make([]int32, len(a.formedIdx))
	formedDict := make([]view.Session, 1, 1+int(nf))
	for i := uint64(0); i < nf && r.Err() == nil; i++ {
		s := r.Session()
		who := r.Set()
		idx := int32(len(formedDict))
		formedDict = append(formedDict, s)
		who.ForEach(func(q proc.ID) {
			if int(q) < len(formedIdx) {
				formedIdx[q] = idx
			}
		})
	}
	na := r.Uvarint()
	if na > maxListLen {
		return fmt.Errorf("ykd: snapshot ambiguous count %d too large", na)
	}
	ambiguous := make([]view.Session, 0, na)
	for i := uint64(0); i < na && r.Err() == nil; i++ {
		ambiguous = append(ambiguous, r.Session())
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("ykd: restore: %w", err)
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("ykd: restore: %d trailing bytes", r.Remaining())
	}

	a.lastPrimary = lastPrimary
	a.sessionNumber = sessionNumber
	a.formedIdx = formedIdx
	a.formedDict = formedDict
	a.ambiguous = ambiguous
	// A recovered process is alone until the membership service says
	// otherwise, and certainly not in a primary.
	a.inPrimary = false
	a.phase = phaseIdle
	a.out = nil
	return nil
}
