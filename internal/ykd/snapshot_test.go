package ykd_test

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

func initial(n int) view.View { return view.View{ID: 0, Members: proc.Universe(n)} }

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	a := ykd.New(ykd.VariantYKD, 2, initial(5))
	// Give it durable state beyond the defaults.
	a.ViewChange(view.View{ID: 1, Members: proc.NewSet(0, 1, 2)})
	a.Poll()
	data, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	b := ykd.New(ykd.VariantYKD, 2, initial(5))
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	if b.InPrimary() {
		t.Error("restored instance must not be in primary")
	}
	if !b.LastPrimary().Equal(a.LastPrimary()) {
		t.Errorf("lastPrimary = %v, want %v", b.LastPrimary(), a.LastPrimary())
	}
	if b.AmbiguousSessionCount() != a.AmbiguousSessionCount() {
		t.Errorf("ambiguous = %d, want %d", b.AmbiguousSessionCount(), a.AmbiguousSessionCount())
	}
}

func TestRestoreRejectsMismatches(t *testing.T) {
	a := ykd.New(ykd.VariantYKD, 2, initial(5))
	data, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	wrongVariant := ykd.New(ykd.VariantDFLS, 2, initial(5))
	if err := wrongVariant.Restore(data); err == nil {
		t.Error("restore across variants accepted")
	}
	wrongSelf := ykd.New(ykd.VariantYKD, 3, initial(5))
	if err := wrongSelf.Restore(data); err == nil {
		t.Error("restore of another process's snapshot accepted")
	}
	wrongWorld := ykd.New(ykd.VariantYKD, 2, initial(7))
	if err := wrongWorld.Restore(data); err == nil {
		t.Error("restore with different initial view accepted")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	a := ykd.New(ykd.VariantYKD, 0, initial(3))
	good, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{},
		{99},                                    // bad version
		good[:len(good)/2],                      // truncated
		append(append([]byte{}, good...), 0xAB), // trailing bytes
	}
	for i, data := range cases {
		b := ykd.New(ykd.VariantYKD, 0, initial(3))
		if err := b.Restore(data); err == nil {
			t.Errorf("case %d: garbage snapshot accepted", i)
		}
	}
}

// All four variants implement the persistence contract.
func TestAllVariantsSnapshot(t *testing.T) {
	for _, v := range allVariants {
		a := ykd.New(v, 1, initial(4))
		var s core.Snapshotter = a
		data, err := s.Snapshot()
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		b := ykd.New(v, 1, initial(4))
		if err := b.Restore(data); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
	}
}
