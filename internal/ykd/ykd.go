// Package ykd implements the dynamic voting algorithm of Yeger Lotem,
// Keidar and Dolev (thesis §3.1) together with three of its variants
// (§3.2): unoptimized YKD, DFLS, and 1-pending. All four share one
// state machine, differing only in how ambiguous sessions are pruned
// and how they constrain the decision to attempt a new primary.
//
// # Protocol
//
// Whenever a connectivity change delivers a new view V, members run
// two message rounds. Round one exchanges full state — session number,
// last primary, lastFormed table and ambiguous sessions — so that
// every member decides from identical information, deterministically.
// If the members DECIDE the view can become a primary, round two sends
// attempt messages; a process that receives attempts from everyone in
// V has formed the primary. An attempt interrupted by another view
// change leaves behind an ambiguous session: a primary that might or
// might not have been formed by some members.
//
// # Resolution rules
//
// Figure 3-3's LEARN / RESOLVE procedures reduce to three deterministic
// rules over the states exchanged in the current view (the reduction
// is worth recording, because it is what makes the unoptimized variant
// exactly as available as YKD, as the thesis observes):
//
//   - ACCEPT: a session S containing this process that some process
//     reports as formed (its lastPrimary or a lastFormed entry), with
//     S.Number above our lastPrimary's, becomes our lastPrimary, and
//     lastFormed(q) is raised to S for every q in S.
//   - DELETE-superseded: an ambiguous session older than the (possibly
//     just accepted) lastPrimary is redundant — a newer formed primary
//     already holds a subquorum of it.
//   - DELETE-unformed (LEARN): an ambiguous session A whose members
//     are all present in V, each reporting a lastFormed entry that
//     proves it never completed A, was formed by nobody and is
//     discarded. Note the deleted constraint was trivially satisfiable
//     anyway (A.Members ⊆ V makes V a subquorum of A), which is why
//     the optimization affects storage and message size but never
//     availability.
//
// # Variants
//
//   - YKD: both DELETE rules; ambiguous sessions cleared on formation.
//   - Unoptimized YKD: no DELETE rules; ambiguous sessions cleared
//     only when this process forms a primary. Same availability,
//     more retained sessions (§3.2.1).
//   - DFLS: like unoptimized, but formation does not clear ambiguous
//     sessions — a third, flush round in the newly formed primary
//     does. Retained sessions constrain DECIDE without the maxPrimary
//     filter, which is what costs DFLS ≈3% availability (§3.2.2).
//   - 1-pending: like YKD, but DECIDEs to attempt only when no
//     unresolved ambiguous session exists anywhere in the view — it
//     blocks rather than pipeline attempts. In the worst case an
//     unformed session resolves only when all its members reconnect
//     (§3.2.3).
package ykd

import (
	"fmt"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/quorum"
	"dynvote/internal/view"
)

// Variant selects which of the four YKD-family algorithms an instance
// runs.
type Variant int

const (
	// VariantYKD is the optimized algorithm of thesis §3.1.
	VariantYKD Variant = iota + 1
	// VariantUnoptimized is YKD without ambiguous-session pruning.
	VariantUnoptimized
	// VariantDFLS adds an extra deletion round (De Prisco et al.).
	VariantDFLS
	// VariantOnePending blocks while any ambiguous session is pending.
	VariantOnePending
)

// String returns the algorithm name used in experiment output.
func (v Variant) String() string {
	switch v {
	case VariantYKD:
		return "ykd"
	case VariantUnoptimized:
		return "ykd-unopt"
	case VariantDFLS:
		return "dfls"
	case VariantOnePending:
		return "1-pending"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// prunes reports whether the variant applies the DELETE rules.
func (v Variant) prunes() bool { return v == VariantYKD || v == VariantOnePending }

type phase int

const (
	phaseIdle phase = iota + 1
	phaseExchange
	phaseAttempt
	phaseFlush
)

// Algorithm is one process's instance of a YKD-family algorithm.
// It implements core.Algorithm; it is not safe for concurrent use.
type Algorithm struct {
	variant Variant
	self    proc.ID
	initial view.Session // the thesis's W, session number 0

	// Durable state (thesis §3.1). The lastFormed table is stored
	// interned: lastFormed(q) == formedDict[formedIdx[q]], with
	// formedDict[0] pinned to the zero Session so a zeroed index row
	// reads as "no entry". The table holds only a handful of distinct
	// sessions at any moment (every entry starts at the initial session
	// and is only ever replaced by a newer formed primary), so storing
	// 4-byte indices instead of Session values keeps the per-instance
	// footprint — and the New/Reset construction cost — proportional to
	// the process count rather than count × session size, which matters
	// once Session carries a multi-word member set.
	lastPrimary   view.Session
	formedIdx     []int32         // indexed by proc.ID
	formedDict    []view.Session  // distinct lastFormed values; [0] is zero
	formedStore   [8]view.Session // formedDict's initial backing; no alloc until 9 distinct
	formedSpare   []view.Session  // compaction double buffer
	formedRemap   []int32         // compaction scratch
	ambiguous     []view.Session
	sessionNumber int64
	inPrimary     bool

	// Per-view protocol state.
	cur       view.View
	curSize   int // cached v.Members.Count(); compared on every state arrival
	phase     phase
	states    []*StateMessage // indexed by proc.ID, reset each view
	statesGot int
	// member[q] mirrors cur.Members, and stateWanted[q] starts as a
	// copy of it, cleared as q's state arrives. Both are rebuilt once
	// per view change so the per-delivery guards — the hottest loads in
	// a kilo-process run — are single byte probes instead of multi-word
	// bitset lookups: stateWanted folds "is a member" and "not yet
	// reported" into one array read.
	member         []bool
	stateWanted    []bool
	attemptSession view.Session
	// attempts and flushes are tally accumulators: one Add per received
	// message. proc.Bits rather than proc.Set because past InlineProcs a
	// Set's Add is copy-on-write — a fresh multi-word slice per message
	// — while a Bits mutates its reused storage in place.
	attempts      proc.Bits
	flushes       proc.Bits
	earlyAttempts []early
	earlyFlushes  []early
	out           []core.Message
	// outSpare is the second half of Poll's double buffer: the slice
	// handed out by the previous Poll, reused as the next send queue
	// once the host is done with it (the core.Algorithm contract makes
	// a returned slice invalid at the following Poll).
	outSpare []core.Message

	// scratch accumulates the deduplicated constraining ambiguous
	// sessions during DECIDE. A handful of sessions at most survive the
	// COMPUTE filters, so a linear Equal scan over a reused slice beats
	// hashing SessionKeys into a map on every view change.
	scratch      []view.Session
	groupScratch []formedGroup // snapshotState grouping, reused

	// appliedFormed remembers the last few formed-session reports
	// fully applied by acceptFormed. During a state exchange every
	// member re-reports the same handful of sessions, and lastFormed
	// entries only ever rise, so re-applying a cached session is a
	// provable no-op — the cache turns the n-member ACCEPT scan into
	// a few word compares for the common repeat.
	appliedFormed [4]view.Session
	appliedNext   int
}

type early struct {
	from proc.ID
	s    view.Session
}

// formedGroup is snapshotState's intermediate grouping of the
// lastFormed table; the backing slice is reused across broadcasts, and
// who is a Bits accumulator (its word storage survives reuse) so the
// one-Add-per-process grouping loop never pays Set's copy-on-write.
type formedGroup struct {
	s   view.Session
	who proc.Bits
}

var (
	_ core.Algorithm         = (*Algorithm)(nil)
	_ core.AmbiguousReporter = (*Algorithm)(nil)
	_ core.PrimaryReporter   = (*Algorithm)(nil)
	_ core.Resetter          = (*Algorithm)(nil)
)

// New returns a variant instance for process self. The initial view
// must contain all participating processes; it is the thesis's W, the
// primary everyone starts in, carrying session number zero.
func New(variant Variant, self proc.ID, initial view.View) *Algorithm {
	w := view.NewSession(0, initial)
	maxID := int(initial.Members.Max())
	if maxID < 0 {
		maxID = 0
	}
	a := &Algorithm{
		variant:     variant,
		self:        self,
		initial:     w,
		lastPrimary: w,
		formedIdx:   make([]int32, maxID+1),
		inPrimary:   true,
		cur:         initial,
		curSize:     initial.Size(),
		phase:       phaseIdle,
		states:      make([]*StateMessage, maxID+1),
	}
	a.formedDict = a.formedStore[:1]
	wi := a.internFormed(w)
	initial.Members.ForEach(func(id proc.ID) { a.formedIdx[id] = wi })
	a.sizeMemberTables(maxID + 1)
	a.markMembers(initial)
	return a
}

// sizeMemberTables (re)sizes member and stateWanted to n entries. Both
// tables are carved from one backing array: instances are created per
// process, so at kilo-process widths one allocation instead of two per
// instance is n fewer per driver construction.
func (a *Algorithm) sizeMemberTables(n int) {
	if cap(a.member) >= n {
		a.member = a.member[:n]
		a.stateWanted = a.stateWanted[:n]
		return
	}
	backing := make([]bool, 2*n)
	a.member = backing[:n:n]
	a.stateWanted = backing[n:]
}

// markMembers rebuilds the per-view membership byte tables.
func (a *Algorithm) markMembers(v view.View) {
	clear(a.member)
	clear(a.stateWanted)
	v.Members.ForEach(func(q proc.ID) {
		if int(q) < len(a.member) {
			a.member[q] = true
			a.stateWanted[q] = true
		}
	})
}

// internFormed returns s's index in the lastFormed dictionary,
// appending it if absent. The dictionary stays small (resolveAndDecide
// compacts it), so a linear Equal scan beats hashing.
func (a *Algorithm) internFormed(s view.Session) int32 {
	for i := range a.formedDict {
		if a.formedDict[i].Equal(s) {
			return int32(i)
		}
	}
	a.formedDict = append(a.formedDict, s)
	return int32(len(a.formedDict) - 1)
}

// compactFormedDict rewrites the dictionary to just the entries some
// index row still references, so superseded sessions don't accumulate
// across a long run. Both the replacement dictionary and the remap
// table are double-buffered; steady state allocates nothing.
func (a *Algorithm) compactFormedDict() {
	old := a.formedDict
	remap := a.formedRemap[:0]
	for range old {
		remap = append(remap, -1)
	}
	remap[0] = 0
	newDict := append(a.formedSpare[:0], view.Session{})
	for i, j := range a.formedIdx {
		if remap[j] < 0 {
			remap[j] = int32(len(newDict))
			newDict = append(newDict, old[j])
		}
		a.formedIdx[i] = remap[j]
	}
	a.formedRemap = remap
	clear(old[:cap(old)])
	a.formedSpare = old[:0]
	a.formedDict = newDict
}

// Factory returns the host-facing description of the given variant.
func Factory(variant Variant) core.Factory {
	return core.Factory{
		Name: variant.String(),
		New: func(self proc.ID, initial view.View) core.Algorithm {
			return New(variant, self, initial)
		},
		Codec: Codec{},
	}
}

// Name implements core.Algorithm.
func (a *Algorithm) Name() string { return a.variant.String() }

// InPrimary implements core.Algorithm.
func (a *Algorithm) InPrimary() bool { return a.inPrimary }

// PrimaryMembers returns the membership of the primary this process
// last formed; meaningful while InPrimary is true.
func (a *Algorithm) PrimaryMembers() proc.Set { return a.lastPrimary.Members }

// AmbiguousSessionCount reports the retained ambiguous sessions, the
// quantity measured in thesis Figures 4-7 and 4-8.
func (a *Algorithm) AmbiguousSessionCount() int { return len(a.ambiguous) }

// LastPrimary returns the last primary component this process formed
// or accepted.
func (a *Algorithm) LastPrimary() view.Session { return a.lastPrimary }

// Reset implements core.Resetter: it restores the instance to the
// state New(variant, self, initial) would produce, reusing every piece
// of retained storage — the lastFormed and states tables, the
// ambiguous and send-queue slices, the DECIDE scratch map. The variant
// is preserved. Stale message pointers are cleared from the recycled
// buffers so a reset instance pins nothing from its previous life.
func (a *Algorithm) Reset(self proc.ID, initial view.View) {
	w := view.NewSession(0, initial)
	maxID := int(initial.Members.Max())
	if maxID < 0 {
		maxID = 0
	}
	a.self = self
	a.initial = w
	a.lastPrimary = w
	if cap(a.formedIdx) < maxID+1 {
		a.formedIdx = make([]int32, maxID+1)
	} else {
		a.formedIdx = a.formedIdx[:maxID+1]
		clear(a.formedIdx)
	}
	clear(a.formedDict[:cap(a.formedDict)])
	a.formedDict = a.formedDict[:1]
	wi := a.internFormed(w)
	initial.Members.ForEach(func(id proc.ID) { a.formedIdx[id] = wi })
	a.ambiguous = a.ambiguous[:0]
	a.sessionNumber = 0
	a.inPrimary = true

	a.cur = initial
	a.curSize = initial.Size()
	a.phase = phaseIdle
	if cap(a.states) < maxID+1 {
		a.states = make([]*StateMessage, maxID+1)
	} else {
		a.states = a.states[:maxID+1]
		clear(a.states)
	}
	a.statesGot = 0
	a.attemptSession = view.Session{}
	a.attempts.Reset(maxID + 1)
	if a.variant == VariantDFLS {
		a.flushes.Reset(maxID + 1)
	}
	a.sizeMemberTables(maxID + 1)
	a.markMembers(initial)
	a.earlyAttempts = a.earlyAttempts[:0]
	a.earlyFlushes = a.earlyFlushes[:0]
	a.out = clearMessages(a.out)
	a.outSpare = clearMessages(a.outSpare)
	a.scratch = a.scratch[:0]
	a.groupScratch = a.groupScratch[:0]
	a.appliedFormed = [4]view.Session{}
	a.appliedNext = 0
}

// clearMessages truncates a send-queue buffer, dropping the message
// pointers parked in its full backing array so they can be collected.
func clearMessages(out []core.Message) []core.Message {
	out = out[:cap(out)]
	clear(out)
	return out[:0]
}

// ViewChange starts the two-round protocol in the new view: any
// attempt in progress is abandoned (leaving its session ambiguous) and
// the process broadcasts its state.
func (a *Algorithm) ViewChange(v view.View) {
	a.cur = v
	a.curSize = v.Size()
	a.inPrimary = false
	a.phase = phaseExchange
	for i := range a.states {
		a.states[i] = nil
	}
	a.statesGot = 0
	a.attempts.Reset(len(a.formedIdx))
	// flushes is reset lazily by checkFormed when DFLS actually enters
	// its flush round; other variants never touch it, so resetting it
	// here would cost every non-DFLS instance its backing words.
	a.markMembers(v)
	a.earlyAttempts = a.earlyAttempts[:0]
	a.earlyFlushes = a.earlyFlushes[:0]

	st := a.snapshotState(v.ID)
	a.out = append(a.out, st)
	a.acceptState(a.self, st)
}

// Deliver implements core.Algorithm. The host guarantees
// view-synchronous delivery; the ViewID checks are defensive.
func (a *Algorithm) Deliver(from proc.ID, m core.Message) {
	switch msg := m.(type) {
	case *StateMessage:
		if a.phase == phaseExchange && msg.ViewID == a.cur.ID {
			a.acceptState(from, msg)
		}
	case *AttemptMessage:
		if msg.ViewID != a.cur.ID {
			return
		}
		switch a.phase {
		case phaseExchange:
			// FIFO order guarantees the sender's state arrived first,
			// but we may still be waiting on other members' states.
			a.earlyAttempts = append(a.earlyAttempts, early{from: from, s: msg.Session})
		case phaseAttempt:
			a.recordAttempt(from, msg.Session)
		}
	case *FlushMessage:
		if a.variant != VariantDFLS || msg.ViewID != a.cur.ID {
			return
		}
		switch a.phase {
		case phaseExchange, phaseAttempt:
			a.earlyFlushes = append(a.earlyFlushes, early{from: from, s: msg.Session})
		case phaseFlush:
			a.recordFlush(from, msg.Session)
		}
	}
}

// Poll implements core.Algorithm, draining the send queue. The two
// queue buffers alternate: the slice returned here becomes the next
// send queue at the following Poll, so the steady state allocates
// nothing (the host's contract is that a returned slice is invalid
// once Poll is called again).
func (a *Algorithm) Poll() []core.Message {
	if len(a.out) == 0 {
		return nil
	}
	out := a.out
	a.out, a.outSpare = a.outSpare[:0], out
	return out
}

// snapshotState captures this process's durable state for broadcast.
func (a *Algorithm) snapshotState(viewID int64) *StateMessage {
	// Group the lastFormed table by session: a process's formed
	// sessions carry distinct numbers, so the number keys the group.
	// Reused slots keep their who storage across broadcasts (reslice,
	// not append of a fresh struct), so the grouping loop allocates
	// only when the table holds more distinct sessions than ever
	// before.
	width := len(a.formedIdx)
	groups := a.groupScratch[:0]
	a.initial.Members.ForEach(func(q proc.ID) {
		s := &a.formedDict[a.formedIdx[q]]
		for i := range groups {
			if groups[i].s.Number == s.Number {
				groups[i].who.Add(q)
				return
			}
		}
		if len(groups) < cap(groups) {
			groups = groups[:len(groups)+1]
		} else {
			groups = append(groups, formedGroup{})
		}
		g := &groups[len(groups)-1]
		g.s = *s
		g.who.Reset(width)
		g.who.Add(q)
	})
	a.groupScratch = groups
	formed := make([]FormedEntry, len(groups))
	for i := range groups {
		formed[i] = FormedEntry{Session: groups[i].s, Who: groups[i].who.Freeze()}
	}
	amb := make([]view.Session, len(a.ambiguous))
	copy(amb, a.ambiguous)
	return &StateMessage{
		ViewID:        viewID,
		SessionNumber: a.sessionNumber,
		LastPrimary:   a.lastPrimary,
		Formed:        formed,
		Ambiguous:     amb,
	}
}

func (a *Algorithm) acceptState(from proc.ID, st *StateMessage) {
	// stateWanted[from] is true exactly when from is a current-view
	// member whose state has not arrived — the historic
	// Contains+nil-check guard pair as one byte probe.
	if int(from) >= len(a.stateWanted) || !a.stateWanted[from] {
		return
	}
	a.stateWanted[from] = false
	a.states[from] = st
	a.statesGot++
	if a.statesGot == a.curSize {
		a.resolveAndDecide()
	}
}

// resolveAndDecide runs once all states for the current view are in:
// LEARN/RESOLVE (the rules in the package comment), COMPUTE, DECIDE,
// and — on a positive decision — the attempt broadcast.
func (a *Algorithm) resolveAndDecide() {
	v := a.cur
	if len(a.formedDict) >= 16 {
		a.compactFormedDict()
	}

	// COMPUTE maxSession and maxPrimary while applying ACCEPT.
	maxSession := a.sessionNumber
	maxPrimary := a.lastPrimary
	v.Members.ForEach(func(q proc.ID) {
		st := a.states[q]
		if st.SessionNumber > maxSession {
			maxSession = st.SessionNumber
		}
		if st.LastPrimary.Number > maxPrimary.Number {
			maxPrimary = st.LastPrimary
		}
		a.acceptFormed(&st.LastPrimary)
		for i := range st.Formed {
			a.acceptFormed(&st.Formed[i].Session)
		}
	})

	// DELETE rules on our own ambiguous sessions (YKD and 1-pending).
	if a.variant.prunes() {
		kept := a.ambiguous[:0]
		for _, s := range a.ambiguous {
			if s.Number <= a.lastPrimary.Number {
				continue // superseded by a formed primary containing us
			}
			if a.provablyUnformed(s) {
				continue // LEARN: every member reports it didn't form s
			}
			kept = append(kept, s)
		}
		a.ambiguous = kept
	}

	// COMPUTE maxAmbiguousSessions: the combined ambiguous sessions of
	// all members that still constrain the decision.
	a.scratch = a.scratch[:0]
	v.Members.ForEach(func(q proc.ID) {
	next:
		for _, s := range a.states[q].Ambiguous {
			if a.variant != VariantDFLS {
				// YKD-family COMPUTE keeps only sessions newer than
				// maxPrimary; resolved-as-unformed sessions are
				// excluded by the same rule every member can evaluate.
				if s.Number <= maxPrimary.Number {
					continue
				}
				if s.Members.SubsetOf(v.Members) {
					continue
				}
			}
			for i := range a.scratch {
				if a.scratch[i].Equal(s) {
					continue next
				}
			}
			a.scratch = append(a.scratch, s)
		}
	})

	// DECIDE.
	decide := quorum.SubQuorum(v.Members, maxPrimary.Members)
	if decide {
		for _, s := range a.scratch {
			if !quorum.SubQuorum(v.Members, s.Members) {
				decide = false
				break
			}
		}
	}
	if a.variant == VariantOnePending && len(a.scratch) > 0 {
		// 1-pending refuses to pipeline: it attempts only when no
		// unresolved ambiguous session remains anywhere in the view.
		decide = false
	}

	if !decide {
		a.phase = phaseIdle
		return
	}

	a.sessionNumber = maxSession + 1
	s := view.NewSession(a.sessionNumber, v)
	a.ambiguous = append(a.ambiguous, s)
	a.attemptSession = s
	a.attempts.Reset(len(a.formedIdx))
	a.attempts.Add(a.self)
	a.phase = phaseAttempt
	a.out = append(a.out, &AttemptMessage{ViewID: v.ID, Session: s})

	pending := a.earlyAttempts
	a.earlyAttempts = nil
	for _, e := range pending {
		if a.phase == phaseAttempt {
			a.recordAttempt(e.from, e.s)
		}
	}
	// Nothing appends to earlyAttempts past the exchange phase, so the
	// drained buffer can be reclaimed for the next view.
	a.earlyAttempts = pending[:0]
	a.checkFormed()
}

// provablyUnformed implements the LEARN rule of Figure 3-3: session s
// was formed by nobody if every member of s — all of whom must be
// present in the current view — reports a lastFormed entry proving it
// never completed s. A process q that formed s would have raised
// lastFormed(o) to at least s.Number for every o in s, so a single
// entry below s.Number witnesses that q did not form it.
//
// The witness scan runs over q's Formed entries rather than the
// members of s: an entry whose Who intersects s.Members is exactly a
// lastFormed(o) report for some o in s (the entries partition q's
// universe by session), so "∃o∈s: FormedFor(o).Number < s.Number"
// becomes one word-parallel Disjoint per entry — O(entries × words)
// per member instead of the O(|s|² × entries) member-pair scan, which
// is what made LEARN the CPU hot spot at kilo-process widths.
func (a *Algorithm) provablyUnformed(s view.Session) bool {
	if !s.Members.SubsetOf(a.cur.Members) {
		return false
	}
	unformed := true
	s.Members.EachWhile(func(q proc.ID) bool {
		st := a.states[q]
		witnessed := false
		for i := range st.Formed {
			f := &st.Formed[i]
			if f.Session.Number < s.Number && !f.Who.Disjoint(s.Members) {
				witnessed = true
				break
			}
		}
		unformed = witnessed
		return unformed
	})
	return unformed
}

// acceptFormed applies the ACCEPT rule for one formed-session report.
// The session is passed by pointer purely to avoid copying it on this,
// the hottest call in a state exchange; it is not retained or mutated.
func (a *Algorithm) acceptFormed(s *view.Session) {
	if !s.Contains(a.self) {
		return
	}
	for i := range a.appliedFormed {
		c := &a.appliedFormed[i]
		if c.Number == s.Number && c.Members.Equal(s.Members) {
			return // already applied; entries only rise, so this is a no-op
		}
	}
	if s.Number > a.lastPrimary.Number {
		a.lastPrimary = *s
	}
	idx := int32(-1) // interned lazily: only if some entry actually rises
	s.Members.ForEach(func(q proc.ID) {
		if int(q) < len(a.formedIdx) && s.Number > a.formedDict[a.formedIdx[q]].Number {
			if idx < 0 {
				idx = a.internFormed(*s)
			}
			a.formedIdx[q] = idx
		}
	})
	a.appliedFormed[a.appliedNext] = *s
	a.appliedNext = (a.appliedNext + 1) % len(a.appliedFormed)
}

func (a *Algorithm) recordAttempt(from proc.ID, s view.Session) {
	// Deliver already matched the message's view; within one view every
	// decided member derives the identical attempt session (the view's
	// members, a number computed deterministically from the same state
	// set), so the number comparison is the whole session Equal without
	// the multi-word member compare the full Equal would pay per
	// message at kilo-process widths.
	if s.Number != a.attemptSession.Number ||
		int(from) >= len(a.member) || !a.member[from] {
		return
	}
	a.attempts.Add(from)
	a.checkFormed()
}

// checkFormed completes the formation once attempts arrived from every
// member of the view. Every path into attempts admits only view members
// (self on decide, the member-table guard in recordAttempt), so the
// subset test "attempts ⊇ cur.Members" reduces to an O(1) count
// comparison instead of a word scan per arriving attempt.
func (a *Algorithm) checkFormed() {
	if a.phase != phaseAttempt || a.attempts.Count() != a.curSize {
		return
	}
	s := a.attemptSession
	a.lastPrimary = s
	a.inPrimary = true
	idx := a.internFormed(s)
	a.cur.Members.ForEach(func(q proc.ID) {
		if int(q) < len(a.formedIdx) {
			a.formedIdx[q] = idx
		}
	})

	if a.variant == VariantDFLS {
		// DFLS defers deletion to a third, flush round in the newly
		// formed primary.
		a.phase = phaseFlush
		a.flushes.Reset(len(a.formedIdx))
		a.flushes.Add(a.self)
		a.out = append(a.out, &FlushMessage{ViewID: a.cur.ID, Session: s})
		pending := a.earlyFlushes
		a.earlyFlushes = nil
		for _, e := range pending {
			if a.phase == phaseFlush {
				a.recordFlush(e.from, e.s)
			}
		}
		a.earlyFlushes = pending[:0]
		a.checkFlushed()
		return
	}

	// YKD, unoptimized YKD and 1-pending delete all ambiguous sessions
	// the moment a primary is formed. Truncation (not nil) keeps the
	// slice's capacity for the next attempt.
	a.ambiguous = a.ambiguous[:0]
	a.phase = phaseIdle
}

func (a *Algorithm) recordFlush(from proc.ID, s view.Session) {
	if !s.Equal(a.lastPrimary) || !a.cur.Contains(from) {
		return
	}
	a.flushes.Add(from)
	a.checkFlushed()
}

func (a *Algorithm) checkFlushed() {
	// Like checkFormed: flushes admits only view members, so the subset
	// test is a count comparison.
	if a.phase != phaseFlush || a.flushes.Count() != a.curSize {
		return
	}
	a.ambiguous = a.ambiguous[:0]
	a.phase = phaseIdle
}
