package ykd_test

import (
	"testing"

	"dynvote/internal/core"
	"dynvote/internal/proc"
	"dynvote/internal/rng"
	"dynvote/internal/sim"
	"dynvote/internal/view"
	"dynvote/internal/ykd"
)

// harness drives a cluster through scripted view sequences.
type harness struct {
	t      *testing.T
	c      *sim.Cluster
	r      *rng.Source
	nextID int64
}

func newHarness(t *testing.T, variant ykd.Variant, n int) *harness {
	t.Helper()
	return &harness{
		t:      t,
		c:      sim.NewCluster(ykd.Factory(variant), n),
		r:      rng.New(1),
		nextID: 1,
	}
}

// split issues one view per member list, then runs to quiescence.
func (h *harness) split(memberLists ...[]proc.ID) {
	h.t.Helper()
	views := make([]view.View, len(memberLists))
	for i, ids := range memberLists {
		views[i] = view.View{ID: h.nextID, Members: proc.NewSet(ids...)}
		h.nextID++
	}
	h.c.Collect(h.r)
	h.c.IssueViews(h.r, views...)
	h.settle()
}

// splitNoSettle issues views without running the protocol.
func (h *harness) splitNoSettle(memberLists ...[]proc.ID) {
	h.t.Helper()
	views := make([]view.View, len(memberLists))
	for i, ids := range memberLists {
		views[i] = view.View{ID: h.nextID, Members: proc.NewSet(ids...)}
		h.nextID++
	}
	h.c.Collect(h.r)
	h.c.IssueViews(h.r, views...)
}

func (h *harness) settle() {
	h.t.Helper()
	if _, err := h.c.RunToQuiescence(h.r, 1000); err != nil {
		h.t.Fatal(err)
	}
	if err := sim.CheckOnePrimary(h.c); err != nil {
		h.t.Fatal(err)
	}
}

func (h *harness) inPrimary(p proc.ID) bool { return h.c.Algorithm(p).InPrimary() }

func (h *harness) wantPrimary(p proc.ID, want bool) {
	h.t.Helper()
	if got := h.inPrimary(p); got != want {
		h.t.Errorf("process %v: InPrimary = %v, want %v", p, got, want)
	}
}

func (h *harness) ambiguous(p proc.ID) int {
	return h.c.Algorithm(p).(core.AmbiguousReporter).AmbiguousSessionCount()
}

// dropAttemptsTo drops attempt messages addressed to the given
// processes, simulating members that detach before the final round.
func (h *harness) dropAttemptsTo(ids ...proc.ID) {
	blocked := proc.NewSet(ids...)
	h.c.Drop = func(_, to proc.ID, m core.Message) bool {
		_, isAttempt := m.(*ykd.AttemptMessage)
		return isAttempt && blocked.Contains(to)
	}
}

func (h *harness) clearDrop() { h.c.Drop = nil }

var allVariants = []ykd.Variant{
	ykd.VariantYKD, ykd.VariantUnoptimized, ykd.VariantDFLS, ykd.VariantOnePending,
}

func TestInitialViewIsPrimary(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			h := newHarness(t, v, 5)
			for p := proc.ID(0); p < 5; p++ {
				h.wantPrimary(p, true)
			}
		})
	}
}

func TestMajorityPartitionFormsPrimary(t *testing.T) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			h := newHarness(t, v, 5)
			h.split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
			for _, p := range []proc.ID{0, 1, 2} {
				h.wantPrimary(p, true)
			}
			for _, p := range []proc.ID{3, 4} {
				h.wantPrimary(p, false)
			}
		})
	}
}

func TestCascadedShrinkingPrimaries(t *testing.T) {
	// Dynamic voting's selling point: a majority of the previous
	// primary suffices, even when it is a minority of the system.
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) {
			h := newHarness(t, v, 8)
			h.split([]proc.ID{0, 1, 2, 3, 4}, []proc.ID{5, 6, 7})
			h.wantPrimary(0, true)
			h.split([]proc.ID{0, 1, 2}, []proc.ID{3, 4}, []proc.ID{5, 6, 7})
			h.wantPrimary(0, true) // 3 of previous 5
			h.split([]proc.ID{0, 1}, []proc.ID{2}, []proc.ID{3, 4}, []proc.ID{5, 6, 7})
			h.wantPrimary(0, true) // 2 of previous 3
			h.wantPrimary(5, false)
			h.wantPrimary(3, false)
		})
	}
}

func TestSimpleMajorityWouldNotSurviveShrinking(t *testing.T) {
	// Contrast for the test above: {0,1} is only 2 of 8 original
	// processes, so only dynamic voting keeps it primary.
	h := newHarness(t, ykd.VariantYKD, 8)
	h.split([]proc.ID{0, 1, 2, 3, 4}, []proc.ID{5, 6, 7})
	h.split([]proc.ID{0, 1, 2}, []proc.ID{3, 4}, []proc.ID{5, 6, 7})
	h.split([]proc.ID{0, 1}, []proc.ID{2}, []proc.ID{3, 4}, []proc.ID{5, 6, 7})
	if got := proc.NewSet(0, 1).Count(); 2*got > 8 {
		t.Fatal("test setup broken: {0,1} must be a system-wide minority")
	}
	h.wantPrimary(0, true)
}

// TestFigure31Scenario reproduces the inconsistency scenario of thesis
// Figure 3-1 and verifies YKD resolves it: a and b form {a,b,c}, c
// detaches before learning the outcome, and the ambiguous session must
// prevent {c,d,e} from forming a second primary.
func TestFigure31Scenario(t *testing.T) {
	for _, variant := range allVariants {
		t.Run(variant.String(), func(t *testing.T) {
			h := newHarness(t, variant, 5)
			const a, b, c, d, e = 0, 1, 2, 3, 4

			// Partition into {a,b,c} and {d,e}; c misses the attempts.
			h.dropAttemptsTo(c)
			h.split([]proc.ID{a, b, c}, []proc.ID{d, e})
			h.clearDrop()

			h.wantPrimary(a, true)
			h.wantPrimary(b, true)
			h.wantPrimary(c, false)
			if got := h.ambiguous(c); got != 1 {
				t.Fatalf("c retains %d ambiguous sessions, want 1", got)
			}

			// c detaches from a,b and joins d,e.
			h.split([]proc.ID{a, b}, []proc.ID{c, d, e})

			// a,b (a majority of {a,b,c}) re-form.
			h.wantPrimary(a, true)
			h.wantPrimary(b, true)
			// {c,d,e} holds a majority of the original five, but c's
			// ambiguous session {a,b,c} blocks it — the naive approach
			// would have formed a second, concurrent primary here.
			h.wantPrimary(c, false)
			h.wantPrimary(d, false)
			h.wantPrimary(e, false)
		})
	}
}

// TestAmbiguousResolvedAsFormed continues the Figure 3-1 scenario: when
// c reconnects with a and b, it learns from their lastFormed tables
// that {a,b,c} really was formed, resolves the ambiguity, and the full
// system forms a primary again.
func TestAmbiguousResolvedAsFormed(t *testing.T) {
	h := newHarness(t, ykd.VariantYKD, 5)
	const a, b, c, d, e = 0, 1, 2, 3, 4

	h.dropAttemptsTo(c)
	h.split([]proc.ID{a, b, c}, []proc.ID{d, e})
	h.clearDrop()
	h.split([]proc.ID{a, b}, []proc.ID{c, d, e})

	// Everyone reconnects.
	h.split([]proc.ID{a, b, c, d, e})
	for p := proc.ID(0); p < 5; p++ {
		h.wantPrimary(p, true)
	}
	if got := h.ambiguous(c); got != 0 {
		t.Errorf("c retains %d ambiguous sessions after resolution, want 0", got)
	}
}

// TestUnformedSessionResolvedWhenAllMembersPresent checks the other
// resolution outcome: an attempt nobody completed is discarded once
// all its members are back together.
func TestUnformedSessionResolvedWhenAllMembersPresent(t *testing.T) {
	h := newHarness(t, ykd.VariantYKD, 5)

	// {0,1,2} attempt a primary but nobody receives any attempts.
	h.dropAttemptsTo(0, 1, 2)
	h.split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	h.clearDrop()
	for _, p := range []proc.ID{0, 1, 2} {
		h.wantPrimary(p, false)
		if got := h.ambiguous(p); got != 1 {
			t.Fatalf("process %v retains %d ambiguous sessions, want 1", p, got)
		}
	}

	// All members of the unformed session reunite: it resolves, and
	// the view (still a majority of W) forms.
	h.split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
	for _, p := range []proc.ID{0, 1, 2} {
		h.wantPrimary(p, true)
		if got := h.ambiguous(p); got != 0 {
			t.Errorf("process %v retains %d ambiguous sessions, want 0", p, got)
		}
	}
}

// TestOnePendingBlocksWhereYKDProceeds exercises the defining
// difference of §3.2.3: YKD pipelines past an unresolved ambiguous
// session when the new view holds a subquorum of it; 1-pending blocks.
func TestOnePendingBlocksWhereYKDProceeds(t *testing.T) {
	run := func(variant ykd.Variant) *harness {
		h := newHarness(t, variant, 5)
		// {0,1,2} attempt a primary; nobody completes it, so the
		// session A = {0,1,2} is pending at 0, 1 and 2.
		h.dropAttemptsTo(0, 1, 2)
		h.split([]proc.ID{0, 1, 2}, []proc.ID{3, 4})
		h.clearDrop()
		// View {0,1,3}: a majority of W and a subquorum of A (2 of 3),
		// but A itself is unresolvable (2 is absent). YKD pipelines
		// past the pending session; 1-pending blocks on it.
		h.split([]proc.ID{0, 1, 3}, []proc.ID{2}, []proc.ID{4})
		return h
	}

	ykdH := run(ykd.VariantYKD)
	ykdH.wantPrimary(0, true)
	ykdH.wantPrimary(3, true)

	opH := run(ykd.VariantOnePending)
	opH.wantPrimary(0, false)
	opH.wantPrimary(1, false)
	opH.wantPrimary(3, false)
}

// TestDFLSBlockedByRetainedSession hand-crafts the mechanism behind
// DFLS's ≈3% availability deficit (§4.1): a stale retained ambiguous
// session constrains DFLS after YKD has already discarded it as
// superseded.
func TestDFLSBlockedByRetainedSession(t *testing.T) {
	run := func(variant ykd.Variant) *harness {
		h := newHarness(t, variant, 6)
		// {0,1,2} — exactly half of W, holding its smallest process —
		// attempt a primary; nobody completes: session A = {0,1,2}.
		h.dropAttemptsTo(0, 1, 2)
		h.split([]proc.ID{0, 1, 2}, []proc.ID{3, 4, 5})
		h.clearDrop()
		// 0 detaches alone, keeping A pending; {1,2} join the others
		// and form primary P = {1,2,3,4,5} (supersedes A).
		h.split([]proc.ID{0}, []proc.ID{1, 2}, []proc.ID{3, 4, 5})
		h.split([]proc.ID{0}, []proc.ID{1, 2, 3, 4, 5})
		// Now 0 joins a subquorum of P that holds only one member of A.
		h.split([]proc.ID{0, 3, 4, 5}, []proc.ID{1, 2})
		return h
	}

	for _, variant := range []ykd.Variant{ykd.VariantYKD, ykd.VariantUnoptimized} {
		h := run(variant)
		h.wantPrimary(3, true) // A is superseded by P; the view forms
		h.wantPrimary(0, true)
	}

	h := run(ykd.VariantDFLS)
	// 0 still retains A (its deletion round never happened), and the
	// view holds no subquorum of A: DFLS blocks.
	if got := h.ambiguous(0); got == 0 {
		t.Fatal("DFLS process 0 should still retain the stale session")
	}
	h.wantPrimary(3, false)
	h.wantPrimary(0, false)
}

// TestDFLSRetainsUntilFlush verifies the extra deletion round: members
// of a formed primary whose flush round is starved keep their
// ambiguous sessions, unlike YKD which clears on formation.
func TestDFLSRetainsUntilFlush(t *testing.T) {
	const c = 2
	hY := newHarness(t, ykd.VariantYKD, 5)
	hY.dropAttemptsTo(c)
	hY.split([]proc.ID{0, 1, c}, []proc.ID{3, 4})
	hY.clearDrop()
	if got := hY.ambiguous(0); got != 0 {
		t.Errorf("YKD former retains %d sessions, want 0", got)
	}

	hD := newHarness(t, ykd.VariantDFLS, 5)
	hD.dropAttemptsTo(c)
	hD.split([]proc.ID{0, 1, c}, []proc.ID{3, 4})
	hD.clearDrop()
	// 0 and 1 formed {0,1,2}, but c never did, so c never flushed and
	// the deletion round cannot complete.
	hD.wantPrimary(0, true)
	if got := hD.ambiguous(0); got != 1 {
		t.Errorf("DFLS former retains %d sessions, want 1", got)
	}
}

// TestUnoptimizedRetainsMore verifies §3.2.1: the optimization changes
// storage, not availability. Session A = {0..4} is left unformed; a
// primary P forms without processes 3 and 4; then all of A regroups in
// a view too weak to form (only 3 of P's 7 members). Neither variant
// forms — identical availability — but YKD's LEARN rule lets 3 discard
// A (all members present, every one provably never completed it) while
// the unoptimized variant keeps it.
func TestUnoptimizedRetainsMore(t *testing.T) {
	run := func(variant ykd.Variant) *harness {
		h := newHarness(t, variant, 9)
		h.dropAttemptsTo(0, 1, 2, 3, 4)
		h.split([]proc.ID{0, 1, 2, 3, 4}, []proc.ID{5, 6, 7, 8})
		h.clearDrop()
		// P = {0,1,2,5,6,7,8}: a majority of W and of A (3 of 5).
		h.split([]proc.ID{0, 1, 2, 5, 6, 7, 8}, []proc.ID{3, 4})
		// All of A reunites, with only 3 of P's 7 members present.
		h.split([]proc.ID{0, 1, 2, 3, 4}, []proc.ID{5, 6, 7, 8})
		return h
	}

	hy := run(ykd.VariantYKD)
	hu := run(ykd.VariantUnoptimized)

	// Identical availability: {0..4} cannot form (3 of P's 7 members),
	// while {5,6,7,8} — a majority of P — re-forms, for both variants.
	for _, h := range []*harness{hy, hu} {
		h.wantPrimary(0, false)
		h.wantPrimary(3, false)
		h.wantPrimary(5, true)
	}

	// Different retention at process 3, which held A throughout.
	if got := hy.ambiguous(3); got != 0 {
		t.Errorf("ykd retains %d sessions, want 0", got)
	}
	if got := hu.ambiguous(3); got != 1 {
		t.Errorf("ykd-unopt retains %d sessions, want 1", got)
	}
}

// TestDeterministicAgreement: after any quiescent exchange, all view
// members agree (the algorithm decides deterministically from shared
// information).
func TestDeterministicAgreement(t *testing.T) {
	for _, variant := range allVariants {
		t.Run(variant.String(), func(t *testing.T) {
			h := newHarness(t, variant, 6)
			h.split([]proc.ID{0, 1, 2, 3}, []proc.ID{4, 5})
			h.split([]proc.ID{0, 1}, []proc.ID{2, 3}, []proc.ID{4, 5})
			h.split([]proc.ID{0, 1, 2, 3, 4, 5})
			if err := sim.CheckStableAgreement(h.c); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestLexicalTieBreakOnExactHalf: when the primary splits exactly in
// half, the side holding the lexically smallest process survives.
func TestLexicalTieBreakOnExactHalf(t *testing.T) {
	for _, variant := range allVariants {
		t.Run(variant.String(), func(t *testing.T) {
			h := newHarness(t, variant, 6)
			h.split([]proc.ID{0, 4, 5}, []proc.ID{1, 2, 3})
			h.wantPrimary(0, true)
			h.wantPrimary(4, true)
			h.wantPrimary(1, false)
			h.wantPrimary(2, false)
		})
	}
}

func TestSingletonViews(t *testing.T) {
	// Full scatter: nobody is primary; then the lexical-smallest chain
	// can rebuild by merging one at a time.
	h := newHarness(t, ykd.VariantYKD, 3)
	h.split([]proc.ID{0, 1}, []proc.ID{2})
	h.wantPrimary(0, true)
	h.split([]proc.ID{0}, []proc.ID{1}, []proc.ID{2})
	// {0} is half of {0,1} and holds its smallest member: primary.
	h.wantPrimary(0, true)
	h.wantPrimary(1, false)
	h.wantPrimary(2, false)
}
